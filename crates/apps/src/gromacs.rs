//! Gromacs/BenchMEM proxy — molecular dynamics with PME electrostatics
//! (§VI-B, Fig. 13).
//!
//! The dominant collective load in PME-based MD is the 3-D FFT of the
//! charge grid: each forward/inverse transform performs parallel
//! transposes realized as `MPI_Alltoall` over the grid slabs (two
//! transposes per 3-D FFT, one forward + one inverse per step ⇒ four
//! alltoalls per MD step). BenchMEM is the ~82k-atom membrane+protein
//! system of the free Gromacs benchmark set; the grid and atom counts
//! below follow it. Short-range force compute scales with atoms/rank and
//! the node clock. Neighbour-list rebuilds add a periodic allgather of
//! local atom indices.

use crate::runner::{Phase, Workload};
use pml_collectives::Collective;
use pml_simnet::{JobLayout, NodeSpec};

/// Gromacs BenchMEM-style proxy parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gromacs {
    /// Atom count (BenchMEM: ~82k).
    pub atoms: usize,
    /// PME charge-grid points per dimension (BenchMEM: ~96).
    pub pme_grid: usize,
    /// MD steps to run.
    pub steps: u32,
    /// Rebuild the neighbour list every this many steps.
    pub nstlist: u32,
}

impl Default for Gromacs {
    fn default() -> Self {
        Gromacs {
            atoms: 81_920,
            pme_grid: 96,
            steps: 40,
            nstlist: 10,
        }
    }
}

impl Gromacs {
    /// Alltoall block bytes for one FFT transpose: the grid (complex f32,
    /// 8 bytes/point) is scattered p×p ways.
    fn transpose_block(&self, world: u32) -> usize {
        let grid_bytes = (self.pme_grid * self.pme_grid * self.pme_grid) as f64 * 8.0;
        ((grid_bytes / (world as f64 * world as f64)) as usize).max(8)
    }

    /// Neighbour-list allgather block: local atom ids (4 bytes each).
    fn nlist_block(&self, world: u32) -> usize {
        ((self.atoms as f64 / world as f64 * 4.0) as usize).max(4)
    }
}

impl Workload for Gromacs {
    fn name(&self) -> &str {
        "Gromacs-BenchMEM"
    }

    fn phases(&self, node: &NodeSpec, layout: JobLayout) -> Vec<Phase> {
        let world = layout.world_size();
        // Effective per-step work: short-range nonbonded + PME spread/
        // gather + local FFT compute, ~40k flops per atom per step all-in
        // (BenchMEM runs ~2-3 ms/step on ~100 modern cores), at ~4
        // flops/cycle SIMD throughput.
        let flops = self.atoms as f64 / world as f64 * 40_000.0;
        let flops_per_s = node.cpu.max_clock_ghz * 1e9 * 4.0;
        let compute_s = flops / flops_per_s;
        let transpose = self.transpose_block(world);
        let nlist = self.nlist_block(world);
        let mut phases = Vec::new();
        for step in 0..self.steps {
            phases.push(Phase::Compute(compute_s));
            // Forward 3-D FFT: two transposes; inverse: two more.
            for _ in 0..4 {
                phases.push(Phase::Collective(Collective::Alltoall, transpose));
            }
            if step % self.nstlist == 0 {
                phases.push(Phase::Collective(Collective::Allgather, nlist));
            }
        }
        phases
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_app;
    use pml_clusters::by_name;
    use pml_core::{MvapichDefault, RandomSelector};

    #[test]
    fn four_alltoalls_per_step() {
        let g = Gromacs {
            steps: 3,
            nstlist: 100,
            ..Default::default()
        };
        let node = &by_name("Frontera").unwrap().spec.node;
        let phases = g.phases(node, JobLayout::new(2, 8));
        let alltoalls = phases
            .iter()
            .filter(|p| matches!(p, Phase::Collective(Collective::Alltoall, _)))
            .count();
        assert_eq!(alltoalls, 12);
    }

    #[test]
    fn transpose_block_shrinks_quadratically() {
        let g = Gromacs::default();
        let b16 = g.transpose_block(16);
        let b32 = g.transpose_block(32);
        assert!((b16 as f64 / b32 as f64 - 4.0).abs() < 0.1);
    }

    #[test]
    fn strong_scaling_improves_total_runtime() {
        let g = Gromacs {
            steps: 8,
            ..Default::default()
        };
        let node = &by_name("Frontera").unwrap().spec.node;
        let t1 = run_app(&g, node, JobLayout::new(1, 56), &MvapichDefault).total_s;
        let t4 = run_app(&g, node, JobLayout::new(4, 56), &MvapichDefault).total_s;
        assert!(t4 < t1, "224 procs ({t4}) should beat 56 procs ({t1})");
    }

    #[test]
    fn default_selector_beats_unlucky_random() {
        // Not every seed loses, but across a run of many alltoalls the
        // informed default should beat at least one random seed clearly.
        let g = Gromacs {
            steps: 10,
            ..Default::default()
        };
        let node = &by_name("Frontera").unwrap().spec.node;
        let layout = JobLayout::new(2, 16);
        let base = run_app(&g, node, layout, &MvapichDefault);
        let worst = (0..5u64)
            .map(|s| run_app(&g, node, layout, &RandomSelector::new(s)).comm_s)
            .fold(0.0f64, f64::max);
        assert!(
            worst > base.comm_s,
            "random never lost: {worst} vs {}",
            base.comm_s
        );
    }
}
