//! # pml-apps
//!
//! Proxy applications for the application-level evaluation (§VII-E,
//! Fig. 13): a [`minife::MiniFe`] conjugate-gradient proxy and a
//! [`gromacs::Gromacs`] PME molecular-dynamics proxy in the style of the
//! BenchMEM benchmark, both executed by [`runner::run_app`] under any
//! algorithm-selection strategy.

#![deny(rust_2018_idioms, missing_debug_implementations)]
#![deny(clippy::dbg_macro, clippy::todo)]
pub mod gromacs;
pub mod minife;
pub mod runner;

pub use gromacs::Gromacs;
pub use minife::MiniFe;
pub use runner::{run_app, AppReport, Phase, Workload};
