//! MiniFE proxy — the Mini Finite-Element HPC proxy app (§VI-B).
//!
//! MiniFE assembles a sparse linear system from an unstructured 3-D hex
//! mesh and solves it with conjugate gradients. Per CG iteration the
//! communication pattern is: a boundary (halo) exchange before the SpMV,
//! and two global reductions for the dot products. In this flat-collective
//! study the halo exchange is expressed as an `MPI_Allgather` of each
//! rank's boundary slab, and the two dot products as 8-byte
//! `MPI_Allreduce` calls, so the proxy exercises the tuned collective mix.
//! Compute per iteration is the memory-bound SpMV plus vector updates.

use crate::runner::{Phase, Workload};
use pml_collectives::Collective;
use pml_simnet::{JobLayout, NodeSpec};

/// MiniFE proxy parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MiniFe {
    /// Global mesh dimension (nx = ny = nz), as in `miniFE -nx N`.
    pub nx: usize,
    /// CG iterations to run.
    pub iterations: u32,
}

impl Default for MiniFe {
    fn default() -> Self {
        MiniFe {
            nx: 128,
            iterations: 50,
        }
    }
}

impl MiniFe {
    /// Unknowns per rank under a balanced partition.
    fn rows_per_rank(&self, world: u32) -> f64 {
        let total = (self.nx * self.nx * self.nx) as f64;
        total / world as f64
    }

    /// Halo slab bytes per rank: one face of the local subdomain,
    /// 8-byte values.
    fn halo_bytes(&self, world: u32) -> usize {
        let local = self.rows_per_rank(world);
        let face = local.powf(2.0 / 3.0).ceil();
        ((face * 8.0) as usize).max(8)
    }
}

impl Workload for MiniFe {
    fn name(&self) -> &str {
        "MiniFE"
    }

    fn phases(&self, node: &NodeSpec, layout: JobLayout) -> Vec<Phase> {
        let world = layout.world_size();
        let rows = self.rows_per_rank(world);
        // The CG iteration is memory-bound: the 27-point SpMV streams
        // ~27 × 12 bytes per row (values + column indices + vectors),
        // plus ~5 vector sweeps of 8 bytes, through this rank's share of
        // the node's memory bandwidth.
        let bytes = rows * (27.0 * 12.0 + 5.0 * 8.0);
        let bw_share = node.cpu.mem_bw_gbs * 1e9 / layout.ppn as f64;
        let compute_s = bytes / bw_share;
        let halo = self.halo_bytes(world);
        let mut phases = Vec::with_capacity(self.iterations as usize * 4);
        for _ in 0..self.iterations {
            phases.push(Phase::Collective(Collective::Allgather, halo));
            phases.push(Phase::Compute(compute_s));
            // Two dot products per CG iteration: 8-byte global reductions.
            phases.push(Phase::Collective(Collective::Allreduce, 8));
            phases.push(Phase::Collective(Collective::Allreduce, 8));
        }
        phases
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_app;
    use pml_clusters::by_name;
    use pml_core::MvapichDefault;

    #[test]
    fn trace_shape() {
        let m = MiniFe {
            nx: 64,
            iterations: 3,
        };
        let node = &by_name("Frontera").unwrap().spec.node;
        let phases = m.phases(node, JobLayout::new(2, 8));
        assert_eq!(phases.len(), 12);
        let collectives = phases
            .iter()
            .filter(|p| matches!(p, Phase::Collective(..)))
            .count();
        assert_eq!(collectives, 9);
        let reductions = phases
            .iter()
            .filter(|p| matches!(p, Phase::Collective(Collective::Allreduce, _)))
            .count();
        assert_eq!(reductions, 6);
    }

    #[test]
    fn halo_shrinks_with_scale() {
        let m = MiniFe::default();
        assert!(m.halo_bytes(16) > m.halo_bytes(256));
    }

    #[test]
    fn strong_scaling_reduces_compute_time() {
        let m = MiniFe {
            nx: 96,
            iterations: 5,
        };
        let node = &by_name("Frontera").unwrap().spec.node;
        let small = run_app(&m, node, JobLayout::new(1, 8), &MvapichDefault);
        let large = run_app(&m, node, JobLayout::new(4, 8), &MvapichDefault);
        assert!(large.compute_s < small.compute_s);
    }
}
