//! Application runner: executes a workload's phase trace under an
//! algorithm-selection strategy and accounts time.
//!
//! A workload (MiniFE or the Gromacs proxy) is a sequence of [`Phase`]s —
//! local compute or a collective call. For every collective call the
//! selector picks an algorithm, the virtual-time executor prices it on the
//! target hardware, and the runner accumulates communication vs compute
//! time. Unit schedules are cached per algorithm so repeated calls at
//! different sizes stay cheap.

use pml_collectives::exec::sim;
use pml_collectives::{Algorithm, Collective, CommSchedule};
use pml_core::{applicable_or_fallback, AlgorithmSelector, JobConfig, MvapichDefault};
use pml_simnet::{CostModel, JobLayout, NodeSpec};
use std::collections::HashMap;

/// One step of an application's execution trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Phase {
    /// Purely local work, seconds per rank (already hardware-scaled by the
    /// workload model).
    Compute(f64),
    /// A collective call at a per-rank block size.
    Collective(Collective, usize),
}

/// A proxy application: produces its phase trace for a job shape.
pub trait Workload {
    fn name(&self) -> &str;

    /// The full execution trace for this job shape on this node type.
    fn phases(&self, node: &NodeSpec, layout: JobLayout) -> Vec<Phase>;
}

/// Time accounting for one application run.
#[derive(Debug, Clone, PartialEq)]
pub struct AppReport {
    pub app: String,
    pub selector: String,
    pub total_s: f64,
    pub compute_s: f64,
    pub comm_s: f64,
    pub collective_calls: u64,
    /// Per-collective algorithm picks (for reporting).
    pub picks: Vec<(Collective, usize, Algorithm)>,
}

/// Run `workload` at `layout` on `node`, selecting collective algorithms
/// with `selector`.
pub fn run_app(
    workload: &dyn Workload,
    node: &NodeSpec,
    layout: JobLayout,
    selector: &dyn AlgorithmSelector,
) -> AppReport {
    let cost = CostModel::new(node.clone(), layout.ppn);
    let mut schedules: HashMap<Algorithm, CommSchedule> = HashMap::new();
    let mut report = AppReport {
        app: workload.name().to_string(),
        selector: selector.name().to_string(),
        total_s: 0.0,
        compute_s: 0.0,
        comm_s: 0.0,
        collective_calls: 0,
        picks: Vec::new(),
    };
    let world = layout.world_size();
    for phase in workload.phases(node, layout) {
        match phase {
            Phase::Compute(s) => {
                report.compute_s += s;
                report.total_s += s;
            }
            Phase::Collective(coll, msg) => {
                let job = JobConfig::new(layout.nodes, layout.ppn, msg);
                // A selector can hand back an algorithm undefined at this
                // world size (e.g. recursive doubling on non-power-of-two
                // ranks); degrade to its always-applicable relative, then
                // to the library default, instead of aborting the run.
                let mut algo = applicable_or_fallback(selector.select(coll, job), world);
                if !algo.supports(world) {
                    algo = MvapichDefault.select(coll, job);
                }
                let schedule = schedules
                    .entry(algo)
                    .or_insert_with(|| algo.schedule(world, 1));
                let t = sim::run_scaled(schedule, layout, &cost, msg.max(1)).time_s;
                report.comm_s += t;
                report.total_s += t;
                report.collective_calls += 1;
                report.picks.push((coll, msg, algo));
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use pml_core::MvapichDefault;

    struct TwoPhase;

    impl Workload for TwoPhase {
        fn name(&self) -> &str {
            "two-phase"
        }

        fn phases(&self, _node: &NodeSpec, _layout: JobLayout) -> Vec<Phase> {
            vec![
                Phase::Compute(1.0e-3),
                Phase::Collective(Collective::Allgather, 1024),
                Phase::Collective(Collective::Alltoall, 256),
            ]
        }
    }

    #[test]
    fn accounting_adds_up() {
        let node = pml_clusters_node();
        let r = run_app(&TwoPhase, &node, JobLayout::new(2, 4), &MvapichDefault);
        assert_eq!(r.collective_calls, 2);
        assert!((r.total_s - r.compute_s - r.comm_s).abs() < 1e-15);
        assert!(r.compute_s >= 1.0e-3);
        assert!(r.comm_s > 0.0);
        assert_eq!(r.picks.len(), 2);
    }

    #[test]
    fn picks_are_recorded_in_call_order() {
        let node = pml_clusters_node();
        let r = run_app(&TwoPhase, &node, JobLayout::new(1, 4), &MvapichDefault);
        assert_eq!(r.picks[0].0, Collective::Allgather);
        assert_eq!(r.picks[1].0, Collective::Alltoall);
        assert_eq!(r.picks[0].1, 1024);
        for (coll, _, algo) in &r.picks {
            assert_eq!(algo.collective(), *coll);
        }
    }

    #[test]
    fn single_rank_app_has_no_comm_cost_messages() {
        let node = pml_clusters_node();
        let r = run_app(&TwoPhase, &node, JobLayout::new(1, 1), &MvapichDefault);
        // world = 1: collectives degenerate to local copies but still count.
        assert_eq!(r.collective_calls, 2);
        assert!(r.total_s >= r.compute_s);
    }

    fn pml_clusters_node() -> NodeSpec {
        use pml_simnet::*;
        NodeSpec {
            cpu: CpuSpec {
                model: "t".into(),
                family: CpuFamily::IntelXeon,
                max_clock_ghz: 3.0,
                l3_cache_mib: 38.0,
                mem_bw_gbs: 150.0,
                cores: 24,
                threads: 48,
                sockets: 2,
                numa_nodes: 2,
            },
            nic: InterconnectSpec::new(HcaGeneration::Edr, PcieVersion::Gen3),
        }
    }
}
