//! Criterion: the three executors on the same schedule — virtual-time
//! simulation throughput (the dataset-generation hot path), the sequential
//! byte interpreter, and the real threaded backend.

use criterion::{criterion_group, criterion_main, Criterion};
use pml_collectives::exec::{interp, sim, threaded};
use pml_collectives::{verify, Algorithm, AlltoallAlgo};
use pml_simnet::{CostModel, JobLayout};
use std::hint::black_box;

fn frontera_cost(ppn: u32) -> CostModel {
    let node = pml_clusters::by_name("Frontera").unwrap().spec.node.clone();
    CostModel::new(node, ppn)
}

fn bench_executors(c: &mut Criterion) {
    let p = 32u32;
    let block = 1024usize;
    let algo = Algorithm::Alltoall(AlltoallAlgo::Pairwise);
    let schedule = algo.schedule(p, block);
    let unit = algo.schedule(p, 1);
    let layout = JobLayout::new(4, 8);
    let cost = frontera_cost(8);
    let inputs = verify::alltoall_inputs(p, block);

    let mut g = c.benchmark_group("executors_pairwise_p32_1k");
    g.bench_function("sim_scaled", |b| {
        b.iter(|| black_box(sim::run_scaled(&unit, layout, &cost, block)))
    });
    g.bench_function("sim_direct", |b| {
        b.iter(|| black_box(sim::run(&schedule, layout, &cost)))
    });
    g.bench_function("interp", |b| {
        b.iter(|| black_box(interp::run(&schedule, &inputs)))
    });
    g.bench_function("threaded", |b| {
        b.iter(|| black_box(threaded::run(&schedule, &inputs)))
    });
    g.finish();
}

criterion_group!(benches, bench_executors);
criterion_main!(benches);
