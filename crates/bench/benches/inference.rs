//! Criterion: batched vs per-row inference — the speedup that makes
//! tuning-table generation (hundreds of grid cells per cluster) cheap.
//! `predict_batch` extracts features for all jobs at once and runs the
//! forest over rows in parallel; the per-row loop pays feature extraction
//! and forest dispatch once per job.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pml_clusters::{by_name, generate_cluster, DatagenConfig};
use pml_collectives::Collective;
use pml_core::{JobConfig, PretrainedModel, TrainConfig};
use pml_mlcore::ForestParams;
use std::hint::black_box;

fn bench_inference(c: &mut Criterion) {
    let mut e = by_name("RI2").expect("zoo cluster").clone();
    e.node_grid = vec![1, 2, 4];
    e.ppn_grid = vec![2, 8];
    e.msg_grid = vec![16, 1024, 65536];
    let records =
        generate_cluster(&e, Collective::Allgather, &DatagenConfig::noiseless()).expect("datagen");
    let cfg = TrainConfig {
        forest: ForestParams {
            n_estimators: 100,
            seed: 0,
            ..Default::default()
        },
        top_k_features: Some(5),
    };
    let model = PretrainedModel::train(&records, Collective::Allgather, &cfg).expect("train");
    let frontera = by_name("Frontera").expect("zoo cluster");

    let mut g = c.benchmark_group("inference");
    for n_jobs in [1usize, 64, 630] {
        // 630 = the Frontera-sized tuning-table grid.
        let jobs: Vec<JobConfig> = (0..n_jobs)
            .map(|i| JobConfig::new(1 + (i % 16) as u32, 1 + (i % 56) as u32, 1 << (i % 21)))
            .collect();
        g.bench_with_input(BenchmarkId::new("per_row", n_jobs), &jobs, |b, jobs| {
            b.iter(|| {
                for &job in jobs {
                    black_box(model.predict(&frontera.spec.node, job));
                }
            })
        });
        g.bench_with_input(BenchmarkId::new("batched", n_jobs), &jobs, |b, jobs| {
            b.iter(|| black_box(model.predict_batch(&frontera.spec.node, jobs)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
