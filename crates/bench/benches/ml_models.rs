//! Criterion: model-side latencies — Random Forest prediction (the
//! constant-time selection claim), single-row inference, and tuning-table
//! generation for a full cluster grid.

use criterion::{criterion_group, criterion_main, Criterion};
use pml_clusters::{by_name, generate_cluster, DatagenConfig};
use pml_collectives::Collective;
use pml_core::{JobConfig, PretrainedModel, TrainConfig};
use pml_mlcore::ForestParams;
use std::hint::black_box;

fn bench_ml(c: &mut Criterion) {
    // A small but real training set (trimmed RI2 grid).
    let mut e = by_name("RI2").unwrap().clone();
    e.node_grid = vec![1, 2, 4];
    e.ppn_grid = vec![2, 8];
    e.msg_grid = vec![16, 1024, 65536];
    let records =
        generate_cluster(&e, Collective::Alltoall, &DatagenConfig::noiseless()).expect("datagen");
    let cfg = TrainConfig {
        forest: ForestParams {
            n_estimators: 50,
            seed: 0,
            ..Default::default()
        },
        top_k_features: Some(5),
    };
    let model = PretrainedModel::train(&records, Collective::Alltoall, &cfg).expect("train");
    let frontera = by_name("Frontera").unwrap();

    let mut g = c.benchmark_group("ml");
    g.bench_function("train_50_trees", |b| {
        b.iter(|| black_box(PretrainedModel::train(&records, Collective::Alltoall, &cfg)))
    });
    g.bench_function("predict_one", |b| {
        b.iter(|| black_box(model.predict(&frontera.spec.node, JobConfig::new(16, 56, 4096))))
    });
    g.bench_function("generate_tuning_table_frontera_grid", |b| {
        b.iter(|| black_box(model.generate_tuning_table(frontera)))
    });
    g.finish();
}

criterion_group!(benches, bench_ml);
criterion_main!(benches);
