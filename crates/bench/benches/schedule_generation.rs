//! Criterion: communication-schedule generation cost per algorithm, the
//! per-job-shape setup cost the measurement fast path amortizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pml_collectives::{AllgatherAlgo, AllreduceAlgo, AlltoallAlgo, BcastAlgo};
use std::hint::black_box;

fn bench_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("schedule_generation");
    for p in [16u32, 64, 256] {
        for algo in AllgatherAlgo::ALL {
            if !algo.supports(p) {
                continue;
            }
            g.bench_with_input(
                BenchmarkId::new(format!("allgather_{}", algo.name()), p),
                &p,
                |b, &p| b.iter(|| black_box(algo.schedule(p, 1))),
            );
        }
        for algo in AlltoallAlgo::ALL {
            if !algo.supports(p) {
                continue;
            }
            g.bench_with_input(
                BenchmarkId::new(format!("alltoall_{}", algo.name()), p),
                &p,
                |b, &p| b.iter(|| black_box(algo.schedule(p, 1))),
            );
        }
        for algo in BcastAlgo::ALL {
            g.bench_with_input(
                BenchmarkId::new(format!("bcast_{}", algo.name()), p),
                &p,
                |b, &p| b.iter(|| black_box(algo.schedule(p, 4096))),
            );
        }
        for algo in AllreduceAlgo::ALL {
            if !algo.supports(p) {
                continue;
            }
            g.bench_with_input(
                BenchmarkId::new(format!("allreduce_{}", algo.name()), p),
                &p,
                |b, &p| b.iter(|| black_box(algo.schedule(p, 4096))),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_generation);
criterion_main!(benches);
