//! Criterion: forest training at dataset-zoo scale — histogram-binned
//! split finding against the exact sort-based kernel, plus the batched
//! probability kernel the tuning-table path runs on. The binned-vs-exact
//! pair is the perf trajectory `scripts/bench.sh` records in
//! `BENCH_train_infer.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use pml_collectives::Collective;
use pml_core::features::records_to_dataset;
use pml_mlcore::{Classifier, ForestParams, Matrix, RandomForest, SplitFinder};
use std::hint::black_box;

const TREES: usize = 40;

fn fit(x: &Matrix, y: &[usize], k: usize, split_finder: SplitFinder) -> RandomForest {
    let mut f = RandomForest::new(ForestParams {
        n_estimators: TREES,
        seed: 42,
        split_finder,
        ..Default::default()
    });
    f.fit(x, y, k).expect("forest fit");
    f
}

fn bench_training(c: &mut Criterion) {
    // The full cached Allgather dataset (the "dataset zoo" scale the
    // engine trains at): ~10k rows x 14 features.
    let records = pml_bench::full_dataset(Collective::Allgather).expect("cached dataset");
    let data = records_to_dataset(&records, Collective::Allgather).expect("dataset");
    let (x, y, k) = (&data.x, &data.y, data.n_classes);

    let mut g = c.benchmark_group("forest_fit");
    g.bench_function(format!("binned_{TREES}_trees"), |b| {
        b.iter(|| black_box(fit(x, y, k, SplitFinder::default())))
    });
    g.bench_function(format!("exact_{TREES}_trees"), |b| {
        b.iter(|| black_box(fit(x, y, k, SplitFinder::Exact)))
    });
    g.finish();

    // Batched inference over the whole dataset with a caller-provided
    // output buffer — the allocation-free hot loop.
    let forest = fit(x, y, k, SplitFinder::default());
    let mut out = Matrix::zeros(x.rows(), k);
    let mut g = c.benchmark_group("forest_predict");
    g.bench_function(format!("proba_batch_into_{}_rows", x.rows()), |b| {
        b.iter(|| {
            forest.predict_proba_batch_into(black_box(x), &mut out);
            black_box(&out);
        })
    });
    g.finish();
}

criterion_group!(benches, bench_training);
criterion_main!(benches);
