//! Ablation: what the hardware features actually buy (the design choice
//! DESIGN.md calls out and the paper's central claim, §I/§IV).
//!
//! Three models are trained under the leave-clusters-out protocol and
//! scored on the held-out clusters:
//!   1. all 14 features, top-5 selection (the shipped configuration);
//!   2. all 14 features, no selection (overfitting check);
//!   3. MPI-specific features only (#nodes, PPN, msg size) — the
//!      hardware-blind baseline every static tuning table is equivalent to.

use pml_bench::{full_dataset, print_table, standard_train};
use pml_clusters::cluster_split_auto;
use pml_collectives::Collective;
use pml_core::features::MPI_FEATURES;
use pml_core::{records_to_dataset, JobConfig, PretrainedModel, TrainConfig};
use pml_mlcore::metrics::accuracy;

fn score(
    model: &PretrainedModel,
    test: &[pml_clusters::TuningRecord],
    coll: Collective,
) -> Result<f64, pml_core::PmlError> {
    let data = records_to_dataset(test, coll)?;
    Ok(accuracy(&data.y, &model.predict_dataset(&data)))
}

/// Geomean slowdown of the model's picks relative to each record's true
/// optimum — the metric that decides application runtime. Exact-argmin
/// accuracy under-credits a model that picks near-tied runners-up.
fn slowdown(model: &PretrainedModel, test: &[pml_clusters::TuningRecord]) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for r in test {
        // A record naming an unregistered cluster has no spec to predict
        // from; drop it from the geomean like the `slowdown_of` None path.
        let Some(entry) = pml_clusters::by_name(&r.cluster) else {
            continue;
        };
        let pick = model.predict(&entry.spec.node, JobConfig::new(r.nodes, r.ppn, r.msg_size));
        if let Some(s) = r.slowdown_of(pick) {
            log_sum += s.ln();
            n += 1;
        }
    }
    (log_sum / n as f64).exp()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rows = Vec::new();
    for coll in [Collective::Allgather, Collective::Alltoall] {
        let records = full_dataset(coll)?;
        let ((train, test), held) = cluster_split_auto(&records, 0.7, 7)?;
        eprintln!("{coll}: testing on held-out clusters {held:?}");

        let top5 = PretrainedModel::train(&train, coll, &standard_train())?;
        let all14 = PretrainedModel::train(
            &train,
            coll,
            &TrainConfig {
                top_k_features: None,
                ..standard_train()
            },
        )?;
        let mpi_only = PretrainedModel::train_restricted(
            &train,
            coll,
            &TrainConfig {
                top_k_features: None,
                ..standard_train()
            },
            &MPI_FEATURES,
        )?;
        rows.push(vec![
            coll.to_string(),
            format!(
                "{:.1}% / {:.2}x",
                score(&top5, &test, coll)? * 100.0,
                slowdown(&top5, &test)
            ),
            format!(
                "{:.1}% / {:.2}x",
                score(&all14, &test, coll)? * 100.0,
                slowdown(&all14, &test)
            ),
            format!(
                "{:.1}% / {:.2}x",
                score(&mpi_only, &test, coll)? * 100.0,
                slowdown(&mpi_only, &test)
            ),
        ]);
    }
    print_table(
        "Ablation — unseen clusters: accuracy / geomean slowdown vs oracle",
        &["collective", "top-5 of 14", "all 14", "MPI-only (3)"],
        &rows,
    );
    println!("\nAccuracy scores exact-argmin hits; the slowdown column is what an");
    println!("application pays. Hardware features must not cost runtime on unseen");
    println!("clusters, and should buy some — that is the paper's claim in the");
    println!("currency it is evaluated in.");

    Ok(())
}
