//! Ablation: Random Forest size and depth vs unseen-cluster accuracy and
//! inference cost — how cheap can the shipped model get before the 6%-
//! of-optimal guarantee erodes (DESIGN.md design-choice ablation).

use pml_bench::{full_dataset, print_table};
use pml_clusters::cluster_split_auto;
use pml_collectives::Collective;
use pml_core::{records_to_dataset, JobConfig, PretrainedModel, TrainConfig};
use pml_mlcore::metrics::accuracy;
use pml_mlcore::ForestParams;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let coll = Collective::Alltoall;
    let records = full_dataset(coll)?;
    let ((train, test), held) = cluster_split_auto(&records, 0.7, 7)?;
    eprintln!("held-out clusters: {held:?}");
    let test_data = records_to_dataset(&test, coll)?;
    let frontera =
        pml_clusters::by_name("Frontera").ok_or("cluster Frontera missing from the registry")?;

    let mut rows = Vec::new();
    for (trees, depth) in [
        (5usize, None),
        (20, None),
        (100, None),
        (300, None),
        (100, Some(8)),
    ] {
        let cfg = TrainConfig {
            forest: ForestParams {
                n_estimators: trees,
                max_depth: depth,
                seed: 42,
                ..Default::default()
            },
            top_k_features: Some(5),
        };
        let t0 = Instant::now();
        let model = PretrainedModel::train(&train, coll, &cfg)?;
        let train_s = t0.elapsed().as_secs_f64();
        let acc = accuracy(&test_data.y, &model.predict_dataset(&test_data));
        // Amortized single-inference latency (the constant-time claim).
        let t1 = Instant::now();
        let reps = 2000;
        for i in 0..reps {
            std::hint::black_box(
                model.predict(&frontera.spec.node, JobConfig::new(16, 56, 1 << (i % 21))),
            );
        }
        let infer_us = t1.elapsed().as_secs_f64() / reps as f64 * 1e6;
        rows.push(vec![
            format!("{trees}"),
            depth.map_or("unlimited".into(), |d| d.to_string()),
            format!("{:.1}%", acc * 100.0),
            format!("{train_s:.2}s"),
            format!("{infer_us:.1}us"),
        ]);
    }
    print_table(
        "Ablation — forest size vs unseen-cluster accuracy (MPI_Alltoall)",
        &[
            "trees",
            "max depth",
            "cluster-test accuracy",
            "train time",
            "per-inference",
        ],
        &rows,
    );

    Ok(())
}
