//! Extension experiment (the paper's future-work direction): the same
//! pre-training pipeline applied to MPI_Bcast and MPI_Allreduce.
//!
//! A small multi-cluster dataset is generated for each extension
//! collective, a model is trained with two clusters held out, and its
//! unseen-cluster accuracy and runtime-vs-default speedup are reported —
//! demonstrating that nothing in the framework is specific to the original
//! two collectives.

use pml_bench::{cluster, geomean_speedup, msg_sweep, pct, print_table, standard_train};
use pml_clusters::{by_name, cluster_split, generate_cluster, DatagenConfig};
use pml_collectives::Collective;
use pml_core::{
    records_to_dataset, AlgorithmSelector, MlSelector, MvapichDefault, PretrainedModel,
};
use pml_mlcore::metrics::accuracy;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let train_names = [
        "RI2",
        "RI",
        "Haswell",
        "Bebop",
        "Rome",
        "Sierra",
        "Frontera RTX",
    ];
    let test_names = ["Frontera", "MRI"];
    let mut rows = Vec::new();
    for coll in [Collective::Bcast, Collective::Allreduce] {
        let mut records = Vec::new();
        for name in train_names.iter().chain(&test_names) {
            let mut e = by_name(name).unwrap().clone();
            e.node_grid.truncate(4);
            e.ppn_grid.truncate(6);
            records.extend(generate_cluster(&e, coll, &DatagenConfig::default())?);
        }
        let (train, test) = cluster_split(&records, &test_names);
        let model = PretrainedModel::train(&train, coll, &standard_train())?;
        let test_data = records_to_dataset(&test, coll)?;
        let acc = accuracy(&test_data.y, &model.predict_dataset(&test_data));

        // Runtime effect on Frontera at 8x56 against the static default.
        let frontera = cluster("Frontera");
        let ml = MlSelector::new(frontera.spec.node.clone(), None, None)?.with_model(model);
        let default = MvapichDefault;
        let sels: [&dyn AlgorithmSelector; 2] = [&ml, &default];
        let cmp = pml_bench::compare_selectors(frontera, coll, 8, 56, &msg_sweep(20), &sels);
        rows.push(vec![
            coll.to_string(),
            format!("{}", train.len()),
            format!("{:.1}%", acc * 100.0),
            pct(geomean_speedup(&cmp, 1)),
        ]);
    }
    print_table(
        "Extension — pre-training applied to MPI_Bcast / MPI_Allreduce",
        &[
            "collective",
            "train records",
            "unseen-cluster accuracy",
            "speedup vs default (Frontera 8x56)",
        ],
        &rows,
    );

    Ok(())
}
