//! Fig. 1: core-hours of offline micro-benchmarking vs ACCLAiM on TACC
//! Frontera (Intel Xeon Platinum 8280, InfiniBand EDR), MPI_Allgather.
//!
//! Micro-benchmark core-hours are computed from our simulated sweep at node
//! counts the simulator can execute (1–16 nodes at PPN 56); larger node
//! counts are extrapolated from the fitted power law of the measured range
//! (marked with `~`), matching the paper's presentation up to 8192 nodes.
//! ACCLAiM's line is the published 5.62-minute-at-128-nodes anchor billed
//! on all cores (a lower bound, as in §II).

use pml_bench::{cluster, print_table};
use pml_collectives::Collective;
use pml_core::overhead;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let frontera = cluster("Frontera");
    let ppn = 56;
    let measured_nodes = [1u32, 2, 4, 8, 16];
    let mut measured: Vec<(u32, f64)> = Vec::new();
    for &n in &measured_nodes {
        let ch =
            overhead::microbench_core_hours_cumulative(frontera, Collective::Allgather, n, ppn);
        measured.push((n, ch));
    }
    // Power-law fit log(ch) = a + b log(n) over the measured tail.
    let tail = &measured[1..];
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
    for &(n, ch) in tail {
        let x = (n as f64).ln();
        let y = ch.ln();
        sx += x;
        sy += y;
        sxx += x * x;
        sxy += x * y;
    }
    let k = tail.len() as f64;
    let b = (k * sxy - sx * sy) / (k * sxx - sx * sx);
    let a = (sy - b * sx) / k;
    let extrapolate = |n: u32| (a + b * (n as f64).ln()).exp();

    let all_nodes = [
        1u32, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192,
    ];
    let rows: Vec<Vec<String>> = all_nodes
        .iter()
        .map(|&n| {
            let (mb, mark) = match measured.iter().find(|(mn, _)| *mn == n) {
                Some(&(_, ch)) => (ch, ""),
                None => (extrapolate(n), "~"),
            };
            vec![
                n.to_string(),
                format!("{mark}{mb:.3e}"),
                format!("{:.3e}", overhead::acclaim_core_hours(n, ppn)),
            ]
        })
        .collect();
    print_table(
        "Fig. 1 — Core-hours on Frontera (PPN=56, MPI_Allgather)",
        &[
            "nodes",
            "offline-microbench (core-h)",
            "ACCLAiM lower bound (core-h)",
        ],
        &rows,
    );
    println!("\nmicrobench power-law exponent b = {b:.2} (core-hours ~ nodes^b)");
    println!("('~' = extrapolated beyond the simulatable range)");

    Ok(())
}
