//! Fig. 2: the same MPI_Alltoall algorithms ranked on two clusters
//! (Frontera: Intel Xeon 8280 + EDR; MRI: AMD EPYC 7713 + HDR) at
//! 2 nodes × 16 PPN — the motivating observation that empirical knowledge
//! does not transfer across hardware.

use pml_bench::{cluster, msg_sweep, print_table, us};
use pml_collectives::{measure_sweep, AlltoallAlgo, Collective};
use pml_simnet::JobLayout;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sizes = msg_sweep(14); // 1 B .. 16 KiB, as in the figure
    for name in ["Frontera", "MRI"] {
        let entry = cluster(name);
        let sweep = measure_sweep(
            Collective::Alltoall,
            &entry.spec.node,
            JobLayout::new(2, 16),
            &sizes,
        );
        let headers: Vec<&str> = std::iter::once("msg(B)")
            .chain(AlltoallAlgo::ALL.iter().map(|a| a.name()))
            .collect();
        let rows: Vec<Vec<String>> = sweep
            .iter()
            .zip(&sizes)
            .map(|(col, &m)| {
                let mut row = vec![m.to_string()];
                for algo in AlltoallAlgo::ALL {
                    let t = col
                        .iter()
                        .find(|(a, _)| a.name() == algo.name())
                        .map(|(_, t)| *t)
                        .unwrap_or(f64::NAN);
                    row.push(us(t));
                }
                row
            })
            .collect();
        print_table(
            &format!("Fig. 2 — MPI_Alltoall runtimes (us) on {name}, 2 nodes x 16 PPN"),
            &headers,
            &rows,
        );
        // Winner per size, to make the cross-cluster flip visible.
        let winners: Vec<String> = sweep
            .iter()
            .zip(&sizes)
            .map(|(col, &m)| {
                let best = col.iter().min_by(|a, b| a.1.total_cmp(&b.1)).unwrap();
                format!("{}B:{}", m, best.0.name())
            })
            .collect();
        println!("winners: {}", winners.join(" "));
    }

    Ok(())
}
