//! Figs. 5 & 6: Gini-impurity feature-importance scores of the 14 MPI +
//! hardware features, per collective (Random Forest, full dataset).

use pml_bench::{full_dataset, print_table, standard_train};
use pml_collectives::Collective;
use pml_core::{PretrainedModel, FEATURE_NAMES};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for (fig, coll) in [(5, Collective::Allgather), (6, Collective::Alltoall)] {
        let records = full_dataset(coll)?;
        let model = PretrainedModel::train(&records, coll, &standard_train())?;
        let mut scored: Vec<(usize, f64)> = model
            .full_importances()
            .iter()
            .copied()
            .enumerate()
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1));
        let rows: Vec<Vec<String>> = scored
            .iter()
            .map(|&(i, s)| {
                let selected = if model.selected_features().contains(&i) {
                    "top-5 *"
                } else {
                    ""
                };
                vec![
                    FEATURE_NAMES[i].to_string(),
                    format!("{s:.4}"),
                    selected.to_string(),
                ]
            })
            .collect();
        print_table(
            &format!(
                "Fig. {fig} — feature importance, {coll} ({} records)",
                records.len()
            ),
            &["feature", "gini importance", "selected"],
            &rows,
        );
    }

    Ok(())
}
