//! Fig. 7: Fig. 1's core-hour comparison extended with the proposed
//! framework — whose overhead is a single-process model inference,
//! constant in node count.

use pml_bench::{cached_model_excluding, cluster, full_dataset, print_table};
use pml_collectives::Collective;
use pml_core::overhead;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let frontera = cluster("Frontera");
    let ppn = 56;
    // The shipped model must not have seen Frontera (it is the "new"
    // cluster whose tables are being generated).
    let records = full_dataset(Collective::Allgather)?;
    let model = cached_model_excluding(Collective::Allgather, &["Frontera"], &records)?;
    let inference_s = overhead::measure_inference_seconds(&model, frontera)?;
    println!(
        "tuning-table inference time on Frontera grid: {:.4} s (one process)",
        inference_s
    );

    let rows: Vec<Vec<String>> = [1u32, 2, 4, 8, 16, 32, 128]
        .iter()
        .map(|&n| {
            let mb = if n <= 16 {
                format!(
                    "{:.3e}",
                    overhead::microbench_core_hours_cumulative(
                        frontera,
                        Collective::Allgather,
                        n,
                        ppn
                    )
                )
            } else {
                "(see fig01 extrapolation)".to_string()
            };
            vec![
                n.to_string(),
                mb,
                format!("{:.3e}", overhead::acclaim_core_hours(n, ppn)),
                format!("{:.3e}", overhead::proposed_core_hours(inference_s)),
            ]
        })
        .collect();
    print_table(
        "Fig. 7 — core-hours incl. the proposed framework (Frontera, PPN=56)",
        &[
            "nodes",
            "offline-microbench",
            "ACCLAiM (lower bound)",
            "proposed",
        ],
        &rows,
    );
    let mb32 = overhead::microbench_core_hours_cumulative(frontera, Collective::Allgather, 16, ppn);
    let prop = overhead::proposed_core_hours(inference_s);
    println!("\nspeedup vs microbench@16 nodes: {:.1e}x", mb32 / prop);
    println!(
        "speedup vs ACCLAiM@128 nodes:   {:.1e}x",
        overhead::acclaim_core_hours(128, ppn) / prop
    );
    println!("(paper: ~1e6x vs microbench@32, ~1e4x vs ACCLAiM@128)");

    Ok(())
}
