//! Fig. 8: normalized runtime of the proposed selector vs random algorithm
//! selection on Frontera, 16 nodes × 56 PPN, both collectives.

use pml_bench::*;
use pml_collectives::Collective;
use pml_core::{AlgorithmSelector, MlSelector, RandomSelector};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let frontera = cluster("Frontera");
    let ag = full_dataset(Collective::Allgather)?;
    let aa = full_dataset(Collective::Alltoall)?;
    let ml = MlSelector::new(
        frontera.spec.node.clone(),
        Some(cached_model_excluding(
            Collective::Allgather,
            &["Frontera", "MRI"],
            &ag,
        )?),
        Some(cached_model_excluding(
            Collective::Alltoall,
            &["Frontera", "MRI"],
            &aa,
        )?),
    )?;
    let random = RandomSelector::new(2024);
    let selectors: [&dyn AlgorithmSelector; 2] = [&ml, &random];
    for coll in [Collective::Allgather, Collective::Alltoall] {
        let sizes = msg_sweep(20);
        let rows = compare_selectors(frontera, coll, 16, 56, &sizes, &selectors);
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                let (ref _n0, ref a0, t0) = r.outcomes[0];
                let (ref _n1, ref a1, t1) = r.outcomes[1];
                vec![
                    r.msg_size.to_string(),
                    a0.clone(),
                    us(t0),
                    a1.clone(),
                    us(t1),
                    format!("{:.2}x", t1 / t0),
                ]
            })
            .collect();
        print_table(
            &format!("Fig. 8 — {coll}, Frontera 16x56: proposed vs random"),
            &[
                "msg(B)",
                "proposed algo",
                "us",
                "random algo",
                "us",
                "random/proposed",
            ],
            &table,
        );
        println!(
            "geomean slowdown of random: {:.2}x",
            geomean_speedup(&rows, 1)
        );
        let worst = rows
            .iter()
            .map(|r| (r.msg_size, r.outcomes[1].2 / r.outcomes[0].2))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();
        println!(
            "max slowdown of random: {:.2}x at {} B (paper: up to 15.5x/8.3x)",
            worst.1, worst.0
        );
    }

    Ok(())
}
