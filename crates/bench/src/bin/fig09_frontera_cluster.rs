//! Fig. 9: proposed vs MVAPICH2-2.3.7 default on TACC Frontera
//! (cluster-based: Frontera and MRI excluded from training), 16 nodes at
//! PPN 56 (full) and 28 (half subscription), both collectives.

use pml_bench::*;
use pml_collectives::Collective;
use pml_core::{AlgorithmSelector, MlSelector, MvapichDefault};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let frontera = cluster("Frontera");
    let ag = full_dataset(Collective::Allgather)?;
    let aa = full_dataset(Collective::Alltoall)?;
    let ml = MlSelector::new(
        frontera.spec.node.clone(),
        Some(cached_model_excluding(
            Collective::Allgather,
            &["Frontera", "MRI"],
            &ag,
        )?),
        Some(cached_model_excluding(
            Collective::Alltoall,
            &["Frontera", "MRI"],
            &aa,
        )?),
    )?;
    let default = MvapichDefault;
    let selectors: [&dyn AlgorithmSelector; 2] = [&ml, &default];
    for ppn in [56u32, 28] {
        for coll in [Collective::Allgather, Collective::Alltoall] {
            let sizes = msg_sweep(20);
            let rows = compare_selectors(frontera, coll, 16, ppn, &sizes, &selectors);
            let table: Vec<Vec<String>> = rows
                .iter()
                .map(|r| {
                    let t0 = r.outcomes[0].2;
                    let t1 = r.outcomes[1].2;
                    vec![
                        r.msg_size.to_string(),
                        r.outcomes[0].1.clone(),
                        us(t0),
                        r.outcomes[1].1.clone(),
                        us(t1),
                        pct(t1 / t0),
                    ]
                })
                .collect();
            print_table(
                &format!("Fig. 9 — {coll}, Frontera 16x{ppn}: proposed vs MVAPICH default"),
                &["msg(B)", "proposed", "us", "mvapich", "us", "speedup"],
                &table,
            );
            println!(
                "geomean speedup over default: {}",
                pct(geomean_speedup(&rows, 1))
            );
        }
    }

    Ok(())
}
