//! Fig. 10: proposed vs MVAPICH2-2.3.7 default on MRI (cluster-based:
//! Frontera and MRI excluded from training), 8 nodes at PPN 128 (full) and
//! 64 (half subscription), both collectives.

use pml_bench::*;
use pml_collectives::Collective;
use pml_core::{AlgorithmSelector, MlSelector, MvapichDefault};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mri = cluster("MRI");
    let ag = full_dataset(Collective::Allgather)?;
    let aa = full_dataset(Collective::Alltoall)?;
    let ml = MlSelector::new(
        mri.spec.node.clone(),
        Some(cached_model_excluding(
            Collective::Allgather,
            &["Frontera", "MRI"],
            &ag,
        )?),
        Some(cached_model_excluding(
            Collective::Alltoall,
            &["Frontera", "MRI"],
            &aa,
        )?),
    )?;
    let default = MvapichDefault;
    let selectors: [&dyn AlgorithmSelector; 2] = [&ml, &default];
    for ppn in [128u32, 64] {
        for coll in [Collective::Allgather, Collective::Alltoall] {
            let sizes = msg_sweep(15); // MRI grid tops out at 32 KiB
            let rows = compare_selectors(mri, coll, 8, ppn, &sizes, &selectors);
            let table: Vec<Vec<String>> = rows
                .iter()
                .map(|r| {
                    let t0 = r.outcomes[0].2;
                    let t1 = r.outcomes[1].2;
                    vec![
                        r.msg_size.to_string(),
                        r.outcomes[0].1.clone(),
                        us(t0),
                        r.outcomes[1].1.clone(),
                        us(t1),
                        pct(t1 / t0),
                    ]
                })
                .collect();
            print_table(
                &format!("Fig. 10 — {coll}, MRI 8x{ppn}: proposed vs MVAPICH default"),
                &["msg(B)", "proposed", "us", "mvapich", "us", "speedup"],
                &table,
            );
            println!(
                "geomean speedup over default: {}",
                pct(geomean_speedup(&rows, 1))
            );
        }
    }

    Ok(())
}
