//! Fig. 11: proposed vs Open MPI 5.1.0a default decision rules on TACC
//! Frontera at 16 nodes × 56 PPN (full subscription), both collectives.

use pml_bench::*;
use pml_collectives::Collective;
use pml_core::{AlgorithmSelector, MlSelector, OpenMpiDefault};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let frontera = cluster("Frontera");
    let ag = full_dataset(Collective::Allgather)?;
    let aa = full_dataset(Collective::Alltoall)?;
    let ml = MlSelector::new(
        frontera.spec.node.clone(),
        Some(cached_model_excluding(
            Collective::Allgather,
            &["Frontera", "MRI"],
            &ag,
        )?),
        Some(cached_model_excluding(
            Collective::Alltoall,
            &["Frontera", "MRI"],
            &aa,
        )?),
    )?;
    let ompi = OpenMpiDefault;
    let selectors: [&dyn AlgorithmSelector; 2] = [&ml, &ompi];
    for coll in [Collective::Allgather, Collective::Alltoall] {
        let sizes = msg_sweep(20);
        let rows = compare_selectors(frontera, coll, 16, 56, &sizes, &selectors);
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                let t0 = r.outcomes[0].2;
                let t1 = r.outcomes[1].2;
                vec![
                    r.msg_size.to_string(),
                    r.outcomes[0].1.clone(),
                    us(t0),
                    r.outcomes[1].1.clone(),
                    us(t1),
                    pct(t1 / t0),
                ]
            })
            .collect();
        print_table(
            &format!("Fig. 11 — {coll}, Frontera 16x56: proposed vs Open MPI default"),
            &["msg(B)", "proposed", "us", "openmpi", "us", "speedup"],
            &table,
        );
        println!(
            "geomean speedup over Open MPI: {}",
            pct(geomean_speedup(&rows, 1))
        );
        let large: Vec<String> = rows
            .iter()
            .filter(|r| r.msg_size >= 4096)
            .map(|r| format!("{}B:{}", r.msg_size, pct(r.outcomes[1].2 / r.outcomes[0].2)))
            .collect();
        println!(
            ">=4 KiB speedups: {} (paper: 36-58% wins beyond 4k)",
            large.join(" ")
        );
    }

    Ok(())
}
