//! Fig. 12: node-based scaling. The model is trained only on records with
//! small node counts and evaluated at a larger one it never saw:
//! MRI (train #nodes ≤ 4, test 8 nodes × PPN 56-equivalent = 64) and
//! Frontera (train #nodes ≤ 8, test 16 nodes × PPN 56), vs the MVAPICH
//! default.

use pml_bench::*;
use pml_collectives::Collective;
use pml_core::{AlgorithmSelector, MlSelector, MvapichDefault, PretrainedModel};

fn node_limited_model(
    coll: Collective,
    max_nodes: u32,
) -> Result<PretrainedModel, pml_core::PmlError> {
    let records = full_dataset(coll)?;
    let (train, _) = pml_clusters::node_split(&records, max_nodes);
    PretrainedModel::train(&train, coll, &standard_train())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // (cluster, max train nodes, test nodes, test ppn)
    let cases = [("MRI", 4u32, 8u32, 128u32), ("Frontera", 8, 16, 56)];
    for (name, max_train, test_nodes, ppn) in cases {
        let entry = cluster(name);
        let ml = MlSelector::new(
            entry.spec.node.clone(),
            Some(node_limited_model(Collective::Allgather, max_train)?),
            Some(node_limited_model(Collective::Alltoall, max_train)?),
        )?;
        let default = MvapichDefault;
        let selectors: [&dyn AlgorithmSelector; 2] = [&ml, &default];
        for coll in [Collective::Allgather, Collective::Alltoall] {
            let sizes = msg_sweep(if name == "MRI" { 15 } else { 20 });
            let rows = compare_selectors(entry, coll, test_nodes, ppn, &sizes, &selectors);
            let table: Vec<Vec<String>> = rows
                .iter()
                .map(|r| {
                    let t0 = r.outcomes[0].2;
                    let t1 = r.outcomes[1].2;
                    vec![
                        r.msg_size.to_string(),
                        r.outcomes[0].1.clone(),
                        us(t0),
                        r.outcomes[1].1.clone(),
                        us(t1),
                        pct(t1 / t0),
                    ]
                })
                .collect();
            print_table(
                &format!(
                    "Fig. 12 — {coll}, {name} {test_nodes}x{ppn} (trained on nodes<={max_train}) vs MVAPICH default"
                ),
                &["msg(B)", "proposed", "us", "mvapich", "us", "speedup"],
                &table,
            );
            println!(
                "geomean speedup over default: {}",
                pct(geomean_speedup(&rows, 1))
            );
        }
    }

    Ok(())
}
