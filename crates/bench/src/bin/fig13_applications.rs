//! Fig. 13: application-level runtimes — the Gromacs/BenchMEM proxy and
//! MiniFE under the proposed selector, the MVAPICH default, and random
//! selection, strong-scaling on Frontera (PPN 56).

use pml_apps::{run_app, Gromacs, MiniFe, Workload};
use pml_bench::*;
use pml_collectives::Collective;
use pml_core::{AlgorithmSelector, MlSelector, MvapichDefault, RandomSelector};
use pml_simnet::JobLayout;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let frontera = cluster("Frontera");
    let ag = full_dataset(Collective::Allgather)?;
    let aa = full_dataset(Collective::Alltoall)?;
    let ml = MlSelector::new(
        frontera.spec.node.clone(),
        Some(cached_model_excluding(
            Collective::Allgather,
            &["Frontera", "MRI"],
            &ag,
        )?),
        Some(cached_model_excluding(
            Collective::Alltoall,
            &["Frontera", "MRI"],
            &aa,
        )?),
    )?;
    let default = MvapichDefault;
    let random = RandomSelector::new(99);
    let selectors: [(&str, &dyn AlgorithmSelector); 3] = [
        ("proposed", &ml),
        ("mvapich-default", &default),
        ("random", &random),
    ];

    let gromacs = Gromacs::default();
    let minife = MiniFe::default();
    let apps: [&dyn Workload; 2] = [&gromacs, &minife];
    for app in apps {
        let mut rows = Vec::new();
        let mut sums = vec![0.0f64; selectors.len()];
        for nodes in [1u32, 2, 4, 8, 16] {
            let layout = JobLayout::new(nodes, 56);
            let mut row = vec![format!("{}", nodes * 56)];
            for (i, (_, s)) in selectors.iter().enumerate() {
                let rep = run_app(app, &frontera.spec.node, layout, *s);
                sums[i] += rep.total_s;
                row.push(format!("{:.2}ms", rep.total_s * 1e3));
            }
            rows.push(row);
        }
        print_table(
            &format!(
                "Fig. 13 — {} total runtime on Frontera (strong scaling, PPN=56)",
                app.name()
            ),
            &["#processes", "proposed", "mvapich-default", "random"],
            &rows,
        );
        println!(
            "aggregate speedup vs default: {} | vs random: {}",
            pct(sums[1] / sums[0]),
            pct(sums[2] / sums[0]),
        );
        println!("(paper: Gromacs +2.90% vs default, +19.39% vs random; MiniFE +4.43% / +20.66%)");
    }

    Ok(())
}
