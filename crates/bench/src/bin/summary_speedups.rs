//! §VII-C summary numbers: across the full evaluation grids of Frontera
//! and MRI, the proposed selector's average speedup over the MVAPICH
//! default and over random selection, and its slowdown vs the exhaustive
//! micro-benchmark oracle (paper: oracle slowdown bounded by ~6%).

use pml_bench::*;
use pml_collectives::Collective;
use pml_core::{AlgorithmSelector, MlSelector, MvapichDefault, OracleSelector, RandomSelector};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ag = full_dataset(Collective::Allgather)?;
    let aa = full_dataset(Collective::Alltoall)?;
    let mut rows = Vec::new();
    for (name, shapes) in [
        ("Frontera", vec![(16u32, 56u32), (16, 28), (8, 56), (4, 56)]),
        ("MRI", vec![(8, 128), (8, 64), (4, 128), (2, 64)]),
    ] {
        let entry = cluster(name);
        let ml = MlSelector::new(
            entry.spec.node.clone(),
            Some(cached_model_excluding(
                Collective::Allgather,
                &["Frontera", "MRI"],
                &ag,
            )?),
            Some(cached_model_excluding(
                Collective::Alltoall,
                &["Frontera", "MRI"],
                &aa,
            )?),
        )?;
        let default = MvapichDefault;
        let random = RandomSelector::new(7);
        let mut all: Vec<pml_clusters::TuningRecord> = Vec::new();
        all.extend(ag.iter().filter(|r| r.cluster == name).cloned());
        all.extend(aa.iter().filter(|r| r.cluster == name).cloned());
        let oracle = OracleSelector::from_records(name, &all);
        let selectors: [&dyn AlgorithmSelector; 4] = [&ml, &default, &random, &oracle];
        for coll in [Collective::Allgather, Collective::Alltoall] {
            let sizes = msg_sweep(if name == "MRI" { 15 } else { 20 });
            let mut comparison = Vec::new();
            for &(n, p) in &shapes {
                comparison.extend(compare_selectors(entry, coll, n, p, &sizes, &selectors));
            }
            let vs_default = geomean_speedup(&comparison, 1);
            let vs_random = geomean_speedup(&comparison, 2);
            let vs_oracle = geomean_speedup(&comparison, 3);
            rows.push(vec![
                name.to_string(),
                coll.to_string(),
                pct(vs_default),
                format!("{vs_random:.2}x"),
                pct(vs_oracle),
            ]);
        }
    }
    print_table(
        "§VII-C — average speedup of the proposed selector",
        &[
            "cluster",
            "collective",
            "vs MVAPICH default",
            "vs random",
            "vs oracle (neg = slowdown)",
        ],
        &rows,
    );
    println!("\n(paper: MRI avg +6.3% allgather / +2.5% alltoall over default; 2.96x/2.76x over");
    println!(" random; slowdown vs exhaustive micro-benchmark bounded by ~6%)");

    Ok(())
}
