//! Table I: the dataset overview — 18 clusters, their processors and
//! interconnects, and the benchmark grid sizes, with our generated record
//! counts per collective.

use pml_bench::{full_dataset, print_table};
use pml_clusters::zoo;
use pml_collectives::Collective;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ag = full_dataset(Collective::Allgather)?;
    let aa = full_dataset(Collective::Alltoall)?;
    let count = |recs: &[pml_clusters::TuningRecord], name: &str| {
        recs.iter().filter(|r| r.cluster == name).count()
    };
    let rows: Vec<Vec<String>> = zoo()
        .iter()
        .map(|c| {
            vec![
                c.name().to_string(),
                c.spec.node.cpu.model.clone(),
                c.spec.node.nic.generation.name().to_string(),
                c.node_grid.len().to_string(),
                c.ppn_grid.len().to_string(),
                c.msg_grid.len().to_string(),
                count(&ag, c.name()).to_string(),
                count(&aa, c.name()).to_string(),
            ]
        })
        .collect();
    print_table(
        "Table I — dataset overview",
        &[
            "cluster",
            "processor",
            "interconnect",
            "#nodes",
            "#ppn",
            "#msg",
            "#allgather",
            "#alltoall",
        ],
        &rows,
    );
    println!(
        "\ntotal records: allgather {} + alltoall {} = {}",
        ag.len(),
        aa.len(),
        ag.len() + aa.len()
    );
    println!("(paper: >9000 records across both collectives; our counts are the full grids)");

    Ok(())
}
