//! Table II: test accuracy of Random Forest, Gradient Boosting, KNN, and
//! SVM after hyperparameter tuning (random 70/30 split, AUC-scored
//! cross-validation on the training side, as in §V-C).
//!
//! Expect a few minutes of single-core runtime: every candidate is
//! cross-validated on ~7k records.

use pml_bench::{full_dataset, print_table};
use pml_collectives::Collective;
use pml_core::records_to_dataset;
use pml_mlcore::model_selection::{grid_search, train_test_split, Scoring};
use pml_mlcore::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rows = Vec::new();
    for coll in [Collective::Allgather, Collective::Alltoall] {
        let records = full_dataset(coll)?;
        let data = records_to_dataset(&records, coll)?;
        let (train, test) = train_test_split(&data, 0.3, 42)?;
        eprintln!("{coll}: {} train / {} test", train.len(), test.len());

        // Random Forest.
        let rf_grid = [
            ForestParams {
                n_estimators: 60,
                ..Default::default()
            },
            ForestParams {
                n_estimators: 100,
                ..Default::default()
            },
            ForestParams {
                n_estimators: 100,
                max_depth: Some(14),
                ..Default::default()
            },
        ];
        let (best_rf, _) = grid_search(&train, &rf_grid, 3, 0, Scoring::MacroAuc, |p| {
            RandomForest::new(*p)
        })?;
        let mut rf = RandomForest::new(best_rf);
        rf.fit(&train.x, &train.y, train.n_classes)?;
        let rf_acc = metrics::accuracy(&test.y, &rf.predict(&test.x));

        // Gradient Boosting.
        let gb_grid = [
            GBoostParams {
                n_estimators: 40,
                max_depth: 3,
                ..Default::default()
            },
            GBoostParams {
                n_estimators: 60,
                max_depth: 4,
                ..Default::default()
            },
        ];
        let (best_gb, _) = grid_search(&train, &gb_grid, 3, 0, Scoring::MacroAuc, |p| {
            GradientBoosting::new(*p)
        })?;
        let mut gb = GradientBoosting::new(best_gb);
        gb.fit(&train.x, &train.y, train.n_classes)?;
        let gb_acc = metrics::accuracy(&test.y, &gb.predict(&test.x));

        // KNN.
        let knn_grid = [KnnParams { k: 3 }, KnnParams { k: 7 }, KnnParams { k: 15 }];
        let (best_knn, _) =
            grid_search(&train, &knn_grid, 3, 0, Scoring::MacroAuc, |p| Knn::new(*p))?;
        let mut knn = Knn::new(best_knn);
        knn.fit(&train.x, &train.y, train.n_classes)?;
        let knn_acc = metrics::accuracy(&test.y, &knn.predict(&test.x));

        // Linear SVM.
        let svm_grid = [
            SvmParams {
                lambda: 1e-3,
                epochs: 25,
                ..Default::default()
            },
            SvmParams {
                lambda: 1e-4,
                epochs: 25,
                ..Default::default()
            },
        ];
        let (best_svm, _) = grid_search(&train, &svm_grid, 3, 0, Scoring::MacroAuc, |p| {
            LinearSvm::new(*p)
        })?;
        let mut svm = LinearSvm::new(best_svm);
        svm.fit(&train.x, &train.y, train.n_classes)?;
        let svm_acc = metrics::accuracy(&test.y, &svm.predict(&test.x));

        rows.push(vec![
            coll.to_string(),
            format!("{:.1}%", rf_acc * 100.0),
            format!("{:.1}%", gb_acc * 100.0),
            format!("{:.1}%", knn_acc * 100.0),
            format!("{:.1}%", svm_acc * 100.0),
        ]);
    }
    print_table(
        "Table II — test accuracy after hyperparameter tuning",
        &["collective", "RF", "GradientBoost", "KNN", "SVM"],
        &rows,
    );
    println!("\n(paper: RF 88.8/89.9, GB 80.5/78.4, KNN 64.1/61.9, SVM 67.3/60.4 —");
    println!(" the reproduction target is the ordering RF > GB > KNN/SVM)");

    Ok(())
}
