//! Table III: Random Forest classification accuracy under the three
//! train/test split methodologies (random 70/30, leave-clusters-out,
//! train-small-test-large node counts).

use pml_bench::{full_dataset, print_table, standard_train};
use pml_clusters::{cluster_split_auto, node_split, random_split};
use pml_collectives::Collective;
use pml_core::{records_to_dataset, PretrainedModel};
use pml_mlcore::metrics::accuracy;

fn eval(
    train: &[pml_clusters::TuningRecord],
    test: &[pml_clusters::TuningRecord],
    coll: Collective,
) -> Result<f64, pml_core::PmlError> {
    let model = PretrainedModel::train(train, coll, &standard_train())?;
    let test_data = records_to_dataset(test, coll)?;
    let pred = model.predict_dataset(&test_data);
    Ok(accuracy(&test_data.y, &pred))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rows = Vec::new();
    for coll in [Collective::Allgather, Collective::Alltoall] {
        let records = full_dataset(coll)?;

        let (tr, te) = random_split(&records, 0.7, 42)?;
        let random_acc = eval(&tr, &te, coll)?;

        let ((tr, te), held) = cluster_split_auto(&records, 0.7, 7)?;
        eprintln!(
            "{coll}: held-out clusters: {held:?} ({} test records)",
            te.len()
        );
        let cluster_acc = eval(&tr, &te, coll)?;

        // Train on small node counts, test on the largest (nodes > 8).
        let (tr, te) = node_split(&records, 8);
        eprintln!("{coll}: node split: {} train / {} test", tr.len(), te.len());
        let node_acc = eval(&tr, &te, coll)?;

        rows.push(vec![
            coll.to_string(),
            format!("{:.1}%", random_acc * 100.0),
            format!("{:.1}%", cluster_acc * 100.0),
            format!("{:.1}%", node_acc * 100.0),
        ]);
    }
    print_table(
        "Table III — classification accuracy by split methodology",
        &["collective", "random", "cluster", "node"],
        &rows,
    );
    println!("\n(paper: Allgather 88.8/84.4/79.8, Alltoall 89.9/82.7/86.7 —");
    println!(" the target shape: random >= cluster, node; all well above chance)");

    Ok(())
}
