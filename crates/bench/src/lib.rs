//! # pml-bench
//!
//! The experiment harness: one binary per table/figure of the paper (see
//! DESIGN.md's per-experiment index) plus criterion micro-benchmarks.
//! This library holds the shared plumbing: dataset/model caching, the
//! selector-vs-selector runtime comparison loop, and plain-text table
//! printing that mirrors the paper's rows.

#![deny(rust_2018_idioms, missing_debug_implementations)]
#![deny(clippy::dbg_macro, clippy::todo)]
use pml_clusters::{ClusterEntry, DatagenConfig, TuningRecord};
use pml_collectives::Collective;
use pml_core::{AlgorithmSelector, JobConfig, PmlError, PretrainedModel, TrainConfig};
use pml_mlcore::ForestParams;
use std::path::{Path, PathBuf};

/// Repo-level `data/` directory used for dataset and model caches.
pub fn data_dir() -> PathBuf {
    // crates/bench → repo root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("data")
}

/// Dataset-generation settings shared by every experiment (the "one
/// benchmarking campaign" the paper reuses throughout).
pub fn standard_datagen() -> DatagenConfig {
    DatagenConfig::default()
}

/// The full Table I dataset for one collective, from cache when possible.
/// Cache damage is non-fatal: the dataset regenerates and the reason lands
/// on stderr.
pub fn full_dataset(collective: Collective) -> Result<Vec<TuningRecord>, PmlError> {
    let file = match collective {
        Collective::Allgather => "dataset_allgather.json",
        Collective::Alltoall => "dataset_alltoall.json",
        other => {
            return Err(PmlError::InvalidInput(format!(
                "the Table I dataset covers the paper collectives only, not {other}"
            )))
        }
    };
    let load = pml_clusters::load_or_generate(
        &data_dir().join(file),
        pml_clusters::zoo(),
        collective,
        &standard_datagen(),
    )
    .map_err(PmlError::from)?;
    for ev in &load.events {
        eprintln!("warning: {}", ev.message);
    }
    Ok(load.records)
}

/// The paper's standard forest settings (100 trees, √d features).
pub fn standard_train() -> TrainConfig {
    TrainConfig {
        forest: ForestParams {
            n_estimators: 100,
            seed: 42,
            ..Default::default()
        },
        top_k_features: Some(5),
    }
}

/// Train a model on all records except the named clusters' (the paper's
/// leave-cluster-out protocol), caching the trained artifact on disk.
pub fn cached_model_excluding(
    collective: Collective,
    exclude: &[&str],
    records: &[TuningRecord],
) -> Result<PretrainedModel, PmlError> {
    let tag: String = if exclude.is_empty() {
        "all".into()
    } else {
        exclude.join("_").replace(' ', "-").to_lowercase()
    };
    let train: Vec<TuningRecord> = records
        .iter()
        .filter(|r| !exclude.contains(&r.cluster.as_str()))
        .cloned()
        .collect();
    // Key the cache by the training data's content, not just its size, so
    // a regenerated dataset can never resurrect a stale model.
    let mut h = 0xcbf29ce484222325u64;
    for r in &train {
        for b in [
            r.nodes as u64,
            r.ppn as u64,
            r.msg_size as u64,
            r.best.index() as u64,
        ] {
            h = (h ^ b).wrapping_mul(0x100000001b3);
        }
    }
    let path = data_dir().join(format!(
        "model_{}_excl_{tag}_{h:016x}.json",
        match collective {
            Collective::Allgather => "allgather",
            Collective::Alltoall => "alltoall",
            other =>
                return Err(PmlError::InvalidInput(format!(
                    "no cached models for extension collective {other}"
                ))),
        }
    ));
    if let Ok(s) = std::fs::read_to_string(&path) {
        if let Ok(m) = PretrainedModel::from_json(&s) {
            if m.collective == collective && m.n_training_records == train.len() {
                return Ok(m);
            }
        }
    }
    let model = PretrainedModel::train(&train, collective, &standard_train())?;
    std::fs::create_dir_all(data_dir()).ok();
    if let Ok(json) = model.to_json() {
        std::fs::write(&path, json).ok();
    }
    Ok(model)
}

/// One point of a selector-vs-selector runtime comparison.
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    pub msg_size: usize,
    /// (selector name, chosen algorithm name, runtime seconds).
    pub outcomes: Vec<(String, String, f64)>,
}

/// Compare selection strategies on a cluster over a message-size sweep at
/// one job shape, pricing each pick with the virtual-time executor.
pub fn compare_selectors(
    entry: &ClusterEntry,
    collective: Collective,
    nodes: u32,
    ppn: u32,
    msg_sizes: &[usize],
    selectors: &[&dyn AlgorithmSelector],
) -> Vec<ComparisonRow> {
    use pml_collectives::exec::sim;
    use std::collections::HashMap;
    let layout = pml_simnet::JobLayout::new(nodes, ppn);
    let cost = pml_simnet::CostModel::new(entry.spec.node.clone(), ppn);
    let mut schedules: HashMap<pml_collectives::Algorithm, pml_collectives::CommSchedule> =
        HashMap::new();
    msg_sizes
        .iter()
        .map(|&m| {
            let job = JobConfig::new(nodes, ppn, m);
            let outcomes = selectors
                .iter()
                .map(|s| {
                    let algo = s.select(collective, job);
                    let schedule = schedules
                        .entry(algo)
                        .or_insert_with(|| algo.schedule(layout.world_size(), 1));
                    let t = sim::run_scaled(schedule, layout, &cost, m).time_s;
                    (s.name().to_string(), algo.name().to_string(), t)
                })
                .collect();
            ComparisonRow {
                msg_size: m,
                outcomes,
            }
        })
        .collect()
}

/// Geometric-mean speedup of selector 0 over selector `idx` across rows.
pub fn geomean_speedup(rows: &[ComparisonRow], over_idx: usize) -> f64 {
    let mut log_sum = 0.0;
    for row in rows {
        let t0 = row.outcomes[0].2;
        let t1 = row.outcomes[over_idx].2;
        log_sum += (t1 / t0).ln();
    }
    (log_sum / rows.len() as f64).exp()
}

/// Fixed-width plain-text table, paper style.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (w, c) in widths.iter().zip(cells) {
            s.push_str(&format!("{c:>w$}  ", w = w));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|s| s.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Format seconds as microseconds with 2 decimals.
pub fn us(t: f64) -> String {
    format!("{:.2}", t * 1e6)
}

/// Format a ratio as a percentage speedup ("+12.3%" / "-4.5%").
pub fn pct(speedup: f64) -> String {
    format!("{:+.2}%", (speedup - 1.0) * 100.0)
}

/// The message-size sweep of the evaluation figures (powers of two).
pub fn msg_sweep(max_log2: u32) -> Vec<usize> {
    (0..=max_log2).map(|i| 1usize << i).collect()
}

/// Shorthand: a zoo entry that must exist.
pub fn cluster(name: &str) -> &'static ClusterEntry {
    pml_clusters::by_name(name).unwrap_or_else(|| panic!("cluster {name} not in zoo"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pml_core::{MvapichDefault, RandomSelector};

    #[test]
    fn msg_sweep_is_powers_of_two() {
        assert_eq!(msg_sweep(3), vec![1, 2, 4, 8]);
    }

    #[test]
    fn geomean_of_identical_outcomes_is_one() {
        let rows = vec![ComparisonRow {
            msg_size: 8,
            outcomes: vec![
                ("a".into(), "x".into(), 2.0e-6),
                ("b".into(), "x".into(), 2.0e-6),
            ],
        }];
        assert!((geomean_speedup(&rows, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn compare_selectors_prices_every_size() {
        let entry = cluster("RI");
        let mvapich = MvapichDefault;
        let random = RandomSelector::new(1);
        let sels: [&dyn pml_core::AlgorithmSelector; 2] = [&mvapich, &random];
        let sizes = [16usize, 2048];
        let rows = compare_selectors(entry, Collective::Allgather, 2, 4, &sizes, &sels);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert_eq!(r.outcomes.len(), 2);
            assert!(r.outcomes.iter().all(|(_, _, t)| *t > 0.0));
        }
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(us(1.5e-6), "1.50");
        assert_eq!(pct(1.123), "+12.30%");
        assert_eq!(pct(0.95), "-5.00%");
    }
}
