//! On-disk dataset cache.
//!
//! Generating the full Table I dataset means simulating every algorithm on
//! every grid cell of 18 clusters — minutes of CPU. The paper's authors
//! benchmarked once and reused the dataset; we do the same by caching the
//! generated records as JSON keyed by the generation config and the zoo
//! fingerprint, regenerating only when either changes.

use crate::datagen::{generate_full, DatagenConfig};
use crate::record::TuningRecord;
use crate::zoo::ClusterEntry;
use pml_collectives::Collective;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Bump when the simulator's cost model changes in ways that invalidate
/// cached measurements.
pub const CACHE_VERSION: u32 = 4;

#[derive(Debug, Serialize, Deserialize)]
struct CacheFile {
    version: u32,
    config: DatagenConfig,
    collective: Collective,
    /// Cheap zoo fingerprint: names and grid sizes.
    zoo_fingerprint: Vec<(String, usize)>,
    records: Vec<TuningRecord>,
}

fn fingerprint(clusters: &[ClusterEntry]) -> Vec<(String, usize)> {
    clusters
        .iter()
        .map(|c| (c.name().to_string(), c.grid_size()))
        .collect()
}

/// Load records from `path` if it matches (version, config, zoo); otherwise
/// generate, write the cache, and return the fresh records. Returns
/// (records, was_cached).
pub fn load_or_generate(
    path: &Path,
    clusters: &[ClusterEntry],
    collective: Collective,
    cfg: &DatagenConfig,
) -> (Vec<TuningRecord>, bool) {
    let fp = fingerprint(clusters);
    if let Ok(bytes) = std::fs::read(path) {
        if let Ok(file) = serde_json::from_slice::<CacheFile>(&bytes) {
            if file.version == CACHE_VERSION
                && file.config == *cfg
                && file.collective == collective
                && file.zoo_fingerprint == fp
            {
                return (file.records, true);
            }
        }
    }
    let records = generate_full(clusters, collective, cfg);
    let file = CacheFile {
        version: CACHE_VERSION,
        config: *cfg,
        collective,
        zoo_fingerprint: fp,
        records: records.clone(),
    };
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let json = serde_json::to_vec(&file).expect("cache serializes");
    std::fs::write(path, json).unwrap_or_else(|e| panic!("writing {path:?}: {e}"));
    (records, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    fn tiny() -> Vec<ClusterEntry> {
        let mut e = zoo::by_name("RI").unwrap().clone();
        e.msg_grid = vec![64, 1024];
        vec![e]
    }

    #[test]
    fn roundtrip_and_cache_hit() {
        let dir = std::env::temp_dir().join(format!("pmlcache-{}", std::process::id()));
        let path = dir.join("t.json");
        let cfg = DatagenConfig::noiseless();
        let clusters = tiny();
        let (a, hit_a) = load_or_generate(&path, &clusters, Collective::Allgather, &cfg);
        assert!(!hit_a);
        let (b, hit_b) = load_or_generate(&path, &clusters, Collective::Allgather, &cfg);
        assert!(hit_b);
        assert_eq!(a, b);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn config_change_invalidates() {
        let dir = std::env::temp_dir().join(format!("pmlcache2-{}", std::process::id()));
        let path = dir.join("t.json");
        let clusters = tiny();
        let (_, _) = load_or_generate(
            &path,
            &clusters,
            Collective::Allgather,
            &DatagenConfig::noiseless(),
        );
        let other = DatagenConfig {
            seed: 99,
            ..DatagenConfig::noiseless()
        };
        let (_, hit) = load_or_generate(&path, &clusters, Collective::Allgather, &other);
        assert!(!hit);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn collective_mismatch_invalidates() {
        let dir = std::env::temp_dir().join(format!("pmlcache3-{}", std::process::id()));
        let path = dir.join("t.json");
        let clusters = tiny();
        let cfg = DatagenConfig::noiseless();
        load_or_generate(&path, &clusters, Collective::Allgather, &cfg);
        let (_, hit) = load_or_generate(&path, &clusters, Collective::Alltoall, &cfg);
        assert!(!hit);
        std::fs::remove_dir_all(&dir).ok();
    }
}
