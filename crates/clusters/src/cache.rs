//! On-disk dataset cache.
//!
//! Generating the full Table I dataset means simulating every algorithm on
//! every grid cell of 18 clusters — minutes of CPU. The paper's authors
//! benchmarked once and reused the dataset; we do the same by caching the
//! generated records as JSON keyed by the generation config and the zoo
//! fingerprint, regenerating only when either changes.
//!
//! Cache corruption is never fatal: a truncated, unparsable, or
//! version-mismatched file simply triggers regeneration, and the reason is
//! reported in [`CacheLoad::events`] so callers can log it.

use crate::datagen::{generate_full, DatagenConfig};
use crate::error::ClustersError;
use crate::record::TuningRecord;
use crate::zoo::ClusterEntry;
use pml_collectives::Collective;
use pml_obs::{Counter, Event};
use serde::{Deserialize, Serialize};
use std::path::Path;

static CACHE_HIT: Counter = Counter::new("dataset.cache.hit");
static CACHE_MISS: Counter = Counter::new("dataset.cache.miss");

/// Bump when the simulator's cost model changes in ways that invalidate
/// cached measurements.
pub const CACHE_VERSION: u32 = 4;

#[derive(Debug, Serialize, Deserialize)]
struct CacheFile {
    version: u32,
    config: DatagenConfig,
    collective: Collective,
    /// Cheap zoo fingerprint: names and grid sizes.
    zoo_fingerprint: Vec<(String, usize)>,
    records: Vec<TuningRecord>,
}

fn fingerprint(clusters: &[ClusterEntry]) -> Vec<(String, usize)> {
    clusters
        .iter()
        .map(|c| (c.name().to_string(), c.grid_size()))
        .collect()
}

/// Outcome of a cache lookup: the records, whether they came from disk, and
/// structured diagnostics about any damaged or stale cache file that was
/// discarded along the way.
#[derive(Debug)]
pub struct CacheLoad {
    pub records: Vec<TuningRecord>,
    /// True when the records were read from a valid cache file.
    pub cached: bool,
    /// Events recorded when an existing cache file could not be used
    /// (corrupt, truncated, version mismatch) or a fresh cache could not be
    /// written. Regeneration already happened; this is purely diagnostic.
    /// Each event is also emitted to the global `pml-obs` sink.
    pub events: Vec<Event>,
}

impl CacheLoad {
    /// The first warning message, if any — a convenience for callers that
    /// only log one line.
    pub fn warning(&self) -> Option<&str> {
        self.events.first().map(|e| e.message.as_str())
    }
}

/// Record a cache diagnostic both structurally (for the caller) and in the
/// global event sink (for `--metrics-out` / `stats`).
fn note(events: &mut Vec<Event>, ev: Event) {
    pml_obs::events::emit(ev.clone());
    events.push(ev);
}

/// Load records from `path` if it matches (version, config, zoo); otherwise
/// generate, (best-effort) write the cache, and return the fresh records.
///
/// Only invalid generation parameters error. Every cache-file problem —
/// unreadable, truncated, failed parse, stale version — degrades to
/// regeneration with a warning.
pub fn load_or_generate(
    path: &Path,
    clusters: &[ClusterEntry],
    collective: Collective,
    cfg: &DatagenConfig,
) -> Result<CacheLoad, ClustersError> {
    let fp = fingerprint(clusters);
    let mut events = Vec::new();
    match std::fs::read(path) {
        Ok(bytes) => match serde_json::from_slice::<CacheFile>(&bytes) {
            Ok(file) => {
                if file.version != CACHE_VERSION {
                    note(
                        &mut events,
                        Event::warn(
                            "cache",
                            format!(
                                "cache {}: version {} != {CACHE_VERSION}, regenerating",
                                path.display(),
                                file.version
                            ),
                        ),
                    );
                } else if file.config != *cfg
                    || file.collective != collective
                    || file.zoo_fingerprint != fp
                {
                    // Ordinary invalidation (different experiment), not damage.
                } else {
                    CACHE_HIT.inc();
                    return Ok(CacheLoad {
                        records: file.records,
                        cached: true,
                        events,
                    });
                }
            }
            Err(e) => {
                note(
                    &mut events,
                    Event::warn(
                        "cache",
                        format!("cache {}: corrupt ({e}), regenerating", path.display()),
                    ),
                );
            }
        },
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => {
            note(
                &mut events,
                Event::warn(
                    "cache",
                    format!("cache {}: unreadable ({e}), regenerating", path.display()),
                ),
            );
        }
    }

    CACHE_MISS.inc();
    let records = generate_full(clusters, collective, cfg)?;
    let file = CacheFile {
        version: CACHE_VERSION,
        config: *cfg,
        collective,
        zoo_fingerprint: fp,
        records: records.clone(),
    };
    if let Some(dir) = path.parent() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            note(
                &mut events,
                Event::warn(
                    "cache",
                    format!("cache {}: could not create directory ({e})", dir.display()),
                ),
            );
        }
    }
    match serde_json::to_vec(&file) {
        Ok(json) => {
            if let Err(e) = std::fs::write(path, json) {
                note(
                    &mut events,
                    Event::warn(
                        "cache",
                        format!("cache {}: could not persist ({e})", path.display()),
                    ),
                );
            }
        }
        Err(e) => {
            note(
                &mut events,
                Event::warn(
                    "cache",
                    format!("cache {}: could not serialize ({e})", path.display()),
                ),
            );
        }
    }
    Ok(CacheLoad {
        records,
        cached: false,
        events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    fn tiny() -> Vec<ClusterEntry> {
        let mut e = zoo::by_name("RI").unwrap().clone();
        e.msg_grid = vec![64, 1024];
        vec![e]
    }

    #[test]
    fn roundtrip_and_cache_hit() {
        let dir = std::env::temp_dir().join(format!("pmlcache-{}", std::process::id()));
        let path = dir.join("t.json");
        let cfg = DatagenConfig::noiseless();
        let clusters = tiny();
        let a = load_or_generate(&path, &clusters, Collective::Allgather, &cfg).unwrap();
        assert!(!a.cached);
        let b = load_or_generate(&path, &clusters, Collective::Allgather, &cfg).unwrap();
        assert!(b.cached);
        assert!(b.events.is_empty());
        assert_eq!(a.records, b.records);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn config_change_invalidates() {
        let dir = std::env::temp_dir().join(format!("pmlcache2-{}", std::process::id()));
        let path = dir.join("t.json");
        let clusters = tiny();
        load_or_generate(
            &path,
            &clusters,
            Collective::Allgather,
            &DatagenConfig::noiseless(),
        )
        .unwrap();
        let other = DatagenConfig {
            seed: 99,
            ..DatagenConfig::noiseless()
        };
        let out = load_or_generate(&path, &clusters, Collective::Allgather, &other).unwrap();
        assert!(!out.cached);
        // A config change is routine invalidation, not damage.
        assert!(out.events.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn collective_mismatch_invalidates() {
        let dir = std::env::temp_dir().join(format!("pmlcache3-{}", std::process::id()));
        let path = dir.join("t.json");
        let clusters = tiny();
        let cfg = DatagenConfig::noiseless();
        load_or_generate(&path, &clusters, Collective::Allgather, &cfg).unwrap();
        let out = load_or_generate(&path, &clusters, Collective::Alltoall, &cfg).unwrap();
        assert!(!out.cached);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_cache_regenerates_with_warning() {
        let dir = std::env::temp_dir().join(format!("pmlcache4-{}", std::process::id()));
        let path = dir.join("t.json");
        let clusters = tiny();
        let cfg = DatagenConfig::noiseless();
        let fresh = load_or_generate(&path, &clusters, Collective::Allgather, &cfg).unwrap();
        // Simulate a crash mid-write: chop the file in half.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let out = load_or_generate(&path, &clusters, Collective::Allgather, &cfg).unwrap();
        assert!(!out.cached);
        assert!(out.warning().unwrap().contains("corrupt"));
        assert_eq!(out.events[0].level, pml_obs::Level::Warn);
        assert_eq!(out.records, fresh.records);
        // The rewritten cache hits again.
        let again = load_or_generate(&path, &clusters, Collective::Allgather, &cfg).unwrap();
        assert!(again.cached);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn version_mismatch_regenerates_with_warning() {
        let dir = std::env::temp_dir().join(format!("pmlcache5-{}", std::process::id()));
        let path = dir.join("t.json");
        let clusters = tiny();
        let cfg = DatagenConfig::noiseless();
        load_or_generate(&path, &clusters, Collective::Allgather, &cfg).unwrap();
        let text = String::from_utf8(std::fs::read(&path).unwrap()).unwrap();
        let stale = text.replacen(&format!("\"version\":{CACHE_VERSION}"), "\"version\":1", 1);
        assert_ne!(text, stale, "version field not found to rewrite");
        std::fs::write(&path, stale).unwrap();
        let out = load_or_generate(&path, &clusters, Collective::Allgather, &cfg).unwrap();
        assert!(!out.cached);
        assert!(out.warning().unwrap().contains("version"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn garbage_bytes_regenerate_with_warning() {
        let dir = std::env::temp_dir().join(format!("pmlcache6-{}", std::process::id()));
        let path = dir.join("t.json");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(&path, b"not json at all \x00\xff").unwrap();
        let clusters = tiny();
        let cfg = DatagenConfig::noiseless();
        let out = load_or_generate(&path, &clusters, Collective::Allgather, &cfg).unwrap();
        assert!(!out.cached);
        assert!(out.warning().is_some());
        std::fs::remove_dir_all(&dir).ok();
    }
}
