//! Tuning-dataset generation: the simulated counterpart of running the
//! OSU micro-benchmarks over every grid cell of every cluster (Table I).
//!
//! Every (cluster, collective, #nodes, PPN, message size) cell is measured
//! by executing each applicable algorithm's schedule in virtual time,
//! perturbed by the noise model and averaged over `iters` iterations —
//! exactly the paper's protocol for absorbing dynamic network conditions.
//! Cells are independent, so generation fans out over rayon.

use crate::error::ClustersError;
use crate::record::TuningRecord;
use crate::zoo::ClusterEntry;
use pml_collectives::{
    measure, measure_noisy, measure_sweep, Algorithm, Collective, MeasureConfig,
};
use pml_obs::{span, Counter};
use pml_simnet::{JobLayout, NoiseModel};

/// Grid cells measured by dataset generation (one tuning record each).
static DATAGEN_CELLS: Counter = Counter::new("datagen.cells");
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Dataset-generation settings.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatagenConfig {
    pub noise: NoiseModel,
    /// Benchmark iterations averaged per measurement.
    pub iters: u32,
    /// Master seed; every cell derives its own RNG from it, so results are
    /// reproducible and order-independent.
    pub seed: u64,
}

impl Default for DatagenConfig {
    fn default() -> Self {
        DatagenConfig {
            noise: NoiseModel::typical(),
            iters: 3,
            seed: 0x9e3779b97f4a7c15,
        }
    }
}

impl DatagenConfig {
    /// Noise-free, single-iteration generation (for oracle tables and fast
    /// tests).
    pub fn noiseless() -> Self {
        DatagenConfig {
            noise: NoiseModel::disabled(),
            iters: 1,
            seed: 0,
        }
    }

    /// Reject configs that cannot produce measurements (e.g. zero
    /// iterations, whose average would divide by zero).
    pub fn validate(&self) -> Result<(), ClustersError> {
        if self.iters == 0 {
            return Err(ClustersError::InvalidParam {
                param: "iters",
                why: "need at least one benchmark iteration".into(),
            });
        }
        Ok(())
    }
}

/// FNV-1a, used to give every grid cell an independent deterministic seed.
fn cell_seed(master: u64, cluster: &str, collective: Collective, n: u32, p: u32, m: usize) -> u64 {
    let mut h = 0xcbf29ce484222325u64 ^ master;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    eat(cluster.as_bytes());
    eat(&[collective as u8]);
    eat(&n.to_le_bytes());
    eat(&p.to_le_bytes());
    eat(&m.to_le_bytes());
    h
}

/// Measure one grid cell: every applicable algorithm, averaged noisy
/// runtimes, sorted fastest first.
pub fn measure_cell(
    entry: &ClusterEntry,
    collective: Collective,
    nodes: u32,
    ppn: u32,
    msg_size: usize,
    cfg: &DatagenConfig,
) -> Result<TuningRecord, ClustersError> {
    cfg.validate()?;
    let layout = JobLayout::new(nodes, ppn);
    let mcfg = MeasureConfig { layout, msg_size };
    let world = layout.world_size();
    let mut rng = StdRng::seed_from_u64(cell_seed(
        cfg.seed,
        entry.name(),
        collective,
        nodes,
        ppn,
        msg_size,
    ));
    let mut runtimes: Vec<(Algorithm, f64)> = Algorithm::applicable_for(collective, world)
        .into_iter()
        .map(|a| {
            let t = if cfg.noise.is_disabled() && cfg.iters == 1 {
                measure(a, &entry.spec.node, mcfg)
            } else {
                measure_noisy(a, &entry.spec.node, mcfg, &cfg.noise, cfg.iters, &mut rng)
            };
            (a, t)
        })
        .collect();
    runtimes.sort_by(|a, b| a.1.total_cmp(&b.1));
    Ok(TuningRecord {
        cluster: entry.name().to_string(),
        collective,
        nodes,
        ppn,
        msg_size,
        best: runtimes[0].0,
        runtimes,
    })
}

/// All grid cells of one cluster for one collective, in deterministic grid
/// order (nodes-major), measured in parallel.
///
/// Job shapes fan out over rayon; within a shape, every algorithm's
/// schedule is generated once and re-simulated across the message-size
/// sweep (`measure_sweep`), then per-cell noise is applied exactly as
/// [`measure_cell`] would — the two paths produce identical records, which
/// the tests assert.
pub fn generate_cluster(
    entry: &ClusterEntry,
    collective: Collective,
    cfg: &DatagenConfig,
) -> Result<Vec<TuningRecord>, ClustersError> {
    cfg.validate()?;
    let _span = span!("datagen.cluster", cluster = entry.name());
    let shapes: Vec<(u32, u32)> = entry
        .node_grid
        .iter()
        .flat_map(|&n| entry.ppn_grid.iter().map(move |&p| (n, p)))
        .collect();
    let records: Vec<TuningRecord> = shapes
        .into_par_iter()
        .flat_map_iter(|(n, p)| {
            let bases = measure_sweep(
                collective,
                &entry.spec.node,
                JobLayout::new(n, p),
                &entry.msg_grid,
            );
            bases
                .into_iter()
                .zip(entry.msg_grid.clone())
                .map(move |(base, m)| finish_cell(entry, collective, n, p, m, base, cfg))
        })
        .collect();
    DATAGEN_CELLS.add(records.len() as u64);
    Ok(records)
}

/// Apply the per-cell noise protocol to noise-free base runtimes and build
/// the record. Must sample noise in the same (registry) order as
/// `measure_cell` so both paths agree bit-for-bit.
fn finish_cell(
    entry: &ClusterEntry,
    collective: Collective,
    nodes: u32,
    ppn: u32,
    msg_size: usize,
    base: Vec<(Algorithm, f64)>,
    cfg: &DatagenConfig,
) -> TuningRecord {
    let mut rng = StdRng::seed_from_u64(cell_seed(
        cfg.seed,
        entry.name(),
        collective,
        nodes,
        ppn,
        msg_size,
    ));
    let mut runtimes: Vec<(Algorithm, f64)> = base
        .into_iter()
        .map(|(a, t)| {
            let avg = if cfg.noise.is_disabled() && cfg.iters == 1 {
                t
            } else {
                let mut acc = 0.0;
                for _ in 0..cfg.iters {
                    acc += t * cfg.noise.sample(&mut rng);
                }
                acc / cfg.iters as f64
            };
            (a, avg)
        })
        .collect();
    runtimes.sort_by(|a, b| a.1.total_cmp(&b.1));
    TuningRecord {
        cluster: entry.name().to_string(),
        collective,
        nodes,
        ppn,
        msg_size,
        best: runtimes[0].0,
        runtimes,
    }
}

/// The full Table I dataset for one collective: every cluster's grid.
pub fn generate_full(
    clusters: &[ClusterEntry],
    collective: Collective,
    cfg: &DatagenConfig,
) -> Result<Vec<TuningRecord>, ClustersError> {
    let mut out = Vec::new();
    for c in clusters {
        out.extend(generate_cluster(c, collective, cfg)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    fn small_entry() -> ClusterEntry {
        let mut e = zoo::by_name("RI2").unwrap().clone();
        e.node_grid = vec![1, 2];
        e.ppn_grid = vec![2, 4];
        e.msg_grid = vec![64, 4096];
        e
    }

    #[test]
    fn cell_measures_all_applicable_algorithms() {
        let e = small_entry();
        let r = measure_cell(
            &e,
            Collective::Alltoall,
            2,
            4,
            64,
            &DatagenConfig::noiseless(),
        )
        .unwrap();
        assert_eq!(r.runtimes.len(), 5); // 8 ranks: power of two, all apply
        assert_eq!(r.best, r.runtimes[0].0);
        for w in r.runtimes.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let e = small_entry();
        let cfg = DatagenConfig::default();
        let a = generate_cluster(&e, Collective::Allgather, &cfg).unwrap();
        let b = generate_cluster(&e, Collective::Allgather, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn grid_order_and_count() {
        let e = small_entry();
        let recs =
            generate_cluster(&e, Collective::Allgather, &DatagenConfig::noiseless()).unwrap();
        assert_eq!(recs.len(), e.grid_size());
        assert_eq!((recs[0].nodes, recs[0].ppn, recs[0].msg_size), (1, 2, 64));
        assert_eq!((recs[3].nodes, recs[3].ppn, recs[3].msg_size), (1, 4, 4096));
    }

    #[test]
    fn sweep_path_matches_cell_path() {
        let e = small_entry();
        let cfg = DatagenConfig::default();
        for coll in [Collective::Allgather, Collective::Alltoall] {
            let recs = generate_cluster(&e, coll, &cfg).unwrap();
            for r in &recs {
                let direct = measure_cell(&e, coll, r.nodes, r.ppn, r.msg_size, &cfg).unwrap();
                assert_eq!(
                    r.best,
                    direct.best,
                    "{coll} {:?}",
                    (r.nodes, r.ppn, r.msg_size)
                );
                for ((a1, t1), (a2, t2)) in r.runtimes.iter().zip(&direct.runtimes) {
                    assert_eq!(a1, a2);
                    assert!((t1 - t2).abs() <= t2.abs() * 1e-9, "{t1} vs {t2}");
                }
            }
        }
    }

    #[test]
    fn zero_iterations_rejected() {
        let e = small_entry();
        let cfg = DatagenConfig {
            iters: 0,
            ..DatagenConfig::default()
        };
        assert!(measure_cell(&e, Collective::Alltoall, 2, 4, 64, &cfg).is_err());
        assert!(generate_cluster(&e, Collective::Allgather, &cfg).is_err());
    }

    #[test]
    fn noise_changes_measurements_but_not_determinism() {
        let e = small_entry();
        let noisy = DatagenConfig {
            noise: pml_simnet::NoiseModel::new(0.2),
            iters: 2,
            seed: 1,
        };
        let clean = DatagenConfig::noiseless();
        let rn = measure_cell(&e, Collective::Alltoall, 2, 4, 4096, &noisy).unwrap();
        let rc = measure_cell(&e, Collective::Alltoall, 2, 4, 4096, &clean).unwrap();
        let tn = rn.runtime_of(rc.best).unwrap();
        let tc = rc.best_runtime();
        assert_ne!(tn, tc);
        // Same seed, same result.
        let rn2 = measure_cell(&e, Collective::Alltoall, 2, 4, 4096, &noisy).unwrap();
        assert_eq!(rn, rn2);
    }
}
