//! Error type for dataset generation, caching, and splitting.

use std::fmt;
use std::path::PathBuf;

/// Everything that can go wrong between a cluster zoo and a training set.
#[derive(Debug)]
pub enum ClustersError {
    /// A caller-supplied knob is out of range.
    InvalidParam { param: &'static str, why: String },
    /// A cluster name that is not in the zoo.
    UnknownCluster(String),
    /// Filesystem failure while persisting or reading a dataset cache.
    Io {
        path: PathBuf,
        source: std::io::Error,
    },
}

impl fmt::Display for ClustersError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClustersError::InvalidParam { param, why } => {
                write!(f, "invalid parameter `{param}`: {why}")
            }
            ClustersError::UnknownCluster(name) => write!(f, "unknown cluster `{name}`"),
            ClustersError::Io { path, source } => {
                write!(f, "io error at {}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for ClustersError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClustersError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}
