//! # pml-clusters
//!
//! The data side of the PML-MPI reproduction: the 18-cluster [`mod@zoo`] of the
//! paper's Table I, simulated micro-benchmark [`datagen`] that produces
//! the over-9000-record tuning dataset, the [`record`] row type, and the paper's
//! three train/test [`split`] methodologies.

#![deny(rust_2018_idioms, missing_debug_implementations)]
#![deny(clippy::dbg_macro, clippy::todo)]
pub mod cache;
pub mod datagen;
pub mod error;
pub mod record;
pub mod split;
pub mod zoo;

pub use cache::{load_or_generate, CacheLoad, CACHE_VERSION};
pub use datagen::{generate_cluster, generate_full, measure_cell, DatagenConfig};
pub use error::ClustersError;
pub use record::TuningRecord;
pub use split::{cluster_split, cluster_split_auto, node_split, random_split, Split};
pub use zoo::{by_name, zoo, ClusterEntry};
