//! One row of the tuning dataset.

use pml_collectives::{Algorithm, Collective};
use serde::{Deserialize, Serialize};

/// One benchmarked grid cell: every applicable algorithm's (averaged)
/// runtime at a (cluster, collective, #nodes, PPN, message size) point,
/// plus the winner — the classification label.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuningRecord {
    pub cluster: String,
    pub collective: Collective,
    pub nodes: u32,
    pub ppn: u32,
    pub msg_size: usize,
    /// Fastest algorithm (the ML label).
    pub best: Algorithm,
    /// (algorithm, averaged runtime in seconds) for every applicable
    /// algorithm, sorted fastest first.
    pub runtimes: Vec<(Algorithm, f64)>,
}

impl TuningRecord {
    /// Total ranks of the job.
    pub fn world_size(&self) -> u32 {
        self.nodes * self.ppn
    }

    /// Runtime of a given algorithm, if it was applicable.
    pub fn runtime_of(&self, algo: Algorithm) -> Option<f64> {
        self.runtimes
            .iter()
            .find(|(a, _)| *a == algo)
            .map(|(_, t)| *t)
    }

    /// Runtime of the winner. A record with no runtimes (which datagen
    /// never produces) reads as 0.0 — the same degenerate-cell value
    /// [`Self::slowdown_of`] already treats as "no meaningful ranking".
    pub fn best_runtime(&self) -> f64 {
        self.runtimes.first().map(|(_, t)| *t).unwrap_or(0.0)
    }

    /// How much slower `algo` is than the winner (1.0 = optimal). `None`
    /// if the algorithm was inapplicable or the cell is degenerate (a
    /// single-rank no-op whose best runtime is zero).
    pub fn slowdown_of(&self, algo: Algorithm) -> Option<f64> {
        let best = self.best_runtime();
        if best <= 0.0 {
            return None;
        }
        self.runtime_of(algo).map(|t| t / best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pml_collectives::AlltoallAlgo;

    fn record() -> TuningRecord {
        TuningRecord {
            cluster: "X".into(),
            collective: Collective::Alltoall,
            nodes: 2,
            ppn: 8,
            msg_size: 1024,
            best: Algorithm::Alltoall(AlltoallAlgo::Bruck),
            runtimes: vec![
                (Algorithm::Alltoall(AlltoallAlgo::Bruck), 1.0e-6),
                (Algorithm::Alltoall(AlltoallAlgo::Pairwise), 4.0e-6),
            ],
        }
    }

    #[test]
    fn accessors() {
        let r = record();
        assert_eq!(r.world_size(), 16);
        assert_eq!(r.best_runtime(), 1.0e-6);
        assert_eq!(
            r.slowdown_of(Algorithm::Alltoall(AlltoallAlgo::Pairwise)),
            Some(4.0)
        );
        assert_eq!(
            r.runtime_of(Algorithm::Alltoall(AlltoallAlgo::Inplace)),
            None
        );
    }
}
