//! The paper's three train/test split methodologies (§V-D):
//!
//! * **random** — conventional shuffled 70/30;
//! * **cluster** — hold out whole clusters, testing generalization to
//!   machines the model has never seen (the headline capability);
//! * **node** — train on small node counts, test on larger ones, testing
//!   scalability of the learned tuning strategy.

use crate::error::ClustersError;
use crate::record::TuningRecord;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::BTreeSet;

/// A (train, test) partition of records, by value.
pub type Split = (Vec<TuningRecord>, Vec<TuningRecord>);

fn check_fraction(train_fraction: f64) -> Result<(), ClustersError> {
    if !(0.0..=1.0).contains(&train_fraction) {
        return Err(ClustersError::InvalidParam {
            param: "train_fraction",
            why: format!("{train_fraction} not in [0, 1]"),
        });
    }
    Ok(())
}

/// Shuffled random split; `train_fraction` of records train.
pub fn random_split(
    records: &[TuningRecord],
    train_fraction: f64,
    seed: u64,
) -> Result<Split, ClustersError> {
    check_fraction(train_fraction)?;
    let mut idx: Vec<usize> = (0..records.len()).collect();
    idx.shuffle(&mut StdRng::seed_from_u64(seed));
    let n_train = ((records.len() as f64) * train_fraction).round() as usize;
    let (tr, te) = idx.split_at(n_train.min(records.len()));
    Ok((
        tr.iter().map(|&i| records[i].clone()).collect(),
        te.iter().map(|&i| records[i].clone()).collect(),
    ))
}

/// Hold out the named clusters as the test set.
pub fn cluster_split(records: &[TuningRecord], test_clusters: &[&str]) -> Split {
    let test_set: BTreeSet<&str> = test_clusters.iter().copied().collect();
    let (test, train): (Vec<_>, Vec<_>) = records
        .iter()
        .cloned()
        .partition(|r| test_set.contains(r.cluster.as_str()));
    (train, test)
}

/// Pick whole clusters at random until roughly `1 − train_fraction` of the
/// records are held out, then split on them. Returns the split and the
/// held-out cluster names.
pub fn cluster_split_auto(
    records: &[TuningRecord],
    train_fraction: f64,
    seed: u64,
) -> Result<(Split, Vec<String>), ClustersError> {
    check_fraction(train_fraction)?;
    let mut names: Vec<String> = {
        let set: BTreeSet<&str> = records.iter().map(|r| r.cluster.as_str()).collect();
        set.into_iter().map(String::from).collect()
    };
    names.shuffle(&mut StdRng::seed_from_u64(seed));
    let target_test = records.len() as f64 * (1.0 - train_fraction);
    let mut held = Vec::new();
    let mut held_records = 0usize;
    for name in names {
        if held_records as f64 >= target_test {
            break;
        }
        held_records += records.iter().filter(|r| r.cluster == name).count();
        held.push(name);
    }
    let refs: Vec<&str> = held.iter().map(String::as_str).collect();
    Ok((cluster_split(records, &refs), held))
}

/// Train on records with `nodes <= max_train_nodes`, test on the rest.
pub fn node_split(records: &[TuningRecord], max_train_nodes: u32) -> Split {
    let (train, test): (Vec<_>, Vec<_>) = records
        .iter()
        .cloned()
        .partition(|r| r.nodes <= max_train_nodes);
    (train, test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pml_collectives::{Algorithm, AllgatherAlgo, Collective};

    fn rec(cluster: &str, nodes: u32) -> TuningRecord {
        TuningRecord {
            cluster: cluster.into(),
            collective: Collective::Allgather,
            nodes,
            ppn: 4,
            msg_size: 64,
            best: Algorithm::Allgather(AllgatherAlgo::Ring),
            runtimes: vec![(Algorithm::Allgather(AllgatherAlgo::Ring), 1e-6)],
        }
    }

    fn sample() -> Vec<TuningRecord> {
        let mut v = Vec::new();
        for c in ["A", "B", "C", "D"] {
            for n in [1, 2, 4, 8] {
                for _ in 0..5 {
                    v.push(rec(c, n));
                }
            }
        }
        v
    }

    #[test]
    fn random_split_sizes() {
        let recs = sample();
        let (tr, te) = random_split(&recs, 0.7, 1).unwrap();
        assert_eq!(tr.len(), 56);
        assert_eq!(te.len(), 24);
    }

    #[test]
    fn cluster_split_is_clean() {
        let recs = sample();
        let (tr, te) = cluster_split(&recs, &["B"]);
        assert!(tr.iter().all(|r| r.cluster != "B"));
        assert!(te.iter().all(|r| r.cluster == "B"));
        assert_eq!(tr.len() + te.len(), recs.len());
    }

    #[test]
    fn cluster_split_auto_hits_fraction() {
        let recs = sample();
        let ((tr, te), held) = cluster_split_auto(&recs, 0.75, 3).unwrap();
        assert_eq!(held.len(), 1); // 25% of 4 uniform clusters
        assert_eq!(te.len(), 20);
        assert_eq!(tr.len(), 60);
    }

    #[test]
    fn bad_fraction_is_rejected() {
        let recs = sample();
        assert!(random_split(&recs, 1.5, 0).is_err());
        assert!(cluster_split_auto(&recs, -0.1, 0).is_err());
    }

    #[test]
    fn node_split_thresholds() {
        let recs = sample();
        let (tr, te) = node_split(&recs, 4);
        assert!(tr.iter().all(|r| r.nodes <= 4));
        assert!(te.iter().all(|r| r.nodes == 8));
        assert_eq!(te.len(), 20);
    }
}
