//! The 18-cluster zoo of Table I.
//!
//! Each entry reproduces a row of the paper's dataset-overview table: the
//! processor and interconnect of the machine plus the (#nodes, PPN,
//! message-size) grid benchmarked on it. Hardware numbers (max turbo clock,
//! node L3, STREAM-class memory bandwidth, core/thread/socket/NUMA counts,
//! PCIe attachment) are taken from the public spec sheets of the listed
//! parts; they are the *features* the classifier learns from, so fidelity
//! here is what makes the reproduction's feature space match the paper's.

use pml_simnet::{
    ClusterSpec, CpuFamily, CpuSpec, HcaGeneration, InterconnectSpec, NodeSpec, PcieVersion,
};
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// One Table I row: a cluster plus the benchmark grid used on it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterEntry {
    pub spec: ClusterSpec,
    /// Distinct node counts benchmarked (the table's `#nodes` is this
    /// list's length).
    pub node_grid: Vec<u32>,
    /// Distinct processes-per-node values (`#ppn` is the length).
    pub ppn_grid: Vec<u32>,
    /// Distinct message sizes in bytes (`#msg size` is the length).
    pub msg_grid: Vec<usize>,
}

impl ClusterEntry {
    pub fn name(&self) -> &str {
        &self.spec.name
    }

    /// Total grid cells = node_grid × ppn_grid × msg_grid.
    pub fn grid_size(&self) -> usize {
        self.node_grid.len() * self.ppn_grid.len() * self.msg_grid.len()
    }
}

/// Message sizes 2⁰ … 2^(n−1) bytes.
fn msg_sizes(n: usize) -> Vec<usize> {
    (0..n).map(|i| 1usize << i).collect()
}

/// Node counts 1, 2, 4, … (n entries).
fn pow2_nodes(n: usize) -> Vec<u32> {
    (0..n).map(|i| 1u32 << i).collect()
}

#[allow(clippy::too_many_arguments)]
fn cluster(
    name: &str,
    cpu_model: &str,
    family: CpuFamily,
    max_clock_ghz: f64,
    l3_cache_mib: f64,
    mem_bw_gbs: f64,
    cores: u32,
    threads: u32,
    sockets: u32,
    numa_nodes: u32,
    gen: HcaGeneration,
    pcie: PcieVersion,
    num_nodes: u32,
    node_grid: Vec<u32>,
    ppn_grid: Vec<u32>,
    n_msg: usize,
) -> ClusterEntry {
    ClusterEntry {
        spec: ClusterSpec {
            name: name.to_string(),
            node: NodeSpec {
                cpu: CpuSpec {
                    model: cpu_model.to_string(),
                    family,
                    max_clock_ghz,
                    l3_cache_mib,
                    mem_bw_gbs,
                    cores,
                    threads,
                    sockets,
                    numa_nodes,
                },
                nic: InterconnectSpec::new(gen, pcie),
            },
            num_nodes,
        },
        node_grid,
        ppn_grid,
        msg_grid: msg_sizes(n_msg),
    }
}

fn build_zoo() -> Vec<ClusterEntry> {
    use CpuFamily::*;
    use HcaGeneration::*;
    use PcieVersion::*;
    vec![
        // name, cpu, family, clock, L3 MiB, mem GB/s, cores, threads,
        // sockets, numa, fabric, pcie, #machine nodes, node grid, ppn grid,
        // #msg sizes — grid lengths follow Table I.
        cluster(
            "RI2",
            "Intel Xeon CPU E5-2680 v4 @ 2.40GHz",
            IntelXeon,
            3.3,
            70.0,
            153.0,
            28,
            56,
            2,
            2,
            Edr,
            Gen3,
            20,
            pow2_nodes(5),
            vec![1, 2, 4, 8, 16, 28],
            21,
        ),
        cluster(
            "RI",
            "Intel Xeon CPU E5630 @ 2.53GHz",
            IntelXeon,
            2.8,
            24.0,
            51.0,
            8,
            16,
            2,
            2,
            Qdr,
            Gen3,
            8,
            vec![2],
            vec![4, 8],
            21,
        ),
        cluster(
            "Haswell",
            "Intel Xeon CPU E5-2687W v3",
            IntelXeon,
            3.5,
            50.0,
            136.0,
            20,
            40,
            2,
            2,
            Hdr,
            Gen3,
            8,
            vec![1, 2, 4],
            vec![1, 2, 4, 8, 16, 20],
            21,
        ),
        cluster(
            "Catalyst",
            "FUJITSU A64FX",
            ArmA64fx,
            2.2,
            32.0,
            1024.0,
            48,
            48,
            1,
            4,
            Edr,
            Gen3,
            16,
            pow2_nodes(4),
            vec![1, 4, 8, 16, 32, 48],
            21,
        ),
        cluster(
            "Spock",
            "AMD EPYC 7763 64-Core",
            AmdEpyc,
            3.5,
            256.0,
            205.0,
            64,
            128,
            1,
            4,
            Hdr,
            Gen4,
            16,
            pow2_nodes(5),
            vec![1, 2, 4, 8, 16, 32, 48, 64],
            21,
        ),
        cluster(
            "Rome",
            "AMD EPYC 7601 32-Core",
            AmdEpyc,
            3.2,
            128.0,
            341.0,
            64,
            128,
            2,
            8,
            Edr,
            Gen3,
            16,
            pow2_nodes(4),
            vec![1, 2, 4, 8, 16, 24, 32, 48, 64, 96],
            21,
        ),
        cluster(
            "Frontera",
            "Intel Xeon Platinum 8280 CPU @ 2.70GHz",
            IntelXeon,
            4.0,
            77.0,
            220.0,
            56,
            56,
            2,
            2,
            Edr,
            Gen3,
            8192,
            pow2_nodes(5),
            vec![1, 2, 4, 8, 16, 28, 32, 56],
            21,
        ),
        cluster(
            "LLNL",
            "AMD EPYC 7401 48-Core",
            AmdEpyc,
            3.0,
            128.0,
            341.0,
            48,
            96,
            2,
            8,
            Edr,
            Gen3,
            32,
            pow2_nodes(5),
            vec![1, 2, 4, 8, 24, 48],
            21,
        ),
        cluster(
            "Frontera RTX",
            "Intel Xeon CPU E5-2620 v4 @ 2.10GHz",
            IntelXeon,
            3.0,
            40.0,
            137.0,
            16,
            32,
            2,
            2,
            Fdr,
            Gen3,
            16,
            pow2_nodes(5),
            vec![1, 2, 4, 8, 16],
            21,
        ),
        cluster(
            "Hartree",
            "Cavium ThunderX2 CN9975",
            ArmThunderX2,
            2.5,
            64.0,
            317.0,
            56,
            224,
            2,
            2,
            Fdr,
            Gen3,
            8,
            vec![1, 2, 4],
            vec![1, 4, 16, 28, 56],
            21,
        ),
        cluster(
            "Mayer",
            "Cavium ThunderX2 CN9975",
            ArmThunderX2,
            2.5,
            64.0,
            317.0,
            56,
            224,
            2,
            2,
            Edr,
            Gen3,
            16,
            pow2_nodes(4),
            vec![1, 2, 4, 8, 16, 32, 56],
            21,
        ),
        cluster(
            "Ray",
            "IBM POWER8 S822LC",
            IbmPower8,
            4.0,
            160.0,
            230.0,
            20,
            160,
            2,
            2,
            Edr,
            Gen3,
            8,
            pow2_nodes(4),
            vec![1, 10, 20],
            21,
        ),
        cluster(
            "Sierra",
            "IBM POWER9 AC922",
            IbmPower9,
            3.8,
            240.0,
            341.0,
            44,
            176,
            2,
            2,
            Edr,
            Gen4,
            64,
            pow2_nodes(5),
            vec![1, 2, 4, 8, 16, 22, 32, 44],
            21,
        ),
        cluster(
            "Bridges",
            "Intel Xeon CPU E5-2695 v3 @ 2.30GHz",
            IntelXeon,
            3.3,
            70.0,
            136.0,
            28,
            56,
            2,
            2,
            OmniPath,
            Gen3,
            16,
            pow2_nodes(5),
            vec![1, 2, 4, 8, 16, 28],
            21,
        ),
        cluster(
            "Bebop",
            "Intel Xeon CPU E5-2695 v4 @ 2.10GHz",
            IntelXeon,
            3.3,
            90.0,
            153.0,
            36,
            72,
            2,
            2,
            OmniPath,
            Gen3,
            16,
            vec![1, 2, 4, 6, 8, 16],
            vec![1, 4, 9, 18, 36],
            21,
        ),
        cluster(
            "TACC KNL",
            "Intel Xeon Phi CPU 7250 @ 1.40GHz",
            IntelXeonPhi,
            1.6,
            34.0,
            400.0,
            68,
            272,
            1,
            4,
            OmniPath,
            Gen3,
            64,
            vec![1, 2, 3, 4, 8, 16],
            vec![1, 4, 16, 32, 64, 68],
            21,
        ),
        cluster(
            "TACC Skylake",
            "Intel Xeon Platinum 8170",
            IntelXeon,
            3.7,
            71.5,
            220.0,
            52,
            104,
            2,
            2,
            OmniPath,
            Gen3,
            64,
            pow2_nodes(5),
            vec![1, 2, 4, 8, 13, 26, 48, 52],
            21,
        ),
        cluster(
            "MRI",
            "AMD EPYC 7713 64-Core",
            AmdEpyc,
            3.67,
            512.0,
            410.0,
            128,
            256,
            2,
            8,
            Hdr,
            Gen4,
            8,
            pow2_nodes(4),
            vec![1, 2, 4, 8, 16, 32, 64, 128],
            16,
        ),
    ]
}

/// The zoo, built once.
pub fn zoo() -> &'static [ClusterEntry] {
    static ZOO: OnceLock<Vec<ClusterEntry>> = OnceLock::new();
    ZOO.get_or_init(build_zoo)
}

/// Look up a cluster by (case-sensitive) name.
pub fn by_name(name: &str) -> Option<&'static ClusterEntry> {
    zoo().iter().find(|c| c.spec.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eighteen_clusters() {
        assert_eq!(zoo().len(), 18);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = zoo().iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 18);
    }

    #[test]
    fn grid_lengths_match_table_one() {
        // (name, #nodes, #ppn, #msg) straight from Table I.
        let expected = [
            ("RI2", 5, 6, 21),
            ("RI", 1, 2, 21),
            ("Haswell", 3, 6, 21),
            ("Catalyst", 4, 6, 21),
            ("Spock", 5, 8, 21),
            ("Rome", 4, 10, 21),
            ("Frontera", 5, 8, 21),
            ("LLNL", 5, 6, 21),
            ("Frontera RTX", 5, 5, 21),
            ("Hartree", 3, 5, 21),
            ("Mayer", 4, 7, 21),
            ("Ray", 4, 3, 21),
            ("Sierra", 5, 8, 21),
            ("Bridges", 5, 6, 21),
            ("Bebop", 6, 5, 21),
            ("TACC KNL", 6, 6, 21),
            ("TACC Skylake", 5, 8, 21),
            ("MRI", 4, 8, 16),
        ];
        for (name, n_nodes, n_ppn, n_msg) in expected {
            let c = by_name(name).unwrap_or_else(|| panic!("missing {name}"));
            assert_eq!(c.node_grid.len(), n_nodes, "{name} node grid");
            assert_eq!(c.ppn_grid.len(), n_ppn, "{name} ppn grid");
            assert_eq!(c.msg_grid.len(), n_msg, "{name} msg grid");
        }
    }

    #[test]
    fn ppn_grids_fit_the_hardware() {
        for c in zoo() {
            let max_ppn = *c.ppn_grid.iter().max().unwrap();
            assert!(
                max_ppn <= c.spec.max_ppn(),
                "{}: ppn {} exceeds {} hardware threads",
                c.name(),
                max_ppn,
                c.spec.max_ppn()
            );
        }
    }

    #[test]
    fn node_grids_fit_the_machine() {
        for c in zoo() {
            let max_nodes = *c.node_grid.iter().max().unwrap();
            assert!(max_nodes <= c.spec.num_nodes, "{}", c.name());
        }
    }

    #[test]
    fn frontera_and_mri_match_evaluation_setup() {
        // §VII benchmarks Frontera at 16 nodes × {28, 56} PPN and MRI at
        // 8 nodes × {64, 128} PPN — those cells must exist in the grids.
        let f = by_name("Frontera").unwrap();
        assert!(f.node_grid.contains(&16));
        assert!(f.ppn_grid.contains(&28) && f.ppn_grid.contains(&56));
        let m = by_name("MRI").unwrap();
        assert!(m.node_grid.contains(&8));
        assert!(m.ppn_grid.contains(&64) && m.ppn_grid.contains(&128));
    }

    #[test]
    fn interconnect_families_match_table() {
        use pml_simnet::HcaGeneration::*;
        assert_eq!(by_name("RI").unwrap().spec.node.nic.generation, Qdr);
        assert_eq!(by_name("MRI").unwrap().spec.node.nic.generation, Hdr);
        assert_eq!(
            by_name("Bridges").unwrap().spec.node.nic.generation,
            OmniPath
        );
        assert_eq!(by_name("Frontera").unwrap().spec.node.nic.generation, Edr);
    }
}
