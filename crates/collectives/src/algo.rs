//! Algorithm registry: the enumerations the rest of the system (dataset
//! generation, classifiers, tuning tables) speaks in.

use crate::schedule::CommSchedule;
use crate::{allgather, allreduce, alltoall, bcast};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The supported collectives: the paper's two study subjects plus the
/// broadcast/allreduce extensions from its future-work section.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Collective {
    Allgather,
    Alltoall,
    Bcast,
    Allreduce,
}

impl Collective {
    /// Every supported collective.
    pub const ALL: [Collective; 4] = [
        Collective::Allgather,
        Collective::Alltoall,
        Collective::Bcast,
        Collective::Allreduce,
    ];

    /// The two collectives the paper evaluates (Table I dataset scope).
    pub const PAPER: [Collective; 2] = [Collective::Allgather, Collective::Alltoall];

    pub fn name(self) -> &'static str {
        match self {
            Collective::Allgather => "MPI_Allgather",
            Collective::Alltoall => "MPI_Alltoall",
            Collective::Bcast => "MPI_Bcast",
            Collective::Allreduce => "MPI_Allreduce",
        }
    }

    /// Number of algorithm choices for this collective.
    pub fn algo_count(self) -> usize {
        match self {
            Collective::Allgather => AllgatherAlgo::ALL.len(),
            Collective::Alltoall => AlltoallAlgo::ALL.len(),
            Collective::Bcast => BcastAlgo::ALL.len(),
            Collective::Allreduce => AllreduceAlgo::ALL.len(),
        }
    }
}

impl fmt::Display for Collective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// `MPI_Allgather` algorithm choices (§III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AllgatherAlgo {
    RecursiveDoubling,
    Ring,
    Bruck,
    /// The paper's "Recursive Doubling Communication" (see
    /// [`allgather::neighbor_exchange`]).
    NeighborExchange,
}

impl AllgatherAlgo {
    pub const ALL: [AllgatherAlgo; 4] = [
        AllgatherAlgo::RecursiveDoubling,
        AllgatherAlgo::Ring,
        AllgatherAlgo::Bruck,
        AllgatherAlgo::NeighborExchange,
    ];

    pub fn name(self) -> &'static str {
        match self {
            AllgatherAlgo::RecursiveDoubling => "recursive_doubling",
            AllgatherAlgo::Ring => "ring",
            AllgatherAlgo::Bruck => "bruck",
            AllgatherAlgo::NeighborExchange => "rd_communication",
        }
    }

    /// Whether the algorithm is defined for `p` ranks.
    pub fn supports(self, p: u32) -> bool {
        match self {
            AllgatherAlgo::RecursiveDoubling => allgather::recursive_doubling::supports(p),
            AllgatherAlgo::Ring => allgather::ring::supports(p),
            AllgatherAlgo::Bruck => allgather::bruck::supports(p),
            AllgatherAlgo::NeighborExchange => allgather::neighbor_exchange::supports(p),
        }
    }

    /// Generate the communication schedule. Panics if `!supports(p)`.
    pub fn schedule(self, p: u32, block: usize) -> CommSchedule {
        match self {
            AllgatherAlgo::RecursiveDoubling => allgather::recursive_doubling::schedule(p, block),
            AllgatherAlgo::Ring => allgather::ring::schedule(p, block),
            AllgatherAlgo::Bruck => allgather::bruck::schedule(p, block),
            AllgatherAlgo::NeighborExchange => allgather::neighbor_exchange::schedule(p, block),
        }
    }

    /// Stable class index for ML labels (the position in [`Self::ALL`];
    /// `indices_round_trip` pins the two in sync).
    pub fn index(self) -> usize {
        match self {
            AllgatherAlgo::RecursiveDoubling => 0,
            AllgatherAlgo::Ring => 1,
            AllgatherAlgo::Bruck => 2,
            AllgatherAlgo::NeighborExchange => 3,
        }
    }

    pub fn from_index(i: usize) -> Option<Self> {
        Self::ALL.get(i).copied()
    }
}

impl fmt::Display for AllgatherAlgo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// `MPI_Alltoall` algorithm choices (§III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AlltoallAlgo {
    Bruck,
    ScatterDest,
    Pairwise,
    RecursiveDoubling,
    Inplace,
}

impl AlltoallAlgo {
    pub const ALL: [AlltoallAlgo; 5] = [
        AlltoallAlgo::Bruck,
        AlltoallAlgo::ScatterDest,
        AlltoallAlgo::Pairwise,
        AlltoallAlgo::RecursiveDoubling,
        AlltoallAlgo::Inplace,
    ];

    pub fn name(self) -> &'static str {
        match self {
            AlltoallAlgo::Bruck => "bruck",
            AlltoallAlgo::ScatterDest => "scatter_dest",
            AlltoallAlgo::Pairwise => "pairwise",
            AlltoallAlgo::RecursiveDoubling => "recursive_doubling",
            AlltoallAlgo::Inplace => "inplace",
        }
    }

    /// Whether the algorithm is defined for `p` ranks.
    pub fn supports(self, p: u32) -> bool {
        match self {
            AlltoallAlgo::Bruck => alltoall::bruck::supports(p),
            AlltoallAlgo::ScatterDest => alltoall::scatter_dest::supports(p),
            AlltoallAlgo::Pairwise => alltoall::pairwise::supports(p),
            AlltoallAlgo::RecursiveDoubling => alltoall::recursive_doubling::supports(p),
            AlltoallAlgo::Inplace => alltoall::inplace::supports(p),
        }
    }

    /// Generate the communication schedule. Panics if `!supports(p)`.
    pub fn schedule(self, p: u32, block: usize) -> CommSchedule {
        match self {
            AlltoallAlgo::Bruck => alltoall::bruck::schedule(p, block),
            AlltoallAlgo::ScatterDest => alltoall::scatter_dest::schedule(p, block),
            AlltoallAlgo::Pairwise => alltoall::pairwise::schedule(p, block),
            AlltoallAlgo::RecursiveDoubling => alltoall::recursive_doubling::schedule(p, block),
            AlltoallAlgo::Inplace => alltoall::inplace::schedule(p, block),
        }
    }

    /// Stable class index for ML labels (the position in [`Self::ALL`];
    /// `indices_round_trip` pins the two in sync).
    pub fn index(self) -> usize {
        match self {
            AlltoallAlgo::Bruck => 0,
            AlltoallAlgo::ScatterDest => 1,
            AlltoallAlgo::Pairwise => 2,
            AlltoallAlgo::RecursiveDoubling => 3,
            AlltoallAlgo::Inplace => 4,
        }
    }

    pub fn from_index(i: usize) -> Option<Self> {
        Self::ALL.get(i).copied()
    }
}

impl fmt::Display for AlltoallAlgo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// `MPI_Bcast` algorithm choices (future-work extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum BcastAlgo {
    Binomial,
    ScatterAllgather,
    PipelinedRing,
}

impl BcastAlgo {
    pub const ALL: [BcastAlgo; 3] = [
        BcastAlgo::Binomial,
        BcastAlgo::ScatterAllgather,
        BcastAlgo::PipelinedRing,
    ];

    pub fn name(self) -> &'static str {
        match self {
            BcastAlgo::Binomial => "binomial",
            BcastAlgo::ScatterAllgather => "scatter_allgather",
            BcastAlgo::PipelinedRing => "pipelined_ring",
        }
    }

    pub fn supports(self, p: u32) -> bool {
        match self {
            BcastAlgo::Binomial => bcast::binomial::supports(p),
            BcastAlgo::ScatterAllgather => bcast::scatter_allgather::supports(p),
            BcastAlgo::PipelinedRing => bcast::pipelined_ring::supports(p),
        }
    }

    pub fn schedule(self, p: u32, msg: usize) -> CommSchedule {
        match self {
            BcastAlgo::Binomial => bcast::binomial::schedule(p, msg),
            BcastAlgo::ScatterAllgather => bcast::scatter_allgather::schedule(p, msg),
            BcastAlgo::PipelinedRing => bcast::pipelined_ring::schedule(p, msg),
        }
    }

    /// Stable class index for ML labels (the position in [`Self::ALL`];
    /// `indices_round_trip` pins the two in sync).
    pub fn index(self) -> usize {
        match self {
            BcastAlgo::Binomial => 0,
            BcastAlgo::ScatterAllgather => 1,
            BcastAlgo::PipelinedRing => 2,
        }
    }

    pub fn from_index(i: usize) -> Option<Self> {
        Self::ALL.get(i).copied()
    }
}

impl fmt::Display for BcastAlgo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// `MPI_Allreduce` algorithm choices (future-work extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AllreduceAlgo {
    RecursiveDoubling,
    RingReduceScatter,
    ReduceBroadcast,
}

impl AllreduceAlgo {
    pub const ALL: [AllreduceAlgo; 3] = [
        AllreduceAlgo::RecursiveDoubling,
        AllreduceAlgo::RingReduceScatter,
        AllreduceAlgo::ReduceBroadcast,
    ];

    pub fn name(self) -> &'static str {
        match self {
            AllreduceAlgo::RecursiveDoubling => "recursive_doubling",
            AllreduceAlgo::RingReduceScatter => "ring_reduce_scatter",
            AllreduceAlgo::ReduceBroadcast => "reduce_broadcast",
        }
    }

    pub fn supports(self, p: u32) -> bool {
        match self {
            AllreduceAlgo::RecursiveDoubling => allreduce::recursive_doubling::supports(p),
            AllreduceAlgo::RingReduceScatter => allreduce::ring::supports(p),
            AllreduceAlgo::ReduceBroadcast => allreduce::reduce_broadcast::supports(p),
        }
    }

    pub fn schedule(self, p: u32, msg: usize) -> CommSchedule {
        match self {
            AllreduceAlgo::RecursiveDoubling => allreduce::recursive_doubling::schedule(p, msg),
            AllreduceAlgo::RingReduceScatter => allreduce::ring::schedule(p, msg),
            AllreduceAlgo::ReduceBroadcast => allreduce::reduce_broadcast::schedule(p, msg),
        }
    }

    /// Stable class index for ML labels (the position in [`Self::ALL`];
    /// `indices_round_trip` pins the two in sync).
    pub fn index(self) -> usize {
        match self {
            AllreduceAlgo::RecursiveDoubling => 0,
            AllreduceAlgo::RingReduceScatter => 1,
            AllreduceAlgo::ReduceBroadcast => 2,
        }
    }

    pub fn from_index(i: usize) -> Option<Self> {
        Self::ALL.get(i).copied()
    }
}

impl fmt::Display for AllreduceAlgo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Either collective's algorithm, as a single label type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Algorithm {
    Allgather(AllgatherAlgo),
    Alltoall(AlltoallAlgo),
    Bcast(BcastAlgo),
    Allreduce(AllreduceAlgo),
}

impl Algorithm {
    pub fn collective(self) -> Collective {
        match self {
            Algorithm::Allgather(_) => Collective::Allgather,
            Algorithm::Alltoall(_) => Collective::Alltoall,
            Algorithm::Bcast(_) => Collective::Bcast,
            Algorithm::Allreduce(_) => Collective::Allreduce,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Allgather(a) => a.name(),
            Algorithm::Alltoall(a) => a.name(),
            Algorithm::Bcast(a) => a.name(),
            Algorithm::Allreduce(a) => a.name(),
        }
    }

    pub fn supports(self, p: u32) -> bool {
        match self {
            Algorithm::Allgather(a) => a.supports(p),
            Algorithm::Alltoall(a) => a.supports(p),
            Algorithm::Bcast(a) => a.supports(p),
            Algorithm::Allreduce(a) => a.supports(p),
        }
    }

    /// Whether the schedule generated at unit block size, simulated with a
    /// length multiplier, is exactly the schedule at that message size.
    /// True for every allgather/alltoall algorithm (all offsets scale
    /// linearly with the block); false for the chunked bcast/allreduce
    /// variants whose chunk boundaries depend on `msg mod p`.
    pub fn scale_invariant(self) -> bool {
        !matches!(
            self,
            Algorithm::Bcast(BcastAlgo::ScatterAllgather)
                | Algorithm::Bcast(BcastAlgo::PipelinedRing)
                | Algorithm::Allreduce(AllreduceAlgo::RingReduceScatter)
        )
    }

    pub fn schedule(self, p: u32, block: usize) -> CommSchedule {
        match self {
            Algorithm::Allgather(a) => a.schedule(p, block),
            Algorithm::Alltoall(a) => a.schedule(p, block),
            Algorithm::Bcast(a) => a.schedule(p, block),
            Algorithm::Allreduce(a) => a.schedule(p, block),
        }
    }

    /// Stable class index within the algorithm's collective.
    pub fn index(self) -> usize {
        match self {
            Algorithm::Allgather(a) => a.index(),
            Algorithm::Alltoall(a) => a.index(),
            Algorithm::Bcast(a) => a.index(),
            Algorithm::Allreduce(a) => a.index(),
        }
    }

    pub fn from_index(collective: Collective, i: usize) -> Option<Self> {
        match collective {
            Collective::Allgather => AllgatherAlgo::from_index(i).map(Algorithm::Allgather),
            Collective::Alltoall => AlltoallAlgo::from_index(i).map(Algorithm::Alltoall),
            Collective::Bcast => BcastAlgo::from_index(i).map(Algorithm::Bcast),
            Collective::Allreduce => AllreduceAlgo::from_index(i).map(Algorithm::Allreduce),
        }
    }

    /// All algorithms for a collective.
    pub fn all_for(collective: Collective) -> Vec<Algorithm> {
        match collective {
            Collective::Allgather => AllgatherAlgo::ALL
                .iter()
                .map(|&a| Algorithm::Allgather(a))
                .collect(),
            Collective::Alltoall => AlltoallAlgo::ALL
                .iter()
                .map(|&a| Algorithm::Alltoall(a))
                .collect(),
            Collective::Bcast => BcastAlgo::ALL
                .iter()
                .map(|&a| Algorithm::Bcast(a))
                .collect(),
            Collective::Allreduce => AllreduceAlgo::ALL
                .iter()
                .map(|&a| Algorithm::Allreduce(a))
                .collect(),
        }
    }

    /// All algorithms for a collective that are defined at `p` ranks.
    pub fn applicable_for(collective: Collective, p: u32) -> Vec<Algorithm> {
        Self::all_for(collective)
            .into_iter()
            .filter(|a| a.supports(p))
            .collect()
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.collective().name(), self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_round_trip() {
        for c in Collective::ALL {
            for a in Algorithm::all_for(c) {
                assert_eq!(Algorithm::from_index(c, a.index()), Some(a));
            }
        }
    }

    #[test]
    fn applicability_rules() {
        let ag = Algorithm::applicable_for(Collective::Allgather, 6);
        // 6 is even but not a power of two: RD drops out, NE stays.
        assert!(!ag.contains(&Algorithm::Allgather(AllgatherAlgo::RecursiveDoubling)));
        assert!(ag.contains(&Algorithm::Allgather(AllgatherAlgo::NeighborExchange)));
        let aa = Algorithm::applicable_for(Collective::Alltoall, 7);
        assert!(!aa.contains(&Algorithm::Alltoall(AlltoallAlgo::RecursiveDoubling)));
        assert_eq!(aa.len(), 4);
    }

    #[test]
    fn every_algorithm_supports_powers_of_two() {
        for p in [2u32, 4, 8, 16] {
            for c in Collective::ALL {
                assert_eq!(Algorithm::applicable_for(c, p).len(), c.algo_count());
            }
        }
    }

    #[test]
    fn scale_invariance_flags() {
        assert!(Algorithm::Allgather(AllgatherAlgo::Bruck).scale_invariant());
        assert!(Algorithm::Alltoall(AlltoallAlgo::ScatterDest).scale_invariant());
        assert!(Algorithm::Bcast(BcastAlgo::Binomial).scale_invariant());
        assert!(!Algorithm::Bcast(BcastAlgo::ScatterAllgather).scale_invariant());
        assert!(!Algorithm::Allreduce(AllreduceAlgo::RingReduceScatter).scale_invariant());
    }

    #[test]
    fn display_strings() {
        assert_eq!(
            Algorithm::Alltoall(AlltoallAlgo::ScatterDest).to_string(),
            "MPI_Alltoall:scatter_dest"
        );
    }

    #[test]
    fn serde_roundtrip() {
        let a = Algorithm::Allgather(AllgatherAlgo::Bruck);
        let json = serde_json::to_string(&a).unwrap();
        assert_eq!(serde_json::from_str::<Algorithm>(&json).unwrap(), a);
    }
}
