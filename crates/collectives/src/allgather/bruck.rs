//! Bruck (dissemination) allgather.
//!
//! ⌈log₂ p⌉ rounds for *any* p: in round k, rank r sends its first
//! min(2ᵏ, p−2ᵏ) accumulated blocks to rank (r − 2ᵏ) mod p and receives the
//! same amount from (r + 2ᵏ) mod p, appending to its accumulation. Blocks
//! end up rotated by r positions, so a final local rotation (through `Aux`)
//! restores rank order — the memory traffic of that rotation is Bruck's
//! classic large-message weakness and is faithfully charged by the cost
//! model.

use crate::schedule::{CommSchedule, Region, ScheduleBuilder};

/// Bruck is defined for any world size.
pub fn supports(_p: u32) -> bool {
    true
}

/// Build the schedule for `p` ranks with `block`-byte contributions.
pub fn schedule(p: u32, block: usize) -> CommSchedule {
    let b = block;
    let pu = p as usize;
    let mut sb = ScheduleBuilder::new(p, b, b, pu * b, pu * b);
    for r in 0..p {
        // Own block starts the accumulation at offset 0.
        sb.step(r, |s| s.copy(Region::input(0, b), Region::work(0, b)));
        let mut cur = 1usize; // blocks accumulated so far
        let mut k = 0u32;
        while cur < pu {
            let m = cur.min(pu - cur);
            let to = (r + p - (1 << k)) % p;
            let from = (r + (1 << k)) % p;
            sb.step(r, |s| {
                s.send(to, Region::work(0, m * b));
                s.recv(from, Region::work(cur * b, m * b));
            });
            cur += m;
            k += 1;
        }
        // Work[i] now holds block (r + i) mod p; rotate so block j sits at
        // offset j·b. Identity when r == 0.
        if r != 0 && p > 1 {
            let ru = r as usize;
            sb.step(r, |s| {
                s.copy(
                    Region::work(0, (pu - ru) * b),
                    Region::aux(ru * b, (pu - ru) * b),
                );
                s.copy(Region::work((pu - ru) * b, ru * b), Region::aux(0, ru * b));
                s.copy(Region::aux(0, pu * b), Region::work(0, pu * b));
            });
        }
    }
    sb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::check_allgather;

    #[test]
    fn correct_for_any_world_size() {
        for p in 1u32..=17 {
            check_allgather(&schedule(p, 8), 8).unwrap();
        }
    }

    #[test]
    fn ceil_log_rounds() {
        // p = 10: copy + rounds at distances 1,2,4,8 (partial) + rotation.
        let sch = schedule(10, 8);
        assert_eq!(sch.ranks[3].len(), 1 + 4 + 1);
    }

    #[test]
    fn rotation_copies_charged() {
        let p = 8u32;
        let b = 16usize;
        let sch = schedule(p, b);
        // Non-zero ranks pay ~2·p·b of rotation copies on top of the own-
        // block copy.
        assert!(sch.bytes_copied_by(3) >= 2 * p as usize * b);
        // Rank 0 needs no rotation.
        assert_eq!(sch.bytes_copied_by(0), b);
    }
}
