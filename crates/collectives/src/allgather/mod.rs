//! `MPI_Allgather` algorithms (§III of the paper).
//!
//! Contract shared by every generator here: each rank's `Input` buffer holds
//! its own `block`-byte contribution; after execution, each rank's `Work`
//! buffer holds all `p` blocks in rank order (`Work[i·b .. (i+1)·b]` = rank
//! i's block).

pub mod bruck;
pub mod neighbor_exchange;
pub mod recursive_doubling;
pub mod ring;

pub use bruck::schedule as bruck_schedule;
pub use neighbor_exchange::schedule as neighbor_exchange_schedule;
pub use recursive_doubling::schedule as recursive_doubling_schedule;
pub use ring::schedule as ring_schedule;
