//! Neighbour-exchange allgather — our reading of the paper's "Recursive
//! Doubling Communication" variant.
//!
//! The paper describes it as a Recursive-Doubling relative that "exchanges
//! subsets of data … resulting in lower communication overhead". That is
//! the neighbour-exchange scheme of Chen et al. (used by Open MPI): after an
//! initial single-block swap with one neighbour, ranks alternate between
//! their two ring neighbours, forwarding the *pair* of blocks they received
//! in the previous round. p/2 rounds total — half as many as Ring, at two
//! blocks per message — which trades latency terms for slightly larger
//! transfers. Requires an even world size.

use crate::schedule::{CommSchedule, Region, ScheduleBuilder};

/// Defined for even world sizes (and the degenerate p = 1).
pub fn supports(p: u32) -> bool {
    p == 1 || p.is_multiple_of(2)
}

/// Build the schedule for `p` ranks with `block`-byte contributions.
///
/// Panics if `!supports(p)`.
pub fn schedule(p: u32, block: usize) -> CommSchedule {
    assert!(
        supports(p),
        "neighbor exchange allgather requires an even world size, got {p}"
    );
    let b = block;
    let pu = p as usize;
    let mut sb = ScheduleBuilder::new(p, b, b, pu * b, 0);
    let q = p / 2; // number of block pairs
    for r in 0..p {
        sb.step(r, |s| {
            s.copy(Region::input(0, b), Region::work(r as usize * b, b))
        });
        if p == 1 {
            continue;
        }
        let even = r.is_multiple_of(2);
        // Round 0: swap single own blocks with the fixed first neighbour.
        let first = if even { r + 1 } else { r - 1 };
        sb.step(r, |s| {
            s.send(first, Region::work(r as usize * b, b));
            s.recv(first, Region::work(first as usize * b, b));
        });
        // Rounds 1..q: forward the pair received last round to alternating
        // neighbours. Pair indices follow the closed form derived from the
        // exchange pattern (validated exhaustively in tests).
        let mut last_pair = r / 2;
        for s_idx in 1..q {
            let (partner, recv_pair) = if even {
                if !s_idx.is_multiple_of(2) {
                    ((r + p - 1) % p, last_pair_sub(r / 2, s_idx.div_ceil(2), q))
                } else {
                    ((r + 1) % p, (r / 2 + s_idx / 2) % q)
                }
            } else if !s_idx.is_multiple_of(2) {
                ((r + 1) % p, (r / 2 + s_idx.div_ceil(2)) % q)
            } else {
                ((r + p - 1) % p, last_pair_sub(r / 2, s_idx / 2, q))
            };
            let send_off = 2 * last_pair as usize * b;
            let recv_off = 2 * recv_pair as usize * b;
            sb.step(r, |st| {
                st.send(partner, Region::work(send_off, 2 * b));
                st.recv(partner, Region::work(recv_off, 2 * b));
            });
            last_pair = recv_pair;
        }
    }
    sb.finish()
}

/// (a - d) mod q on u32 without underflow.
fn last_pair_sub(a: u32, d: u32, q: u32) -> u32 {
    (a + q - (d % q)) % q
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::check_allgather;

    #[test]
    fn correct_for_even_worlds() {
        for p in [1u32, 2, 4, 6, 8, 10, 12, 14, 16, 20] {
            check_allgather(&schedule(p, 8), 8).unwrap();
        }
    }

    #[test]
    fn half_the_rounds_of_ring() {
        let p = 12u32;
        let sch = schedule(p, 8);
        // copy + p/2 exchange rounds.
        assert_eq!(sch.ranks[5].len(), 1 + p as usize / 2);
    }

    #[test]
    fn bandwidth_matches_ring() {
        let p = 10u32;
        let b = 32usize;
        let sch = schedule(p, b);
        for r in 0..p {
            // 1 block + (p/2 - 1) pairs = p - 1 blocks.
            assert_eq!(sch.bytes_sent_by(r), (p as usize - 1) * b);
        }
    }

    #[test]
    #[should_panic(expected = "even world size")]
    fn rejects_odd_worlds() {
        schedule(7, 8);
    }
}
