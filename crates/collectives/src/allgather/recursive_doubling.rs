//! Recursive-Doubling allgather.
//!
//! log₂(p) rounds of pairwise exchange: in round k, rank r exchanges its
//! accumulated region of 2ᵏ consecutive blocks with partner `r XOR 2ᵏ`,
//! doubling its holdings each time. Requires a power-of-two world size
//! (the MVAPICH/MPICH implementation falls back to other algorithms
//! otherwise, and so does our registry).

use crate::schedule::{CommSchedule, Region, ScheduleBuilder};

/// Whether this algorithm is defined for `p` ranks.
pub fn supports(p: u32) -> bool {
    p.is_power_of_two()
}

/// Build the schedule for `p` ranks with `block`-byte contributions.
///
/// Panics if `!supports(p)`.
pub fn schedule(p: u32, block: usize) -> CommSchedule {
    assert!(
        supports(p),
        "recursive doubling allgather requires power-of-two ranks, got {p}"
    );
    let b = block;
    let mut sb = ScheduleBuilder::new(p, b, b, p as usize * b, 0);
    for r in 0..p {
        sb.step(r, |s| {
            s.copy(Region::input(0, b), Region::work(r as usize * b, b))
        });
        let mut k = 0u32;
        while (1 << k) < p {
            let size = 1usize << k;
            let partner = r ^ (1 << k);
            let my_off = (((r >> k) << k) as usize) * b;
            let partner_off = (((partner >> k) << k) as usize) * b;
            sb.step(r, |s| {
                s.send(partner, Region::work(my_off, size * b));
                s.recv(partner, Region::work(partner_off, size * b));
            });
            k += 1;
        }
    }
    sb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::check_allgather;

    #[test]
    fn correct_for_powers_of_two() {
        for p in [1u32, 2, 4, 8, 16, 32] {
            check_allgather(&schedule(p, 16), 16).unwrap();
        }
    }

    #[test]
    fn log_rounds() {
        let sch = schedule(16, 8);
        // 1 copy step + 4 exchange steps.
        assert_eq!(sch.ranks[0].len(), 5);
    }

    #[test]
    fn each_rank_sends_p_minus_1_blocks() {
        let p = 8u32;
        let b = 32usize;
        let sch = schedule(p, b);
        for r in 0..p {
            assert_eq!(sch.bytes_sent_by(r), (p as usize - 1) * b);
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn rejects_non_power_of_two() {
        schedule(6, 8);
    }
}
