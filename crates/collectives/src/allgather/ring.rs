//! Ring allgather.
//!
//! Ranks form a logical ring; in each of the p−1 rounds every rank forwards
//! to its right neighbour the block it received in the previous round (its
//! own block first). Bandwidth-optimal (each rank sends exactly (p−1)·b
//! bytes) but latency-bound at small sizes: p−1 rounds.

use crate::schedule::{CommSchedule, Region, ScheduleBuilder};

/// The ring is defined for any world size.
pub fn supports(_p: u32) -> bool {
    true
}

/// Build the schedule for `p` ranks with `block`-byte contributions.
pub fn schedule(p: u32, block: usize) -> CommSchedule {
    let b = block;
    let mut sb = ScheduleBuilder::new(p, b, b, p as usize * b, 0);
    for r in 0..p {
        sb.step(r, |s| {
            s.copy(Region::input(0, b), Region::work(r as usize * b, b))
        });
        if p == 1 {
            continue;
        }
        let right = (r + 1) % p;
        let left = (r + p - 1) % p;
        for k in 0..p - 1 {
            let send_blk = ((r + p - k) % p) as usize;
            let recv_blk = ((r + p - 1 - k) % p) as usize;
            sb.step(r, |s| {
                s.send(right, Region::work(send_blk * b, b));
                s.recv(left, Region::work(recv_blk * b, b));
            });
        }
    }
    sb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::check_allgather;

    #[test]
    fn correct_for_small_worlds() {
        for p in [1u32, 2, 3, 4, 5, 7, 8, 12, 16] {
            check_allgather(&schedule(p, 8), 8).unwrap();
        }
    }

    #[test]
    fn p_minus_1_rounds() {
        let sch = schedule(7, 8);
        assert_eq!(sch.ranks[3].len(), 7); // copy + 6 exchanges
    }

    #[test]
    fn bandwidth_optimal() {
        let p = 9u32;
        let b = 64usize;
        let sch = schedule(p, b);
        for r in 0..p {
            assert_eq!(sch.bytes_sent_by(r), (p as usize - 1) * b);
            assert_eq!(sch.messages_sent_by(r), p as usize - 1);
        }
    }
}
