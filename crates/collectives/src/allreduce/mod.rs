//! `MPI_Allreduce` algorithms — future-work extension #2, exercising the
//! IR's [`Op::Combine`](crate::schedule::Op::Combine) reduction operation.
//!
//! Contract: every rank holds a `msg`-byte vector in `Input`; after
//! execution every rank's `Work` buffer holds the elementwise reduction
//! (wrapping byte addition — see `Op::Combine`) of all p vectors.

pub mod recursive_doubling;
pub mod reduce_broadcast;
pub mod ring;

pub use recursive_doubling::schedule as recursive_doubling_schedule;
pub use reduce_broadcast::schedule as reduce_broadcast_schedule;
pub use ring::schedule as ring_schedule;
