//! Recursive-doubling allreduce.
//!
//! log₂(p) rounds; in round k each rank swaps its full partial vector with
//! partner `r XOR 2ᵏ` and folds the received vector in. Latency-optimal,
//! but the whole vector crosses the wire every round — the small-message
//! choice. Power-of-two worlds only.

use crate::schedule::{CommSchedule, Region, ScheduleBuilder};

/// Defined for power-of-two world sizes.
pub fn supports(p: u32) -> bool {
    p.is_power_of_two()
}

/// Build the schedule for `p` ranks reducing `msg`-byte vectors.
pub fn schedule(p: u32, msg: usize) -> CommSchedule {
    assert!(
        supports(p),
        "recursive doubling allreduce requires power-of-two ranks, got {p}"
    );
    let mut sb = ScheduleBuilder::new(p, msg, msg, msg, msg);
    sb.work_initialized_from_input();
    for r in 0..p {
        let mut k = 0u32;
        let mut pending = false;
        while (1u32 << k) < p {
            let partner = r ^ (1 << k);
            sb.step(r, |s| {
                if pending {
                    s.combine(Region::aux(0, msg), Region::work(0, msg));
                }
                s.send(partner, Region::work(0, msg));
                s.recv(partner, Region::aux(0, msg));
            });
            pending = true;
            k += 1;
        }
        if pending {
            sb.step(r, |s| s.combine(Region::aux(0, msg), Region::work(0, msg)));
        }
    }
    sb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::check_allreduce;

    #[test]
    fn correct_for_powers_of_two() {
        for p in [1u32, 2, 4, 8, 16, 32] {
            check_allreduce(&schedule(p, 16), 16).unwrap();
        }
    }

    #[test]
    fn full_vector_every_round() {
        let p = 8u32;
        let msg = 1024;
        let sch = schedule(p, msg);
        for r in 0..p {
            assert_eq!(sch.bytes_sent_by(r), 3 * msg); // log2(8) rounds
            assert_eq!(sch.messages_sent_by(r), 3);
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn rejects_non_power_of_two() {
        schedule(6, 8);
    }
}
