//! Binomial reduce-then-broadcast allreduce.
//!
//! Phase 1 folds all vectors onto rank 0 up a binomial tree (each rank
//! receives from higher partners, combining, until its round to send
//! arrives); phase 2 broadcasts the result back down the same tree.
//! 2·log₂(p) rounds with the full vector on every edge — simple, decent at
//! small sizes, dominated elsewhere; included because MPI libraries ship
//! it and a tuner must know when *not* to pick it.

use crate::schedule::{CommSchedule, Region, ScheduleBuilder};

/// Defined for any world size.
pub fn supports(_p: u32) -> bool {
    true
}

/// Build the schedule for `p` ranks reducing `msg`-byte vectors.
pub fn schedule(p: u32, msg: usize) -> CommSchedule {
    let mut sb = ScheduleBuilder::new(p, msg, msg, msg, msg);
    sb.work_initialized_from_input();
    let rounds = if p <= 1 {
        0
    } else {
        32 - (p - 1).leading_zeros()
    };
    for r in 0..p {
        // Phase 1: reduce to rank 0. Rank r (> 0) sends in round
        // trailing_zeros(r); before that it receives and folds.
        let send_round = if r == 0 { rounds } else { r.trailing_zeros() };
        let mut pending = false;
        for k in 0..send_round {
            let bit = 1u32 << k;
            if r + bit < p {
                sb.step(r, |s| {
                    if pending {
                        s.combine(Region::aux(0, msg), Region::work(0, msg));
                    }
                    s.recv(r + bit, Region::aux(0, msg));
                });
                pending = true;
            }
        }
        if r != 0 {
            let bit = 1u32 << send_round;
            sb.step(r, |s| {
                if pending {
                    s.combine(Region::aux(0, msg), Region::work(0, msg));
                }
                s.send(r - bit, Region::work(0, msg));
            });
        } else if pending {
            sb.step(r, |s| s.combine(Region::aux(0, msg), Region::work(0, msg)));
        }
        // Phase 2: binomial broadcast of the reduced vector.
        for k in 0..rounds {
            let bit = 1u32 << k;
            if r < bit && r + bit < p {
                sb.step(r, |s| s.send(r + bit, Region::work(0, msg)));
            } else if r >= bit && r < bit << 1 {
                sb.step(r, |s| s.recv(r - bit, Region::work(0, msg)));
            }
        }
    }
    sb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::check_allreduce;

    #[test]
    fn correct_for_any_world_size() {
        for p in 1u32..=17 {
            check_allreduce(&schedule(p, 8), 8).unwrap();
        }
    }

    #[test]
    fn root_receives_and_rebroadcasts() {
        let p = 16u32;
        let msg = 64;
        let sch = schedule(p, msg);
        // Root sends log2(p) full vectors in the broadcast phase.
        assert_eq!(sch.messages_sent_by(0), 4);
        // The last rank sends once (reduce) and only receives in the
        // broadcast; rank 5 also forwards once in the broadcast.
        assert_eq!(sch.messages_sent_by(15), 1);
        assert_eq!(sch.messages_sent_by(5), 2);
    }
}
