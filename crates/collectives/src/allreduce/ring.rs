//! Ring allreduce (reduce-scatter + allgather) — the bandwidth-optimal
//! workhorse popularized by large-scale deep learning.
//!
//! The vector splits into p near-equal chunks. p−1 reduce-scatter steps
//! circulate partial sums until each rank owns one fully reduced chunk,
//! then p−1 allgather steps circulate the finished chunks. Every rank
//! sends ≈ 2·msg·(p−1)/p bytes regardless of p; 2(p−1) latency terms make
//! it a poor fit for tiny vectors.
//!
//! Chunk boundaries depend on `msg mod p`, so these schedules are **not**
//! unit-scale invariant.

use crate::schedule::{CommSchedule, Region, ScheduleBuilder};

/// Defined for any world size.
pub fn supports(_p: u32) -> bool {
    true
}

fn chunk_off(msg: usize, p: u32, i: u32) -> usize {
    let p = p as usize;
    let i = i as usize % (p + 1);
    let base = msg / p;
    let rem = msg % p;
    base * i + rem.min(i)
}

fn chunk_range(msg: usize, p: u32, c: u32) -> (usize, usize) {
    let c = c % p;
    let a = chunk_off(msg, p, c);
    let b = chunk_off(msg, p, c + 1);
    (a, b - a)
}

/// Build the schedule for `p` ranks reducing `msg`-byte vectors.
pub fn schedule(p: u32, msg: usize) -> CommSchedule {
    let max_chunk = msg.div_ceil(p.max(1) as usize);
    let mut sb = ScheduleBuilder::new(p, msg, msg, msg, max_chunk.max(1));
    sb.work_initialized_from_input();
    if p == 1 {
        return sb.finish();
    }
    for r in 0..p {
        let right = (r + 1) % p;
        let left = (r + p - 1) % p;
        // Reduce-scatter: step k sends the running sum of chunk (r−k) and
        // receives chunk (r−k−1), folding it in at the start of the next
        // step (phase discipline: combines precede sends).
        let mut pending: Option<(usize, usize)> = None; // (work offset, len)
        for k in 0..p - 1 {
            let send_c = (r + p - k) % p;
            let recv_c = (r + p - 1 - k) % p;
            let (soff, slen) = chunk_range(msg, p, send_c);
            let (roff, rlen) = chunk_range(msg, p, recv_c);
            sb.step(r, |s| {
                if let Some((poff, plen)) = pending {
                    s.combine(Region::aux(0, plen), Region::work(poff, plen));
                }
                s.send(right, Region::work(soff, slen));
                s.recv(left, Region::aux(0, rlen));
            });
            pending = Some((roff, rlen));
        }
        // Allgather: step k sends finished chunk (r+1−k) and receives
        // chunk (r−k); the first step also folds the final partial.
        for k in 0..p - 1 {
            let send_c = (r + 1 + p - k) % p;
            let recv_c = (r + p - k) % p;
            let (soff, slen) = chunk_range(msg, p, send_c);
            let (roff, rlen) = chunk_range(msg, p, recv_c);
            sb.step(r, |s| {
                if let Some((poff, plen)) = pending.take() {
                    s.combine(Region::aux(0, plen), Region::work(poff, plen));
                }
                s.send(right, Region::work(soff, slen));
                s.recv(left, Region::work(roff, rlen));
            });
        }
    }
    sb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::check_allreduce;

    #[test]
    fn correct_for_any_world_size_and_ragged_sizes() {
        for p in 1u32..=12 {
            for msg in [1usize, 3, 16, 100] {
                check_allreduce(&schedule(p, msg), msg).unwrap();
            }
        }
    }

    #[test]
    fn bandwidth_is_two_msg_regardless_of_p() {
        let msg = 1200;
        for p in [4u32, 8, 12] {
            let sch = schedule(p, msg);
            let sent = sch.bytes_sent_by(0);
            let ideal = 2 * msg * (p as usize - 1) / p as usize;
            assert!(
                (sent as f64 - ideal as f64).abs() <= p as f64,
                "p={p}: sent {sent} vs ideal {ideal}"
            );
        }
    }

    #[test]
    fn two_p_minus_one_rounds() {
        let sch = schedule(6, 600);
        assert_eq!(sch.ranks[2].len(), 2 * 5);
    }
}
