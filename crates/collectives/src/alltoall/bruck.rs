//! Bruck alltoall.
//!
//! ⌈log₂ p⌉ communication rounds for any p, at the price of heavy local
//! data movement:
//!
//! 1. **Rotation**: rank r locally rotates its blocks so slot j holds the
//!    block destined to (r + j) mod p.
//! 2. **Rounds**: in round k, every rank packs the slots whose index has
//!    bit k set, sends the packed buffer to (r + 2ᵏ) mod p, receives the
//!    same slot set from (r − 2ᵏ) mod p, and unpacks at the start of the
//!    next round.
//! 3. **Inverse placement**: slot j now holds the block from origin
//!    (r − j) mod p; per-block copies restore origin order.
//!
//! Few large messages ⇒ wins when latency or per-message overhead dominates
//! (small messages, slow-clock CPUs, high-latency fabrics); the O(p·b·log p)
//! packing traffic ⇒ loses once messages outgrow the cache — the behaviour
//! Fig. 2 of the paper shows flipping between Frontera and MRI.

use crate::schedule::{CommSchedule, Region, ScheduleBuilder, StepBuilder};

/// Defined for any world size.
pub fn supports(_p: u32) -> bool {
    true
}

/// Build the schedule for `p` ranks with `block`-byte blocks.
pub fn schedule(p: u32, block: usize) -> CommSchedule {
    let b = block;
    let pu = p as usize;
    // Aux layout: [0 .. half·b) packed send staging, [half·b .. 2·half·b)
    // receive staging, [2·half·b .. 2·half·b + p·b) final-permutation staging.
    let half = pu.div_ceil(2);
    let aux_len = (2 * half + pu) * b;
    let mut sb = ScheduleBuilder::new(p, b, pu * b, pu * b, aux_len);
    for r in 0..p {
        let ru = r as usize;
        // Phase 1: rotation. Slot j := input block (r + j) mod p.
        sb.step(r, |s| {
            s.copy(
                Region::input(ru * b, (pu - ru) * b),
                Region::work(0, (pu - ru) * b),
            );
            if ru > 0 {
                s.copy(
                    Region::input(0, ru * b),
                    Region::work((pu - ru) * b, ru * b),
                );
            }
        });
        // Phase 2: rounds. `pending` = slots received last round, currently
        // staged in aux and unpacked at the start of the next step.
        let mut pending: Vec<usize> = Vec::new();
        let mut pending_off = 0usize;
        let mut k = 0u32;
        while (1u32 << k) < p {
            let bit = 1usize << k;
            let send_slots: Vec<usize> = (0..pu).filter(|j| j & bit != 0).collect();
            let m = send_slots.len();
            let to = (r + (1 << k)) % p;
            let from = (r + p - (1 << k)) % p;
            sb.step(r, |s| {
                unpack(s, &pending, pending_off, b);
                pack(s, &send_slots, 0, b);
                s.send(to, Region::aux(0, m * b));
                s.recv(from, Region::aux(m * b, m * b));
            });
            pending = send_slots;
            pending_off = m * b;
            k += 1;
        }
        // Phase 3: unpack the final round, then invert: the block in slot j
        // originates from (r − j) mod p and must land at Work[origin·b].
        let perm_base = 2 * half * b;
        sb.step(r, |s| {
            unpack(s, &pending, pending_off, b);
            if pu > 1 {
                for j in 0..pu {
                    let origin = (ru + pu - j) % pu;
                    s.copy(
                        Region::work(j * b, b),
                        Region::aux(perm_base + origin * b, b),
                    );
                }
                s.copy(Region::aux(perm_base, pu * b), Region::work(0, pu * b));
            }
        });
    }
    sb.finish()
}

/// Copy `slots` (maximally coalesced into contiguous runs) from Work into
/// aux starting at `aux_off`.
fn pack(s: &mut StepBuilder<'_>, slots: &[usize], aux_off: usize, b: usize) {
    for (run_start_idx, run_len) in runs(slots) {
        let first_slot = slots[run_start_idx];
        s.copy(
            Region::work(first_slot * b, run_len * b),
            Region::aux(aux_off + run_start_idx * b, run_len * b),
        );
    }
}

/// Copy received blocks from aux (starting at `aux_off`) back into their
/// Work `slots`, coalescing contiguous runs.
fn unpack(s: &mut StepBuilder<'_>, slots: &[usize], aux_off: usize, b: usize) {
    for (run_start_idx, run_len) in runs(slots) {
        let first_slot = slots[run_start_idx];
        s.copy(
            Region::aux(aux_off + run_start_idx * b, run_len * b),
            Region::work(first_slot * b, run_len * b),
        );
    }
}

/// Decompose a sorted slot list into (start index, length) contiguous runs.
fn runs(slots: &[usize]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < slots.len() {
        let mut j = i + 1;
        while j < slots.len() && slots[j] == slots[j - 1] + 1 {
            j += 1;
        }
        out.push((i, j - i));
        i = j;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::check_alltoall;

    #[test]
    fn correct_for_any_world_size() {
        for p in 1u32..=17 {
            check_alltoall(&schedule(p, 8), 8).unwrap();
        }
    }

    #[test]
    fn log_rounds_of_communication() {
        let p = 16u32;
        let sch = schedule(p, 8);
        for r in 0..p {
            assert_eq!(sch.messages_sent_by(r), 4); // log2(16)
        }
    }

    #[test]
    fn heavy_copy_traffic() {
        let p = 8u32;
        let b = 64usize;
        let sch = schedule(p, b);
        // Rotation (p·b) + per-round pack/unpack (~p·b/2 each way per round)
        // + final permutation (2·p·b) — far more copying than pairwise.
        assert!(sch.bytes_copied_by(1) > 4 * p as usize * b);
    }

    #[test]
    fn runs_coalesce() {
        assert_eq!(runs(&[1, 2, 3, 5, 6, 9]), vec![(0, 3), (3, 2), (5, 1)]);
        assert_eq!(runs(&[]), vec![]);
    }
}
