//! In-place alltoall (the MPI_IN_PLACE algorithm).
//!
//! The user's data already sits in the receive buffer
//! ([`CommSchedule::work_initialized_from_input`] is set), and the algorithm
//! exchanges block-by-block with every partner using sendrecv-replace
//! semantics: stage the outgoing block in `Aux`, send it, receive the
//! partner's block into the vacated slot. Memory footprint is a single
//! spare block — its selling point — at the price of p−1 strictly
//! serialized rounds, each with an extra staging copy.
//!
//! Pairing follows MPICH: lexicographic pair enumeration — rank r meets
//! partners 0, 1, …, r−1, r+1, …, p−1 in that order (XOR pairing for
//! power-of-two worlds, which aligns both sides' rounds).

use crate::schedule::{CommSchedule, Region, ScheduleBuilder};

/// Defined for any world size.
pub fn supports(_p: u32) -> bool {
    true
}

/// Build the schedule for `p` ranks with `block`-byte blocks.
pub fn schedule(p: u32, block: usize) -> CommSchedule {
    let b = block;
    let pu = p as usize;
    let mut sb = ScheduleBuilder::new(p, b, pu * b, pu * b, b);
    sb.work_initialized_from_input();
    let pow2 = p.is_power_of_two();
    for r in 0..p {
        let partners: Vec<u32> = if pow2 {
            (1..p).map(|k| r ^ k).collect()
        } else {
            (0..p).filter(|&q| q != r).collect()
        };
        for partner in partners {
            let slot = partner as usize * b;
            sb.step(r, |s| {
                s.copy(Region::work(slot, b), Region::aux(0, b));
                s.send(partner, Region::aux(0, b));
                s.recv(partner, Region::work(slot, b));
            });
        }
    }
    sb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::check_alltoall;

    #[test]
    fn correct_for_any_world_size() {
        for p in 1u32..=12 {
            check_alltoall(&schedule(p, 8), 8).unwrap();
        }
    }

    #[test]
    fn uses_single_block_of_scratch() {
        let sch = schedule(9, 32);
        assert_eq!(sch.aux_len, 32);
    }

    #[test]
    fn pays_a_staging_copy_every_round() {
        let p = 6u32;
        let b = 16usize;
        let sch = schedule(p, b);
        for r in 0..p {
            assert_eq!(sch.bytes_copied_by(r), (p as usize - 1) * b);
        }
    }

    #[test]
    fn work_is_preseeded() {
        assert!(schedule(4, 8).work_initialized_from_input);
    }
}
