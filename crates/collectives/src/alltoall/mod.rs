//! `MPI_Alltoall` algorithms (§III of the paper).
//!
//! Contract shared by every generator here: rank r's `Input` buffer holds p
//! blocks, the j-th destined to rank j; after execution rank r's `Work`
//! buffer holds p blocks, the i-th being the block rank i sent to r.

pub mod bruck;
pub mod inplace;
pub mod pairwise;
pub mod recursive_doubling;
pub mod scatter_dest;

pub use bruck::schedule as bruck_schedule;
pub use inplace::schedule as inplace_schedule;
pub use pairwise::schedule as pairwise_schedule;
pub use recursive_doubling::schedule as recursive_doubling_schedule;
pub use scatter_dest::schedule as scatter_dest_schedule;
