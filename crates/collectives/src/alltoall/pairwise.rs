//! Pairwise-exchange alltoall.
//!
//! p−1 rounds; in round k each rank exchanges exactly one block with one
//! partner. For power-of-two worlds the partner is `rank XOR k` (a perfect
//! pairing — both sides exchange in the same round); otherwise the shifted
//! pattern send-to `(r+k) mod p` / receive-from `(r−k) mod p` is used, as in
//! MPICH. One in-flight message per rank per round keeps NIC pressure at its
//! minimum — the large-message workhorse.

use crate::schedule::{CommSchedule, Region, ScheduleBuilder};

/// Defined for any world size.
pub fn supports(_p: u32) -> bool {
    true
}

/// Build the schedule for `p` ranks with `block`-byte blocks.
pub fn schedule(p: u32, block: usize) -> CommSchedule {
    let b = block;
    let pu = p as usize;
    let mut sb = ScheduleBuilder::new(p, b, pu * b, pu * b, 0);
    let pow2 = p.is_power_of_two();
    for r in 0..p {
        sb.step(r, |s| {
            s.copy(
                Region::input(r as usize * b, b),
                Region::work(r as usize * b, b),
            )
        });
        for k in 1..p {
            let (to, from) = if pow2 {
                (r ^ k, r ^ k)
            } else {
                ((r + k) % p, (r + p - k) % p)
            };
            sb.step(r, |s| {
                s.send(to, Region::input(to as usize * b, b));
                s.recv(from, Region::work(from as usize * b, b));
            });
        }
    }
    sb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::check_alltoall;

    #[test]
    fn correct_for_any_world_size() {
        for p in 1u32..=13 {
            check_alltoall(&schedule(p, 8), 8).unwrap();
        }
    }

    #[test]
    fn one_message_per_round() {
        let p = 8u32;
        let sch = schedule(p, 8);
        for r in 0..p {
            // copy step + p-1 rounds, one send each.
            assert_eq!(sch.ranks[r as usize].len(), p as usize);
            assert_eq!(sch.messages_sent_by(r), p as usize - 1);
        }
    }

    #[test]
    fn xor_pairing_used_for_powers_of_two() {
        let sch = schedule(4, 8);
        // Rank 1, round k=1: partner 1^1 = 0.
        let (to, _, _) = sch.ranks[1][1].sends().next().unwrap();
        assert_eq!(*to, 0);
    }
}
