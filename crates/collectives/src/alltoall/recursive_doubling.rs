//! Recursive-Doubling (hypercube) alltoall.
//!
//! log₂(p) rounds over a hypercube: in round k every rank exchanges with
//! partner `r XOR 2ᵏ` the p/2 blocks whose *destination* disagrees with r
//! in bit k. Each block is forwarded through intermediate ranks, so the
//! total traffic is (p/2)·log₂(p) blocks per rank — more than the p−1 of
//! Pairwise/Scatter-Dest — but in only log₂(p) messages: the classic
//! small-message/large-message trade. Power-of-two worlds only.
//!
//! ## Layout invariant
//!
//! At the start of round k (mask = 2ᵏ−1), rank r holds exactly the blocks
//! `(o, d)` with `o ≡ r (mod high bits ≥ k)` and `d ≡ r (mod low bits < k)`;
//! block `(o, d)` sits in Work slot `(d & !mask) | (o & mask)`. Kept blocks
//! never move under the next round's mask, received blocks are unpacked by
//! the same formula, and after the last round slot(o, r) = o — the buffer
//! finishes in origin order with no extra permutation. Both sides of an
//! exchange enumerate the transferred set in the same canonical (d, o)
//! order, so the packed buffer needs no header.

use crate::schedule::{CommSchedule, Region, ScheduleBuilder};

/// Defined for power-of-two world sizes.
pub fn supports(p: u32) -> bool {
    p.is_power_of_two()
}

/// The blocks rank `q` sends in round k (bit = 2ᵏ), in canonical (d, o)
/// order, as (origin, dest) pairs.
fn send_set(q: u32, bit: u32, p: u32) -> impl Iterator<Item = (u32, u32)> {
    let mask = bit - 1;
    let k = bit.trailing_zeros();
    // d = (q & mask) | (c << k) with bit k of d ≠ bit k of q; c enumerates
    // the free high bits (LSB of c is d's bit k).
    let d_low = q & mask;
    let q_bit = (q >> k) & 1;
    let o_high = q & !mask;
    (0..(p >> k))
        .filter(move |c| (c & 1) != q_bit)
        .flat_map(move |c| {
            (0..bit).map(move |a| {
                let o = o_high | a;
                let d = d_low | (c << k);
                (o, d)
            })
        })
}

/// Work slot of block (o, d) under round mask.
fn slot(o: u32, d: u32, mask: u32) -> usize {
    ((d & !mask) | (o & mask)) as usize
}

/// Build the schedule for `p` ranks with `block`-byte blocks.
///
/// Panics if `!supports(p)`.
pub fn schedule(p: u32, block: usize) -> CommSchedule {
    assert!(
        supports(p),
        "recursive doubling alltoall requires power-of-two ranks, got {p}"
    );
    let b = block;
    let pu = p as usize;
    let half = pu / 2;
    // Aux: [0..half·b) send staging, [half·b..2·half·b) receive staging.
    let mut sb = ScheduleBuilder::new(p, b, pu * b, pu * b, (2 * half).max(1) * b);

    // Initial layout: slot(r, d, 0) = d, i.e. Work = Input verbatim.
    for r in 0..p {
        sb.step(r, |s| {
            s.copy(Region::input(0, pu * b), Region::work(0, pu * b))
        });
    }

    let mut k = 0u32;
    while (1u32 << k) < p {
        let bit = 1u32 << k;
        let mask = bit - 1;
        let mask2 = (bit << 1) - 1;
        let prev_bit = bit >> 1;
        for r in 0..p {
            let partner = r ^ bit;
            sb.step(r, |s| {
                // Unpack the previous round's arrivals into their slots
                // under this round's mask (no-op in round 0).
                if k > 0 {
                    for (i, (o, d)) in send_set(r ^ prev_bit, prev_bit, p).enumerate() {
                        s.copy(
                            Region::aux((half + i) * b, b),
                            Region::work(slot(o, d, mask) * b, b),
                        );
                    }
                }
                // Pack this round's outgoing blocks in canonical order.
                let mut m = 0usize;
                for (i, (o, d)) in send_set(r, bit, p).enumerate() {
                    s.copy(Region::work(slot(o, d, mask) * b, b), Region::aux(i * b, b));
                    m += 1;
                }
                s.send(partner, Region::aux(0, m * b));
                s.recv(partner, Region::aux(half * b, m * b));
            });
        }
        let _ = mask2;
        k += 1;
    }

    // Final step: unpack the last round. With the full mask, slot(o, r) = o,
    // so the buffer is already in origin order once unpacked.
    if p > 1 {
        let last_bit = p >> 1;
        let full_mask = p - 1;
        for r in 0..p {
            sb.step(r, |s| {
                for (i, (o, d)) in send_set(r ^ last_bit, last_bit, p).enumerate() {
                    debug_assert_eq!(d, r);
                    s.copy(
                        Region::aux((half + i) * b, b),
                        Region::work(slot(o, d, full_mask) * b, b),
                    );
                }
            });
        }
    }
    sb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::check_alltoall;

    #[test]
    fn correct_for_powers_of_two() {
        for p in [1u32, 2, 4, 8, 16, 32, 64] {
            check_alltoall(&schedule(p, 8), 8).unwrap();
        }
    }

    #[test]
    fn send_set_has_half_the_blocks() {
        for p in [2u32, 4, 8, 16] {
            for k in 0..p.trailing_zeros() {
                for r in 0..p {
                    assert_eq!(send_set(r, 1 << k, p).count() as u32, p / 2);
                }
            }
        }
    }

    #[test]
    fn send_set_destinations_disagree_on_bit_k() {
        let p = 16u32;
        for k in 0..4 {
            let bit = 1u32 << k;
            for r in 0..p {
                for (o, d) in send_set(r, bit, p) {
                    assert_ne!(d & bit, r & bit, "r={r} k={k} block=({o},{d})");
                    assert_eq!(o & !(bit - 1), r & !(bit - 1));
                    assert_eq!(d & (bit - 1), r & (bit - 1));
                }
            }
        }
    }

    #[test]
    fn log_messages_but_extra_volume() {
        let p = 16u32;
        let b = 32usize;
        let sch = schedule(p, b);
        for r in 0..p {
            assert_eq!(sch.messages_sent_by(r), 4); // log2(16)
                                                    // (p/2)·log2(p) blocks — more volume than pairwise's p−1.
            assert_eq!(sch.bytes_sent_by(r), 8 * 4 * b);
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn rejects_non_power_of_two() {
        schedule(6, 8);
    }
}
