//! Scatter-Destination alltoall.
//!
//! Every rank posts p−1 direct sends (block j straight to rank j) and p−1
//! receives, then waits for all of them — one communication phase, maximal
//! concurrency. Bandwidth-optimal and latency-minimal per message, but it
//! floods the NIC with p−1 concurrent messages per rank, so at scale its
//! cost is dominated by injection overhead and NIC serialization — exactly
//! why the paper sees it lose on small messages and win on mid-size ones
//! when the fabric is fast (MRI's HDR).
//!
//! Sends are staggered as (r + k) mod p, k = 1..p — the classic rotation
//! that avoids every rank hammering rank 0 first.

use crate::schedule::{CommSchedule, Region, ScheduleBuilder};

/// Defined for any world size.
pub fn supports(_p: u32) -> bool {
    true
}

/// Build the schedule for `p` ranks with `block`-byte blocks.
pub fn schedule(p: u32, block: usize) -> CommSchedule {
    let b = block;
    let pu = p as usize;
    let mut sb = ScheduleBuilder::new(p, b, pu * b, pu * b, 0);
    for r in 0..p {
        sb.step(r, |s| {
            s.copy(
                Region::input(r as usize * b, b),
                Region::work(r as usize * b, b),
            );
            for k in 1..p {
                let dst = (r + k) % p;
                s.send(dst, Region::input(dst as usize * b, b));
            }
            for k in 1..p {
                let src = (r + p - k) % p;
                s.recv(src, Region::work(src as usize * b, b));
            }
        });
    }
    sb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::check_alltoall;

    #[test]
    fn correct_for_any_world_size() {
        for p in 1u32..=12 {
            check_alltoall(&schedule(p, 8), 8).unwrap();
        }
    }

    #[test]
    fn single_phase() {
        let sch = schedule(9, 8);
        assert_eq!(sch.max_steps(), 1);
    }

    #[test]
    fn p_minus_1_messages_per_rank() {
        let p = 10u32;
        let sch = schedule(p, 16);
        for r in 0..p {
            assert_eq!(sch.messages_sent_by(r), p as usize - 1);
            assert_eq!(sch.bytes_sent_by(r), (p as usize - 1) * 16);
        }
    }
}
