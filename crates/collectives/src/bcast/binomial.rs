//! Binomial-tree broadcast.
//!
//! ⌈log₂ p⌉ rounds: in round k every rank that already holds the payload
//! (rank < 2ᵏ) forwards it to rank + 2ᵏ. The latency-optimal classic for
//! small and medium messages; the full payload crosses every tree edge, so
//! large messages want the pipelined or scatter-based variants instead.

use crate::schedule::{CommSchedule, Region, ScheduleBuilder};

/// Defined for any world size.
pub fn supports(_p: u32) -> bool {
    true
}

/// Build the schedule for `p` ranks and a `msg`-byte payload from rank 0.
pub fn schedule(p: u32, msg: usize) -> CommSchedule {
    let mut sb = ScheduleBuilder::new(p, msg, msg, msg, 0);
    for r in 0..p {
        if r == 0 {
            sb.step(r, |s| s.copy(Region::input(0, msg), Region::work(0, msg)));
        }
        let mut k = 0u32;
        while (1u32 << k) < p {
            let bit = 1u32 << k;
            if r < bit && r + bit < p {
                sb.step(r, |s| s.send(r + bit, Region::work(0, msg)));
            } else if r >= bit && r < bit << 1 {
                sb.step(r, |s| s.recv(r - bit, Region::work(0, msg)));
            }
            k += 1;
        }
    }
    sb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::check_bcast;

    #[test]
    fn correct_for_any_world_size() {
        for p in 1u32..=17 {
            check_bcast(&schedule(p, 8), 8).unwrap();
        }
    }

    #[test]
    fn root_sends_log_p_messages() {
        let sch = schedule(16, 64);
        assert_eq!(sch.messages_sent_by(0), 4);
        // The last rank only receives.
        assert_eq!(sch.messages_sent_by(15), 0);
    }

    #[test]
    fn every_edge_carries_the_full_payload() {
        let p = 8u32;
        let msg = 256;
        let sch = schedule(p, msg);
        let total: usize = (0..p).map(|r| sch.bytes_sent_by(r)).sum();
        assert_eq!(total, (p as usize - 1) * msg);
    }
}
