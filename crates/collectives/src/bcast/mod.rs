//! `MPI_Bcast` algorithms — the first of the paper's future-work
//! extensions ("a broader range of MPI collective communication").
//!
//! Contract: rank 0 (the root) holds the `msg`-byte payload in `Input`;
//! after execution every rank's `Work` buffer holds that payload. Non-root
//! ranks' `Input` contents are ignored.

pub mod binomial;
pub mod pipelined_ring;
pub mod scatter_allgather;

pub use binomial::schedule as binomial_schedule;
pub use pipelined_ring::schedule as pipelined_ring_schedule;
pub use scatter_allgather::schedule as scatter_allgather_schedule;
