//! Pipelined chain broadcast.
//!
//! The payload is cut into `SEGMENTS` pieces pushed down the rank chain
//! 0 → 1 → … → p−1; once the pipe fills, every link forwards a segment per
//! step, overlapping the hops. Latency is (p − 2 + S) segment-times rather
//! than binomial's log₂(p) payload-times — it wins for very large messages
//! on longer chains.
//!
//! Segment boundaries depend on `msg mod SEGMENTS`, so these schedules are
//! **not** unit-scale invariant.

use crate::schedule::{CommSchedule, Region, ScheduleBuilder};

/// Pipeline depth.
pub const SEGMENTS: usize = 8;

/// Defined for any world size.
pub fn supports(_p: u32) -> bool {
    true
}

fn seg_off(msg: usize, i: usize) -> usize {
    let base = msg / SEGMENTS;
    let rem = msg % SEGMENTS;
    base * i + rem.min(i)
}

fn seg_range(msg: usize, i: usize) -> (usize, usize) {
    (seg_off(msg, i), seg_off(msg, i + 1) - seg_off(msg, i))
}

/// Build the schedule for `p` ranks and a `msg`-byte payload from rank 0.
pub fn schedule(p: u32, msg: usize) -> CommSchedule {
    let mut sb = ScheduleBuilder::new(p, msg, msg, msg, 0);
    for r in 0..p {
        if r == 0 {
            sb.step(r, |s| s.copy(Region::input(0, msg), Region::work(0, msg)));
            if p > 1 {
                for i in 0..SEGMENTS {
                    let (off, len) = seg_range(msg, i);
                    sb.step(r, |s| s.send(1, Region::work(off, len)));
                }
            }
        } else {
            // Middle links receive segment s while forwarding segment s−1;
            // a trailing step flushes the last segment.
            let forwards = r + 1 < p;
            for i in 0..SEGMENTS {
                let (off, len) = seg_range(msg, i);
                sb.step(r, |s| {
                    if forwards && i >= 1 {
                        let (poff, plen) = seg_range(msg, i - 1);
                        s.send(r + 1, Region::work(poff, plen));
                    }
                    s.recv(r - 1, Region::work(off, len));
                });
            }
            if forwards {
                let (off, len) = seg_range(msg, SEGMENTS - 1);
                sb.step(r, |s| s.send(r + 1, Region::work(off, len)));
            }
        }
    }
    sb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::check_bcast;

    #[test]
    fn correct_for_any_world_size_and_ragged_sizes() {
        for p in 1u32..=10 {
            for msg in [1usize, 5, 8, 63, 256] {
                check_bcast(&schedule(p, msg), msg).unwrap();
            }
        }
    }

    #[test]
    fn middle_ranks_forward_everything() {
        let p = 6u32;
        let msg = 4096;
        let sch = schedule(p, msg);
        for r in 0..p - 1 {
            assert_eq!(sch.bytes_sent_by(r), msg, "rank {r}");
        }
        assert_eq!(sch.bytes_sent_by(p - 1), 0);
    }

    #[test]
    fn pipeline_depth_bounds_steps() {
        let sch = schedule(8, 1 << 16);
        // Middle ranks: SEGMENTS recv steps + 1 flush.
        assert_eq!(sch.ranks[3].len(), SEGMENTS + 1);
    }
}
