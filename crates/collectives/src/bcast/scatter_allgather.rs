//! Scatter + allgather broadcast (the van de Geijn algorithm).
//!
//! The payload is split into p (near-)equal chunks; a binomial-tree
//! scatter delivers chunk i to rank i in ⌈log₂ p⌉ rounds moving only
//! msg/2 bytes per round at the root, then a ring allgather completes the
//! broadcast bandwidth-optimally. The large-message champion: every rank
//! sends ≈ msg·(p−1)/p + msg/2 bytes instead of binomial's full-payload
//! edges.
//!
//! Chunk boundaries depend on `msg mod p`, so these schedules are **not**
//! unit-scale invariant (see `Algorithm::scale_invariant`).

use crate::schedule::{CommSchedule, Region, ScheduleBuilder};

/// Defined for any world size.
pub fn supports(_p: u32) -> bool {
    true
}

/// Byte offset of chunk boundary `i` when `msg` bytes split into `p`
/// near-equal chunks (first `msg % p` chunks get the extra byte).
pub(crate) fn chunk_off(msg: usize, p: u32, i: u32) -> usize {
    let p = p as usize;
    let i = i as usize;
    let base = msg / p;
    let rem = msg % p;
    base * i + rem.min(i)
}

/// Byte range covering chunks `[lo, hi)`.
fn chunk_range(msg: usize, p: u32, lo: u32, hi: u32) -> (usize, usize) {
    let a = chunk_off(msg, p, lo);
    let b = chunk_off(msg, p, hi);
    (a, b - a)
}

/// Build the schedule for `p` ranks and a `msg`-byte payload from rank 0.
pub fn schedule(p: u32, msg: usize) -> CommSchedule {
    let mut sb = ScheduleBuilder::new(p, msg, msg, msg, 0);
    let rounds = if p <= 1 {
        0
    } else {
        32 - (p - 1).leading_zeros()
    };
    for r in 0..p {
        if r == 0 {
            sb.step(r, |s| s.copy(Region::input(0, msg), Region::work(0, msg)));
        }
        // Binomial scatter, high distance first: after receiving its chunk
        // range [r, r + 2^k_r), a rank halves and forwards the upper part.
        for k in (0..rounds).rev() {
            let bit = 1u32 << k;
            if r % (bit << 1) == 0 && r + bit < p {
                // Send chunks [r+bit, min(r+2bit, p)) to r+bit.
                let hi = (r + (bit << 1)).min(p);
                let (off, len) = chunk_range(msg, p, r + bit, hi);
                sb.step(r, |s| s.send(r + bit, Region::work(off, len)));
            } else if r % (bit << 1) == bit {
                let hi = (r + bit).min(p);
                let (off, len) = chunk_range(msg, p, r, hi);
                sb.step(r, |s| s.recv(r - bit, Region::work(off, len)));
            }
        }
        // Ring allgather over the chunks.
        if p > 1 {
            let right = (r + 1) % p;
            let left = (r + p - 1) % p;
            for k in 0..p - 1 {
                let send_chunk = (r + p - k) % p;
                let recv_chunk = (r + p - 1 - k) % p;
                let (soff, slen) = chunk_range(msg, p, send_chunk, send_chunk + 1);
                let (roff, rlen) = chunk_range(msg, p, recv_chunk, recv_chunk + 1);
                sb.step(r, |s| {
                    s.send(right, Region::work(soff, slen));
                    s.recv(left, Region::work(roff, rlen));
                });
            }
        }
    }
    sb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::check_bcast;

    #[test]
    fn correct_for_any_world_size_and_ragged_sizes() {
        for p in 1u32..=13 {
            for msg in [1usize, 7, 64, 100] {
                check_bcast(&schedule(p, msg), msg).unwrap();
            }
        }
    }

    #[test]
    fn chunk_offsets_partition_the_payload() {
        let msg = 103;
        let p = 8;
        assert_eq!(chunk_off(msg, p, 0), 0);
        assert_eq!(chunk_off(msg, p, p), msg);
        for i in 0..p {
            assert!(chunk_off(msg, p, i) <= chunk_off(msg, p, i + 1));
        }
    }

    #[test]
    fn root_sends_less_than_binomial() {
        let p = 16u32;
        let msg = 1 << 20;
        let sag = schedule(p, msg);
        let bin = crate::bcast::binomial::schedule(p, msg);
        assert!(sag.bytes_sent_by(0) < bin.bytes_sent_by(0) / 2);
    }
}
