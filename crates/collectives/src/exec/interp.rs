//! Sequential byte-accurate interpreter.
//!
//! Executes a [`CommSchedule`] on real byte buffers, single-threaded, by
//! cooperative round-robin: when a rank reaches a step it immediately runs
//! the step's copies and posts its sends into a global mailbox; the step
//! then completes once every expected message has arrived. This mirrors the
//! MPI semantics the schedules are written against and is the correctness
//! oracle for both the threaded executor and the virtual-time executor.

use crate::exec::ExecError;
use crate::schedule::{Buf, CommSchedule, Op, Region};
use std::collections::HashMap;

/// Per-rank buffer state during interpretation.
struct RankState {
    rank: u32,
    input: Vec<u8>,
    work: Vec<u8>,
    aux: Vec<u8>,
    /// Index of the next step to finish.
    step: usize,
    /// Whether the current step's copies/sends have already run.
    posted: bool,
}

impl RankState {
    fn read(&self, r: &Region) -> Vec<u8> {
        let buf = match r.buf {
            Buf::Input => &self.input,
            Buf::Work => &self.work,
            Buf::Aux => &self.aux,
        };
        buf[r.offset..r.end()].to_vec()
    }

    fn write(&mut self, r: &Region, data: &[u8]) -> Result<(), ExecError> {
        if data.len() != r.len {
            return Err(ExecError::PayloadMismatch {
                rank: self.rank,
                expected: r.len,
                got: data.len(),
            });
        }
        let buf = match r.buf {
            Buf::Input => return Err(ExecError::ReadOnlyInputWrite { rank: self.rank }),
            Buf::Work => &mut self.work,
            Buf::Aux => &mut self.aux,
        };
        buf[r.offset..r.offset + data.len()].copy_from_slice(data);
        Ok(())
    }

    fn combine(&mut self, r: &Region, data: &[u8]) -> Result<(), ExecError> {
        if data.len() != r.len {
            return Err(ExecError::PayloadMismatch {
                rank: self.rank,
                expected: r.len,
                got: data.len(),
            });
        }
        let buf = match r.buf {
            Buf::Input => return Err(ExecError::ReadOnlyInputWrite { rank: self.rank }),
            Buf::Work => &mut self.work,
            Buf::Aux => &mut self.aux,
        };
        for (d, s) in buf[r.offset..r.offset + data.len()].iter_mut().zip(data) {
            *d = d.wrapping_add(*s);
        }
        Ok(())
    }
}

/// Execute `schedule` with the given per-rank input buffers; returns each
/// rank's `Work` buffer after completion.
///
/// Fails with an [`ExecError`] if the schedule is structurally invalid for
/// the inputs (wrong buffer sizes) or if execution cannot make progress
/// (both of which
/// [`CommSchedule::validate`](crate::schedule::CommSchedule::validate)
/// would have ruled out).
#[allow(clippy::needless_range_loop)] // ranks is indexed mutably at several sites
pub fn run(schedule: &CommSchedule, inputs: &[Vec<u8>]) -> Result<Vec<Vec<u8>>, ExecError> {
    let world = schedule.world as usize;
    if inputs.len() != world {
        return Err(ExecError::InputCount {
            expected: world,
            got: inputs.len(),
        });
    }
    for (r, inp) in inputs.iter().enumerate() {
        if inp.len() != schedule.input_len {
            return Err(ExecError::InputLength {
                rank: r,
                expected: schedule.input_len,
                got: inp.len(),
            });
        }
    }

    let mut ranks: Vec<RankState> = inputs
        .iter()
        .enumerate()
        .map(|(r, inp)| {
            let mut work = vec![0u8; schedule.work_len];
            if schedule.work_initialized_from_input {
                work[..inp.len()].copy_from_slice(inp);
            }
            RankState {
                rank: r as u32,
                input: inp.clone(),
                work,
                aux: vec![0u8; schedule.aux_len],
                step: 0,
                posted: false,
            }
        })
        .collect();

    // Mailbox: (src, dst, tag) -> payload.
    let mut mail: HashMap<(u32, u32, u32), Vec<u8>> = HashMap::new();

    loop {
        let mut progressed = false;
        let mut all_done = true;
        for rank in 0..world {
            let nsteps = schedule.ranks[rank].len();
            if ranks[rank].step >= nsteps {
                continue;
            }
            all_done = false;
            let step = &schedule.ranks[rank].ops_at(ranks[rank].step);

            if !ranks[rank].posted {
                // Phase 1: copies and reductions, in order.
                for op in step.iter() {
                    match op {
                        Op::Copy { src, dst } => {
                            let data = ranks[rank].read(src);
                            ranks[rank].write(dst, &data)?;
                        }
                        Op::Combine { src, dst } => {
                            let data = ranks[rank].read(src);
                            ranks[rank].combine(dst, &data)?;
                        }
                        _ => {}
                    }
                }
                // Phase 2: post sends.
                for op in step.iter() {
                    if let Op::Send { to, tag, region } = op {
                        let data = ranks[rank].read(region);
                        let key = (rank as u32, *to, *tag);
                        if mail.insert(key, data).is_some() {
                            return Err(ExecError::DuplicateMessage {
                                src: key.0,
                                dst: key.1,
                                tag: key.2,
                            });
                        }
                    }
                }
                ranks[rank].posted = true;
                progressed = true;
            }

            // Phase 3: complete receives if everything has arrived.
            let ready = step.iter().all(|op| match op {
                Op::Recv { from, tag, .. } => mail.contains_key(&(*from, rank as u32, *tag)),
                _ => true,
            });
            if ready {
                for op in step.iter() {
                    if let Op::Recv { from, tag, region } = op {
                        let Some(data) = mail.remove(&(*from, rank as u32, *tag)) else {
                            // `ready` just saw this key; its absence means the
                            // mailbox was corrupted, which is a deadlock in
                            // disguise.
                            return Err(ExecError::Deadlock);
                        };
                        ranks[rank].write(region, &data)?;
                    }
                }
                ranks[rank].step += 1;
                ranks[rank].posted = false;
                progressed = true;
            }
        }
        if all_done {
            break;
        }
        if !progressed {
            return Err(ExecError::Deadlock);
        }
    }
    if !mail.is_empty() {
        return Err(ExecError::UnconsumedMessages { count: mail.len() });
    }
    Ok(ranks.into_iter().map(|r| r.work).collect())
}

/// Helper so the hot loop above can borrow a step's ops without fighting
/// the borrow checker over `ranks`.
trait OpsAt {
    fn ops_at(&self, idx: usize) -> Vec<Op>;
}

impl OpsAt for Vec<crate::schedule::Step> {
    fn ops_at(&self, idx: usize) -> Vec<Op> {
        self[idx].ops.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{Region, ScheduleBuilder};

    #[test]
    fn two_rank_exchange_moves_bytes() {
        let b = 4;
        let mut sb = ScheduleBuilder::new(2, b, b, 2 * b, 0);
        for r in 0..2u32 {
            let peer = 1 - r;
            sb.step(r, |s| {
                s.copy(Region::input(0, b), Region::work(r as usize * b, b));
                s.send(peer, Region::input(0, b));
                s.recv(peer, Region::work(peer as usize * b, b));
            });
        }
        let sch = sb.finish();
        sch.validate().unwrap();
        let out = run(&sch, &[vec![0xAA; b], vec![0xBB; b]]).unwrap();
        assert_eq!(out[0], [[0xAA; 4], [0xBB; 4]].concat());
        assert_eq!(out[1], [[0xAA; 4], [0xBB; 4]].concat());
    }

    #[test]
    fn cross_step_matching_works() {
        // Rank 0 sends in its step 0; rank 1 receives in its step 1.
        let b = 4;
        let mut sb = ScheduleBuilder::new(2, b, b, b, b);
        sb.step(0, |s| {
            s.send(1, Region::input(0, b));
            s.recv(1, Region::work(0, b));
        });
        sb.step(1, |s| s.send(0, Region::input(0, b)));
        sb.step(1, |s| s.recv(0, Region::work(0, b)));
        let sch = sb.finish();
        sch.validate().unwrap();
        let out = run(&sch, &[vec![1; b], vec![2; b]]).unwrap();
        assert_eq!(out[0], vec![2; b]);
        assert_eq!(out[1], vec![1; b]);
    }

    #[test]
    fn in_place_initialization_seeds_work() {
        let b = 4;
        let mut sb = ScheduleBuilder::new(1, b, b, b, 0);
        sb.work_initialized_from_input();
        sb.step(0, |s| s.copy(Region::work(0, 0), Region::work(0, 0))); // dropped, empty program
        let sch = sb.finish();
        let out = run(&sch, &[vec![7; b]]).unwrap();
        assert_eq!(out[0], vec![7; b]);
    }

    #[test]
    fn missing_sender_reports_deadlock() {
        let b = 4;
        let mut sb = ScheduleBuilder::new(2, b, b, b, 0);
        sb.step(1, |s| s.recv(0, Region::work(0, b)));
        let sch = sb.finish(); // invalid, but run() must still detect it
        let err = run(&sch, &[vec![0; b], vec![0; b]]).unwrap_err();
        assert_eq!(err, ExecError::Deadlock);
    }

    #[test]
    fn wrong_input_shape_is_reported() {
        let b = 4;
        let sb = ScheduleBuilder::new(2, b, b, b, 0);
        let sch = sb.finish();
        assert_eq!(
            run(&sch, &[vec![0; b]]).unwrap_err(),
            ExecError::InputCount {
                expected: 2,
                got: 1
            }
        );
        assert_eq!(
            run(&sch, &[vec![0; b], vec![0; b + 1]]).unwrap_err(),
            ExecError::InputLength {
                rank: 1,
                expected: b,
                got: b + 1
            }
        );
    }

    #[test]
    fn unreceived_message_is_reported() {
        let b = 4;
        let mut sb = ScheduleBuilder::new(2, b, b, b, 0);
        sb.step(0, |s| s.send(1, Region::input(0, b)));
        let sch = sb.finish(); // invalid: rank 1 never receives
        let err = run(&sch, &[vec![0; b], vec![0; b]]).unwrap_err();
        assert_eq!(err, ExecError::UnconsumedMessages { count: 1 });
    }
}
