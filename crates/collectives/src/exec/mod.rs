//! Schedule executors: three backends consuming the same IR.

pub mod interp;
pub mod sim;
pub mod threaded;

pub use sim::SimResult;

use std::fmt;

/// Failure of a byte-moving executor ([`interp`] or [`threaded`]).
///
/// Schedules straight out of a generator that passed
/// [`CommSchedule::validate`](crate::schedule::CommSchedule::validate)
/// never produce these; the executors still refuse to abort the process on
/// malformed input so a measurement sweep can skip a bad configuration and
/// keep going.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// Input buffer count doesn't match the schedule's world size.
    InputCount { expected: usize, got: usize },
    /// One rank's input buffer has the wrong length.
    InputLength {
        rank: usize,
        expected: usize,
        got: usize,
    },
    /// A message payload didn't match the length of its target region.
    PayloadMismatch {
        rank: u32,
        expected: usize,
        got: usize,
    },
    /// An op attempted to write into the read-only input buffer.
    ReadOnlyInputWrite { rank: u32 },
    /// Two in-flight messages carried the same (src, dst, tag).
    DuplicateMessage { src: u32, dst: u32, tag: u32 },
    /// No rank can make progress: the schedule receives a message nobody
    /// sends (which `validate` would have rejected).
    Deadlock,
    /// Execution completed but sent messages were never received.
    UnconsumedMessages { count: usize },
    /// A rank thread panicked in the threaded executor; the panic payload
    /// text is preserved so the failing rank is identifiable.
    RankPanicked { rank: u32, message: String },
    /// A rank's inbox closed while it still awaited a message — every peer
    /// that could have sent it has already exited (the threaded executor's
    /// analogue of [`ExecError::Deadlock`]).
    ChannelClosed { rank: u32, from: u32, tag: u32 },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::InputCount { expected, got } => {
                write!(
                    f,
                    "need one input buffer per rank: expected {expected}, got {got}"
                )
            }
            ExecError::InputLength {
                rank,
                expected,
                got,
            } => write!(
                f,
                "rank {rank} input has wrong length: expected {expected}, got {got}"
            ),
            ExecError::PayloadMismatch {
                rank,
                expected,
                got,
            } => write!(
                f,
                "rank {rank}: payload/region length mismatch (region {expected}, payload {got})"
            ),
            ExecError::ReadOnlyInputWrite { rank } => {
                write!(f, "rank {rank}: write into read-only input buffer")
            }
            ExecError::DuplicateMessage { src, dst, tag } => {
                write!(f, "duplicate message ({src} -> {dst}, tag {tag})")
            }
            ExecError::Deadlock => {
                write!(f, "schedule deadlocked: no rank can make progress")
            }
            ExecError::UnconsumedMessages { count } => {
                write!(f, "{count} sent message(s) were never received")
            }
            ExecError::RankPanicked { rank, message } => {
                write!(f, "rank {rank} thread panicked: {message}")
            }
            ExecError::ChannelClosed { rank, from, tag } => write!(
                f,
                "rank {rank}: all peers exited while waiting on message from {from} (tag {tag})"
            ),
        }
    }
}

impl std::error::Error for ExecError {}
