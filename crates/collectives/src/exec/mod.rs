//! Schedule executors: three backends consuming the same IR.

pub mod interp;
pub mod sim;
pub mod threaded;

pub use sim::SimResult;
