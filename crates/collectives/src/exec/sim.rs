//! Virtual-time executor.
//!
//! Walks a [`CommSchedule`] against a [`CostModel`], producing the modelled
//! runtime of the collective on the described hardware. The execution model:
//!
//! * each rank has a local clock advancing through its steps;
//! * a step's copies run first (memory-system cost), then its sends are
//!   posted (per-message CPU cost each; eager sends detach, rendezvous-sized
//!   sends hold the rank until the payload clears its NIC), then its
//!   receives complete in arrival order (per-message CPU cost each);
//! * inter-node messages serialize through the sender's NIC TX engine and
//!   the receiver's NIC RX engine (cut-through, one wire-time end to end
//!   when uncontended) with the fabric latency in between — this is where
//!   algorithms that flood the NIC (Scatter-Dest at scale) pay, and where
//!   high PPN causes injection contention;
//! * intra-node messages go through the memory system at the L3/DRAM-share
//!   bandwidth from the cost model.
//!
//! Steps are processed in start-time order from a priority queue, so results
//! are deterministic. Because sends never wait on receivers, any schedule
//! that passes [`CommSchedule::validate`] terminates.

use crate::schedule::{CommSchedule, Op};
use pml_simnet::{CostModel, JobLayout};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::hash::{BuildHasherDefault, Hasher};

/// FxHash-style multiply-xor hasher: the sim's hot maps are keyed by dense
/// integer message ids, where SipHash costs more than the rest of the
/// event loop.
#[derive(Debug, Default)]
pub struct FxHasher(u64);

impl Hasher for FxHasher {
    fn finish(&self) -> u64 {
        // Fold the high bits down: hashbrown derives bucket indices from
        // the hash's low bits, and a bare multiply leaves them determined
        // by the key's low bits alone — message keys that differ only in
        // src/dst (high bits) would otherwise cluster into few buckets.
        let h = self.0;
        h ^ (h >> 29) ^ (h >> 47)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0.rotate_left(5) ^ n).wrapping_mul(0x517cc1b727220a95);
    }
}

type FxMap<V> = HashMap<u64, V, BuildHasherDefault<FxHasher>>;

/// Message key: (src, dst, tag) packed into 64 bits. World sizes and
/// per-pair tag counts far exceed anything the zoo generates.
fn msg_key(src: u32, dst: u32, tag: u32) -> u64 {
    debug_assert!(src < (1 << 21) && dst < (1 << 21) && tag < (1 << 22));
    ((src as u64) << 43) | ((dst as u64) << 22) | tag as u64
}

/// Outcome of one simulated collective execution.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Completion time of the slowest rank, seconds.
    pub time_s: f64,
    /// Per-rank completion times.
    pub per_rank_end: Vec<f64>,
    /// Total bytes that crossed the fabric (inter-node only).
    pub wire_bytes: u64,
    /// Total messages (inter- plus intra-node).
    pub messages: u64,
}

/// Heap key ordered by (time, rank): deterministic pops.
#[derive(PartialEq)]
struct StartEvent {
    time: f64,
    rank: u32,
    step: usize,
}

impl Eq for StartEvent {}

impl PartialOrd for StartEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for StartEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .total_cmp(&other.time)
            .then(self.rank.cmp(&other.rank))
            .then(self.step.cmp(&other.step))
    }
}

/// Per-(rank, step) bookkeeping while in flight. Most steps have at most
/// two receives (all the p-round algorithms have exactly one), so arrivals
/// are stored inline and only spill to the heap for wait-all steps like
/// Scatter-Dest's.
#[derive(Default, Clone)]
struct StepState {
    started: bool,
    /// Completion floor from posting (copies + send CPU) and from
    /// rendezvous-send wire drain.
    local_floor: f64,
    post_end: f64,
    /// Receives not yet matched to an arrival.
    missing_recvs: usize,
    /// (arrival time, completion CPU cost) of matched receives.
    n_inline: u8,
    inline: [(f64, f64); 2],
    overflow: Vec<(f64, f64)>,
}

impl StepState {
    #[inline]
    fn push_arrival(&mut self, a: (f64, f64)) {
        if (self.n_inline as usize) < self.inline.len() {
            self.inline[self.n_inline as usize] = a;
            self.n_inline += 1;
        } else {
            self.overflow.push(a);
        }
    }

    /// Completion time of the wait-all over the registered receives,
    /// starting from `post_end`: receives complete in arrival order, each
    /// charging its CPU cost.
    fn recv_completion(&mut self) -> f64 {
        let mut tc = self.post_end;
        if self.overflow.is_empty() {
            match self.n_inline {
                0 => {}
                1 => tc = tc.max(self.inline[0].0) + self.inline[0].1,
                _ => {
                    let (a, b) = (self.inline[0], self.inline[1]);
                    let (first, second) = if a.0 <= b.0 { (a, b) } else { (b, a) };
                    tc = tc.max(first.0) + first.1;
                    tc = tc.max(second.0) + second.1;
                }
            }
        } else {
            let mut all: Vec<(f64, f64)> = self.inline[..self.n_inline as usize].to_vec();
            all.append(&mut self.overflow);
            all.sort_by(|x, y| x.0.total_cmp(&y.0));
            for (a, cpu) in all {
                tc = tc.max(a) + cpu;
            }
        }
        tc
    }
}

/// Simulate one collective execution. `layout.world_size()` must equal the
/// schedule's world size.
pub fn run(schedule: &CommSchedule, layout: JobLayout, cost: &CostModel) -> SimResult {
    run_scaled(schedule, layout, cost, 1)
}

/// Simulate with every region length multiplied by `scale`.
///
/// Every generator in this crate produces schedules whose structure depends
/// only on the world size — all offsets and lengths are multiples of the
/// block size. A schedule generated at `block = 1` therefore stands for the
/// whole message-size sweep: simulating it at `scale = msg` is exactly
/// equivalent to simulating `schedule(p, msg)`, and dataset generation
/// exploits that to build each schedule once per job shape instead of once
/// per grid cell.
pub fn run_scaled(
    schedule: &CommSchedule,
    layout: JobLayout,
    cost: &CostModel,
    scale: usize,
) -> SimResult {
    assert!(scale >= 1, "scale must be positive");
    assert_eq!(
        layout.world_size(),
        schedule.world,
        "layout world size must match schedule world size"
    );
    let world = schedule.world as usize;
    let nodes = layout.nodes as usize;

    // Message arrival registry: msg_key -> arrival time.
    let mut arrival: FxMap<f64> = FxMap::default();
    // Receives that were processed before their arrival was known:
    // msg_key -> (rank, step).
    let mut waiting: FxMap<(u32, usize)> = FxMap::default();

    let mut states: Vec<Vec<StepState>> = schedule
        .ranks
        .iter()
        .map(|prog| vec![StepState::default(); prog.len()])
        .collect();
    let mut rank_end = vec![0.0f64; world];

    let mut nic_tx = vec![0.0f64; nodes];
    let mut nic_rx = vec![0.0f64; nodes];

    let mut wire_bytes: u64 = 0;
    let mut messages: u64 = 0;

    let mut heap: BinaryHeap<Reverse<StartEvent>> = BinaryHeap::new();
    for r in 0..world {
        if !schedule.ranks[r].is_empty() {
            heap.push(Reverse(StartEvent {
                time: 0.0,
                rank: r as u32,
                step: 0,
            }));
        }
    }

    // Steps whose last arrival just landed and that may now complete.
    let mut completable: Vec<(u32, usize)> = Vec::new();

    while let Some(Reverse(ev)) = heap.pop() {
        let rank = ev.rank as usize;
        let step_idx = ev.step;
        let step = &schedule.ranks[rank][step_idx];
        let my_node = layout.node_of(ev.rank) as usize;

        let mut t = ev.time;
        // Phase 1: copies and reductions.
        for op in &step.ops {
            match op {
                Op::Copy { src, .. } => t += cost.copy_s(src.len * scale),
                Op::Combine { src, .. } => t += cost.combine_s(src.len * scale),
                _ => {}
            }
        }
        // Phase 2: sends.
        let mut local_floor = t;
        for op in &step.ops {
            if let Op::Send { to, tag, region } = op {
                let dst_node = layout.node_of(*to) as usize;
                t += if dst_node != my_node {
                    cost.per_msg_net_s()
                } else {
                    cost.per_msg_shm_s()
                };
                let ready = t;
                messages += 1;
                let len = region.len * scale;
                let (arr, sender_hold) = if dst_node != my_node {
                    wire_bytes += len as u64;
                    let wire = cost.net_serialize_s(len) + cost.nic_msg_occupancy_s();
                    let tx_start = ready.max(nic_tx[my_node]);
                    nic_tx[my_node] = tx_start + wire;
                    let rx_start = (tx_start + cost.net_alpha_s(len)).max(nic_rx[dst_node]);
                    nic_rx[dst_node] = rx_start + wire;
                    let arr = rx_start + wire;
                    let hold = if len >= cost.rendezvous_threshold() {
                        tx_start + wire
                    } else {
                        ready
                    };
                    (arr, hold)
                } else {
                    (ready + cost.intra_node_msg_s(len), ready)
                };
                local_floor = local_floor.max(sender_hold);
                let key = msg_key(ev.rank, *to, *tag);
                let recv_cpu = if dst_node != my_node {
                    cost.per_msg_net_s()
                } else {
                    cost.per_msg_shm_s()
                };
                arrival.insert(key, arr);
                if let Some(&(wr, ws)) = waiting.get(&key) {
                    waiting.remove(&key);
                    let st = &mut states[wr as usize][ws];
                    st.push_arrival((arr, recv_cpu));
                    st.missing_recvs -= 1;
                    if st.started && st.missing_recvs == 0 {
                        completable.push((wr, ws));
                    }
                }
            }
        }
        let post_end = t;

        // Phase 3: register receives.
        let st = &mut states[rank][step_idx];
        st.started = true;
        st.local_floor = local_floor.max(post_end);
        st.post_end = post_end;
        for op in &step.ops {
            if let Op::Recv { from, tag, .. } = op {
                let key = msg_key(*from, ev.rank, *tag);
                let recv_cpu = if layout.node_of(*from) as usize != my_node {
                    cost.per_msg_net_s()
                } else {
                    cost.per_msg_shm_s()
                };
                if let Some(&arr) = arrival.get(&key) {
                    st.push_arrival((arr, recv_cpu));
                } else {
                    st.missing_recvs += 1;
                    let prev = waiting.insert(key, (ev.rank, step_idx));
                    assert!(prev.is_none(), "two receives for one message {key:?}");
                }
            }
        }
        if st.missing_recvs == 0 {
            completable.push((ev.rank, step_idx));
        }

        // Finalize every step that became completable.
        while let Some((cr, cs)) = completable.pop() {
            let st = &mut states[cr as usize][cs];
            debug_assert!(st.started && st.missing_recvs == 0);
            let end = st.recv_completion().max(st.local_floor);
            rank_end[cr as usize] = rank_end[cr as usize].max(end);
            let next = cs + 1;
            if next < schedule.ranks[cr as usize].len() {
                heap.push(Reverse(StartEvent {
                    time: end,
                    rank: cr,
                    step: next,
                }));
            }
        }
    }

    for (r, prog) in schedule.ranks.iter().enumerate() {
        for (s, st) in states[r].iter().enumerate() {
            assert!(
                st.started && st.missing_recvs == 0,
                "rank {r} step {s} never completed (deadlock — schedule invalid); \
                 program has {} steps",
                prog.len()
            );
        }
    }

    let time_s = rank_end.iter().copied().fold(0.0, f64::max);
    SimResult {
        time_s,
        per_rank_end: rank_end,
        wire_bytes,
        messages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{Region, ScheduleBuilder};
    use pml_simnet::{CpuFamily, CpuSpec, HcaGeneration, InterconnectSpec, NodeSpec, PcieVersion};

    fn test_node() -> NodeSpec {
        NodeSpec {
            cpu: CpuSpec {
                model: "t".into(),
                family: CpuFamily::IntelXeon,
                max_clock_ghz: 2.7,
                l3_cache_mib: 38.5,
                mem_bw_gbs: 140.0,
                cores: 28,
                threads: 56,
                sockets: 2,
                numa_nodes: 2,
            },
            nic: InterconnectSpec::new(HcaGeneration::Edr, PcieVersion::Gen3),
        }
    }

    /// Two ranks exchanging one message each.
    fn exchange(bytes: usize) -> CommSchedule {
        let mut sb = ScheduleBuilder::new(2, bytes, bytes, bytes, 0);
        for r in 0..2u32 {
            let peer = 1 - r;
            sb.step(r, |s| {
                s.send(peer, Region::input(0, bytes));
                s.recv(peer, Region::work(0, bytes));
            });
        }
        sb.finish()
    }

    #[test]
    fn inter_node_costs_more_than_intra_node() {
        let sch = exchange(4096);
        let cost = CostModel::new(test_node(), 2);
        let intra = run(&sch, JobLayout::new(1, 2), &cost);
        let cost1 = CostModel::new(test_node(), 1);
        let inter = run(&sch, JobLayout::new(2, 1), &cost1);
        assert!(
            inter.time_s > intra.time_s,
            "{} vs {}",
            inter.time_s,
            intra.time_s
        );
        assert_eq!(intra.wire_bytes, 0);
        assert_eq!(inter.wire_bytes, 2 * 4096);
    }

    #[test]
    fn time_monotone_in_message_size() {
        let cost = CostModel::new(test_node(), 1);
        let mut prev = 0.0;
        for log in [4usize, 8, 12, 16, 20] {
            let sch = exchange(1usize << log);
            let t = run(&sch, JobLayout::new(2, 1), &cost).time_s;
            assert!(t > prev, "size 2^{log}: {t} !> {prev}");
            prev = t;
        }
    }

    #[test]
    fn deterministic() {
        let sch = exchange(1 << 14);
        let cost = CostModel::new(test_node(), 1);
        let a = run(&sch, JobLayout::new(2, 1), &cost);
        let b = run(&sch, JobLayout::new(2, 1), &cost);
        assert_eq!(a, b);
    }

    #[test]
    fn nic_contention_serializes_concurrent_senders() {
        // Two ranks on node 0 each send a large message to ranks on node 1.
        let bytes = 1 << 20;
        let mut sb = ScheduleBuilder::new(4, bytes, bytes, bytes, 0);
        sb.step(0, |s| s.send(2, Region::input(0, bytes)));
        sb.step(1, |s| s.send(3, Region::input(0, bytes)));
        sb.step(2, |s| s.recv(0, Region::work(0, bytes)));
        sb.step(3, |s| s.recv(1, Region::work(0, bytes)));
        let sch = sb.finish();
        sch.validate().unwrap();
        let cost = CostModel::new(test_node(), 2);
        let contended = run(&sch, JobLayout::new(2, 2), &cost);

        // Same transfer but only one sender on the node.
        let mut sb1 = ScheduleBuilder::new(2, bytes, bytes, bytes, 0);
        sb1.step(0, |s| s.send(1, Region::input(0, bytes)));
        sb1.step(1, |s| s.recv(0, Region::work(0, bytes)));
        let sch1 = sb1.finish();
        let cost1 = CostModel::new(test_node(), 1);
        let solo = run(&sch1, JobLayout::new(2, 1), &cost1);

        // With two senders sharing the NIC, the later message needs roughly
        // twice the wire time.
        assert!(contended.time_s > 1.7 * solo.time_s);
    }

    #[test]
    fn empty_schedule_takes_zero_time() {
        let sb = ScheduleBuilder::new(1, 8, 8, 8, 0);
        let sch = sb.finish();
        let cost = CostModel::new(test_node(), 1);
        let res = run(&sch, JobLayout::new(1, 1), &cost);
        assert_eq!(res.time_s, 0.0);
        assert_eq!(res.messages, 0);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn missing_sender_detected() {
        let b = 8;
        let mut sb = ScheduleBuilder::new(2, b, b, b, 0);
        sb.step(1, |s| s.recv(0, Region::work(0, b)));
        let sch = sb.finish();
        let cost = CostModel::new(test_node(), 1);
        run(&sch, JobLayout::new(1, 2), &cost);
    }
}
