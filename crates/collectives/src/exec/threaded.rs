//! Real multi-threaded executor: one OS thread per rank.
//!
//! Each rank runs its program against its own buffers; messages travel over
//! crossbeam channels (one inbound channel per rank, MPI-style tag matching
//! with an unexpected-message queue). This is the "it actually runs in
//! parallel and moves real bytes" backend: its results must be bit-identical
//! to the sequential interpreter, and the test suite checks exactly that.

use crate::exec::ExecError;
use crate::schedule::{Buf, CommSchedule, Op, Region};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::HashMap;

struct Envelope {
    src: u32,
    tag: u32,
    payload: Vec<u8>,
}

struct RankCtx {
    rank: u32,
    input: Vec<u8>,
    work: Vec<u8>,
    aux: Vec<u8>,
    inbox: Receiver<Envelope>,
    peers: Vec<Sender<Envelope>>,
    /// Messages that arrived before their Recv was posted.
    unexpected: HashMap<(u32, u32), Vec<u8>>,
}

impl RankCtx {
    fn read(&self, r: &Region) -> Vec<u8> {
        let buf = match r.buf {
            Buf::Input => &self.input,
            Buf::Work => &self.work,
            Buf::Aux => &self.aux,
        };
        buf[r.offset..r.end()].to_vec()
    }

    fn write(&mut self, r: &Region, data: &[u8]) -> Result<(), ExecError> {
        let buf = match r.buf {
            Buf::Input => return Err(ExecError::ReadOnlyInputWrite { rank: self.rank }),
            Buf::Work => &mut self.work,
            Buf::Aux => &mut self.aux,
        };
        buf[r.offset..r.offset + data.len()].copy_from_slice(data);
        Ok(())
    }

    fn combine(&mut self, r: &Region, data: &[u8]) -> Result<(), ExecError> {
        let buf = match r.buf {
            Buf::Input => return Err(ExecError::ReadOnlyInputWrite { rank: self.rank }),
            Buf::Work => &mut self.work,
            Buf::Aux => &mut self.aux,
        };
        for (d, s) in buf[r.offset..r.offset + data.len()].iter_mut().zip(data) {
            *d = d.wrapping_add(*s);
        }
        Ok(())
    }

    fn recv_matching(&mut self, from: u32, tag: u32) -> Result<Vec<u8>, ExecError> {
        if let Some(payload) = self.unexpected.remove(&(from, tag)) {
            return Ok(payload);
        }
        loop {
            let Ok(env) = self.inbox.recv() else {
                // Every sender clone has been dropped: all peers that could
                // still produce this message have exited.
                return Err(ExecError::ChannelClosed {
                    rank: self.rank,
                    from,
                    tag,
                });
            };
            if env.src == from && env.tag == tag {
                return Ok(env.payload);
            }
            if self
                .unexpected
                .insert((env.src, env.tag), env.payload)
                .is_some()
            {
                return Err(ExecError::DuplicateMessage {
                    src: env.src,
                    dst: self.rank,
                    tag: env.tag,
                });
            }
        }
    }

    fn run(mut self, program: &[crate::schedule::Step]) -> Result<Vec<u8>, ExecError> {
        for step in program {
            // Phase 1: copies and reductions, in order.
            for op in &step.ops {
                match op {
                    Op::Copy { src, dst } => {
                        let data = self.read(src);
                        self.write(dst, &data)?;
                    }
                    Op::Combine { src, dst } => {
                        let data = self.read(src);
                        self.combine(dst, &data)?;
                    }
                    _ => {}
                }
            }
            // Phase 2: post sends (never blocks: channels are unbounded).
            for op in &step.ops {
                if let Op::Send { to, tag, region } = op {
                    let payload = self.read(region);
                    if self.peers[*to as usize]
                        .send(Envelope {
                            src: self.rank,
                            tag: *tag,
                            payload,
                        })
                        .is_err()
                    {
                        return Err(ExecError::ChannelClosed {
                            rank: self.rank,
                            from: self.rank,
                            tag: *tag,
                        });
                    }
                }
            }
            // Phase 3: wait-all on receives.
            for op in &step.ops {
                if let Op::Recv { from, tag, region } = op {
                    let payload = self.recv_matching(*from, *tag)?;
                    if payload.len() != region.len {
                        return Err(ExecError::PayloadMismatch {
                            rank: self.rank,
                            expected: region.len,
                            got: payload.len(),
                        });
                    }
                    let r = *region;
                    self.write(&r, &payload)?;
                }
            }
        }
        if !self.unexpected.is_empty() {
            return Err(ExecError::UnconsumedMessages {
                count: self.unexpected.len(),
            });
        }
        Ok(self.work)
    }
}

/// Render a panic payload (from [`std::thread::JoinHandle::join`]) as text.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Execute `schedule` with one thread per rank; returns each rank's `Work`
/// buffer.
///
/// A rank that panics does not abort the caller: the panic payload is
/// captured at join and reported as [`ExecError::RankPanicked`] with the
/// failing rank's id. Schedule errors detected by a rank (bad payload
/// sizes, writes into the input buffer, closed channels) surface as their
/// specific [`ExecError`]; the first error in rank order wins.
pub fn run(schedule: &CommSchedule, inputs: &[Vec<u8>]) -> Result<Vec<Vec<u8>>, ExecError> {
    let world = schedule.world as usize;
    if inputs.len() != world {
        return Err(ExecError::InputCount {
            expected: world,
            got: inputs.len(),
        });
    }
    for (r, inp) in inputs.iter().enumerate() {
        if inp.len() != schedule.input_len {
            return Err(ExecError::InputLength {
                rank: r,
                expected: schedule.input_len,
                got: inp.len(),
            });
        }
    }

    let mut senders = Vec::with_capacity(world);
    let mut receivers = Vec::with_capacity(world);
    for _ in 0..world {
        let (tx, rx) = unbounded();
        senders.push(tx);
        receivers.push(rx);
    }

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(world);
        for (rank, inbox) in receivers.into_iter().enumerate() {
            let input = inputs[rank].clone();
            let mut work = vec![0u8; schedule.work_len];
            if schedule.work_initialized_from_input {
                work[..input.len()].copy_from_slice(&input);
            }
            let mut peers = senders.clone();
            // Self-sends are invalid (validate rejects them), so replace the
            // rank's own sender with a disconnected one. Without this a rank
            // holds its own inbox open and a missing-sender schedule would
            // hang it forever instead of erroring with `ChannelClosed`.
            peers[rank] = unbounded().0;
            let ctx = RankCtx {
                rank: rank as u32,
                input,
                work,
                aux: vec![0u8; schedule.aux_len],
                inbox,
                peers,
                unexpected: HashMap::new(),
            };
            let program = &schedule.ranks[rank];
            handles.push(scope.spawn(move || ctx.run(program)));
        }
        drop(senders);
        let mut outputs = Vec::with_capacity(world);
        let mut first_err = None;
        for (rank, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(Ok(work)) => outputs.push(work),
                Ok(Err(e)) => {
                    first_err.get_or_insert(e);
                    outputs.push(Vec::new());
                }
                Err(payload) => {
                    first_err.get_or_insert(ExecError::RankPanicked {
                        rank: rank as u32,
                        message: panic_message(payload.as_ref()),
                    });
                    outputs.push(Vec::new());
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(outputs),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{Region, ScheduleBuilder};

    #[test]
    fn matches_interpreter_on_ring_like_pattern() {
        // 4 ranks pass their block around a ring, one hop per step.
        let p = 4u32;
        let b = 8usize;
        let mut sb = ScheduleBuilder::new(p, b, b, p as usize * b, 0);
        for r in 0..p {
            sb.step(r, |s| {
                s.copy(Region::input(0, b), Region::work(r as usize * b, b));
            });
            for k in 0..p - 1 {
                let right = (r + 1) % p;
                let left = (r + p - 1) % p;
                let send_blk = ((r + p - k) % p) as usize;
                let recv_blk = ((r + p - 1 - k) % p) as usize;
                sb.step(r, |s| {
                    s.send(right, Region::work(send_blk * b, b));
                    s.recv(left, Region::work(recv_blk * b, b));
                });
            }
        }
        let sch = sb.finish();
        sch.validate().unwrap();
        let inputs: Vec<Vec<u8>> = (0..p).map(|r| vec![r as u8 + 1; b]).collect();
        let threaded = run(&sch, &inputs).unwrap();
        let interp = crate::exec::interp::run(&sch, &inputs).unwrap();
        assert_eq!(threaded, interp);
        let expected: Vec<u8> = (0..p).flat_map(|r| vec![r as u8 + 1; b]).collect();
        for out in &threaded {
            assert_eq!(*out, expected);
        }
    }

    #[test]
    fn out_of_order_arrival_is_buffered() {
        // Rank 0 sends two messages; rank 1 receives them in reverse order
        // across two steps — exercising the unexpected-message queue is not
        // possible with FIFO tags per pair, so use two distinct source ranks
        // whose arrival order is racy instead.
        let b = 4;
        let mut sb = ScheduleBuilder::new(3, b, b, 2 * b, 0);
        sb.step(0, |s| s.send(2, Region::input(0, b)));
        sb.step(1, |s| s.send(2, Region::input(0, b)));
        sb.step(2, |s| {
            s.recv(1, Region::work(b, b));
            s.recv(0, Region::work(0, b));
        });
        let sch = sb.finish();
        sch.validate().unwrap();
        for _ in 0..50 {
            let out = run(&sch, &[vec![1; b], vec![2; b], vec![0; b]]).unwrap();
            assert_eq!(out[2], [[1u8; 4], [2u8; 4]].concat());
        }
    }

    #[test]
    fn rank_panic_is_captured_with_rank_id() {
        // Rank 1's copy indexes far beyond its work buffer: the rank thread
        // panics (slice bounds), and run() must report which rank died
        // instead of propagating the panic.
        let b = 4;
        let mut sb = ScheduleBuilder::new(2, b, b, b, 0);
        sb.step(0, |s| s.copy(Region::input(0, b), Region::work(0, b)));
        sb.step(1, |s| s.copy(Region::input(0, b), Region::work(1 << 20, b)));
        let sch = sb.finish(); // invalid on purpose; validate() not called
        let err = run(&sch, &[vec![1; b], vec![2; b]]).unwrap_err();
        match err {
            ExecError::RankPanicked { rank, ref message } => {
                assert_eq!(rank, 1);
                assert!(!message.is_empty());
            }
            other => panic!("expected RankPanicked, got {other:?}"),
        }
    }

    #[test]
    fn missing_sender_reports_closed_channel() {
        // Rank 1 waits on a message rank 0 never sends. Once rank 0 exits,
        // every sender to rank 1 is gone and the wait fails cleanly.
        let b = 4;
        let mut sb = ScheduleBuilder::new(2, b, b, b, 0);
        sb.step(1, |s| s.recv(0, Region::work(0, b)));
        let sch = sb.finish(); // invalid, but run() must still detect it
        let err = run(&sch, &[vec![0; b], vec![0; b]]).unwrap_err();
        match err {
            ExecError::ChannelClosed { rank, from, .. } => {
                assert_eq!((rank, from), (1, 0));
            }
            other => panic!("expected ChannelClosed, got {other:?}"),
        }
    }
}
