//! Real multi-threaded executor: one OS thread per rank.
//!
//! Each rank runs its program against its own buffers; messages travel over
//! crossbeam channels (one inbound channel per rank, MPI-style tag matching
//! with an unexpected-message queue). This is the "it actually runs in
//! parallel and moves real bytes" backend: its results must be bit-identical
//! to the sequential interpreter, and the test suite checks exactly that.

use crate::schedule::{Buf, CommSchedule, Op, Region};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::HashMap;

struct Envelope {
    src: u32,
    tag: u32,
    payload: Vec<u8>,
}

struct RankCtx {
    rank: u32,
    input: Vec<u8>,
    work: Vec<u8>,
    aux: Vec<u8>,
    inbox: Receiver<Envelope>,
    peers: Vec<Sender<Envelope>>,
    /// Messages that arrived before their Recv was posted.
    unexpected: HashMap<(u32, u32), Vec<u8>>,
}

impl RankCtx {
    fn read(&self, r: &Region) -> Vec<u8> {
        let buf = match r.buf {
            Buf::Input => &self.input,
            Buf::Work => &self.work,
            Buf::Aux => &self.aux,
        };
        buf[r.offset..r.end()].to_vec()
    }

    fn write(&mut self, r: &Region, data: &[u8]) {
        let buf = match r.buf {
            Buf::Input => panic!("write into read-only input"),
            Buf::Work => &mut self.work,
            Buf::Aux => &mut self.aux,
        };
        buf[r.offset..r.offset + data.len()].copy_from_slice(data);
    }

    fn combine(&mut self, r: &Region, data: &[u8]) {
        let buf = match r.buf {
            Buf::Input => panic!("combine into read-only input"),
            Buf::Work => &mut self.work,
            Buf::Aux => &mut self.aux,
        };
        for (d, s) in buf[r.offset..r.offset + data.len()].iter_mut().zip(data) {
            *d = d.wrapping_add(*s);
        }
    }

    fn recv_matching(&mut self, from: u32, tag: u32) -> Vec<u8> {
        if let Some(payload) = self.unexpected.remove(&(from, tag)) {
            return payload;
        }
        loop {
            let env = self.inbox.recv().unwrap_or_else(|_| {
                panic!("rank {}: inbox closed waiting on {from}/{tag}", self.rank)
            });
            if env.src == from && env.tag == tag {
                return env.payload;
            }
            let prev = self.unexpected.insert((env.src, env.tag), env.payload);
            assert!(
                prev.is_none(),
                "duplicate message ({}, {})",
                env.src,
                env.tag
            );
        }
    }

    fn run(mut self, program: &[crate::schedule::Step]) -> Vec<u8> {
        for step in program {
            // Phase 1: copies and reductions, in order.
            for op in &step.ops {
                match op {
                    Op::Copy { src, dst } => {
                        let data = self.read(src);
                        self.write(dst, &data);
                    }
                    Op::Combine { src, dst } => {
                        let data = self.read(src);
                        self.combine(dst, &data);
                    }
                    _ => {}
                }
            }
            // Phase 2: post sends (never blocks: channels are unbounded).
            for op in &step.ops {
                if let Op::Send { to, tag, region } = op {
                    let payload = self.read(region);
                    self.peers[*to as usize]
                        .send(Envelope {
                            src: self.rank,
                            tag: *tag,
                            payload,
                        })
                        .expect("peer inbox closed");
                }
            }
            // Phase 3: wait-all on receives.
            for op in &step.ops {
                if let Op::Recv { from, tag, region } = op {
                    let payload = self.recv_matching(*from, *tag);
                    assert_eq!(payload.len(), region.len, "message size mismatch");
                    let r = *region;
                    self.write(&r, &payload);
                }
            }
        }
        assert!(
            self.unexpected.is_empty(),
            "rank {}: {} unconsumed messages",
            self.rank,
            self.unexpected.len()
        );
        self.work
    }
}

/// Execute `schedule` with one thread per rank; returns each rank's `Work`
/// buffer. Panics (propagating the worker's panic) on any schedule error.
pub fn run(schedule: &CommSchedule, inputs: &[Vec<u8>]) -> Vec<Vec<u8>> {
    let world = schedule.world as usize;
    assert_eq!(inputs.len(), world, "need one input buffer per rank");

    let mut senders = Vec::with_capacity(world);
    let mut receivers = Vec::with_capacity(world);
    for _ in 0..world {
        let (tx, rx) = unbounded();
        senders.push(tx);
        receivers.push(rx);
    }

    let mut outputs: Vec<Option<Vec<u8>>> = vec![None; world];
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(world);
        for (rank, inbox) in receivers.into_iter().enumerate() {
            let input = inputs[rank].clone();
            let mut work = vec![0u8; schedule.work_len];
            if schedule.work_initialized_from_input {
                work[..input.len()].copy_from_slice(&input);
            }
            let ctx = RankCtx {
                rank: rank as u32,
                input,
                work,
                aux: vec![0u8; schedule.aux_len],
                inbox,
                peers: senders.clone(),
                unexpected: HashMap::new(),
            };
            let program = &schedule.ranks[rank];
            handles.push(scope.spawn(move || ctx.run(program)));
        }
        drop(senders);
        for (rank, h) in handles.into_iter().enumerate() {
            outputs[rank] = Some(h.join().expect("rank thread panicked"));
        }
    });
    outputs.into_iter().map(Option::unwrap).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{Region, ScheduleBuilder};

    #[test]
    fn matches_interpreter_on_ring_like_pattern() {
        // 4 ranks pass their block around a ring, one hop per step.
        let p = 4u32;
        let b = 8usize;
        let mut sb = ScheduleBuilder::new(p, b, b, p as usize * b, 0);
        for r in 0..p {
            sb.step(r, |s| {
                s.copy(Region::input(0, b), Region::work(r as usize * b, b));
            });
            for k in 0..p - 1 {
                let right = (r + 1) % p;
                let left = (r + p - 1) % p;
                let send_blk = ((r + p - k) % p) as usize;
                let recv_blk = ((r + p - 1 - k) % p) as usize;
                sb.step(r, |s| {
                    s.send(right, Region::work(send_blk * b, b));
                    s.recv(left, Region::work(recv_blk * b, b));
                });
            }
        }
        let sch = sb.finish();
        sch.validate().unwrap();
        let inputs: Vec<Vec<u8>> = (0..p).map(|r| vec![r as u8 + 1; b]).collect();
        let threaded = run(&sch, &inputs);
        let interp = crate::exec::interp::run(&sch, &inputs);
        assert_eq!(threaded, interp);
        let expected: Vec<u8> = (0..p).flat_map(|r| vec![r as u8 + 1; b]).collect();
        for out in &threaded {
            assert_eq!(*out, expected);
        }
    }

    #[test]
    fn out_of_order_arrival_is_buffered() {
        // Rank 0 sends two messages; rank 1 receives them in reverse order
        // across two steps — exercising the unexpected-message queue is not
        // possible with FIFO tags per pair, so use two distinct source ranks
        // whose arrival order is racy instead.
        let b = 4;
        let mut sb = ScheduleBuilder::new(3, b, b, 2 * b, 0);
        sb.step(0, |s| s.send(2, Region::input(0, b)));
        sb.step(1, |s| s.send(2, Region::input(0, b)));
        sb.step(2, |s| {
            s.recv(1, Region::work(b, b));
            s.recv(0, Region::work(0, b));
        });
        let sch = sb.finish();
        sch.validate().unwrap();
        for _ in 0..50 {
            let out = run(&sch, &[vec![1; b], vec![2; b], vec![0; b]]);
            assert_eq!(out[2], [[1u8; 4], [2u8; 4]].concat());
        }
    }
}
