//! Two-level (hierarchical) collectives — a working demonstration of the
//! paper's future-work direction ("collectives with more intricate
//! communication hierarchies", §IX).
//!
//! Flat algorithms see an unstructured rank set; two-level algorithms
//! exploit the node boundary: gather onto one leader per node through
//! shared memory, run the inter-node phase among leaders only (putting p/ppn
//! participants on the fabric instead of p), then fan the result back out
//! locally. Unlike the flat generators, these schedules depend on the
//! *job layout*, not just the world size.

use crate::schedule::{CommSchedule, Region, ScheduleBuilder};
use pml_simnet::JobLayout;

/// Two-level allgather: intra-node gather → leader ring allgather →
/// intra-node broadcast.
///
/// Produces the standard allgather contract (every rank ends with all
/// `world` blocks in rank order), so it verifies against the same oracle
/// as the flat algorithms.
pub fn two_level_allgather(layout: JobLayout, block: usize) -> CommSchedule {
    let p = layout.world_size();
    let ppn = layout.ppn;
    let nodes = layout.nodes;
    let b = block;
    let pu = p as usize;
    let mut sb = ScheduleBuilder::new(p, b, b, pu * b, 0);

    for r in 0..p {
        let node = layout.node_of(r);
        let leader = node * ppn;
        let node_off = (node * ppn) as usize * b; // this node's slab in Work

        if r == leader {
            // Phase 1: gather the node's blocks.
            sb.step(r, |s| {
                s.copy(Region::input(0, b), Region::work(r as usize * b, b));
                for peer in leader + 1..leader + ppn {
                    s.recv(peer, Region::work(peer as usize * b, b));
                }
            });
            // Phase 2: ring allgather of node slabs among leaders.
            if nodes > 1 {
                let right = ((node + 1) % nodes) * ppn;
                let left = ((node + nodes - 1) % nodes) * ppn;
                let slab = ppn as usize * b;
                for k in 0..nodes - 1 {
                    let send_node = ((node + nodes - k) % nodes) as usize;
                    let recv_node = ((node + nodes - 1 - k) % nodes) as usize;
                    sb.step(r, |s| {
                        s.send(right, Region::work(send_node * ppn as usize * b, slab));
                        s.recv(left, Region::work(recv_node * ppn as usize * b, slab));
                    });
                }
            }
            // Phase 3: fan the full result out to the node.
            if ppn > 1 {
                sb.step(r, |s| {
                    for peer in leader + 1..leader + ppn {
                        s.send(peer, Region::work(0, pu * b));
                    }
                });
            }
        } else {
            sb.step(r, |s| s.send(leader, Region::input(0, b)));
            sb.step(r, |s| s.recv(leader, Region::work(0, pu * b)));
        }
        let _ = node_off;
    }
    sb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::sim;
    use crate::verify::check_allgather;
    use crate::{Algorithm, AllgatherAlgo};
    use pml_simnet::CostModel;

    #[test]
    fn correct_for_various_layouts() {
        for (nodes, ppn) in [(1u32, 1u32), (1, 6), (3, 1), (2, 4), (3, 5), (4, 8)] {
            let layout = JobLayout::new(nodes, ppn);
            let sch = two_level_allgather(layout, 8);
            check_allgather(&sch, 8).unwrap_or_else(|e| panic!("layout {nodes}x{ppn}: {e}"));
        }
    }

    #[test]
    fn only_leaders_touch_the_fabric() {
        let layout = JobLayout::new(3, 4);
        let sch = two_level_allgather(layout, 16);
        // Count inter-node messages: every send from a non-leader goes to
        // its own leader (intra-node).
        for r in 0..layout.world_size() {
            if r % 4 != 0 {
                for step in &sch.ranks[r as usize] {
                    for (to, _, _) in step.sends() {
                        assert!(layout.same_node(r, *to), "rank {r} sent off-node");
                    }
                }
            }
        }
    }

    #[test]
    fn beats_flat_ring_at_high_ppn() {
        // With 32 ranks per node, the flat ring pushes every block through
        // the memory system p−1 times and pays p−1 latency terms; the
        // two-level variant does nodes−1 fabric rounds of big slabs.
        let node = pml_clusters_like_node();
        let layout = JobLayout::new(4, 32);
        let cost = CostModel::new(node, 32);
        let block = 4096;
        let two_level = sim::run(&two_level_allgather(layout, block), layout, &cost).time_s;
        let flat = sim::run(
            &Algorithm::Allgather(AllgatherAlgo::Ring).schedule(layout.world_size(), block),
            layout,
            &cost,
        )
        .time_s;
        assert!(
            two_level < flat,
            "two-level {two_level} should beat flat ring {flat} at 4x32"
        );
    }

    fn pml_clusters_like_node() -> pml_simnet::NodeSpec {
        use pml_simnet::*;
        NodeSpec {
            cpu: CpuSpec {
                model: "t".into(),
                family: CpuFamily::IntelXeon,
                max_clock_ghz: 2.7,
                l3_cache_mib: 77.0,
                mem_bw_gbs: 220.0,
                cores: 32,
                threads: 32,
                sockets: 2,
                numa_nodes: 2,
            },
            nic: InterconnectSpec::new(HcaGeneration::Edr, PcieVersion::Gen3),
        }
    }
}
