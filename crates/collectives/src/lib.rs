//! # pml-collectives
//!
//! MPI collective-communication algorithms as executable communication
//! schedules — the MVAPICH-engine substitute for the PML-MPI reproduction.
//!
//! Nine algorithms from the paper's §III are implemented from scratch:
//! four for `MPI_Allgather` ([`allgather`]) and five for `MPI_Alltoall`
//! ([`alltoall`]). Each is a *schedule generator* producing the
//! [`schedule::CommSchedule`] IR, which three executors consume:
//!
//! * [`exec::interp`] — sequential, byte-accurate (correctness oracle);
//! * [`exec::threaded`] — one thread per rank over crossbeam channels
//!   (real parallel execution);
//! * [`exec::sim`] — virtual time against a [`pml_simnet::CostModel`]
//!   (the measurement backend for the ML dataset).
//!
//! [`mod@measure`] wraps the sim executor into the micro-benchmark API used by
//! dataset generation, and [`verify`] holds the correctness oracles.

#![deny(rust_2018_idioms, missing_debug_implementations)]
#![deny(clippy::dbg_macro, clippy::todo)]
pub mod algo;
pub mod allgather;
pub mod allreduce;
pub mod alltoall;
pub mod bcast;
pub mod exec;
pub mod hierarchical;
pub mod measure;
pub mod schedcheck;
pub mod schedule;
pub mod verify;

pub use algo::{Algorithm, AllgatherAlgo, AllreduceAlgo, AlltoallAlgo, BcastAlgo, Collective};
pub use exec::SimResult;
pub use hierarchical::two_level_allgather;
pub use measure::{measure, measure_noisy, measure_sweep, rank_algorithms, MeasureConfig};
pub use schedcheck::{
    check_algorithm, check_schedule, sweep_grid, SchedError, ScheduleDoc, Spec, SCHED_DOC_VERSION,
};
pub use schedule::{Buf, CommSchedule, Op, Region, ScheduleBuilder, Step};
