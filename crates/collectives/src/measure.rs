//! High-level measurement entry point: "run this algorithm on this cluster
//! at this job shape and message size, tell me how long it takes".
//!
//! This is the in-house micro-benchmark the paper's Table I dataset was
//! gathered with, in simulated form: schedules are generated on demand,
//! executed in virtual time, and optionally perturbed by the noise model
//! with results averaged over iterations (§III: "performance results by
//! averaging multiple iterations of experiments").

use crate::algo::Algorithm;
use crate::exec::sim;
use pml_obs::Counter;
use pml_simnet::{CostModel, JobLayout, NodeSpec, NoiseModel};
use rand::Rng;

/// Message-size sweeps simulated (one per (shape, collective) pair).
static MEASURE_SWEEPS: Counter = Counter::new("measure.sweeps");
/// Individual (algorithm, message size) points simulated.
static MEASURE_POINTS: Counter = Counter::new("measure.points");

/// One micro-benchmark point: a collective algorithm at a job shape and
/// message size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasureConfig {
    pub layout: JobLayout,
    /// Per-rank block size in bytes ("message size" in the paper's sense).
    pub msg_size: usize,
}

/// Noise-free modelled runtime in seconds. Panics if the algorithm does not
/// support the world size.
pub fn measure(algo: Algorithm, node: &NodeSpec, cfg: MeasureConfig) -> f64 {
    let p = cfg.layout.world_size();
    assert!(algo.supports(p), "{algo} does not support {p} ranks");
    let schedule = algo.schedule(p, cfg.msg_size);
    let cost = CostModel::new(node.clone(), cfg.layout.ppn);
    sim::run(&schedule, cfg.layout, &cost).time_s
}

/// Noise-free runtimes for every applicable algorithm across a message-size
/// sweep at one job shape. Each algorithm's schedule is generated **once**
/// (at unit block size) and re-simulated scaled — the fast path dataset
/// generation runs on. Returns, per message size, the (algorithm, runtime)
/// pairs in registry order (unsorted).
pub fn measure_sweep(
    collective: crate::algo::Collective,
    node: &NodeSpec,
    layout: JobLayout,
    msg_sizes: &[usize],
) -> Vec<Vec<(Algorithm, f64)>> {
    let p = layout.world_size();
    let cost = CostModel::new(node.clone(), layout.ppn);
    let algos = Algorithm::applicable_for(collective, p);
    MEASURE_SWEEPS.inc();
    MEASURE_POINTS.add((algos.len() * msg_sizes.len()) as u64);
    let mut out = vec![Vec::with_capacity(algos.len()); msg_sizes.len()];
    for algo in algos {
        if algo.scale_invariant() {
            let unit = algo.schedule(p, 1);
            for (slot, &msg) in out.iter_mut().zip(msg_sizes) {
                let t = sim::run_scaled(&unit, layout, &cost, msg).time_s;
                slot.push((algo, t));
            }
        } else {
            // Chunk boundaries depend on the message size: no unit-schedule
            // shortcut, generate per size.
            for (slot, &msg) in out.iter_mut().zip(msg_sizes) {
                let t = sim::run(&algo.schedule(p, msg), layout, &cost).time_s;
                slot.push((algo, t));
            }
        }
    }
    out
}

/// Noisy measurement averaged over `iters` iterations, like the paper's
/// benchmarking protocol. Deterministic given the RNG state.
pub fn measure_noisy<R: Rng + ?Sized>(
    algo: Algorithm,
    node: &NodeSpec,
    cfg: MeasureConfig,
    noise: &NoiseModel,
    iters: u32,
    rng: &mut R,
) -> f64 {
    assert!(iters >= 1, "need at least one iteration");
    let base = measure(algo, node, cfg);
    let mut acc = 0.0;
    for _ in 0..iters {
        acc += base * noise.sample(rng);
    }
    acc / iters as f64
}

/// Run every applicable algorithm at `cfg` and return (algorithm, runtime)
/// pairs, noise-free, sorted fastest first.
pub fn rank_algorithms(
    collective: crate::algo::Collective,
    node: &NodeSpec,
    cfg: MeasureConfig,
) -> Vec<(Algorithm, f64)> {
    let p = cfg.layout.world_size();
    let mut out: Vec<(Algorithm, f64)> = Algorithm::applicable_for(collective, p)
        .into_iter()
        .map(|a| (a, measure(a, node, cfg)))
        .collect();
    out.sort_by(|a, b| a.1.total_cmp(&b.1));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{AllgatherAlgo, AlltoallAlgo, Collective};
    use pml_simnet::{CpuFamily, CpuSpec, HcaGeneration, InterconnectSpec, PcieVersion};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn frontera_like() -> NodeSpec {
        NodeSpec {
            cpu: CpuSpec {
                model: "Intel Xeon Platinum 8280".into(),
                family: CpuFamily::IntelXeon,
                max_clock_ghz: 2.7,
                l3_cache_mib: 38.5,
                mem_bw_gbs: 140.0,
                cores: 56,
                threads: 56,
                sockets: 2,
                numa_nodes: 2,
            },
            nic: InterconnectSpec::new(HcaGeneration::Edr, PcieVersion::Gen3),
        }
    }

    #[test]
    fn all_algorithms_measurable_at_pow2() {
        let node = frontera_like();
        let cfg = MeasureConfig {
            layout: JobLayout::new(2, 8),
            msg_size: 1024,
        };
        for a in AllgatherAlgo::ALL {
            assert!(measure(Algorithm::Allgather(a), &node, cfg) > 0.0);
        }
        for a in AlltoallAlgo::ALL {
            assert!(measure(Algorithm::Alltoall(a), &node, cfg) > 0.0);
        }
    }

    #[test]
    fn ranking_is_sorted_and_complete() {
        let node = frontera_like();
        let cfg = MeasureConfig {
            layout: JobLayout::new(2, 4),
            msg_size: 4096,
        };
        let ranked = rank_algorithms(Collective::Alltoall, &node, cfg);
        assert_eq!(ranked.len(), AlltoallAlgo::ALL.len());
        for w in ranked.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn noisy_average_converges_to_base() {
        let node = frontera_like();
        let cfg = MeasureConfig {
            layout: JobLayout::new(2, 4),
            msg_size: 512,
        };
        let a = Algorithm::Allgather(AllgatherAlgo::Ring);
        let base = measure(a, &node, cfg);
        let mut rng = StdRng::seed_from_u64(3);
        let noisy = measure_noisy(
            a,
            &node,
            cfg,
            &pml_simnet::NoiseModel::typical(),
            400,
            &mut rng,
        );
        assert!((noisy / base - 1.0).abs() < 0.05);
    }

    #[test]
    fn sweep_matches_individual_measurements() {
        let node = frontera_like();
        let layout = JobLayout::new(2, 6);
        let sizes = [1usize, 1024, 65536];
        for coll in Collective::ALL {
            let sweep = measure_sweep(coll, &node, layout, &sizes);
            for (col, &msg) in sweep.iter().zip(&sizes) {
                for &(a, t) in col {
                    let direct = measure(
                        a,
                        &node,
                        MeasureConfig {
                            layout,
                            msg_size: msg,
                        },
                    );
                    assert!(
                        (t - direct).abs() < 1e-15_f64.max(direct * 1e-12),
                        "{a} msg {msg}: sweep {t} vs direct {direct}"
                    );
                }
            }
        }
    }

    #[test]
    fn different_algorithms_get_different_times() {
        let node = frontera_like();
        let cfg = MeasureConfig {
            layout: JobLayout::new(4, 8),
            msg_size: 65536,
        };
        let ranked = rank_algorithms(Collective::Alltoall, &node, cfg);
        assert!(ranked[0].1 < ranked.last().unwrap().1);
    }
}
