//! Forward abstract interpretation over the provenance domain.
//!
//! Steps are visited in the step graph's topological order. A **Post**
//! node runs the step's local copies/reductions in op order and then
//! snapshots every send's payload (sends read the post-copy, pre-recv
//! state — ring-style schedules depend on this). A **Complete** node
//! delivers the matched payload snapshots into the receive regions.
//!
//! The only intra-step nondeterminism the executors actually have is the
//! completion order of a step's receives, so the hazard check rejects
//! exactly that: two receives of one step writing overlapping bytes.

use super::domain::RankAbs;
use super::graph::{Messages, MsgKey};
use super::{OpRef, Phase, SchedError, StepRef};
use crate::schedule::{CommSchedule, Op};
use std::collections::BTreeMap;

/// Reject steps where two receives write overlapping regions: their
/// completion order is unspecified, so the result would be racy.
pub(super) fn check_recv_overlap(s: &CommSchedule) -> Result<(), SchedError> {
    for (rank, prog) in s.ranks.iter().enumerate() {
        for (si, step) in prog.iter().enumerate() {
            let recvs: Vec<(usize, _)> = step
                .ops
                .iter()
                .enumerate()
                .filter_map(|(oi, op)| match op {
                    Op::Recv { region, .. } => Some((oi, *region)),
                    _ => None,
                })
                .collect();
            for (i, (oi_a, ra)) in recvs.iter().enumerate() {
                for (oi_b, rb) in recvs.iter().skip(i + 1) {
                    if ra.overlaps(rb) {
                        return Err(SchedError::RecvOverlap {
                            rank: rank as u32,
                            step: si,
                            first: *oi_a,
                            second: *oi_b,
                        });
                    }
                }
            }
        }
    }
    Ok(())
}

/// Abstractly execute the schedule, returning each rank's final state.
/// Fails on any read of an uninitialized byte (including a `Combine`
/// destination — no registered algorithm reduces into zero-initialized
/// memory, and a synthesized one must not either).
pub(super) fn interpret(
    s: &CommSchedule,
    _msgs: &Messages,
    order: &[StepRef],
) -> Result<Vec<RankAbs>, SchedError> {
    let mut states: Vec<RankAbs> = (0..s.world).map(|r| RankAbs::new(s, r)).collect();
    let mut payloads: BTreeMap<MsgKey, Vec<super::AbsByte>> = BTreeMap::new();
    for nref in order {
        let rank = nref.rank;
        let r = rank as usize;
        let ops = &s.ranks[r][nref.step].ops;
        match nref.phase {
            Phase::Post => {
                for (oi, op) in ops.iter().enumerate() {
                    let at = OpRef {
                        rank,
                        step: nref.step,
                        op: oi,
                    };
                    match op {
                        Op::Copy { src, dst } => {
                            let data = states[r].read(rank, src, at)?;
                            states[r].write(dst, data)?;
                        }
                        Op::Combine { src, dst } => {
                            let src_data = states[r].read(rank, src, at)?;
                            let dst_data = states[r].read(rank, dst, at)?;
                            let mut merged = Vec::with_capacity(src_data.len());
                            for (a, b) in dst_data.iter().zip(&src_data) {
                                match a.combine(b) {
                                    Some(v) => merged.push(v),
                                    None => {
                                        return Err(SchedError::Internal {
                                            what: "combine of bytes read as initialized",
                                        })
                                    }
                                }
                            }
                            states[r].write(dst, merged)?;
                        }
                        _ => {}
                    }
                }
                for (oi, op) in ops.iter().enumerate() {
                    if let Op::Send { to, tag, region } = op {
                        let at = OpRef {
                            rank,
                            step: nref.step,
                            op: oi,
                        };
                        let data = states[r].read(rank, region, at)?;
                        payloads.insert((rank, *to, *tag), data);
                    }
                }
            }
            Phase::Complete => {
                for op in ops {
                    if let Op::Recv { from, tag, region } = op {
                        let Some(data) = payloads.remove(&(*from, rank, *tag)) else {
                            return Err(SchedError::Internal {
                                what: "receive completed before its matched send posted",
                            });
                        };
                        states[r].write(region, data)?;
                    }
                }
            }
        }
    }
    Ok(states)
}
