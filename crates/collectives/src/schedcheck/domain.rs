//! The abstract domain: byte-granular provenance multisets.
//!
//! Every byte of every buffer is tracked as either ⊥ (never written since
//! the executor's zero-initialization) or the *multiset* of input bytes
//! whose wrapping sum it holds. A singleton multiset is a verbatim copy;
//! [`Op::Combine`](crate::schedule::Op) unions multisets. Because the
//! executors reduce with wrapping byte addition — commutative and
//! associative — the multiset fully determines the concrete byte value
//! given the inputs, so exact equality against a collective's declarative
//! spec ([`super::Spec`]) proves byte-level correctness without running
//! anything.

use super::{OpRef, SchedError};
use crate::schedule::{Buf, CommSchedule, Region};
use std::fmt;

/// One contribution to a byte's value: byte `offset` of rank `rank`'s
/// read-only Input buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct SourceByte {
    pub rank: u32,
    pub offset: usize,
}

impl fmt::Display for SourceByte {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}@{}", self.rank, self.offset)
    }
}

/// Abstract value of one buffer byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AbsByte {
    /// Never written; concretely zero, but reading it is an error because
    /// no collective's spec is allowed to depend on zero-initialization.
    Uninit,
    /// Wrapping sum of the listed input bytes, kept as a sorted multiset.
    Sum(Vec<SourceByte>),
}

impl AbsByte {
    /// A verbatim copy of one input byte.
    pub fn source(rank: u32, offset: usize) -> Self {
        AbsByte::Sum(vec![SourceByte { rank, offset }])
    }

    /// The reduction `self ⊕ other`; `None` if either side is ⊥.
    pub fn combine(&self, other: &AbsByte) -> Option<AbsByte> {
        match (self, other) {
            (AbsByte::Sum(a), AbsByte::Sum(b)) => {
                let mut v = Vec::with_capacity(a.len() + b.len());
                v.extend_from_slice(a);
                v.extend_from_slice(b);
                v.sort_unstable();
                Some(AbsByte::Sum(v))
            }
            _ => None,
        }
    }

    /// Human-readable rendering for error messages: `⊥` or `r0@3 + r1@3`.
    pub fn render(&self) -> String {
        match self {
            AbsByte::Uninit => "⊥".to_string(),
            AbsByte::Sum(v) => {
                let parts: Vec<String> = v.iter().map(|s| s.to_string()).collect();
                parts.join(" + ")
            }
        }
    }
}

/// Abstract state of one rank's writable buffers. The Input buffer needs
/// no storage: reading its byte `j` always yields `source(rank, j)`.
#[derive(Debug, Clone)]
pub struct RankAbs {
    pub work: Vec<AbsByte>,
    pub aux: Vec<AbsByte>,
}

impl RankAbs {
    /// Initial state: everything ⊥, except Work's first `input_len` bytes
    /// when the schedule runs in place (the MPI_IN_PLACE convention).
    pub fn new(schedule: &CommSchedule, rank: u32) -> Self {
        let mut work = vec![AbsByte::Uninit; schedule.work_len];
        if schedule.work_initialized_from_input {
            let seeded = schedule.input_len.min(schedule.work_len);
            for (j, byte) in work.iter_mut().take(seeded).enumerate() {
                *byte = AbsByte::source(rank, j);
            }
        }
        RankAbs {
            work,
            aux: vec![AbsByte::Uninit; schedule.aux_len],
        }
    }

    /// Read `region` as a vector of abstract bytes, failing on the first
    /// ⊥ byte with its absolute offset.
    pub fn read(&self, rank: u32, region: &Region, at: OpRef) -> Result<Vec<AbsByte>, SchedError> {
        let stored = match region.buf {
            Buf::Input => {
                return Ok((0..region.len)
                    .map(|k| AbsByte::source(rank, region.offset + k))
                    .collect());
            }
            Buf::Work => &self.work,
            Buf::Aux => &self.aux,
        };
        let mut out = Vec::with_capacity(region.len);
        for k in 0..region.len {
            match &stored[region.offset + k] {
                AbsByte::Uninit => {
                    return Err(SchedError::UninitRead {
                        at,
                        buf: region.buf,
                        offset: region.offset + k,
                    });
                }
                b => out.push(b.clone()),
            }
        }
        Ok(out)
    }

    /// Overwrite `region` with `data` (`data.len() == region.len` by
    /// construction at every call site).
    pub fn write(&mut self, region: &Region, data: Vec<AbsByte>) -> Result<(), SchedError> {
        let stored = match region.buf {
            Buf::Input => {
                return Err(SchedError::Internal {
                    what: "abstract write to the read-only input",
                })
            }
            Buf::Work => &mut self.work,
            Buf::Aux => &mut self.aux,
        };
        for (k, v) in data.into_iter().enumerate() {
            stored[region.offset + k] = v;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combine_merges_sorted_multisets() {
        let a = AbsByte::source(1, 4);
        let b = AbsByte::source(0, 4);
        let ab = a.combine(&b).unwrap();
        assert_eq!(
            ab,
            AbsByte::Sum(vec![
                SourceByte { rank: 0, offset: 4 },
                SourceByte { rank: 1, offset: 4 },
            ])
        );
        // Multiset, not set: combining twice keeps duplicates.
        let dup = ab.combine(&AbsByte::source(0, 4)).unwrap();
        if let AbsByte::Sum(v) = &dup {
            assert_eq!(v.len(), 3);
        }
        assert!(a.combine(&AbsByte::Uninit).is_none());
    }

    #[test]
    fn render_is_stable() {
        assert_eq!(AbsByte::Uninit.render(), "⊥");
        assert_eq!(
            AbsByte::source(2, 7)
                .combine(&AbsByte::source(0, 7))
                .unwrap()
                .render(),
            "r0@7 + r2@7"
        );
    }
}
