//! Message matching and the global step-dependency graph.
//!
//! Matching is by exact `(src, dst, tag)` triple — the interpreter's
//! mailbox key — with two extra static obligations the executors only
//! discover dynamically: every send needs exactly one receive of the same
//! size, and per directed pair the k-th posted send must match the k-th
//! posted receive (MPI non-overtaking / FIFO discipline, which the
//! [`crate::schedule::ScheduleBuilder`] guarantees by construction).
//!
//! Deadlock-freedom is a graph property: split every step into a **Post**
//! node (copies + non-blocking sends) and a **Complete** node (the
//! wait-all on its receives). Edges are program order within a rank plus
//! one cross-rank edge per message from the sender's Post to the
//! receiver's Complete. A topological order exists iff no set of ranks
//! can wait on each other forever; the order also drives the abstract
//! interpretation, and a cycle is reported as a deadlock witness.

use super::{OpRef, Phase, SchedError, StepRef};
use crate::schedule::{CommSchedule, Op, Region};
use std::collections::{BTreeMap, VecDeque};

/// Mailbox key: `(source rank, destination rank, tag)`.
pub(super) type MsgKey = (u32, u32, u32);

/// One side of a matched message.
#[derive(Debug, Clone, Copy)]
pub(super) struct Endpoint {
    pub at: OpRef,
    pub region: Region,
}

/// Every message of the schedule, fully matched: key → (send, recv).
#[derive(Debug)]
pub(super) struct Messages {
    pub map: BTreeMap<MsgKey, (Endpoint, Endpoint)>,
}

/// Match every send to its receive and enforce the FIFO tag discipline.
pub(super) fn match_messages(s: &CommSchedule) -> Result<Messages, SchedError> {
    let mut sends: BTreeMap<MsgKey, Endpoint> = BTreeMap::new();
    let mut recvs: BTreeMap<MsgKey, Endpoint> = BTreeMap::new();
    // Tags per directed pair, in the posting rank's program order.
    let mut send_order: BTreeMap<(u32, u32), Vec<u32>> = BTreeMap::new();
    let mut recv_order: BTreeMap<(u32, u32), Vec<u32>> = BTreeMap::new();
    for (rank, prog) in s.ranks.iter().enumerate() {
        let rank = rank as u32;
        for (si, step) in prog.iter().enumerate() {
            for (oi, op) in step.ops.iter().enumerate() {
                let at = OpRef {
                    rank,
                    step: si,
                    op: oi,
                };
                match op {
                    Op::Send { to, tag, region } => {
                        let key = (rank, *to, *tag);
                        if sends
                            .insert(
                                key,
                                Endpoint {
                                    at,
                                    region: *region,
                                },
                            )
                            .is_some()
                        {
                            return Err(SchedError::DuplicateMessage {
                                src: rank,
                                dst: *to,
                                tag: *tag,
                            });
                        }
                        send_order.entry((rank, *to)).or_default().push(*tag);
                    }
                    Op::Recv { from, tag, region } => {
                        let key = (*from, rank, *tag);
                        if recvs
                            .insert(
                                key,
                                Endpoint {
                                    at,
                                    region: *region,
                                },
                            )
                            .is_some()
                        {
                            return Err(SchedError::DuplicateMessage {
                                src: *from,
                                dst: rank,
                                tag: *tag,
                            });
                        }
                        recv_order.entry((*from, rank)).or_default().push(*tag);
                    }
                    _ => {}
                }
            }
        }
    }
    let mut map = BTreeMap::new();
    for (key, snd) in &sends {
        let Some(rcv) = recvs.get(key) else {
            return Err(SchedError::UnmatchedSend {
                at: snd.at,
                to: key.1,
                tag: key.2,
            });
        };
        if snd.region.len != rcv.region.len {
            return Err(SchedError::MessageSizeMismatch {
                src: key.0,
                dst: key.1,
                tag: key.2,
                send_len: snd.region.len,
                recv_len: rcv.region.len,
            });
        }
        map.insert(*key, (*snd, *rcv));
    }
    for (key, rcv) in &recvs {
        if !sends.contains_key(key) {
            return Err(SchedError::UnmatchedRecv {
                at: rcv.at,
                from: key.0,
                tag: key.2,
            });
        }
    }
    // FIFO: per pair the k-th send and the k-th receive (each in its own
    // rank's program order) must carry the same tag. Key sets already
    // agree, so the sequences have equal length.
    for (pair, stags) in &send_order {
        let rtags = recv_order.get(pair).map(Vec::as_slice).unwrap_or(&[]);
        for (k, (st, rt)) in stags.iter().zip(rtags).enumerate() {
            if st != rt {
                return Err(SchedError::TagOrderViolation {
                    src: pair.0,
                    dst: pair.1,
                    index: k,
                    send_tag: *st,
                    recv_tag: *rt,
                });
            }
        }
    }
    Ok(Messages { map })
}

/// A topological order of the Post/Complete step graph, or the deadlock
/// cycle that prevents one.
pub(super) fn topo_order(s: &CommSchedule, msgs: &Messages) -> Result<Vec<StepRef>, SchedError> {
    // Dense node ids: 2·(steps before rank r + step) + phase.
    let mut base = vec![0usize; s.ranks.len() + 1];
    let mut rank_step: Vec<(u32, usize)> = Vec::new();
    for (r, prog) in s.ranks.iter().enumerate() {
        base[r + 1] = base[r] + prog.len();
        for st in 0..prog.len() {
            rank_step.push((r as u32, st));
        }
    }
    let n = 2 * rank_step.len();
    let node = |rank: u32, step: usize, phase: Phase| -> usize {
        2 * (base[rank as usize] + step)
            + match phase {
                Phase::Post => 0,
                Phase::Complete => 1,
            }
    };
    let as_ref = |id: usize| -> StepRef {
        let (rank, step) = rank_step[id / 2];
        StepRef {
            rank,
            step,
            phase: if id.is_multiple_of(2) {
                Phase::Post
            } else {
                Phase::Complete
            },
        }
    };
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut indeg = vec![0u32; n];
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for (r, prog) in s.ranks.iter().enumerate() {
        let r = r as u32;
        for st in 0..prog.len() {
            edges.push((node(r, st, Phase::Post), node(r, st, Phase::Complete)));
            if st > 0 {
                edges.push((node(r, st - 1, Phase::Complete), node(r, st, Phase::Post)));
            }
        }
    }
    for (snd, rcv) in msgs.map.values() {
        edges.push((
            node(snd.at.rank, snd.at.step, Phase::Post),
            node(rcv.at.rank, rcv.at.step, Phase::Complete),
        ));
    }
    for &(a, b) in &edges {
        adj[a].push(b);
        indeg[b] += 1;
    }
    let mut queue: VecDeque<usize> = (0..n).filter(|&id| indeg[id] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(id) = queue.pop_front() {
        order.push(as_ref(id));
        for &succ in &adj[id] {
            indeg[succ] -= 1;
            if indeg[succ] == 0 {
                queue.push_back(succ);
            }
        }
    }
    if order.len() == n {
        return Ok(order);
    }
    // Cycle witness: walk predecessors inside the remaining (indeg > 0)
    // subgraph until a node repeats.
    let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(a, b) in &edges {
        if indeg[a] > 0 && indeg[b] > 0 {
            rev[b].push(a);
        }
    }
    let start = (0..n).find(|&id| indeg[id] > 0).unwrap_or(0);
    let mut pos = vec![usize::MAX; n];
    let mut path = vec![start];
    pos[start] = 0;
    let cycle_ids = loop {
        let cur = path[path.len() - 1];
        let Some(&pred) = rev[cur].first() else {
            // Every remaining node has a remaining predecessor; defensive
            // fallback so a broken invariant still reports *something*.
            break path.clone();
        };
        if pos[pred] != usize::MAX {
            let mut cyc = path[pos[pred]..].to_vec();
            cyc.reverse();
            break cyc;
        }
        pos[pred] = path.len();
        path.push(pred);
    };
    Err(SchedError::Deadlock {
        cycle: cycle_ids.into_iter().map(as_ref).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{Buf, CommSchedule, Op, Region, Step};

    /// Two ranks, each receiving before it sends: the classic wait cycle.
    fn cyclic_schedule() -> CommSchedule {
        let b = 4usize;
        let mk = |peer: u32| {
            vec![
                Step {
                    ops: vec![Op::Recv {
                        from: peer,
                        tag: 0,
                        region: Region::new(Buf::Work, 0, b),
                    }],
                },
                Step {
                    ops: vec![Op::Send {
                        to: peer,
                        tag: 0,
                        region: Region::new(Buf::Input, 0, b),
                    }],
                },
            ]
        };
        CommSchedule {
            world: 2,
            block: b,
            input_len: b,
            work_len: b,
            aux_len: 0,
            work_initialized_from_input: false,
            ranks: vec![mk(1), mk(0)],
        }
    }

    #[test]
    fn wait_cycle_is_reported_with_witness() {
        let s = cyclic_schedule();
        let msgs = match_messages(&s).unwrap();
        let err = topo_order(&s, &msgs).unwrap_err();
        match err {
            SchedError::Deadlock { cycle } => {
                assert!(cycle.len() >= 4, "cycle {cycle:?}");
                assert!(cycle.iter().any(|n| n.rank == 0));
                assert!(cycle.iter().any(|n| n.rank == 1));
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn swapped_tags_violate_fifo() {
        let b = 4usize;
        let send = |tag: u32| Op::Send {
            to: 1,
            tag,
            region: Region::new(Buf::Input, 0, b),
        };
        let recv = |tag: u32, off: usize| Op::Recv {
            from: 0,
            tag,
            region: Region::new(Buf::Work, off, b),
        };
        let s = CommSchedule {
            world: 2,
            block: b,
            input_len: b,
            work_len: 2 * b,
            aux_len: 0,
            work_initialized_from_input: false,
            ranks: vec![
                vec![Step {
                    ops: vec![send(1), send(0)],
                }],
                vec![Step {
                    ops: vec![recv(0, 0), recv(1, b)],
                }],
            ],
        };
        let err = match_messages(&s).unwrap_err();
        assert!(
            matches!(err, SchedError::TagOrderViolation { index: 0, .. }),
            "{err:?}"
        );
    }
}
