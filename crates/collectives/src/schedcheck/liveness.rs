//! Backward liveness: which operations actually contribute to any rank's
//! final Work buffer.
//!
//! A byte of Work or Aux is *live* at a program point if the value it
//! holds there flows (through copies, reductions, or messages) into some
//! rank's Work buffer as it stands when the schedule finishes. The pass
//! walks the step graph's topological order in reverse — so a message's
//! receive side is processed before its send side — seeding every final
//! Work byte live and every final Aux byte dead. An operation none of
//! whose written (or sent) bytes are live is dead weight: the schedule
//! would produce identical output without it, which for a named algorithm
//! is a bug and for a synthesized candidate is wasted cost.
//!
//! Overwrites kill: a `Copy`/`Recv` destination stops being live below
//! the op (its old value is unobservable), while a `Combine` destination
//! stays live (the old value is read into the reduction).

use super::graph::{Messages, MsgKey};
use super::{OpRef, Phase, StepRef};
use crate::schedule::{Buf, CommSchedule, Op, Region};
use std::collections::BTreeMap;

/// Per-rank liveness bitmaps for the two writable buffers.
#[derive(Debug)]
struct Live {
    work: Vec<bool>,
    aux: Vec<bool>,
}

impl Live {
    fn mask(&self, region: &Region) -> Vec<bool> {
        let buf = match region.buf {
            Buf::Work => &self.work,
            Buf::Aux => &self.aux,
            Buf::Input => return vec![false; region.len],
        };
        buf[region.offset..region.offset + region.len].to_vec()
    }

    fn clear(&mut self, region: &Region) {
        let buf = match region.buf {
            Buf::Work => &mut self.work,
            Buf::Aux => &mut self.aux,
            Buf::Input => return,
        };
        for b in &mut buf[region.offset..region.offset + region.len] {
            *b = false;
        }
    }

    /// Mark `region`'s byte k live wherever `mask[k]` is set. Reads from
    /// the Input buffer are sources — nothing to propagate.
    fn raise(&mut self, region: &Region, mask: &[bool]) {
        let buf = match region.buf {
            Buf::Work => &mut self.work,
            Buf::Aux => &mut self.aux,
            Buf::Input => return,
        };
        for (k, &m) in mask.iter().enumerate() {
            if m {
                buf[region.offset + k] = true;
            }
        }
    }
}

fn any(mask: &[bool]) -> bool {
    mask.iter().any(|&b| b)
}

/// The first (by rank, step, op position) operation that contributes no
/// byte to any rank's final Work buffer, if any.
pub(super) fn first_dead_op(
    s: &CommSchedule,
    _msgs: &Messages,
    order: &[StepRef],
) -> Option<OpRef> {
    let mut live: Vec<Live> = (0..s.world as usize)
        .map(|_| Live {
            work: vec![true; s.work_len],
            aux: vec![false; s.aux_len],
        })
        .collect();
    // Liveness of each message's payload, recorded at the receive side.
    let mut msg_mask: BTreeMap<MsgKey, Vec<bool>> = BTreeMap::new();
    let mut dead: Vec<OpRef> = Vec::new();
    for nref in order.iter().rev() {
        let rank = nref.rank;
        let r = rank as usize;
        let ops = &s.ranks[r][nref.step].ops;
        match nref.phase {
            Phase::Complete => {
                for op in ops.iter().rev() {
                    if let Op::Recv { from, tag, region } = op {
                        let mask = live[r].mask(region);
                        live[r].clear(region);
                        msg_mask.insert((*from, rank, *tag), mask);
                    }
                }
            }
            Phase::Post => {
                // Sends run after the local ops, so process them first in
                // the backward walk; a dead message is charged to its send.
                for (oi, op) in ops.iter().enumerate().rev() {
                    if let Op::Send { to, tag, region } = op {
                        match msg_mask.get(&(rank, *to, *tag)) {
                            Some(mask) if any(mask) => {
                                let mask = mask.clone();
                                live[r].raise(region, &mask);
                            }
                            _ => dead.push(OpRef {
                                rank,
                                step: nref.step,
                                op: oi,
                            }),
                        }
                    }
                }
                for (oi, op) in ops.iter().enumerate().rev() {
                    let at = OpRef {
                        rank,
                        step: nref.step,
                        op: oi,
                    };
                    match op {
                        Op::Copy { src, dst } => {
                            let mask = live[r].mask(dst);
                            live[r].clear(dst);
                            if any(&mask) {
                                live[r].raise(src, &mask);
                            } else {
                                dead.push(at);
                            }
                        }
                        Op::Combine { src, dst } => {
                            let mask = live[r].mask(dst);
                            if any(&mask) {
                                live[r].raise(src, &mask);
                            } else {
                                dead.push(at);
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
    }
    dead.sort_unstable();
    dead.first().copied()
}
