//! # schedcheck — static dataflow verification of the schedule IR
//!
//! Proves a [`CommSchedule`] implements its collective **without
//! executing it**: each rank's buffers are modelled as byte-granular
//! provenance multisets ([`AbsByte`]) and the steps are abstractly
//! interpreted in phase order (copies → posted sends → wait-all
//! receives), in a topological order of the global Post/Complete step
//! graph. Five classes of defect are rejected with a typed
//! [`SchedError`]:
//!
//! 1. **Uninitialized reads** — a `Send`/`Copy`/`Combine` source (or a
//!    `Combine` destination) containing a byte nothing ever wrote;
//! 2. **Structural hazards** — out-of-bounds or overflowing regions, bad
//!    peers, length mismatches, writes to the read-only Input, and two
//!    receives of one step racing on overlapping bytes;
//! 3. **Deadlock** — the cross-rank wait graph has a cycle (reported
//!    with a witness), a strictly stronger check than
//!    [`CommSchedule::validate`]'s pairwise matching, which also covers
//!    FIFO tag discipline per directed pair;
//! 4. **Dead operations** — sends/copies/reductions none of whose bytes
//!    reach any rank's final Work buffer;
//! 5. **Postcondition mismatch** — the final abstract Work state differs
//!    from the collective's declarative [`Spec`] (for allreduce the
//!    multiset equality proves every rank's contribution is reduced
//!    exactly once).
//!
//! Where [`crate::verify`] moves real bytes through the interpreter,
//! this module answers in microseconds from the IR alone — the admission
//! gate schedule *synthesis* (ROADMAP item 3) runs before paying for
//! threaded execution, and a second, independent proof for every named
//! algorithm the registry ships (`pml-mpi verify --schedules` sweeps the
//! full grid in CI).

mod analyze;
mod domain;
mod graph;
mod liveness;
mod spec;

pub use domain::{AbsByte, RankAbs, SourceByte};
pub use spec::Spec;

use crate::algo::{Algorithm, Collective};
use crate::schedule::{Buf, CommSchedule, Op, Region};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Version string every on-disk schedule document must carry.
pub const SCHED_DOC_VERSION: &str = "pml-sched/v1";

/// Versioned on-disk schedule document: what `pml-mpi verify --schedules
/// FILE` checks, and the interchange format a schedule synthesizer emits
/// for gating. The claim (`collective` + `size`) travels with the
/// schedule so verification needs no out-of-band context.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleDoc {
    pub v: String,
    pub collective: Collective,
    pub size: usize,
    pub schedule: CommSchedule,
}

impl ScheduleDoc {
    /// Wrap a schedule with its claim under the current version.
    pub fn new(collective: Collective, size: usize, schedule: CommSchedule) -> Self {
        ScheduleDoc {
            v: SCHED_DOC_VERSION.to_string(),
            collective,
            size,
            schedule,
        }
    }

    /// Check the version tag and statically verify the schedule against
    /// the claimed collective.
    pub fn check(&self) -> Result<(), SchedError> {
        if self.v != SCHED_DOC_VERSION {
            return Err(SchedError::BadDocVersion {
                got: self.v.clone(),
            });
        }
        check_schedule(
            &self.schedule,
            &Spec::for_collective(self.collective, self.size),
        )
    }
}

/// Location of one operation inside a schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct OpRef {
    pub rank: u32,
    pub step: usize,
    pub op: usize,
}

impl fmt::Display for OpRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rank {} step {} op {}", self.rank, self.step, self.op)
    }
}

/// Which half of a step a node of the global step graph stands for:
/// posting its copies and sends, or completing its receives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    Post,
    Complete,
}

/// One node of the step graph; a deadlock is reported as a cycle of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepRef {
    pub rank: u32,
    pub step: usize,
    pub phase: Phase,
}

impl fmt::Display for StepRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let phase = match self.phase {
            Phase::Post => "post",
            Phase::Complete => "complete",
        };
        write!(f, "rank {} step {} ({phase})", self.rank, self.step)
    }
}

/// Every way a schedule can fail static verification.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedError {
    /// `world` disagrees with the number of rank programs.
    WorldMismatch { world: u32, programs: usize },
    /// A send/recv peer is out of range or the rank itself.
    BadPeer { at: OpRef, peer: u32 },
    /// A region exceeds its buffer (including `offset + len` overflow).
    RegionOutOfBounds {
        at: OpRef,
        buf: Buf,
        offset: usize,
        len: usize,
        buf_len: usize,
    },
    /// A copy/reduction whose source and destination lengths differ.
    CopyLengthMismatch {
        at: OpRef,
        src_len: usize,
        dst_len: usize,
    },
    /// A copy/reduction whose source and destination overlap in the same
    /// buffer (undefined under memcpy semantics).
    OverlappingCopy { at: OpRef },
    /// A copy or receive writing the read-only Input buffer.
    ReadOnlyInputWrite { at: OpRef },
    /// Two sends (or two receives) with the same `(src, dst, tag)`.
    DuplicateMessage { src: u32, dst: u32, tag: u32 },
    /// A send no receive ever matches.
    UnmatchedSend { at: OpRef, to: u32, tag: u32 },
    /// A receive no send ever matches.
    UnmatchedRecv { at: OpRef, from: u32, tag: u32 },
    /// Matched send and receive regions of different size.
    MessageSizeMismatch {
        src: u32,
        dst: u32,
        tag: u32,
        send_len: usize,
        recv_len: usize,
    },
    /// The k-th send and k-th receive of a directed pair (each in program
    /// order) carry different tags — an MPI non-overtaking violation.
    TagOrderViolation {
        src: u32,
        dst: u32,
        index: usize,
        send_tag: u32,
        recv_tag: u32,
    },
    /// The cross-rank wait graph has a cycle; no execution can finish.
    Deadlock { cycle: Vec<StepRef> },
    /// Two receives of one step write overlapping bytes — their
    /// completion order is unspecified, so the content would be racy.
    RecvOverlap {
        rank: u32,
        step: usize,
        first: usize,
        second: usize,
    },
    /// An operation reads a byte nothing ever wrote.
    UninitRead { at: OpRef, buf: Buf, offset: usize },
    /// An operation none of whose bytes reach any rank's final output.
    DeadOp { at: OpRef },
    /// The algorithm is not defined at this world size.
    UnsupportedWorld { world: u32 },
    /// A schedule document carries an unknown version tag.
    BadDocVersion { got: String },
    /// Buffer geometry disagrees with the collective's spec.
    SpecShapeMismatch {
        field: &'static str,
        expected: usize,
        got: usize,
    },
    /// A final Work byte holds the wrong provenance.
    PostconditionMismatch {
        rank: u32,
        offset: usize,
        expected: String,
        got: String,
    },
    /// An analyzer invariant broke — never expected on any input.
    Internal { what: &'static str },
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::WorldMismatch { world, programs } => {
                write!(
                    f,
                    "world is {world} but schedule has {programs} rank programs"
                )
            }
            SchedError::BadPeer { at, peer } => write!(f, "{at}: bad peer {peer}"),
            SchedError::RegionOutOfBounds {
                at,
                buf,
                offset,
                len,
                buf_len,
            } => write!(
                f,
                "{at}: region {buf:?}+{offset} len {len} exceeds buffer length {buf_len}"
            ),
            SchedError::CopyLengthMismatch {
                at,
                src_len,
                dst_len,
            } => write!(f, "{at}: copy length mismatch {src_len} vs {dst_len}"),
            SchedError::OverlappingCopy { at } => {
                write!(f, "{at}: overlapping same-buffer copy")
            }
            SchedError::ReadOnlyInputWrite { at } => {
                write!(f, "{at}: writes the read-only input")
            }
            SchedError::DuplicateMessage { src, dst, tag } => {
                write!(f, "duplicate message ({src} -> {dst}, tag {tag})")
            }
            SchedError::UnmatchedSend { at, to, tag } => {
                write!(f, "{at}: send to {to} tag {tag} is never received")
            }
            SchedError::UnmatchedRecv { at, from, tag } => {
                write!(f, "{at}: recv from {from} tag {tag} is never sent")
            }
            SchedError::MessageSizeMismatch {
                src,
                dst,
                tag,
                send_len,
                recv_len,
            } => write!(
                f,
                "message ({src} -> {dst}, tag {tag}): send {send_len} bytes but recv {recv_len}"
            ),
            SchedError::TagOrderViolation {
                src,
                dst,
                index,
                send_tag,
                recv_tag,
            } => write!(
                f,
                "pair ({src} -> {dst}) message {index}: send tag {send_tag} but recv tag \
                 {recv_tag} (FIFO order violated)"
            ),
            SchedError::Deadlock { cycle } => {
                let parts: Vec<String> = cycle.iter().map(|n| n.to_string()).collect();
                write!(f, "deadlock: {}", parts.join(" -> "))
            }
            SchedError::RecvOverlap {
                rank,
                step,
                first,
                second,
            } => write!(
                f,
                "rank {rank} step {step}: recvs at ops {first} and {second} write overlapping \
                 bytes"
            ),
            SchedError::UninitRead { at, buf, offset } => {
                write!(f, "{at}: reads uninitialized {buf:?} byte {offset}")
            }
            SchedError::DeadOp { at } => write!(
                f,
                "{at}: dead operation — no byte it moves reaches any rank's final output"
            ),
            SchedError::UnsupportedWorld { world } => {
                write!(f, "algorithm not defined at world size {world}")
            }
            SchedError::BadDocVersion { got } => {
                write!(
                    f,
                    "unsupported schedule document version {got:?} (want {SCHED_DOC_VERSION:?})"
                )
            }
            SchedError::SpecShapeMismatch {
                field,
                expected,
                got,
            } => write!(f, "spec shape: {field} should be {expected}, got {got}"),
            SchedError::PostconditionMismatch {
                rank,
                offset,
                expected,
                got,
            } => write!(
                f,
                "postcondition: rank {rank} work byte {offset} holds [{got}], spec requires \
                 [{expected}]"
            ),
            SchedError::Internal { what } => write!(f, "internal analyzer error: {what}"),
        }
    }
}

impl std::error::Error for SchedError {}

/// Per-op structural checks: a typed superset of
/// [`CommSchedule::validate`]'s local rules, plus explicit
/// `offset + len` overflow rejection.
fn structural(s: &CommSchedule) -> Result<(), SchedError> {
    if s.ranks.len() != s.world as usize {
        return Err(SchedError::WorldMismatch {
            world: s.world,
            programs: s.ranks.len(),
        });
    }
    let buf_len = |b: Buf| match b {
        Buf::Input => s.input_len,
        Buf::Work => s.work_len,
        Buf::Aux => s.aux_len,
    };
    let check_region = |r: &Region, at: OpRef| -> Result<(), SchedError> {
        let oob = match r.offset.checked_add(r.len) {
            Some(end) => end > buf_len(r.buf),
            None => true,
        };
        if oob {
            return Err(SchedError::RegionOutOfBounds {
                at,
                buf: r.buf,
                offset: r.offset,
                len: r.len,
                buf_len: buf_len(r.buf),
            });
        }
        Ok(())
    };
    for (rank, prog) in s.ranks.iter().enumerate() {
        let rank = rank as u32;
        for (si, step) in prog.iter().enumerate() {
            for (oi, op) in step.ops.iter().enumerate() {
                let at = OpRef {
                    rank,
                    step: si,
                    op: oi,
                };
                match op {
                    Op::Send { to, region, .. } => {
                        if *to >= s.world || *to == rank {
                            return Err(SchedError::BadPeer { at, peer: *to });
                        }
                        check_region(region, at)?;
                    }
                    Op::Recv { from, region, .. } => {
                        if *from >= s.world || *from == rank {
                            return Err(SchedError::BadPeer { at, peer: *from });
                        }
                        check_region(region, at)?;
                        if region.buf == Buf::Input {
                            return Err(SchedError::ReadOnlyInputWrite { at });
                        }
                    }
                    Op::Copy { src, dst } | Op::Combine { src, dst } => {
                        check_region(src, at)?;
                        check_region(dst, at)?;
                        if src.len != dst.len {
                            return Err(SchedError::CopyLengthMismatch {
                                at,
                                src_len: src.len,
                                dst_len: dst.len,
                            });
                        }
                        if src.overlaps(dst) {
                            return Err(SchedError::OverlappingCopy { at });
                        }
                        if dst.buf == Buf::Input {
                            return Err(SchedError::ReadOnlyInputWrite { at });
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// Statically verify `schedule` against `spec`. `Ok(())` is a proof (up
/// to the analyzer's own correctness) that every execution the three
/// executors can produce terminates and leaves every rank's Work buffer
/// exactly as the collective's specification demands.
pub fn check_schedule(schedule: &CommSchedule, spec: &Spec) -> Result<(), SchedError> {
    structural(schedule)?;
    spec.check_shape(schedule)?;
    let msgs = graph::match_messages(schedule)?;
    analyze::check_recv_overlap(schedule)?;
    let order = graph::topo_order(schedule, &msgs)?;
    let finals = analyze::interpret(schedule, &msgs, &order)?;
    spec.check_post(schedule, &finals)?;
    if let Some(at) = liveness::first_dead_op(schedule, &msgs, &order) {
        return Err(SchedError::DeadOp { at });
    }
    Ok(())
}

/// Generate `algo`'s schedule at (`p`, `size`) and statically verify it
/// against its collective's spec.
pub fn check_algorithm(algo: Algorithm, p: u32, size: usize) -> Result<(), SchedError> {
    if !algo.supports(p) {
        return Err(SchedError::UnsupportedWorld { world: p });
    }
    let schedule = algo.schedule(p, size);
    check_schedule(&schedule, &Spec::for_collective(algo.collective(), size))
}

/// Every (algorithm, world, size) cell of the standard verification
/// grid: all registered algorithms of every collective, world ∈
/// `2..=max_world` (non-powers-of-two included; algorithm/world pairs
/// the registry marks unsupported are skipped), at each of `sizes`
/// (block bytes for allgather/alltoall, message bytes for
/// bcast/allreduce).
pub fn sweep_grid(max_world: u32, sizes: &[usize]) -> Vec<(Algorithm, u32, usize)> {
    let mut out = Vec::new();
    for c in Collective::ALL {
        for p in 2..=max_world {
            for algo in Algorithm::applicable_for(c, p) {
                for &size in sizes {
                    out.push((algo, p, size));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::ScheduleBuilder;

    /// The canonical two-rank allgather exchange from schedule.rs's tests.
    fn two_rank_allgather(b: usize) -> CommSchedule {
        let mut sb = ScheduleBuilder::new(2, b, b, 2 * b, 0);
        for r in 0..2u32 {
            let peer = 1 - r;
            sb.step(r, |s| {
                s.copy(Region::input(0, b), Region::work(r as usize * b, b));
                s.send(peer, Region::input(0, b));
                s.recv(peer, Region::work(peer as usize * b, b));
            });
        }
        sb.finish()
    }

    #[test]
    fn two_rank_exchange_proves_allgather() {
        let sch = two_rank_allgather(8);
        check_schedule(&sch, &Spec::Allgather { block: 8 }).unwrap();
    }

    #[test]
    fn swapped_slots_are_a_postcondition_mismatch() {
        // Rank 1 places its own block where rank 0's belongs (and vice
        // versa): shape and dataflow are fine, provenance is not.
        let b = 8usize;
        let mut sch = two_rank_allgather(b);
        sch.ranks[1][0].ops[0] = Op::Copy {
            src: Region::input(0, b),
            dst: Region::work(0, b),
        };
        sch.ranks[1][0].ops[2] = Op::Recv {
            from: 0,
            tag: 0,
            region: Region::work(b, b),
        };
        let err = check_schedule(&sch, &Spec::Allgather { block: b }).unwrap_err();
        assert!(
            matches!(
                err,
                SchedError::PostconditionMismatch {
                    rank: 1,
                    offset: 0,
                    ..
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn wrong_collective_is_a_shape_mismatch() {
        let sch = two_rank_allgather(8);
        let err = check_schedule(&sch, &Spec::Bcast { msg: 8 }).unwrap_err();
        assert!(
            matches!(
                err,
                SchedError::SpecShapeMismatch {
                    field: "work_len",
                    ..
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn overflowing_region_is_out_of_bounds_not_a_wrap() {
        let b = 8usize;
        let mut sch = two_rank_allgather(b);
        sch.ranks[0][0].ops[0] = Op::Copy {
            src: Region::input(0, b),
            dst: Region::new(Buf::Work, usize::MAX - 2, b),
        };
        let err = check_schedule(&sch, &Spec::Allgather { block: b }).unwrap_err();
        assert!(
            matches!(err, SchedError::RegionOutOfBounds { .. }),
            "{err:?}"
        );
    }

    #[test]
    fn grid_covers_non_powers_of_two() {
        let grid = sweep_grid(16, &[16, 21]);
        assert!(grid.iter().any(|(_, p, _)| *p == 7));
        assert!(grid.iter().any(|(_, p, _)| *p == 12));
        // Power-of-two-only algorithms never appear at odd worlds.
        assert!(grid
            .iter()
            .all(|(a, p, _)| a.supports(*p) && *p >= 2 && *p <= 16));
    }

    #[test]
    fn errors_render() {
        let at = OpRef {
            rank: 1,
            step: 2,
            op: 0,
        };
        let msgs = [
            SchedError::BadPeer { at, peer: 9 }.to_string(),
            SchedError::DeadOp { at }.to_string(),
            SchedError::UninitRead {
                at,
                buf: Buf::Aux,
                offset: 3,
            }
            .to_string(),
        ];
        for m in &msgs {
            assert!(m.contains("rank 1 step 2"), "{m}");
        }
    }
}
