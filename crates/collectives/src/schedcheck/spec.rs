//! Declarative per-collective postconditions.
//!
//! Each collective is specified as the exact provenance multiset every
//! byte of every rank's final Work buffer must hold. Equality is exact in
//! both directions: a byte with the wrong source, a missing or duplicated
//! reduction contribution, or a leftover ⊥ all fail. For allreduce this
//! is the "every rank reduced, exactly once" proof: byte `j` must be the
//! multiset `{(q, j) : q ∈ 0..p}` with each element appearing once.

use super::domain::{AbsByte, RankAbs, SourceByte};
use super::SchedError;
use crate::algo::Collective;
use crate::schedule::CommSchedule;

/// What a schedule claims to implement, with its size parameter (`block`
/// bytes per rank for allgather/alltoall, total message bytes for
/// bcast/allreduce — the same convention as `Algorithm::schedule`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Spec {
    Allgather { block: usize },
    Alltoall { block: usize },
    Bcast { msg: usize },
    Allreduce { msg: usize },
}

impl Spec {
    pub fn for_collective(c: Collective, size: usize) -> Spec {
        match c {
            Collective::Allgather => Spec::Allgather { block: size },
            Collective::Alltoall => Spec::Alltoall { block: size },
            Collective::Bcast => Spec::Bcast { msg: size },
            Collective::Allreduce => Spec::Allreduce { msg: size },
        }
    }

    pub fn collective(&self) -> Collective {
        match self {
            Spec::Allgather { .. } => Collective::Allgather,
            Spec::Alltoall { .. } => Collective::Alltoall,
            Spec::Bcast { .. } => Collective::Bcast,
            Spec::Allreduce { .. } => Collective::Allreduce,
        }
    }

    pub fn size(&self) -> usize {
        match self {
            Spec::Allgather { block } | Spec::Alltoall { block } => *block,
            Spec::Bcast { msg } | Spec::Allreduce { msg } => *msg,
        }
    }

    /// Required `(input_len, work_len)` for a world of `p` ranks.
    fn required(&self, p: u32) -> (usize, usize) {
        let pu = p as usize;
        match self {
            Spec::Allgather { block } => (*block, pu * block),
            Spec::Alltoall { block } => (pu * block, pu * block),
            Spec::Bcast { msg } | Spec::Allreduce { msg } => (*msg, *msg),
        }
    }

    /// The schedule's buffer geometry must match the spec before any
    /// provenance statement makes sense.
    pub(super) fn check_shape(&self, s: &CommSchedule) -> Result<(), SchedError> {
        let (input_len, work_len) = self.required(s.world);
        if s.input_len != input_len {
            return Err(SchedError::SpecShapeMismatch {
                field: "input_len",
                expected: input_len,
                got: s.input_len,
            });
        }
        if s.work_len != work_len {
            return Err(SchedError::SpecShapeMismatch {
                field: "work_len",
                expected: work_len,
                got: s.work_len,
            });
        }
        Ok(())
    }

    /// Expected provenance of rank `rank`'s Work byte `j`.
    fn expected_byte(&self, p: u32, rank: u32, j: usize) -> AbsByte {
        match self {
            // Block q of everyone's output is rank q's contribution.
            Spec::Allgather { block } => AbsByte::source((j / block) as u32, j % block),
            // Block s of rank r's output is the block s addressed to r.
            Spec::Alltoall { block } => {
                let src = (j / block) as u32;
                AbsByte::Sum(vec![SourceByte {
                    rank: src,
                    offset: rank as usize * block + j % block,
                }])
            }
            // Everyone ends with the root's payload; other ranks' inputs
            // are garbage and must never leak in.
            Spec::Bcast { .. } => AbsByte::source(0, j),
            // Every rank's byte j, reduced exactly once each.
            Spec::Allreduce { .. } => {
                AbsByte::Sum((0..p).map(|q| SourceByte { rank: q, offset: j }).collect())
            }
        }
    }

    /// Compare the final abstract Work state of every rank against the
    /// spec, byte for byte.
    pub(super) fn check_post(
        &self,
        s: &CommSchedule,
        finals: &[RankAbs],
    ) -> Result<(), SchedError> {
        for (r, state) in finals.iter().enumerate() {
            for (j, got) in state.work.iter().enumerate() {
                let want = self.expected_byte(s.world, r as u32, j);
                if *got != want {
                    return Err(SchedError::PostconditionMismatch {
                        rank: r as u32,
                        offset: j,
                        expected: want.render(),
                        got: got.render(),
                    });
                }
            }
        }
        Ok(())
    }
}
