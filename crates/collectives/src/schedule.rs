//! The communication-schedule IR.
//!
//! Every collective algorithm in this crate is expressed as a
//! [`CommSchedule`]: for each rank, an ordered list of [`Step`]s, each
//! containing local copies, sends, and receives. The same schedule is then
//! consumed by three executors:
//!
//! * the sequential interpreter ([`crate::exec::interp`]) — moves real bytes,
//!   used to prove algorithm correctness;
//! * the threaded executor ([`crate::exec::threaded`]) — one OS thread per
//!   rank over crossbeam channels, real parallel execution;
//! * the virtual-time executor ([`crate::exec::sim`]) — charges each
//!   operation against a [`pml_simnet::CostModel`] to produce the modelled
//!   runtime the ML dataset is built from.
//!
//! ## Step semantics
//!
//! Within a step, operations execute as one MPI "phase":
//! 1. all [`Op::Copy`] operations run first, in order (packing);
//! 2. all [`Op::Send`] operations are posted (non-blocking);
//! 3. all [`Op::Recv`] operations complete (wait-all).
//!
//! A copy that consumes received data therefore belongs in the *next* step.
//! Because sends never wait on receives, a schedule whose sends and receives
//! pairwise match can never deadlock — [`CommSchedule::validate`] checks the
//! matching.
//!
//! ## Tag discipline
//!
//! Message matching is per directed pair, FIFO: the k-th send from rank `i`
//! to rank `j` matches the k-th receive at `j` from `i` (MPI non-overtaking
//! semantics). The [`ScheduleBuilder`] assigns sequence tags automatically.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Which per-rank buffer a region refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Buf {
    /// The caller's read-only send buffer.
    Input,
    /// The output buffer (the collective's result ends here).
    Work,
    /// Algorithm-private scratch space.
    Aux,
}

/// A byte range inside one of a rank's buffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Region {
    pub buf: Buf,
    pub offset: usize,
    pub len: usize,
}

impl Region {
    pub fn new(buf: Buf, offset: usize, len: usize) -> Self {
        Region { buf, offset, len }
    }

    pub fn input(offset: usize, len: usize) -> Self {
        Region::new(Buf::Input, offset, len)
    }

    pub fn work(offset: usize, len: usize) -> Self {
        Region::new(Buf::Work, offset, len)
    }

    pub fn aux(offset: usize, len: usize) -> Self {
        Region::new(Buf::Aux, offset, len)
    }

    /// Exclusive end of the region. Saturates on `offset + len` overflow —
    /// such a region can never fit a real buffer, and [`CommSchedule::validate`]
    /// rejects it explicitly rather than letting the sum wrap.
    pub fn end(&self) -> usize {
        self.offset.saturating_add(self.len)
    }

    /// Whether `offset + len` overflows `usize` — always invalid.
    pub fn overflows(&self) -> bool {
        self.offset.checked_add(self.len).is_none()
    }

    pub fn overlaps(&self, other: &Region) -> bool {
        self.buf == other.buf && self.offset < other.end() && other.offset < self.end()
    }
}

/// One operation executed by one rank.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Op {
    /// Post a message to `to`. Non-blocking for eager-sized payloads.
    Send { to: u32, tag: u32, region: Region },
    /// Complete a message from `from` into `region`.
    Recv { from: u32, tag: u32, region: Region },
    /// Local memory copy (pack/unpack/rotate). `src.len == dst.len`.
    Copy { src: Region, dst: Region },
    /// Local elementwise reduction: `dst[i] ⊕= src[i]` (the executors use
    /// wrapping byte addition — commutative and associative, so any valid
    /// reduction order yields identical bytes). `src.len == dst.len`.
    Combine { src: Region, dst: Region },
}

/// One phase of a rank's program: copies, then posted sends, then a wait-all
/// on the receives.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Step {
    pub ops: Vec<Op>,
}

impl Step {
    pub fn sends(&self) -> impl Iterator<Item = (&u32, &u32, &Region)> {
        self.ops.iter().filter_map(|op| match op {
            Op::Send { to, tag, region } => Some((to, tag, region)),
            _ => None,
        })
    }

    pub fn recvs(&self) -> impl Iterator<Item = (&u32, &u32, &Region)> {
        self.ops.iter().filter_map(|op| match op {
            Op::Recv { from, tag, region } => Some((from, tag, region)),
            _ => None,
        })
    }

    pub fn copies(&self) -> impl Iterator<Item = (&Region, &Region)> {
        self.ops.iter().filter_map(|op| match op {
            Op::Copy { src, dst } => Some((src, dst)),
            _ => None,
        })
    }

    pub fn combines(&self) -> impl Iterator<Item = (&Region, &Region)> {
        self.ops.iter().filter_map(|op| match op {
            Op::Combine { src, dst } => Some((src, dst)),
            _ => None,
        })
    }
}

/// A full collective schedule for `world` ranks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommSchedule {
    pub world: u32,
    /// The collective's unit block size in bytes.
    pub block: usize,
    pub input_len: usize,
    pub work_len: usize,
    pub aux_len: usize,
    /// When true, executors initialize `Work` with a copy of `Input` at time
    /// zero and zero cost — the MPI_IN_PLACE convention, where the user's
    /// data already lives in the receive buffer.
    pub work_initialized_from_input: bool,
    /// `ranks[r]` is rank r's program.
    pub ranks: Vec<Vec<Step>>,
}

/// Error produced by [`CommSchedule::validate`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleError(pub String);

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid schedule: {}", self.0)
    }
}

impl std::error::Error for ScheduleError {}

impl CommSchedule {
    /// Total bytes a given rank sends over all steps.
    pub fn bytes_sent_by(&self, rank: u32) -> usize {
        self.ranks[rank as usize]
            .iter()
            .flat_map(|s| s.sends().map(|(_, _, r)| r.len))
            .sum()
    }

    /// Total messages a given rank sends.
    pub fn messages_sent_by(&self, rank: u32) -> usize {
        self.ranks[rank as usize]
            .iter()
            .map(|s| s.sends().count())
            .sum()
    }

    /// Total bytes moved by local copies (including reductions) at a rank.
    pub fn bytes_copied_by(&self, rank: u32) -> usize {
        self.ranks[rank as usize]
            .iter()
            .flat_map(|s| s.copies().chain(s.combines()).map(|(src, _)| src.len))
            .sum()
    }

    /// Maximum number of steps over all ranks.
    pub fn max_steps(&self) -> usize {
        self.ranks.iter().map(|p| p.len()).max().unwrap_or(0)
    }

    /// Structural validation: region bounds, copy length agreement,
    /// same-buffer copy overlap, rank indices, and pairwise send/recv
    /// matching (count and sizes per directed pair, in FIFO order).
    pub fn validate(&self) -> Result<(), ScheduleError> {
        if self.ranks.len() != self.world as usize {
            return Err(ScheduleError(format!(
                "world is {} but schedule has {} rank programs",
                self.world,
                self.ranks.len()
            )));
        }
        let buf_len = |b: Buf| match b {
            Buf::Input => self.input_len,
            Buf::Work => self.work_len,
            Buf::Aux => self.aux_len,
        };
        let check_region = |r: &Region, what: &str| -> Result<(), ScheduleError> {
            if r.overflows() {
                return Err(ScheduleError(format!(
                    "{what}: region {:?}+{} len {} overflows usize",
                    r.buf, r.offset, r.len
                )));
            }
            if r.end() > buf_len(r.buf) {
                return Err(ScheduleError(format!(
                    "{what}: region {:?}+{}..{} exceeds buffer length {}",
                    r.buf,
                    r.offset,
                    r.end(),
                    buf_len(r.buf)
                )));
            }
            Ok(())
        };
        // Per directed pair: ordered list of send sizes / recv sizes.
        let mut sent: HashMap<(u32, u32), Vec<usize>> = HashMap::new();
        let mut recvd: HashMap<(u32, u32), Vec<usize>> = HashMap::new();
        for (rank, prog) in self.ranks.iter().enumerate() {
            let rank = rank as u32;
            for (si, step) in prog.iter().enumerate() {
                for op in &step.ops {
                    match op {
                        Op::Send { to, region, .. } => {
                            if *to >= self.world || *to == rank {
                                return Err(ScheduleError(format!(
                                    "rank {rank} step {si}: bad send target {to}"
                                )));
                            }
                            check_region(region, &format!("rank {rank} step {si} send"))?;
                            sent.entry((rank, *to)).or_default().push(region.len);
                        }
                        Op::Recv { from, region, .. } => {
                            if *from >= self.world || *from == rank {
                                return Err(ScheduleError(format!(
                                    "rank {rank} step {si}: bad recv source {from}"
                                )));
                            }
                            check_region(region, &format!("rank {rank} step {si} recv"))?;
                            recvd.entry((*from, rank)).or_default().push(region.len);
                        }
                        Op::Copy { src, dst } | Op::Combine { src, dst } => {
                            check_region(src, &format!("rank {rank} step {si} copy src"))?;
                            check_region(dst, &format!("rank {rank} step {si} copy dst"))?;
                            if src.len != dst.len {
                                return Err(ScheduleError(format!(
                                    "rank {rank} step {si}: copy length mismatch {} vs {}",
                                    src.len, dst.len
                                )));
                            }
                            if src.overlaps(dst) {
                                return Err(ScheduleError(format!(
                                    "rank {rank} step {si}: overlapping same-buffer copy"
                                )));
                            }
                            if dst.buf == Buf::Input {
                                return Err(ScheduleError(format!(
                                    "rank {rank} step {si}: copy writes the read-only input"
                                )));
                            }
                        }
                    }
                }
                for (_, _, region) in step.recvs() {
                    if region.buf == Buf::Input {
                        return Err(ScheduleError(format!(
                            "rank {rank} step {si}: recv writes the read-only input"
                        )));
                    }
                }
            }
        }
        for (pair, sends) in &sent {
            let recvs = recvd.get(pair).map(Vec::as_slice).unwrap_or(&[]);
            if sends.len() != recvs.len() {
                return Err(ScheduleError(format!(
                    "pair {:?}: {} sends but {} recvs",
                    pair,
                    sends.len(),
                    recvs.len()
                )));
            }
            for (k, (s, r)) in sends.iter().zip(recvs).enumerate() {
                if s != r {
                    return Err(ScheduleError(format!(
                        "pair {pair:?} message {k}: send {s} bytes but recv {r} bytes"
                    )));
                }
            }
        }
        for (pair, recvs) in &recvd {
            if !sent.contains_key(pair) && !recvs.is_empty() {
                return Err(ScheduleError(format!("pair {pair:?}: recvs with no sends")));
            }
        }
        Ok(())
    }
}

/// Incremental builder that assigns FIFO message tags automatically.
#[derive(Debug)]
pub struct ScheduleBuilder {
    schedule: CommSchedule,
    send_seq: HashMap<(u32, u32), u32>,
    recv_seq: HashMap<(u32, u32), u32>,
}

impl ScheduleBuilder {
    pub fn new(
        world: u32,
        block: usize,
        input_len: usize,
        work_len: usize,
        aux_len: usize,
    ) -> Self {
        ScheduleBuilder {
            schedule: CommSchedule {
                world,
                block,
                input_len,
                work_len,
                aux_len,
                work_initialized_from_input: false,
                ranks: vec![Vec::new(); world as usize],
            },
            send_seq: HashMap::new(),
            recv_seq: HashMap::new(),
        }
    }

    /// Mark the schedule as operating in place (Work pre-seeded from Input).
    pub fn work_initialized_from_input(&mut self) {
        self.schedule.work_initialized_from_input = true;
    }

    /// Append one step to `rank`'s program, described by closure calls on a
    /// [`StepBuilder`]. Empty steps are dropped.
    pub fn step(&mut self, rank: u32, f: impl FnOnce(&mut StepBuilder<'_>)) {
        let mut sb = StepBuilder {
            rank,
            ops: Vec::new(),
            builder: self,
        };
        f(&mut sb);
        let ops = std::mem::take(&mut sb.ops);
        if !ops.is_empty() {
            self.schedule.ranks[rank as usize].push(Step { ops });
        }
    }

    pub fn finish(self) -> CommSchedule {
        self.schedule
    }
}

/// Builds one step; obtained through [`ScheduleBuilder::step`].
#[derive(Debug)]
pub struct StepBuilder<'a> {
    rank: u32,
    ops: Vec<Op>,
    builder: &'a mut ScheduleBuilder,
}

impl StepBuilder<'_> {
    pub fn copy(&mut self, src: Region, dst: Region) {
        if src.len == 0 {
            return;
        }
        self.ops.push(Op::Copy { src, dst });
    }

    pub fn combine(&mut self, src: Region, dst: Region) {
        if src.len == 0 {
            return;
        }
        self.ops.push(Op::Combine { src, dst });
    }

    pub fn send(&mut self, to: u32, region: Region) {
        if region.len == 0 {
            return;
        }
        let seq = self.builder.send_seq.entry((self.rank, to)).or_insert(0);
        let tag = *seq;
        *seq += 1;
        self.ops.push(Op::Send { to, tag, region });
    }

    pub fn recv(&mut self, from: u32, region: Region) {
        if region.len == 0 {
            return;
        }
        let seq = self.builder.recv_seq.entry((from, self.rank)).or_insert(0);
        let tag = *seq;
        *seq += 1;
        self.ops.push(Op::Recv { from, tag, region });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_rank_exchange() -> CommSchedule {
        let b = 8;
        let mut sb = ScheduleBuilder::new(2, b, b, 2 * b, 0);
        for r in 0..2u32 {
            let peer = 1 - r;
            sb.step(r, |s| {
                s.copy(Region::input(0, b), Region::work(r as usize * b, b));
                s.send(peer, Region::input(0, b));
                s.recv(peer, Region::work(peer as usize * b, b));
            });
        }
        sb.finish()
    }

    #[test]
    fn valid_exchange_passes() {
        let sch = two_rank_exchange();
        sch.validate().unwrap();
        assert_eq!(sch.bytes_sent_by(0), 8);
        assert_eq!(sch.messages_sent_by(0), 1);
        assert_eq!(sch.bytes_copied_by(1), 8);
        assert_eq!(sch.max_steps(), 1);
    }

    #[test]
    fn tags_are_fifo_per_pair() {
        let b = 4;
        let mut sb = ScheduleBuilder::new(2, b, b, 2 * b, 0);
        sb.step(0, |s| {
            s.send(1, Region::input(0, b));
            s.send(1, Region::input(0, b));
        });
        sb.step(1, |s| {
            s.recv(0, Region::work(0, b));
            s.recv(0, Region::work(b, b));
        });
        let sch = sb.finish();
        let tags: Vec<u32> = sch.ranks[0][0].sends().map(|(_, t, _)| *t).collect();
        assert_eq!(tags, vec![0, 1]);
        sch.validate().unwrap();
    }

    #[test]
    fn unmatched_send_fails() {
        let b = 4;
        let mut sb = ScheduleBuilder::new(2, b, b, 2 * b, 0);
        sb.step(0, |s| s.send(1, Region::input(0, b)));
        assert!(sb.finish().validate().is_err());
    }

    #[test]
    fn size_mismatch_fails() {
        let b = 4;
        let mut sb = ScheduleBuilder::new(2, b, b, 2 * b, 0);
        sb.step(0, |s| s.send(1, Region::input(0, b)));
        sb.step(1, |s| s.recv(0, Region::work(0, 2)));
        assert!(sb.finish().validate().is_err());
    }

    #[test]
    fn out_of_bounds_region_fails() {
        let b = 4;
        let mut sb = ScheduleBuilder::new(2, b, b, b, 0);
        sb.step(0, |s| s.send(1, Region::input(0, b)));
        sb.step(1, |s| s.recv(0, Region::work(b, b))); // past end of work
        assert!(sb.finish().validate().is_err());
    }

    #[test]
    fn overflowing_region_fails_instead_of_wrapping() {
        // offset + len wraps usize; a naive `offset + len > buf_len` bound
        // check would accept this region (the wrapped end is tiny).
        let b = 4;
        let mut sch = two_rank_exchange();
        sch.ranks[0][0].ops[0] = Op::Copy {
            src: Region::input(0, b),
            dst: Region::new(Buf::Work, usize::MAX - 1, b),
        };
        let err = sch.validate().unwrap_err();
        assert!(err.0.contains("overflows"), "{err}");
        assert_eq!(Region::new(Buf::Work, usize::MAX - 1, b).end(), usize::MAX);
    }

    #[test]
    fn self_send_fails() {
        let b = 4;
        let mut sb = ScheduleBuilder::new(2, b, b, b, 0);
        sb.step(0, |s| s.send(0, Region::input(0, b)));
        assert!(sb.finish().validate().is_err());
    }

    #[test]
    fn overlapping_copy_fails() {
        let b = 8;
        let mut sb = ScheduleBuilder::new(1, b, b, 2 * b, 0);
        sb.step(0, |s| s.copy(Region::work(0, b), Region::work(4, b)));
        assert!(sb.finish().validate().is_err());
    }

    #[test]
    fn recv_into_input_fails() {
        let b = 4;
        let mut sb = ScheduleBuilder::new(2, b, b, b, 0);
        sb.step(0, |s| s.send(1, Region::input(0, b)));
        sb.step(1, |s| s.recv(0, Region::input(0, b)));
        assert!(sb.finish().validate().is_err());
    }

    #[test]
    fn zero_length_ops_are_dropped() {
        let mut sb = ScheduleBuilder::new(2, 4, 4, 4, 0);
        sb.step(0, |s| {
            s.send(1, Region::input(0, 0));
            s.copy(Region::input(0, 0), Region::work(0, 0));
        });
        let sch = sb.finish();
        assert!(sch.ranks[0].is_empty());
        sch.validate().unwrap();
    }

    #[test]
    fn schedule_serde_roundtrip() {
        let sch = two_rank_exchange();
        let json = serde_json::to_string(&sch).unwrap();
        let back: CommSchedule = serde_json::from_str(&json).unwrap();
        assert_eq!(sch, back);
    }
}
