//! Correctness oracles for collective schedules.
//!
//! Each check builds rank-distinguishable inputs, runs the schedule through
//! the sequential interpreter, and compares byte-for-byte against the
//! collective's mathematical specification. Property tests and every
//! algorithm's unit tests funnel through here.

use crate::exec::interp;
use crate::schedule::CommSchedule;

/// Error describing a semantic violation found by a checker.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyError(pub String);

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "collective verification failed: {}", self.0)
    }
}

impl std::error::Error for VerifyError {}

/// Rank-distinguishable allgather inputs: rank r's block is filled with a
/// pattern derived from (r, byte index).
pub fn allgather_inputs(p: u32, block: usize) -> Vec<Vec<u8>> {
    (0..p)
        .map(|r| (0..block).map(|i| pattern(r, r, i)).collect())
        .collect()
}

/// Rank-distinguishable alltoall inputs: rank r's block destined to rank d
/// carries a pattern derived from (r, d, byte index).
pub fn alltoall_inputs(p: u32, block: usize) -> Vec<Vec<u8>> {
    (0..p)
        .map(|r| {
            (0..p)
                .flat_map(|d| (0..block).map(move |i| pattern(r, d, i)))
                .collect()
        })
        .collect()
}

fn pattern(src: u32, dst: u32, i: usize) -> u8 {
    (src as usize)
        .wrapping_mul(131)
        .wrapping_add((dst as usize).wrapping_mul(31))
        .wrapping_add(i.wrapping_mul(7))
        .wrapping_add(17) as u8
}

/// Expected allgather output (identical on every rank): all blocks
/// concatenated in rank order.
pub fn allgather_expected(p: u32, block: usize) -> Vec<u8> {
    (0..p)
        .flat_map(|r| (0..block).map(move |i| pattern(r, r, i)))
        .collect()
}

/// Expected alltoall output at rank r: for each source s, the block s sent
/// to r.
pub fn alltoall_expected(p: u32, block: usize, rank: u32) -> Vec<u8> {
    (0..p)
        .flat_map(|s| (0..block).map(move |i| pattern(s, rank, i)))
        .collect()
}

/// Structurally validate `schedule` and check it implements allgather with
/// the given block size.
pub fn check_allgather(schedule: &CommSchedule, block: usize) -> Result<(), VerifyError> {
    schedule
        .validate()
        .map_err(|e| VerifyError(format!("structural: {e}")))?;
    let p = schedule.world;
    let outputs = interp::run(schedule, &allgather_inputs(p, block))
        .map_err(|e| VerifyError(format!("execution: {e}")))?;
    let expected = allgather_expected(p, block);
    for (r, out) in outputs.iter().enumerate() {
        if *out != expected {
            return Err(VerifyError(format!(
                "allgather p={p} block={block}: rank {r} output differs (first mismatch at byte {})",
                first_mismatch(out, &expected)
            )));
        }
    }
    Ok(())
}

/// Bcast inputs: only the root's (rank 0) buffer carries the payload.
pub fn bcast_inputs(p: u32, msg: usize) -> Vec<Vec<u8>> {
    (0..p)
        .map(|r| {
            (0..msg)
                .map(|i| if r == 0 { pattern(0, 0, i) } else { 0xEE })
                .collect()
        })
        .collect()
}

/// Expected bcast output on every rank: the root's payload.
pub fn bcast_expected(msg: usize) -> Vec<u8> {
    (0..msg).map(|i| pattern(0, 0, i)).collect()
}

/// Allreduce inputs: rank-distinguishable vectors.
pub fn allreduce_inputs(p: u32, msg: usize) -> Vec<Vec<u8>> {
    (0..p)
        .map(|r| (0..msg).map(|i| pattern(r, r.wrapping_mul(3), i)).collect())
        .collect()
}

/// Expected allreduce output: elementwise wrapping byte sum of all inputs.
pub fn allreduce_expected(p: u32, msg: usize) -> Vec<u8> {
    let inputs = allreduce_inputs(p, msg);
    let mut acc = vec![0u8; msg];
    for input in &inputs {
        for (a, b) in acc.iter_mut().zip(input) {
            *a = a.wrapping_add(*b);
        }
    }
    acc
}

/// Structurally validate `schedule` and check it implements broadcast from
/// rank 0 with the given payload size.
pub fn check_bcast(schedule: &CommSchedule, msg: usize) -> Result<(), VerifyError> {
    schedule
        .validate()
        .map_err(|e| VerifyError(format!("structural: {e}")))?;
    let p = schedule.world;
    let outputs = interp::run(schedule, &bcast_inputs(p, msg))
        .map_err(|e| VerifyError(format!("execution: {e}")))?;
    let expected = bcast_expected(msg);
    for (r, out) in outputs.iter().enumerate() {
        if *out != expected {
            return Err(VerifyError(format!(
                "bcast p={p} msg={msg}: rank {r} output differs (first mismatch at byte {})",
                first_mismatch(out, &expected)
            )));
        }
    }
    Ok(())
}

/// Structurally validate `schedule` and check it implements allreduce
/// (wrapping byte sum) with the given vector size.
pub fn check_allreduce(schedule: &CommSchedule, msg: usize) -> Result<(), VerifyError> {
    schedule
        .validate()
        .map_err(|e| VerifyError(format!("structural: {e}")))?;
    let p = schedule.world;
    let outputs = interp::run(schedule, &allreduce_inputs(p, msg))
        .map_err(|e| VerifyError(format!("execution: {e}")))?;
    let expected = allreduce_expected(p, msg);
    for (r, out) in outputs.iter().enumerate() {
        if *out != expected {
            return Err(VerifyError(format!(
                "allreduce p={p} msg={msg}: rank {r} output differs (first mismatch at byte {})",
                first_mismatch(out, &expected)
            )));
        }
    }
    Ok(())
}

/// Structurally validate `schedule` and check it implements alltoall with
/// the given block size.
pub fn check_alltoall(schedule: &CommSchedule, block: usize) -> Result<(), VerifyError> {
    schedule
        .validate()
        .map_err(|e| VerifyError(format!("structural: {e}")))?;
    let p = schedule.world;
    let outputs = interp::run(schedule, &alltoall_inputs(p, block))
        .map_err(|e| VerifyError(format!("execution: {e}")))?;
    for (r, out) in outputs.iter().enumerate() {
        let expected = alltoall_expected(p, block, r as u32);
        if *out != expected {
            return Err(VerifyError(format!(
                "alltoall p={p} block={block}: rank {r} output differs (first mismatch at byte {})",
                first_mismatch(out, &expected)
            )));
        }
    }
    Ok(())
}

fn first_mismatch(a: &[u8], b: &[u8]) -> usize {
    a.iter()
        .zip(b)
        .position(|(x, y)| x != y)
        .unwrap_or(a.len().min(b.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{Region, ScheduleBuilder};

    #[test]
    fn detects_wrong_allgather() {
        // A schedule that only copies its own block (no communication).
        let p = 2u32;
        let b = 4;
        let mut sb = ScheduleBuilder::new(p, b, b, p as usize * b, 0);
        for r in 0..p {
            sb.step(r, |s| {
                s.copy(Region::input(0, b), Region::work(r as usize * b, b))
            });
        }
        let err = check_allgather(&sb.finish(), b).unwrap_err();
        assert!(err.0.contains("rank 0 output differs"));
    }

    #[test]
    fn inputs_are_rank_distinguishable() {
        let a = allgather_inputs(4, 8);
        assert_ne!(a[0], a[1]);
        let t = alltoall_inputs(3, 8);
        assert_ne!(t[0][0..8], t[0][8..16]); // different destinations differ
    }
}
