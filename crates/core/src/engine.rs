//! [`SelectionEngine`] — one owner for the whole zoo → datagen → train →
//! tuning-table → [`Tuner`] lifecycle.
//!
//! The rest of the crate exposes each stage as a free-standing piece
//! (dataset generation in `pml-clusters`, training in [`crate::pipeline`],
//! tables in [`crate::tuning_table`], runtime lookups in [`crate::tuner`]).
//! The engine wires them together behind one facade with consistent
//! caching: datasets are cached on disk (when a cache directory is
//! configured), models are trained once per collective, and tuning tables
//! are memoized per (cluster, collective) in a [`TableStore`]. This is the
//! programmatic equivalent of the CLI's `train` → `table` → `predict`
//! workflow, and what `examples/quickstart.rs` drives.

use crate::error::PmlError;
use crate::pipeline::{PretrainedModel, TrainConfig};
use crate::selectors::JobConfig;
use crate::tuner::Tuner;
use crate::tuning_table::{TableStore, TuningTable};
use pml_clusters::{generate_full, load_or_generate, ClusterEntry, DatagenConfig, TuningRecord};
use pml_collectives::{Algorithm, Collective};
use pml_obs::{span, Counter, Event};
use std::collections::BTreeMap;
use std::path::PathBuf;

static DATASET_CACHE_HIT: Counter = Counter::new("engine.dataset.cache.hit");
static DATASET_CACHE_MISS: Counter = Counter::new("engine.dataset.cache.miss");
static TABLE_HIT: Counter = Counter::new("engine.table.hit");
static TABLE_MISS: Counter = Counter::new("engine.table.miss");

/// Engine settings: how to benchmark, how to train, where to cache.
#[derive(Debug, Clone, Default)]
pub struct EngineConfig {
    pub datagen: DatagenConfig,
    pub train: TrainConfig,
    /// Directory for on-disk dataset caches (`dataset_<collective>.json`).
    /// `None` regenerates in memory every time.
    pub cache_dir: Option<PathBuf>,
}

/// Cache file name for one collective's dataset, matching the repo's
/// committed `data/dataset_*.json` convention.
fn dataset_file(collective: Collective) -> String {
    format!(
        "dataset_{}.json",
        collective.name().trim_start_matches("MPI_").to_lowercase()
    )
}

/// Owns the full offline-training + online-inference lifecycle.
#[derive(Debug)]
pub struct SelectionEngine {
    clusters: Vec<ClusterEntry>,
    cfg: EngineConfig,
    models: BTreeMap<Collective, PretrainedModel>,
    store: TableStore,
    /// Structured diagnostics, with [`SelectionEngine::warnings`] as the
    /// rendered compatibility view.
    events: Vec<Event>,
    warnings: Vec<String>,
}

impl SelectionEngine {
    /// Engine over the full 18-cluster zoo.
    pub fn new(cfg: EngineConfig) -> Self {
        Self::with_clusters(pml_clusters::zoo().to_vec(), cfg)
    }

    /// Engine over an explicit cluster set (trimmed grids for tests and the
    /// quickstart example).
    pub fn with_clusters(clusters: Vec<ClusterEntry>, cfg: EngineConfig) -> Self {
        SelectionEngine {
            clusters,
            cfg,
            models: BTreeMap::new(),
            store: TableStore::new(),
            events: Vec::new(),
            warnings: Vec::new(),
        }
    }

    /// Record a structured diagnostic (and its rendered message for the
    /// `warnings()` compatibility view).
    fn note(&mut self, ev: Event) {
        self.warnings.push(ev.message.clone());
        self.events.push(ev);
    }

    pub fn clusters(&self) -> &[ClusterEntry] {
        &self.clusters
    }

    /// Look a cluster up by name in this engine's zoo.
    pub fn entry(&self, name: &str) -> Result<&ClusterEntry, PmlError> {
        self.clusters
            .iter()
            .find(|c| c.name() == name)
            .ok_or_else(|| PmlError::UnknownCluster(name.to_string()))
    }

    /// Non-fatal diagnostics accumulated so far (e.g. a corrupt dataset
    /// cache that was regenerated) — the rendered view of [`Self::events`].
    pub fn warnings(&self) -> &[String] {
        &self.warnings
    }

    /// Structured diagnostics accumulated so far.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// The micro-benchmark dataset for one collective — from the on-disk
    /// cache when configured and valid, regenerated otherwise.
    pub fn dataset(&mut self, collective: Collective) -> Result<Vec<TuningRecord>, PmlError> {
        let _span = span!("datagen", collective = collective.name());
        match &self.cfg.cache_dir {
            Some(dir) => {
                let path = dir.join(dataset_file(collective));
                let load = load_or_generate(&path, &self.clusters, collective, &self.cfg.datagen)?;
                if load.cached {
                    DATASET_CACHE_HIT.inc();
                } else {
                    DATASET_CACHE_MISS.inc();
                }
                for ev in load.events {
                    self.note(ev);
                }
                Ok(load.records)
            }
            None => {
                DATASET_CACHE_MISS.inc();
                Ok(generate_full(
                    &self.clusters,
                    collective,
                    &self.cfg.datagen,
                )?)
            }
        }
    }

    /// Train (or fetch the already-trained) model for one collective.
    pub fn train(&mut self, collective: Collective) -> Result<&PretrainedModel, PmlError> {
        if !self.models.contains_key(&collective) {
            let records = self.dataset(collective)?;
            let _span = span!("train", collective = collective.name());
            let model = PretrainedModel::train(&records, collective, &self.cfg.train)?;
            self.models.insert(collective, model);
        }
        Ok(&self.models[&collective])
    }

    /// A model trained earlier in this engine's lifetime, if any.
    pub fn model(&self, collective: Collective) -> Option<&PretrainedModel> {
        self.models.get(&collective)
    }

    /// Adopt an externally trained/deserialized artifact (the shipped-model
    /// deployment path: no benchmarking, no training).
    pub fn install_model(&mut self, model: PretrainedModel) {
        self.models.insert(model.collective, model);
    }

    /// The tuning table for one (cluster, collective), generating — and
    /// training first, if needed — on a miss. Tables are memoized, so the
    /// steady-state cost is a map probe.
    pub fn tuning_table(
        &mut self,
        cluster: &str,
        collective: Collective,
    ) -> Result<&TuningTable, PmlError> {
        if self.store.get(cluster, collective).is_none() {
            TABLE_MISS.inc();
            let entry = self.entry(cluster)?.clone();
            self.train(collective)?;
            let _span = span!("table", cluster = cluster, collective = collective.name());
            let table = self.models[&collective].generate_tuning_table(&entry)?;
            self.store.put(table);
        } else {
            TABLE_HIT.inc();
        }
        self.store
            .get(cluster, collective)
            .ok_or_else(|| PmlError::UnknownCluster(cluster.to_string()))
    }

    /// Predict the algorithm for one job on one cluster (trains on first
    /// use; grid-independent — goes through the model, not the table).
    pub fn predict(
        &mut self,
        cluster: &str,
        collective: Collective,
        job: JobConfig,
    ) -> Result<Algorithm, PmlError> {
        let node = self.entry(cluster)?.spec.node.clone();
        let model = self.train(collective)?;
        Ok(model.predict(&node, job))
    }

    /// Build the runtime-side [`Tuner`] for a cluster from this engine's
    /// tables — the hand-off point to an MPI library.
    pub fn tuner_for(
        &mut self,
        cluster: &str,
        collectives: &[Collective],
    ) -> Result<Tuner, PmlError> {
        let mut tables = Vec::with_capacity(collectives.len());
        for &c in collectives {
            tables.push(self.tuning_table(cluster, c)?.clone());
        }
        Ok(Tuner::new(tables))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pml_mlcore::ForestParams;

    /// Two clusters with trimmed grids so tests stay fast.
    fn tiny_engine(cache_dir: Option<PathBuf>) -> SelectionEngine {
        let clusters: Vec<ClusterEntry> = ["RI", "Haswell"]
            .iter()
            .map(|name| {
                let mut e = pml_clusters::by_name(name).unwrap().clone();
                e.node_grid = vec![1, 2];
                e.ppn_grid = vec![2, 4];
                e.msg_grid = vec![16, 1024, 65536];
                e
            })
            .collect();
        let cfg = EngineConfig {
            datagen: DatagenConfig::noiseless(),
            train: TrainConfig {
                forest: ForestParams {
                    n_estimators: 10,
                    seed: 1,
                    ..Default::default()
                },
                top_k_features: Some(5),
            },
            cache_dir,
        };
        SelectionEngine::with_clusters(clusters, cfg)
    }

    #[test]
    fn full_lifecycle_trains_tables_and_tuner() {
        let mut eng = tiny_engine(None);
        assert!(eng.model(Collective::Alltoall).is_none());
        let table = eng.tuning_table("RI", Collective::Alltoall).unwrap();
        assert_eq!(table.len(), 2 * 2 * 3);
        assert!(eng.model(Collective::Alltoall).is_some());
        let tuner = eng.tuner_for("RI", &[Collective::Alltoall]).unwrap();
        assert_eq!(tuner.covered(), vec![Collective::Alltoall]);
        let job = JobConfig::new(2, 4, 1024);
        let a = tuner.select(Collective::Alltoall, job);
        assert!(a.supports(job.world_size()));
    }

    #[test]
    fn tables_are_memoized() {
        let mut eng = tiny_engine(None);
        let a = eng
            .tuning_table("RI", Collective::Allgather)
            .unwrap()
            .clone();
        let b = eng
            .tuning_table("RI", Collective::Allgather)
            .unwrap()
            .clone();
        assert_eq!(a, b);
    }

    #[test]
    fn unknown_cluster_is_an_error() {
        let mut eng = tiny_engine(None);
        assert!(eng.tuning_table("Atlantis", Collective::Allgather).is_err());
        assert!(eng
            .predict("Atlantis", Collective::Allgather, JobConfig::new(1, 2, 64))
            .is_err());
    }

    #[test]
    fn corrupt_dataset_cache_surfaces_as_warning_not_error() {
        let dir = std::env::temp_dir().join(format!("pmlengine-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("dataset_allgather.json"), "{broken").unwrap();
        let mut eng = tiny_engine(Some(dir.clone()));
        let records = eng.dataset(Collective::Allgather).unwrap();
        assert!(!records.is_empty());
        assert_eq!(eng.warnings().len(), 1);
        assert!(eng.warnings()[0].contains("corrupt"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn installed_model_skips_training() {
        let mut eng = tiny_engine(None);
        let records = eng.dataset(Collective::Alltoall).unwrap();
        let model = PretrainedModel::train(&records, Collective::Alltoall, &eng.cfg.train).unwrap();
        let mut deploy = tiny_engine(None);
        deploy.install_model(model.clone());
        // `train` must return the installed artifact untouched.
        let got = deploy.train(Collective::Alltoall).unwrap();
        assert_eq!(*got, model);
    }

    #[test]
    fn predict_is_applicable() {
        let mut eng = tiny_engine(None);
        let a = eng
            .predict("RI", Collective::Alltoall, JobConfig::new(3, 5, 777))
            .unwrap();
        assert!(a.supports(15));
        assert_eq!(a.collective(), Collective::Alltoall);
    }
}
