//! [`SelectionEngine`] — one owner for the whole zoo → datagen → train →
//! tuning-table → [`Tuner`] lifecycle.
//!
//! The rest of the crate exposes each stage as a free-standing piece
//! (dataset generation in `pml-clusters`, training in [`crate::pipeline`],
//! tables in [`crate::tuning_table`], runtime lookups in [`crate::tuner`]).
//! The engine wires them together behind one facade with consistent
//! caching: datasets are cached on disk (when a cache directory is
//! configured), models are trained once per collective, and tuning tables
//! are memoized per (cluster, collective) in a [`TableStore`]. This is the
//! programmatic equivalent of the CLI's `train` → `table` → `predict`
//! workflow, and what `examples/quickstart.rs` drives.
//!
//! Every method takes `&self`: the memo state (models, tables,
//! diagnostics) lives behind read-mostly locks, so one engine can be
//! shared — including in an [`std::sync::Arc`] across threads — by any
//! number of concurrent callers. Models are handed out as
//! [`Arc<PretrainedModel>`] so a serving loop can keep predicting from an
//! engine-trained artifact without holding any engine lock.

use crate::error::PmlError;
use crate::pipeline::{PretrainedModel, TrainConfig};
use crate::selectors::JobConfig;
use crate::tuner::Tuner;
use crate::tuning_table::{TableStore, TuningTable};
use pml_clusters::{generate_full, load_or_generate, ClusterEntry, DatagenConfig, TuningRecord};
use pml_collectives::{Algorithm, Collective};
use pml_obs::{span, Counter, Event};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock};

static DATASET_CACHE_HIT: Counter = Counter::new("engine.dataset.cache.hit");
static DATASET_CACHE_MISS: Counter = Counter::new("engine.dataset.cache.miss");
static TABLE_HIT: Counter = Counter::new("engine.table.hit");
static TABLE_MISS: Counter = Counter::new("engine.table.miss");

/// Engine settings: how to benchmark, how to train, where to cache.
#[derive(Debug, Clone, Default)]
pub struct EngineConfig {
    pub datagen: DatagenConfig,
    pub train: TrainConfig,
    /// Directory for on-disk dataset caches (`dataset_<collective>.json`).
    /// `None` regenerates in memory every time.
    pub cache_dir: Option<PathBuf>,
}

/// Cache file name for one collective's dataset, matching the repo's
/// committed `data/dataset_*.json` convention.
fn dataset_file(collective: Collective) -> String {
    format!(
        "dataset_{}.json",
        collective.name().trim_start_matches("MPI_").to_lowercase()
    )
}

/// Structured diagnostics plus their rendered compatibility view, under
/// one small lock (append-mostly, read rarely).
#[derive(Debug, Default)]
struct Diagnostics {
    events: Vec<Event>,
    warnings: Vec<String>,
}

/// Recover from lock poisoning: every guarded value here is a plain memo
/// (map of finished artifacts / list of diagnostics), so a panic in
/// another thread cannot leave it semantically inconsistent.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn read<T>(l: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(PoisonError::into_inner)
}

fn write<T>(l: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(PoisonError::into_inner)
}

/// Owns the full offline-training + online-inference lifecycle.
/// `Send + Sync`: see the module docs.
#[derive(Debug)]
pub struct SelectionEngine {
    clusters: Vec<ClusterEntry>,
    cfg: EngineConfig,
    models: RwLock<BTreeMap<Collective, Arc<PretrainedModel>>>,
    store: RwLock<TableStore>,
    diags: Mutex<Diagnostics>,
}

impl SelectionEngine {
    /// Engine over the full 18-cluster zoo.
    pub fn new(cfg: EngineConfig) -> Self {
        Self::with_clusters(pml_clusters::zoo().to_vec(), cfg)
    }

    /// Engine over an explicit cluster set (trimmed grids for tests and the
    /// quickstart example).
    pub fn with_clusters(clusters: Vec<ClusterEntry>, cfg: EngineConfig) -> Self {
        SelectionEngine {
            clusters,
            cfg,
            models: RwLock::new(BTreeMap::new()),
            store: RwLock::new(TableStore::new()),
            diags: Mutex::new(Diagnostics::default()),
        }
    }

    /// This engine's training/benchmark configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Record a structured diagnostic (and its rendered message for the
    /// `warnings()` compatibility view).
    fn note(&self, ev: Event) {
        let mut d = lock(&self.diags);
        d.warnings.push(ev.message.clone());
        d.events.push(ev);
    }

    pub fn clusters(&self) -> &[ClusterEntry] {
        &self.clusters
    }

    /// Look a cluster up by name in this engine's zoo.
    pub fn entry(&self, name: &str) -> Result<&ClusterEntry, PmlError> {
        self.clusters
            .iter()
            .find(|c| c.name() == name)
            .ok_or_else(|| PmlError::UnknownCluster(name.to_string()))
    }

    /// Non-fatal diagnostics accumulated so far (e.g. a corrupt dataset
    /// cache that was regenerated) — the rendered view of [`Self::events`].
    pub fn warnings(&self) -> Vec<String> {
        lock(&self.diags).warnings.clone()
    }

    /// Structured diagnostics accumulated so far.
    pub fn events(&self) -> Vec<Event> {
        lock(&self.diags).events.clone()
    }

    /// The micro-benchmark dataset for one collective — from the on-disk
    /// cache when configured and valid, regenerated otherwise.
    pub fn dataset(&self, collective: Collective) -> Result<Vec<TuningRecord>, PmlError> {
        let _span = span!("datagen", collective = collective.name());
        match &self.cfg.cache_dir {
            Some(dir) => {
                let path = dir.join(dataset_file(collective));
                let load = load_or_generate(&path, &self.clusters, collective, &self.cfg.datagen)?;
                if load.cached {
                    DATASET_CACHE_HIT.inc();
                } else {
                    DATASET_CACHE_MISS.inc();
                }
                for ev in load.events {
                    self.note(ev);
                }
                Ok(load.records)
            }
            None => {
                DATASET_CACHE_MISS.inc();
                Ok(generate_full(
                    &self.clusters,
                    collective,
                    &self.cfg.datagen,
                )?)
            }
        }
    }

    /// Train (or fetch the already-trained) model for one collective.
    ///
    /// Concurrent first calls for the same collective may both train, but
    /// training is deterministic so both produce identical artifacts; the
    /// first to finish wins the memo slot and the other result is dropped.
    /// No lock is held while benchmarking or fitting.
    pub fn train(&self, collective: Collective) -> Result<Arc<PretrainedModel>, PmlError> {
        if let Some(m) = read(&self.models).get(&collective) {
            return Ok(Arc::clone(m));
        }
        let records = self.dataset(collective)?;
        let model = {
            let _span = span!("train", collective = collective.name());
            Arc::new(PretrainedModel::train(
                &records,
                collective,
                &self.cfg.train,
            )?)
        };
        let mut models = write(&self.models);
        Ok(Arc::clone(models.entry(collective).or_insert(model)))
    }

    /// A model trained earlier in this engine's lifetime, if any.
    pub fn model(&self, collective: Collective) -> Option<Arc<PretrainedModel>> {
        read(&self.models).get(&collective).map(Arc::clone)
    }

    /// Adopt an externally trained/deserialized artifact (the shipped-model
    /// deployment path: no benchmarking, no training).
    pub fn install_model(&self, model: PretrainedModel) {
        write(&self.models).insert(model.collective, Arc::new(model));
    }

    /// The tuning table for one (cluster, collective), generating — and
    /// training first, if needed — on a miss. Tables are memoized, so the
    /// steady-state cost is a map probe plus one clone.
    pub fn tuning_table(
        &self,
        cluster: &str,
        collective: Collective,
    ) -> Result<TuningTable, PmlError> {
        if let Some(t) = read(&self.store).get(cluster, collective) {
            TABLE_HIT.inc();
            return Ok(t.clone());
        }
        TABLE_MISS.inc();
        let entry = self.entry(cluster)?.clone();
        let model = self.train(collective)?;
        let table = {
            let _span = span!("table", cluster = cluster, collective = collective.name());
            model.generate_tuning_table(&entry)?
        };
        let mut store = write(&self.store);
        if store.get(cluster, collective).is_none() {
            store.put(table.clone());
        }
        Ok(table)
    }

    /// Predict the algorithm for one job on one cluster (trains on first
    /// use; grid-independent — goes through the model, not the table).
    pub fn predict(
        &self,
        cluster: &str,
        collective: Collective,
        job: JobConfig,
    ) -> Result<Algorithm, PmlError> {
        let node = self.entry(cluster)?.spec.node.clone();
        let model = self.train(collective)?;
        Ok(model.predict(&node, job))
    }

    /// Build the runtime-side [`Tuner`] for a cluster from this engine's
    /// tables — the hand-off point to an MPI library.
    pub fn tuner_for(&self, cluster: &str, collectives: &[Collective]) -> Result<Tuner, PmlError> {
        let mut tables = Vec::with_capacity(collectives.len());
        for &c in collectives {
            tables.push(self.tuning_table(cluster, c)?);
        }
        Ok(Tuner::new(tables))
    }

    /// Like [`Self::tuner_for`], but wrapped for sharing across serving
    /// threads.
    pub fn shared_tuner_for(
        &self,
        cluster: &str,
        collectives: &[Collective],
    ) -> Result<Arc<Tuner>, PmlError> {
        Ok(Arc::new(self.tuner_for(cluster, collectives)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pml_mlcore::ForestParams;

    /// Two clusters with trimmed grids so tests stay fast.
    fn tiny_engine(cache_dir: Option<PathBuf>) -> SelectionEngine {
        let clusters: Vec<ClusterEntry> = ["RI", "Haswell"]
            .iter()
            .map(|name| {
                let mut e = pml_clusters::by_name(name).unwrap().clone();
                e.node_grid = vec![1, 2];
                e.ppn_grid = vec![2, 4];
                e.msg_grid = vec![16, 1024, 65536];
                e
            })
            .collect();
        let cfg = EngineConfig {
            datagen: DatagenConfig::noiseless(),
            train: TrainConfig {
                forest: ForestParams {
                    n_estimators: 10,
                    seed: 1,
                    ..Default::default()
                },
                top_k_features: Some(5),
            },
            cache_dir,
        };
        SelectionEngine::with_clusters(clusters, cfg)
    }

    #[test]
    fn full_lifecycle_trains_tables_and_tuner() {
        let eng = tiny_engine(None);
        assert!(eng.model(Collective::Alltoall).is_none());
        let table = eng.tuning_table("RI", Collective::Alltoall).unwrap();
        assert_eq!(table.len(), 2 * 2 * 3);
        assert!(eng.model(Collective::Alltoall).is_some());
        let tuner = eng.tuner_for("RI", &[Collective::Alltoall]).unwrap();
        assert_eq!(tuner.covered(), vec![Collective::Alltoall]);
        let job = JobConfig::new(2, 4, 1024);
        let a = tuner.select(Collective::Alltoall, job);
        assert!(a.supports(job.world_size()));
    }

    #[test]
    fn tables_are_memoized() {
        let eng = tiny_engine(None);
        let a = eng.tuning_table("RI", Collective::Allgather).unwrap();
        let b = eng.tuning_table("RI", Collective::Allgather).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn unknown_cluster_is_an_error() {
        let eng = tiny_engine(None);
        assert!(eng.tuning_table("Atlantis", Collective::Allgather).is_err());
        assert!(eng
            .predict("Atlantis", Collective::Allgather, JobConfig::new(1, 2, 64))
            .is_err());
    }

    #[test]
    fn corrupt_dataset_cache_surfaces_as_warning_not_error() {
        let dir = std::env::temp_dir().join(format!("pmlengine-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("dataset_allgather.json"), "{broken").unwrap();
        let eng = tiny_engine(Some(dir.clone()));
        let records = eng.dataset(Collective::Allgather).unwrap();
        assert!(!records.is_empty());
        assert_eq!(eng.warnings().len(), 1);
        assert!(eng.warnings()[0].contains("corrupt"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn installed_model_skips_training() {
        let eng = tiny_engine(None);
        let records = eng.dataset(Collective::Alltoall).unwrap();
        let model =
            PretrainedModel::train(&records, Collective::Alltoall, &eng.config().train).unwrap();
        let deploy = tiny_engine(None);
        deploy.install_model(model.clone());
        // `train` must return the installed artifact untouched.
        let got = deploy.train(Collective::Alltoall).unwrap();
        assert_eq!(*got, model);
    }

    #[test]
    fn predict_is_applicable() {
        let eng = tiny_engine(None);
        let a = eng
            .predict("RI", Collective::Alltoall, JobConfig::new(3, 5, 777))
            .unwrap();
        assert!(a.supports(15));
        assert_eq!(a.collective(), Collective::Alltoall);
    }

    /// The engine is shareable across threads: concurrent `train` calls
    /// for the same collective converge on one memoized artifact, and
    /// concurrent `tuning_table` calls agree.
    #[test]
    fn engine_is_send_sync_and_concurrently_usable() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<SelectionEngine>();
        assert_send_sync::<Arc<SelectionEngine>>();

        let eng = Arc::new(tiny_engine(None));
        let models: Vec<Arc<PretrainedModel>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let eng = Arc::clone(&eng);
                    scope.spawn(move || eng.train(Collective::Alltoall).unwrap())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // All threads see the same memoized artifact (pointer-equal).
        for m in &models[1..] {
            assert!(Arc::ptr_eq(&models[0], m));
        }
        let t1 = eng.tuning_table("RI", Collective::Alltoall).unwrap();
        let t2 = eng.tuning_table("RI", Collective::Alltoall).unwrap();
        assert_eq!(t1, t2);
    }
}
