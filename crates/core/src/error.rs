//! `PmlError` — the workspace-facing error type.
//!
//! Every fallible user-input path in the framework (training, dataset
//! generation, tuning-table I/O, hardware detection, the CLI) funnels into
//! this enum; lower layers' errors ([`pml_mlcore::MlError`],
//! [`pml_clusters::ClustersError`], [`crate::hwdetect::HwDetectError`])
//! convert via `From` so call sites can use `?` throughout.

use crate::hwdetect::HwDetectError;
use pml_clusters::ClustersError;
use pml_collectives::Collective;
use pml_mlcore::MlError;
use std::fmt;
use std::path::PathBuf;

/// Top-level error for the PML-MPI framework.
#[derive(Debug)]
pub enum PmlError {
    /// An ML-layer failure (bad hyperparameters, shape mismatch, …).
    Ml(MlError),
    /// A dataset-layer failure (bad generation config, …).
    Clusters(ClustersError),
    /// Hardware capture parsing failed.
    HwDetect(HwDetectError),
    /// JSON (de)serialization failed.
    Json(serde_json::Error),
    /// Filesystem failure.
    Io {
        path: PathBuf,
        source: std::io::Error,
    },
    /// A cluster name not present in the zoo.
    UnknownCluster(String),
    /// Training was requested but no records exist for the collective.
    NoTrainingRecords(Collective),
    /// An algorithm of one collective was used with a table/model of another.
    CrossCollective {
        expected: Collective,
        got: Collective,
    },
    /// A caller-supplied value is out of range or malformed.
    InvalidInput(String),
    /// An artifact parsed but failed static structural verification.
    Verify(crate::verify::VerifyError),
}

impl fmt::Display for PmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PmlError::Ml(e) => write!(f, "ml: {e}"),
            PmlError::Clusters(e) => write!(f, "dataset: {e}"),
            PmlError::HwDetect(e) => write!(f, "hardware detection: {e}"),
            PmlError::Json(e) => write!(f, "json: {e}"),
            PmlError::Io { path, source } => {
                write!(f, "io error at {}: {source}", path.display())
            }
            PmlError::UnknownCluster(name) => write!(f, "unknown cluster `{name}`"),
            PmlError::NoTrainingRecords(c) => {
                write!(f, "no training records for collective {c}")
            }
            PmlError::CrossCollective { expected, got } => {
                write!(f, "collective mismatch: expected {expected}, got {got}")
            }
            PmlError::InvalidInput(why) => write!(f, "invalid input: {why}"),
            PmlError::Verify(e) => write!(f, "verification failed: {e}"),
        }
    }
}

impl std::error::Error for PmlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PmlError::Ml(e) => Some(e),
            PmlError::Clusters(e) => Some(e),
            PmlError::HwDetect(e) => Some(e),
            PmlError::Json(e) => Some(e),
            PmlError::Io { source, .. } => Some(source),
            PmlError::Verify(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MlError> for PmlError {
    fn from(e: MlError) -> Self {
        PmlError::Ml(e)
    }
}

impl From<ClustersError> for PmlError {
    fn from(e: ClustersError) -> Self {
        PmlError::Clusters(e)
    }
}

impl From<HwDetectError> for PmlError {
    fn from(e: HwDetectError) -> Self {
        PmlError::HwDetect(e)
    }
}

impl From<serde_json::Error> for PmlError {
    fn from(e: serde_json::Error) -> Self {
        PmlError::Json(e)
    }
}

impl From<crate::verify::VerifyError> for PmlError {
    fn from(e: crate::verify::VerifyError) -> Self {
        PmlError::Verify(e)
    }
}
