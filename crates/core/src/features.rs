//! Feature extraction (§V-A): the 14-dimensional vector — 3 MPI-specific
//! features plus 11 hardware features — the classifier consumes.
//!
//! On a real deployment these come from `lscpu`, `lspci`, and `ibstat` via
//! the paper's extraction script; here they are read off the
//! [`pml_simnet::NodeSpec`]. As in the paper, the HCA is represented by its
//! *underlying* link speed and width rather than a categorical name, and
//! threads-per-core is excluded (it is CPU-determined and would introduce a
//! feature dependency).

use crate::error::PmlError;
use crate::selectors::JobConfig;
use pml_clusters::TuningRecord;
use pml_collectives::Collective;
use pml_mlcore::{Dataset, Matrix};
use pml_obs::Counter;
use pml_simnet::NodeSpec;

/// Tuning records converted into dataset rows across this process.
static DATASET_RECORDS: Counter = Counter::new("dataset.records");

/// Number of features (3 MPI + 11 hardware).
pub const N_FEATURES: usize = 14;

/// Feature names, index-aligned with [`extract`]'s output.
pub const FEATURE_NAMES: [&str; N_FEATURES] = [
    "num_nodes",
    "ppn",
    "msg_size",
    "cpu_max_clock_ghz",
    "l3_cache_mib",
    "mem_bw_gbs",
    "core_count",
    "thread_count",
    "num_sockets",
    "numa_nodes",
    "pcie_lanes",
    "pcie_version",
    "hca_link_speed_gbps",
    "hca_link_width",
];

/// Indices of the MPI-specific features within the vector.
pub const MPI_FEATURES: [usize; 3] = [0, 1, 2];

/// Extract the feature vector for one job configuration on one node type.
pub fn extract(node: &NodeSpec, nodes: u32, ppn: u32, msg_size: usize) -> [f64; N_FEATURES] {
    [
        nodes as f64,
        ppn as f64,
        msg_size as f64,
        node.cpu.max_clock_ghz,
        node.cpu.l3_cache_mib,
        node.cpu.mem_bw_gbs,
        node.cpu.cores as f64,
        node.cpu.threads as f64,
        node.cpu.sockets as f64,
        node.cpu.numa_nodes as f64,
        node.nic.pcie_lanes as f64,
        node.nic.pcie_version.number() as f64,
        node.nic.generation.lane_rate_gbps(),
        node.nic.link_width as f64,
    ]
}

/// Extract feature rows for a whole batch of job configurations on one
/// node type — the bulk companion of [`extract`], feeding
/// [`pml_mlcore::RandomForest::predict_batch`] during tuning-table
/// generation.
pub fn extract_batch(node: &NodeSpec, jobs: &[JobConfig]) -> Matrix {
    let rows: Vec<[f64; N_FEATURES]> = jobs
        .iter()
        .map(|j| extract(node, j.nodes, j.ppn, j.msg_size))
        .collect();
    Matrix::from_rows(rows)
}

/// Convert tuning records into an ML dataset for one collective.
///
/// Labels are algorithm class indices ([`pml_collectives::Algorithm::index`]);
/// hardware features are looked up in the cluster zoo by the record's
/// cluster name. Records of other collectives are skipped; a record naming
/// a cluster outside the zoo is an error.
pub fn records_to_dataset(
    records: &[TuningRecord],
    collective: Collective,
) -> Result<Dataset, PmlError> {
    let mut rows: Vec<[f64; N_FEATURES]> = Vec::new();
    let mut labels: Vec<usize> = Vec::new();
    for r in records {
        if r.collective != collective {
            continue;
        }
        let entry = pml_clusters::by_name(&r.cluster)
            .ok_or_else(|| PmlError::UnknownCluster(r.cluster.clone()))?;
        rows.push(extract(&entry.spec.node, r.nodes, r.ppn, r.msg_size));
        labels.push(r.best.index());
    }
    DATASET_RECORDS.add(labels.len() as u64);
    // An all-filtered record set must still carry the 14-column shape.
    let x = if rows.is_empty() {
        Matrix::zeros(0, N_FEATURES)
    } else {
        Matrix::from_rows(rows)
    };
    // Records cross a trust boundary (benchmark caches on disk), so use the
    // checked constructor rather than the debug-assert one.
    Ok(Dataset::try_new(
        x,
        labels,
        collective.algo_count(),
        FEATURE_NAMES.iter().map(|s| s.to_string()).collect(),
    )?)
}

/// Project a dataset onto a feature subset (the paper trains the final
/// model on the top-5 features by importance to avoid overfitting).
pub fn select_features(data: &Dataset, keep: &[usize]) -> Dataset {
    let rows: Vec<Vec<f64>> = (0..data.len())
        .map(|i| keep.iter().map(|&j| data.x.get(i, j)).collect())
        .collect();
    Dataset::new(
        Matrix::from_rows(rows),
        data.y.clone(),
        data.n_classes,
        keep.iter()
            .map(|&j| data.feature_names[j].clone())
            .collect(),
    )
}

/// Project a single feature vector onto a subset.
pub fn project(features: &[f64; N_FEATURES], keep: &[usize]) -> Vec<f64> {
    keep.iter().map(|&j| features[j]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pml_clusters::by_name;

    #[test]
    fn fourteen_features_named() {
        assert_eq!(FEATURE_NAMES.len(), N_FEATURES);
        let f = by_name("Frontera").unwrap();
        let v = extract(&f.spec.node, 16, 56, 4096);
        assert_eq!(v.len(), N_FEATURES);
        assert_eq!(v[0], 16.0);
        assert_eq!(v[1], 56.0);
        assert_eq!(v[2], 4096.0);
        assert_eq!(v[12], 25.0); // EDR lane rate
    }

    #[test]
    fn different_clusters_have_different_hardware_features() {
        let a = extract(&by_name("Frontera").unwrap().spec.node, 2, 4, 64);
        let b = extract(&by_name("MRI").unwrap().spec.node, 2, 4, 64);
        assert_eq!(a[..3], b[..3]); // same MPI features
        assert_ne!(a[3..], b[3..]); // different hardware
    }

    #[test]
    fn dataset_conversion_filters_and_labels() {
        use pml_clusters::{measure_cell, DatagenConfig};
        let e = by_name("RI").unwrap();
        let r1 = measure_cell(
            e,
            Collective::Allgather,
            2,
            4,
            64,
            &DatagenConfig::noiseless(),
        )
        .unwrap();
        let r2 = measure_cell(
            e,
            Collective::Alltoall,
            2,
            4,
            64,
            &DatagenConfig::noiseless(),
        )
        .unwrap();
        let d = records_to_dataset(&[r1.clone(), r2], Collective::Allgather).unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d.n_classes, 4);
        assert_eq!(d.y[0], r1.best.index());
        assert_eq!(d.n_features(), N_FEATURES);
    }

    #[test]
    fn unknown_cluster_is_an_error() {
        use pml_clusters::{measure_cell, DatagenConfig};
        let e = by_name("RI").unwrap();
        let mut r = measure_cell(
            e,
            Collective::Allgather,
            2,
            4,
            64,
            &DatagenConfig::noiseless(),
        )
        .unwrap();
        r.cluster = "NoSuchMachine".into();
        assert!(records_to_dataset(&[r], Collective::Allgather).is_err());
    }

    #[test]
    fn batch_extraction_matches_per_job() {
        let node = &by_name("Frontera").unwrap().spec.node;
        let jobs = vec![
            JobConfig::new(1, 2, 8),
            JobConfig::new(16, 56, 4096),
            JobConfig::new(3, 5, 1 << 20),
        ];
        let m = extract_batch(node, &jobs);
        assert_eq!(m.rows(), jobs.len());
        for (i, j) in jobs.iter().enumerate() {
            assert_eq!(m.row(i), extract(node, j.nodes, j.ppn, j.msg_size));
        }
    }

    #[test]
    fn feature_selection_projects() {
        let f = by_name("Frontera").unwrap();
        let v = extract(&f.spec.node, 1, 2, 8);
        let p = project(&v, &[2, 4]);
        assert_eq!(p, vec![8.0, 77.0]);
    }
}
