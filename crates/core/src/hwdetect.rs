//! Hardware-feature extraction from standard Linux tool output — the
//! counterpart of the paper's "feature extraction script which uses
//! built-in Linux commands" (§IV, Fig. 3).
//!
//! On a real deployment the script runs `lscpu`, `ibstat`, and `lspci` at
//! MPI-library build time; here the same parsing runs over captured text,
//! so a user can point the framework at their own machine's output and get
//! a [`NodeSpec`] the pre-trained model can consume. Parsing is
//! deliberately forgiving about field order and spacing but strict about
//! the fields the classifier needs.

use pml_simnet::{CpuFamily, CpuSpec, HcaGeneration, InterconnectSpec, NodeSpec, PcieVersion};
use std::fmt;

/// Error from any of the parsers.
#[derive(Debug, Clone, PartialEq)]
pub struct HwDetectError(pub String);

impl fmt::Display for HwDetectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "hardware detection failed: {}", self.0)
    }
}

impl std::error::Error for HwDetectError {}

fn missing(field: &str) -> HwDetectError {
    HwDetectError(format!("missing field: {field}"))
}

/// Extract `key:   value` from lscpu-style output (first match wins).
fn field<'a>(text: &'a str, key: &str) -> Option<&'a str> {
    text.lines().find_map(|line| {
        let (k, v) = line.split_once(':')?;
        (k.trim() == key).then(|| v.trim())
    })
}

fn parse_f64(s: &str) -> Option<f64> {
    s.split_whitespace().next()?.replace(',', ".").parse().ok()
}

/// Parse a cache-size string: lscpu prints `39424K`, `38.5 MiB`,
/// `28 MiB (28 instances)`, or plain bytes.
fn parse_cache_mib(s: &str) -> Option<f64> {
    let tok = s.split_whitespace().next()?;
    let (num, unit) = match tok.find(|c: char| c.is_ascii_alphabetic()) {
        Some(i) => tok.split_at(i),
        None => (tok, s.split_whitespace().nth(1).unwrap_or("B")),
    };
    let v: f64 = num.parse().ok()?;
    let mib = match unit.trim().to_ascii_uppercase().as_str() {
        "K" | "KB" | "KIB" => v / 1024.0,
        "M" | "MB" | "MIB" => v,
        "G" | "GB" | "GIB" => v * 1024.0,
        "B" | "" => v / (1024.0 * 1024.0),
        _ => return None,
    };
    Some(mib)
}

/// Guess the CPU family from the model-name string.
fn family_of(model: &str) -> CpuFamily {
    let m = model.to_ascii_lowercase();
    if m.contains("phi") {
        CpuFamily::IntelXeonPhi
    } else if m.contains("epyc") || m.contains("amd") {
        CpuFamily::AmdEpyc
    } else if m.contains("thunderx2") || m.contains("cavium") {
        CpuFamily::ArmThunderX2
    } else if m.contains("a64fx") {
        CpuFamily::ArmA64fx
    } else if m.contains("power9") {
        CpuFamily::IbmPower9
    } else if m.contains("power8") {
        CpuFamily::IbmPower8
    } else {
        CpuFamily::IntelXeon
    }
}

/// Parse `lscpu` output into a [`CpuSpec`].
///
/// `mem_bw_gbs` cannot be read from lscpu; pass a STREAM-measured value,
/// or `None` to estimate from NUMA-node count (≈ 70 GB/s per NUMA domain,
/// a contemporary DDR4 channel group).
pub fn parse_lscpu(text: &str, mem_bw_gbs: Option<f64>) -> Result<CpuSpec, HwDetectError> {
    let model = field(text, "Model name")
        .ok_or_else(|| missing("Model name"))?
        .to_string();
    let sockets: u32 = field(text, "Socket(s)")
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| missing("Socket(s)"))?;
    let cores_per_socket: u32 = field(text, "Core(s) per socket")
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| missing("Core(s) per socket"))?;
    let threads_total: u32 = field(text, "CPU(s)")
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| missing("CPU(s)"))?;
    let numa_nodes: u32 = field(text, "NUMA node(s)")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    // Max clock preferred (the paper's choice); fall back to base.
    let mhz = field(text, "CPU max MHz")
        .and_then(parse_f64)
        .or_else(|| field(text, "CPU MHz").and_then(parse_f64))
        .ok_or_else(|| missing("CPU max MHz"))?;
    // L3 per socket × sockets = node L3 (lscpu reports per-socket size on
    // most platforms; newer lscpu prints the instance count explicitly).
    let l3_raw = field(text, "L3 cache").ok_or_else(|| missing("L3 cache"))?;
    let l3_one = parse_cache_mib(l3_raw)
        .ok_or_else(|| HwDetectError(format!("unparseable L3 cache: {l3_raw:?}")))?;
    let instances: f64 = l3_raw
        .split('(')
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .and_then(|s| s.parse().ok())
        .unwrap_or(sockets as f64);
    let cpu = CpuSpec {
        family: family_of(&model),
        model,
        max_clock_ghz: mhz / 1000.0,
        l3_cache_mib: l3_one * instances,
        mem_bw_gbs: mem_bw_gbs.unwrap_or(70.0 * numa_nodes as f64),
        cores: cores_per_socket * sockets,
        threads: threads_total,
        sockets,
        numa_nodes,
    };
    if cpu.max_clock_ghz <= 0.0 || cpu.cores == 0 {
        return Err(HwDetectError("implausible CPU values".into()));
    }
    Ok(cpu)
}

/// Parse `ibstat` output into (generation, link width). Omni-Path systems
/// report through `opainfo` instead; a rate of 100 with "Omni-Path"
/// anywhere in the text maps to OPA.
pub fn parse_ibstat(text: &str) -> Result<(HcaGeneration, u32), HwDetectError> {
    let rate: f64 = field(text, "Rate")
        .and_then(parse_f64)
        .ok_or_else(|| missing("Rate"))?;
    let width = text
        .lines()
        .find_map(|l| {
            let v = l.split_once(':')?;
            if !v.0.trim().eq_ignore_ascii_case("Active width")
                && !v.0.trim().eq_ignore_ascii_case("Link width active")
            {
                return None;
            }
            v.1.trim().trim_end_matches(['X', 'x']).parse::<u32>().ok()
        })
        .unwrap_or(4);
    let per_lane = rate / width as f64;
    let is_opa = text.to_ascii_lowercase().contains("omni-path");
    let generation = if is_opa {
        HcaGeneration::OmniPath
    } else if per_lane <= 9.0 {
        HcaGeneration::Qdr
    } else if per_lane <= 15.0 {
        HcaGeneration::Fdr
    } else if per_lane <= 30.0 {
        HcaGeneration::Edr
    } else {
        HcaGeneration::Hdr
    };
    Ok((generation, width))
}

/// Parse an `lspci -vv` link-status line for the HCA's slot:
/// `LnkSta: Speed 8GT/s (ok), Width x16 (ok)`.
pub fn parse_lspci_link(text: &str) -> Result<(PcieVersion, u32), HwDetectError> {
    let line = text
        .lines()
        .find(|l| l.trim_start().starts_with("LnkSta:"))
        .ok_or_else(|| missing("LnkSta"))?;
    let speed = line
        .split("Speed")
        .nth(1)
        .and_then(|s| {
            let s = s.trim_start_matches([' ', ':']);
            let num: String = s
                .chars()
                .take_while(|c| c.is_ascii_digit() || *c == '.')
                .collect();
            num.parse::<f64>().ok()
        })
        .ok_or_else(|| missing("LnkSta Speed"))?;
    let lanes: u32 = line
        .split("Width x")
        .nth(1)
        .and_then(|s| s.split(|c: char| !c.is_ascii_digit()).next()?.parse().ok())
        .ok_or_else(|| missing("LnkSta Width"))?;
    let version = if speed >= 15.0 {
        PcieVersion::Gen4
    } else {
        PcieVersion::Gen3
    };
    Ok((version, lanes))
}

/// Assemble a full [`NodeSpec`] from the three captures.
pub fn detect_node(
    lscpu: &str,
    ibstat: &str,
    lspci: &str,
    mem_bw_gbs: Option<f64>,
) -> Result<NodeSpec, HwDetectError> {
    let cpu = parse_lscpu(lscpu, mem_bw_gbs)?;
    let (generation, link_width) = parse_ibstat(ibstat)?;
    let (pcie_version, pcie_lanes) = parse_lspci_link(lspci)?;
    Ok(NodeSpec {
        cpu,
        nic: InterconnectSpec {
            generation,
            link_width,
            pcie_version,
            pcie_lanes,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const LSCPU_FRONTERA: &str = "\
Architecture:        x86_64
CPU(s):              56
Thread(s) per core:  1
Core(s) per socket:  28
Socket(s):           2
NUMA node(s):        2
Model name:          Intel(R) Xeon(R) Platinum 8280 CPU @ 2.70GHz
CPU MHz:             2701.000
CPU max MHz:         4000.0000
CPU min MHz:         1000.0000
L1d cache:           32K
L3 cache:            39424K
";

    const LSCPU_EPYC: &str = "\
CPU(s):                          256
Core(s) per socket:              64
Socket(s):                       2
NUMA node(s):                    8
Model name:                      AMD EPYC 7713 64-Core Processor
CPU max MHz:                     3720.7029
L3 cache:                        256 MiB (2 instances)
";

    const IBSTAT_EDR: &str = "\
CA 'mlx5_0'
        CA type: MT4115
        Port 1:
                State: Active
                Physical state: LinkUp
                Rate: 100
                Active width: 4X
";

    const LSPCI_GEN3: &str = "\
        LnkCap: Port #0, Speed 8GT/s, Width x16
        LnkSta: Speed 8GT/s (ok), Width x16 (ok)
";

    #[test]
    fn parses_classic_lscpu() {
        let cpu = parse_lscpu(LSCPU_FRONTERA, Some(220.0)).unwrap();
        assert_eq!(cpu.model, "Intel(R) Xeon(R) Platinum 8280 CPU @ 2.70GHz");
        assert_eq!(cpu.family, CpuFamily::IntelXeon);
        assert_eq!(cpu.cores, 56);
        assert_eq!(cpu.threads, 56);
        assert_eq!(cpu.sockets, 2);
        assert_eq!(cpu.numa_nodes, 2);
        assert!((cpu.max_clock_ghz - 4.0).abs() < 1e-9);
        // 39424K per socket × 2 sockets = 77 MiB.
        assert!((cpu.l3_cache_mib - 77.0).abs() < 0.1);
        assert_eq!(cpu.mem_bw_gbs, 220.0);
    }

    #[test]
    fn parses_modern_lscpu_with_instances() {
        let cpu = parse_lscpu(LSCPU_EPYC, None).unwrap();
        assert_eq!(cpu.family, CpuFamily::AmdEpyc);
        assert_eq!(cpu.threads, 256);
        assert_eq!(cpu.cores, 128);
        // "256 MiB (2 instances)" = 512 MiB node total.
        assert!((cpu.l3_cache_mib - 512.0).abs() < 1e-9);
        // Estimated bandwidth: 8 NUMA domains.
        assert!((cpu.mem_bw_gbs - 560.0).abs() < 1e-9);
    }

    #[test]
    fn parses_ibstat_generations() {
        assert_eq!(parse_ibstat(IBSTAT_EDR).unwrap(), (HcaGeneration::Edr, 4));
        let hdr = IBSTAT_EDR.replace("Rate: 100", "Rate: 200");
        assert_eq!(parse_ibstat(&hdr).unwrap(), (HcaGeneration::Hdr, 4));
        let qdr = IBSTAT_EDR.replace("Rate: 100", "Rate: 32");
        assert_eq!(parse_ibstat(&qdr).unwrap(), (HcaGeneration::Qdr, 4));
        let fdr = IBSTAT_EDR.replace("Rate: 100", "Rate: 56");
        assert_eq!(parse_ibstat(&fdr).unwrap(), (HcaGeneration::Fdr, 4));
        let opa = format!("Omni-Path HFI\n{}", IBSTAT_EDR);
        assert_eq!(parse_ibstat(&opa).unwrap().0, HcaGeneration::OmniPath);
    }

    #[test]
    fn parses_lspci_link() {
        assert_eq!(
            parse_lspci_link(LSPCI_GEN3).unwrap(),
            (PcieVersion::Gen3, 16)
        );
        let gen4 = LSPCI_GEN3.replace("LnkSta: Speed 8GT/s", "LnkSta: Speed 16GT/s");
        assert_eq!(parse_lspci_link(&gen4).unwrap(), (PcieVersion::Gen4, 16));
    }

    #[test]
    fn assembles_node_and_feeds_feature_extraction() {
        let node = detect_node(LSCPU_FRONTERA, IBSTAT_EDR, LSPCI_GEN3, Some(220.0)).unwrap();
        let v = crate::features::extract(&node, 16, 56, 4096);
        assert_eq!(v[12], 25.0); // EDR lane rate
        assert_eq!(v[10], 16.0); // PCIe lanes
        assert_eq!(v[3], 4.0); // max clock GHz
    }

    #[test]
    fn errors_are_descriptive() {
        let err = parse_lscpu("CPU(s): 8\n", None).unwrap_err();
        assert!(err.0.contains("Model name"));
        let err = parse_ibstat("State: Active\n").unwrap_err();
        assert!(err.0.contains("Rate"));
        let err = parse_lspci_link("nothing here").unwrap_err();
        assert!(err.0.contains("LnkSta"));
    }

    #[test]
    fn cache_size_formats() {
        assert_eq!(parse_cache_mib("39424K"), Some(38.5));
        assert_eq!(parse_cache_mib("38.5 MiB"), Some(38.5));
        assert_eq!(parse_cache_mib("1 GiB"), Some(1024.0));
        assert_eq!(parse_cache_mib("256 MiB (2 instances)"), Some(256.0));
    }
}
