//! # pml-core
//!
//! The PML-MPI framework itself — the paper's contribution.
//!
//! * [`features`] — the 14-feature (3 MPI + 11 hardware) extraction of §V-A;
//! * [`pipeline`] — offline training (Fig. 3) producing a serializable
//!   [`pipeline::PretrainedModel`], and online inference (Fig. 4) emitting
//!   JSON tuning tables for unseen clusters in constant time;
//! * [`tuning_table`] — the JSON artifact + the compile-time table cache;
//! * [`hwdetect`] — the feature-extraction "script": parsers for
//!   `lscpu`/`ibstat`/`lspci` captures producing a ready
//!   [`pml_simnet::NodeSpec`];
//! * [`selectors`] — the strategy zoo benchmarked in §VII: the proposed
//!   ML selector, MVAPICH2/Open MPI-style static defaults, random
//!   selection, and the exhaustive-micro-benchmark oracle;
//! * [`overhead`] — the core-hour models of Figs. 1 and 7;
//! * [`tuner`] — the runtime-side facade an MPI library links: memoized
//!   tuning-table lookups with static-rule fallback;
//! * [`verify`] — static structural verification of shipped artifacts
//!   (models, tuning tables, binned matrices) without executing them.

#![deny(rust_2018_idioms, missing_debug_implementations)]
#![deny(clippy::dbg_macro, clippy::todo)]
pub mod engine;
pub mod error;
pub mod features;
pub mod hwdetect;
pub mod overhead;
pub mod pipeline;
pub mod selectors;
pub mod tuner;
pub mod tuning_table;
pub mod verify;

pub use engine::{EngineConfig, SelectionEngine};
pub use error::PmlError;
pub use features::{extract, extract_batch, records_to_dataset, FEATURE_NAMES, N_FEATURES};
pub use hwdetect::{detect_node, parse_ibstat, parse_lscpu, parse_lspci_link, HwDetectError};
pub use pipeline::{MlSelector, PretrainedModel, TrainConfig};
pub use selectors::{
    applicable_or_fallback, AlgorithmSelector, JobConfig, MvapichDefault, OpenMpiDefault,
    OracleSelector, RandomSelector,
};
pub use tuner::{FallbackDepth, Tuner};
pub use tuning_table::{TableEntry, TableStore, TuningTable};
pub use verify::{
    verify_artifact_file, verify_artifact_str, verify_model, verify_model_json, verify_table,
    verify_table_json, ArtifactKind, VerifyError, VerifyErrorKind,
};
