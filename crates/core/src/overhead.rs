//! Tuning-overhead (core-hour) models behind Figs. 1 and 7.
//!
//! Core-hours = processes × wall time / 3600. Three strategies:
//!
//! * **Offline micro-benchmarking** — to tune a machine up to N nodes, the
//!   tool must sweep every algorithm × PPN × message size at every node
//!   count ≤ N, paying N·PPN cores for the whole sweep's duration. We
//!   compute the sweep runtime with the same simulator the dataset uses.
//! * **ACCLAiM** — online training at application runtime. The paper
//!   anchors this line to ACCLAiM's published data point (5.62 minutes for
//!   `MPI_Allgather` on 128 nodes) and, lacking more detail, deliberately
//!   ignores its communication overhead, making the line a lower bound. We
//!   reproduce the same arithmetic: a constant 5.62-minute tuning phase
//!   billed on all N×PPN cores.
//! * **PML-MPI (proposed)** — one model inference per grid cell on a single
//!   process at MPI-library compile time; node count does not appear in the
//!   formula at all, so the line is flat.

use pml_clusters::ClusterEntry;
use pml_collectives::{measure_sweep, Algorithm, Collective};
use pml_simnet::JobLayout;

/// ACCLAiM's published model overhead: 5.62 minutes at 128 nodes for
/// MPI_Allgather (Wilkins et al., CLUSTER'22, as cited in §II).
pub const ACCLAIM_MINUTES_AT_128_NODES: f64 = 5.62;

/// Benchmark iterations the offline micro-benchmark sweep averages over
/// (matching the dataset protocol).
pub const MICROBENCH_ITERS: f64 = 10.0;

/// Core-hours for exhaustively micro-benchmarking `entry` at exactly
/// `nodes` nodes and `ppn` PPN: every applicable algorithm at every message
/// size, `MICROBENCH_ITERS` iterations each, billed on nodes×ppn cores.
pub fn microbench_core_hours_at(
    entry: &ClusterEntry,
    collective: Collective,
    nodes: u32,
    ppn: u32,
) -> f64 {
    let sweep = measure_sweep(
        collective,
        &entry.spec.node,
        JobLayout::new(nodes, ppn),
        &entry.msg_grid,
    );
    let sweep_seconds: f64 = sweep
        .iter()
        .flat_map(|per_size| per_size.iter().map(|(_, t)| t))
        .sum::<f64>()
        * MICROBENCH_ITERS;
    (nodes * ppn) as f64 * sweep_seconds / 3600.0
}

/// Cumulative core-hours to produce tuning tables covering node counts up
/// to `max_nodes` (the lookup table needs every smaller node count too).
pub fn microbench_core_hours_cumulative(
    entry: &ClusterEntry,
    collective: Collective,
    max_nodes: u32,
    ppn: u32,
) -> f64 {
    let mut n = 1u32;
    let mut total = 0.0;
    while n <= max_nodes {
        total += microbench_core_hours_at(entry, collective, n, ppn);
        n *= 2;
    }
    total
}

/// ACCLAiM's core-hours at `nodes` × `ppn`: constant tuning wall time
/// billed on every core of the allocation (communication ignored — a lower
/// bound, as in the paper).
pub fn acclaim_core_hours(nodes: u32, ppn: u32) -> f64 {
    (nodes * ppn) as f64 * (ACCLAIM_MINUTES_AT_128_NODES / 60.0)
}

/// PML-MPI's core-hours: `inference_seconds` of single-process model
/// inference, independent of node count.
pub fn proposed_core_hours(inference_seconds: f64) -> f64 {
    inference_seconds / 3600.0
}

/// Measure the wall time of generating a tuning table with a pre-trained
/// model (the "<1 s inference" claim of §II), in seconds.
pub fn measure_inference_seconds(
    model: &crate::pipeline::PretrainedModel,
    entry: &ClusterEntry,
) -> Result<f64, crate::error::PmlError> {
    let t0 = std::time::Instant::now();
    let table = model.generate_tuning_table(entry)?;
    let dt = t0.elapsed().as_secs_f64();
    debug_assert!(!table.is_empty());
    Ok(dt)
}

/// One row of the Fig. 1 / Fig. 7 series.
#[derive(Debug, Clone, PartialEq)]
pub struct OverheadRow {
    pub nodes: u32,
    pub microbench_core_hours: f64,
    pub acclaim_core_hours: f64,
    pub proposed_core_hours: f64,
}

/// Build the full overhead comparison over doubling node counts.
pub fn overhead_series(
    entry: &ClusterEntry,
    collective: Collective,
    node_counts: &[u32],
    ppn: u32,
    inference_seconds: f64,
) -> Vec<OverheadRow> {
    node_counts
        .iter()
        .map(|&n| OverheadRow {
            nodes: n,
            microbench_core_hours: microbench_core_hours_cumulative(entry, collective, n, ppn),
            acclaim_core_hours: acclaim_core_hours(n, ppn),
            proposed_core_hours: proposed_core_hours(inference_seconds),
        })
        .collect()
}

/// Convenience: total seconds the whole Table-I-style sweep would take on
/// the machine (used to sanity-check the micro-benchmark numbers).
pub fn sweep_seconds(entry: &ClusterEntry, collective: Collective, nodes: u32, ppn: u32) -> f64 {
    let sweep = measure_sweep(
        collective,
        &entry.spec.node,
        JobLayout::new(nodes, ppn),
        &entry.msg_grid,
    );
    sweep.iter().flat_map(|s| s.iter().map(|(_, t)| t)).sum()
}

/// Count of algorithm runs in one sweep (diagnostics).
pub fn sweep_points(entry: &ClusterEntry, collective: Collective, nodes: u32, ppn: u32) -> usize {
    let world = nodes * ppn;
    Algorithm::applicable_for(collective, world).len() * entry.msg_grid.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pml_clusters::by_name;

    #[test]
    fn microbench_grows_superlinearly_with_nodes() {
        let mut e = by_name("RI2").unwrap().clone();
        e.msg_grid = vec![64, 4096, 65536];
        let c2 = microbench_core_hours_at(&e, Collective::Alltoall, 2, 4);
        let c8 = microbench_core_hours_at(&e, Collective::Alltoall, 8, 4);
        // 4× the cores *and* longer collectives → more than 4× core-hours.
        assert!(c8 > 4.0 * c2, "c8 {c8} vs c2 {c2}");
    }

    #[test]
    fn cumulative_dominates_single_point() {
        let mut e = by_name("RI2").unwrap().clone();
        e.msg_grid = vec![64, 4096];
        let single = microbench_core_hours_at(&e, Collective::Allgather, 4, 4);
        let cumul = microbench_core_hours_cumulative(&e, Collective::Allgather, 4, 4);
        assert!(cumul > single);
    }

    #[test]
    fn acclaim_matches_published_anchor() {
        // 128 nodes × 56 ppn × 5.62 min = 671.2 core-hours.
        let ch = acclaim_core_hours(128, 56);
        assert!((ch - 128.0 * 56.0 * 5.62 / 60.0).abs() < 1e-9);
    }

    #[test]
    fn proposed_is_constant_in_node_count() {
        assert_eq!(proposed_core_hours(0.5), proposed_core_hours(0.5));
        assert!(proposed_core_hours(1.0) < 1e-3);
    }

    #[test]
    fn series_has_expected_ordering() {
        let mut e = by_name("RI2").unwrap().clone();
        e.msg_grid = vec![64, 4096];
        let rows = overhead_series(&e, Collective::Allgather, &[2, 8], 4, 0.2);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.proposed_core_hours < r.acclaim_core_hours);
        }
        assert!(rows[1].microbench_core_hours > rows[0].microbench_core_hours);
        assert!(rows[1].acclaim_core_hours > rows[0].acclaim_core_hours);
        assert_eq!(rows[0].proposed_core_hours, rows[1].proposed_core_hours);
    }
}
