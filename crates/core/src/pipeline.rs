//! The two-stage PML-MPI pipeline.
//!
//! **Offline training** (Fig. 3): build the dataset from micro-benchmark
//! records across many clusters, rank the 14 features by Random-Forest Gini
//! importance, keep the top-k (5 in the paper) to avoid overfitting, and fit
//! the final forest on them. The result — a [`PretrainedModel`] — is the
//! artifact shipped with the MPI library.
//!
//! **Online inference** (Fig. 4): on a new cluster, extract hardware
//! features once, run the model over the job grid, and emit a JSON
//! `TuningTable` for the target cluster. No data collection,
//! no retraining — one process, well under a second.

use crate::error::PmlError;
use crate::features::{self, N_FEATURES};
use crate::selectors::{applicable_or_fallback, AlgorithmSelector, JobConfig};
use crate::tuning_table::TuningTable;
use pml_clusters::{ClusterEntry, TuningRecord};
use pml_collectives::{Algorithm, Collective};
use pml_mlcore::{Classifier, ForestParams, RandomForest};
use pml_simnet::NodeSpec;
use serde::{Deserialize, Serialize};

/// Offline-training settings.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    pub forest: ForestParams,
    /// Keep the top-k features by importance (paper: 5). `None` keeps all.
    pub top_k_features: Option<usize>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            forest: ForestParams {
                n_estimators: 100,
                seed: 42,
                ..Default::default()
            },
            top_k_features: Some(5),
        }
    }
}

/// A trained, serializable PML-MPI model for one collective.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PretrainedModel {
    pub collective: Collective,
    forest: RandomForest,
    /// Indices (into the 14-feature vector) the final forest consumes.
    selected_features: Vec<usize>,
    /// Importance of all 14 features from the preliminary forest
    /// (Figs. 5/6 material).
    full_importances: Vec<f64>,
    /// Records trained on (for provenance reporting).
    pub n_training_records: usize,
}

impl PretrainedModel {
    /// Offline training (Fig. 3) from micro-benchmark records.
    pub fn train(
        records: &[TuningRecord],
        collective: Collective,
        cfg: &TrainConfig,
    ) -> Result<Self, PmlError> {
        let all: Vec<usize> = (0..N_FEATURES).collect();
        Self::train_restricted(records, collective, cfg, &all)
    }

    /// Training restricted to a feature whitelist — the ablation knob. The
    /// paper's contribution is exactly the difference between
    /// `allowed = all 14` and `allowed = the 3 MPI features`
    /// ([`features::MPI_FEATURES`]): without the hardware features the
    /// model cannot tell clusters apart at all.
    pub fn train_restricted(
        records: &[TuningRecord],
        collective: Collective,
        cfg: &TrainConfig,
        allowed: &[usize],
    ) -> Result<Self, PmlError> {
        if allowed.is_empty() {
            return Err(PmlError::InvalidInput("feature whitelist is empty".into()));
        }
        if let Some(&bad) = allowed.iter().find(|&&i| i >= N_FEATURES) {
            return Err(PmlError::InvalidInput(format!(
                "feature index {bad} out of range (have {N_FEATURES})"
            )));
        }
        let full = features::records_to_dataset(records, collective)?;
        if full.is_empty() {
            return Err(PmlError::NoTrainingRecords(collective));
        }

        // Preliminary forest on the allowed features → importance ranking.
        let allowed_data = features::select_features(&full, allowed);
        let mut prelim = RandomForest::new(cfg.forest);
        prelim.fit(&allowed_data.x, &allowed_data.y, allowed_data.n_classes)?;
        let allowed_importances = prelim.feature_importances();
        let mut full_importances = vec![0.0; N_FEATURES];
        for (&feat, &imp) in allowed.iter().zip(&allowed_importances) {
            full_importances[feat] = imp;
        }

        let selected_features: Vec<usize> = match cfg.top_k_features {
            None => allowed.to_vec(),
            Some(k) => {
                let mut order: Vec<usize> = allowed.to_vec();
                order.sort_by(|&a, &b| full_importances[b].total_cmp(&full_importances[a]));
                let mut keep = order[..k.min(allowed.len())].to_vec();
                keep.sort_unstable();
                keep
            }
        };

        let reduced = features::select_features(&full, &selected_features);
        let mut forest = RandomForest::new(cfg.forest);
        forest.fit(&reduced.x, &reduced.y, reduced.n_classes)?;

        Ok(PretrainedModel {
            collective,
            forest,
            selected_features,
            full_importances,
            n_training_records: full.len(),
        })
    }

    /// Importance of every one of the 14 features (preliminary forest).
    pub fn full_importances(&self) -> &[f64] {
        &self.full_importances
    }

    /// The feature indices the shipped model consumes.
    pub fn selected_features(&self) -> &[usize] {
        &self.selected_features
    }

    /// The underlying forest, for the structural verifier.
    pub(crate) fn forest(&self) -> &RandomForest {
        &self.forest
    }

    /// Out-of-bag accuracy of the final forest, when available.
    pub fn oob_score(&self) -> Option<f64> {
        self.forest.oob_score()
    }

    /// Predict the algorithm for one configuration on one node type.
    /// Guaranteed to return an algorithm applicable at the world size.
    pub fn predict(&self, node: &NodeSpec, job: JobConfig) -> Algorithm {
        self.predict_batch(node, &[job])[0]
    }

    /// Batched prediction: one feature-extraction pass and one parallel
    /// forest inference for the whole job list. Output is index-aligned
    /// with `jobs`, and every algorithm is applicable at its job's world
    /// size.
    pub fn predict_batch(&self, node: &NodeSpec, jobs: &[JobConfig]) -> Vec<Algorithm> {
        let full = features::extract_batch(node, jobs);
        // Project onto the selected features straight into one flat matrix —
        // no intermediate Vec per row.
        let mut reduced = pml_mlcore::Matrix::zeros(full.rows(), self.selected_features.len());
        for i in 0..full.rows() {
            for (slot, &j) in reduced.row_mut(i).iter_mut().zip(&self.selected_features) {
                *slot = full.get(i, j);
            }
        }
        let classes = self.forest.predict_batch(&reduced);
        classes
            .into_iter()
            .zip(jobs)
            .map(|(class, job)| {
                // An out-of-range class only happens with a corrupted or
                // mismatched model artifact; degrade to the library's static
                // default rules rather than aborting the caller.
                let algo = Algorithm::from_index(self.collective, class).unwrap_or_else(|| {
                    crate::selectors::MvapichDefault.select(self.collective, *job)
                });
                applicable_or_fallback(algo, job.world_size())
            })
            .collect()
    }

    /// Hard predictions for a whole dataset-shaped matrix (already feature-
    /// selected rows) — used by the accuracy benchmarks.
    pub fn predict_dataset(&self, data: &pml_mlcore::Dataset) -> Vec<usize> {
        let reduced = features::select_features(data, &self.selected_features);
        self.forest.predict_batch(&reduced.x)
    }

    /// Online inference (Fig. 4): generate the tuning table for a cluster
    /// over its benchmark grid. The whole grid runs through
    /// [`PretrainedModel::predict_batch`] — one process, no measurements.
    pub fn generate_tuning_table(&self, entry: &ClusterEntry) -> Result<TuningTable, PmlError> {
        let jobs: Vec<JobConfig> = entry
            .node_grid
            .iter()
            .flat_map(|&n| {
                entry.ppn_grid.iter().flat_map(move |&p| {
                    entry.msg_grid.iter().map(move |&m| JobConfig::new(n, p, m))
                })
            })
            .collect();
        let algos = self.predict_batch(&entry.spec.node, &jobs);
        let mut table = TuningTable::new(entry.name(), self.collective);
        for (job, algo) in jobs.iter().zip(algos) {
            table.insert(job.nodes, job.ppn, job.msg_size as u64, algo)?;
        }
        table.normalize();
        Ok(table)
    }

    /// Serialize the shipped artifact.
    pub fn to_json(&self) -> Result<String, PmlError> {
        Ok(serde_json::to_string(self)?)
    }

    /// Parse and structurally verify a shipped artifact (v1 artifacts are
    /// migrated during parse, so the verification pass doubles as the
    /// post-migration re-check). Corrupt artifacts come back as
    /// [`PmlError::Verify`] instead of predicting from broken trees.
    pub fn from_json(s: &str) -> Result<Self, PmlError> {
        crate::verify::verify_model_json(s)
            .map_err(|kind| PmlError::Verify(crate::verify::VerifyError::inline(kind)))
    }
}

/// The proposed selector: pre-trained models (one per collective) queried
/// with the target cluster's hardware features.
#[derive(Debug, Clone)]
pub struct MlSelector {
    name: String,
    node: NodeSpec,
    allgather: Option<PretrainedModel>,
    alltoall: Option<PretrainedModel>,
    /// Models for extension collectives (bcast/allreduce), when trained.
    extra: std::collections::BTreeMap<Collective, PretrainedModel>,
}

impl MlSelector {
    /// Build for a target cluster from pre-trained models. Either model may
    /// be absent if only one collective is under study; a model for the
    /// wrong collective is rejected.
    pub fn new(
        node: NodeSpec,
        allgather: Option<PretrainedModel>,
        alltoall: Option<PretrainedModel>,
    ) -> Result<Self, PmlError> {
        if let Some(m) = &allgather {
            if m.collective != Collective::Allgather {
                return Err(PmlError::CrossCollective {
                    expected: Collective::Allgather,
                    got: m.collective,
                });
            }
        }
        if let Some(m) = &alltoall {
            if m.collective != Collective::Alltoall {
                return Err(PmlError::CrossCollective {
                    expected: Collective::Alltoall,
                    got: m.collective,
                });
            }
        }
        Ok(MlSelector {
            name: "PML-MPI-proposed".into(),
            node,
            allgather,
            alltoall,
            extra: std::collections::BTreeMap::new(),
        })
    }

    /// Attach a model for an extension collective (bcast/allreduce).
    pub fn with_model(mut self, model: PretrainedModel) -> Self {
        match model.collective {
            Collective::Allgather => self.allgather = Some(model),
            Collective::Alltoall => self.alltoall = Some(model),
            other => {
                self.extra.insert(other, model);
            }
        }
        self
    }

    pub fn model_for(&self, collective: Collective) -> Option<&PretrainedModel> {
        match collective {
            Collective::Allgather => self.allgather.as_ref(),
            Collective::Alltoall => self.alltoall.as_ref(),
            // The paper's dataset covers the two collectives above; models
            // for the extension collectives can be trained with the same
            // pipeline but are not part of the shipped pair.
            Collective::Bcast | Collective::Allreduce => self.extra.get(&collective),
        }
    }
}

impl AlgorithmSelector for MlSelector {
    fn name(&self) -> &str {
        &self.name
    }

    /// Collectives with a shipped model use it; the rest fall back to the
    /// library's static default rules — exactly how a deployment behaves
    /// while the tuner's coverage grows collective by collective.
    fn select(&self, collective: Collective, job: JobConfig) -> Algorithm {
        match self.model_for(collective) {
            Some(model) => model.predict(&self.node, job),
            None => crate::selectors::MvapichDefault.select(collective, job),
        }
    }

    /// One batched forest inference for the whole job list.
    fn select_batch(&self, collective: Collective, jobs: &[JobConfig]) -> Vec<Algorithm> {
        match self.model_for(collective) {
            Some(model) => model.predict_batch(&self.node, jobs),
            None => jobs
                .iter()
                .map(|&j| crate::selectors::MvapichDefault.select(collective, j))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pml_clusters::{by_name, generate_cluster, DatagenConfig};

    /// Small but real training set: two clusters, trimmed grids.
    fn tiny_records(collective: Collective) -> Vec<TuningRecord> {
        let mut out = Vec::new();
        for name in ["RI", "Haswell"] {
            let mut e = by_name(name).unwrap().clone();
            e.node_grid = vec![1, 2];
            e.ppn_grid = vec![2, 4];
            e.msg_grid = vec![16, 1024, 65536];
            out.extend(generate_cluster(&e, collective, &DatagenConfig::noiseless()).unwrap());
        }
        out
    }

    #[test]
    fn training_produces_working_model() {
        let recs = tiny_records(Collective::Alltoall);
        let cfg = TrainConfig {
            forest: ForestParams {
                n_estimators: 20,
                seed: 1,
                ..Default::default()
            },
            top_k_features: Some(5),
        };
        let model = PretrainedModel::train(&recs, Collective::Alltoall, &cfg).unwrap();
        assert_eq!(model.selected_features().len(), 5);
        assert_eq!(model.n_training_records, recs.len());
        let sum: f64 = model.full_importances().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        // Prediction is applicable and in-collective.
        let e = by_name("Frontera").unwrap();
        let a = model.predict(&e.spec.node, JobConfig::new(3, 5, 777));
        assert!(a.supports(15));
        assert_eq!(a.collective(), Collective::Alltoall);
    }

    #[test]
    fn model_fits_training_grid_well() {
        let recs = tiny_records(Collective::Allgather);
        let cfg = TrainConfig {
            forest: ForestParams {
                n_estimators: 40,
                seed: 2,
                ..Default::default()
            },
            top_k_features: None,
        };
        let model = PretrainedModel::train(&recs, Collective::Allgather, &cfg).unwrap();
        let e_ri = by_name("RI").unwrap();
        let e_hw = by_name("Haswell").unwrap();
        let mut hits = 0;
        for r in &recs {
            let node = if r.cluster == "RI" {
                &e_ri.spec.node
            } else {
                &e_hw.spec.node
            };
            if model.predict(node, JobConfig::new(r.nodes, r.ppn, r.msg_size)) == r.best {
                hits += 1;
            }
        }
        let acc = hits as f64 / recs.len() as f64;
        assert!(acc > 0.8, "training-grid accuracy {acc}");
    }

    #[test]
    fn tuning_table_covers_grid_and_roundtrips() {
        let recs = tiny_records(Collective::Alltoall);
        let cfg = TrainConfig {
            forest: ForestParams {
                n_estimators: 10,
                seed: 3,
                ..Default::default()
            },
            ..Default::default()
        };
        let model = PretrainedModel::train(&recs, Collective::Alltoall, &cfg).unwrap();
        let mut e = by_name("MRI").unwrap().clone();
        e.node_grid = vec![1, 2];
        e.ppn_grid = vec![4];
        e.msg_grid = vec![64, 2048];
        let table = model.generate_tuning_table(&e).unwrap();
        assert_eq!(table.len(), 4);
        let back = TuningTable::from_json(&table.to_json().unwrap()).unwrap();
        assert_eq!(table, back);
    }

    #[test]
    fn model_json_roundtrip_preserves_predictions() {
        let recs = tiny_records(Collective::Allgather);
        let cfg = TrainConfig {
            forest: ForestParams {
                n_estimators: 8,
                seed: 4,
                ..Default::default()
            },
            ..Default::default()
        };
        let model = PretrainedModel::train(&recs, Collective::Allgather, &cfg).unwrap();
        let back = PretrainedModel::from_json(&model.to_json().unwrap()).unwrap();
        let node = &by_name("Bebop").unwrap().spec.node;
        for logm in [0usize, 8, 16] {
            let job = JobConfig::new(2, 4, 1 << logm);
            assert_eq!(model.predict(node, job), back.predict(node, job));
        }
    }

    #[test]
    fn batched_prediction_matches_per_job() {
        let recs = tiny_records(Collective::Alltoall);
        let cfg = TrainConfig {
            forest: ForestParams {
                n_estimators: 12,
                seed: 7,
                ..Default::default()
            },
            ..Default::default()
        };
        let model = PretrainedModel::train(&recs, Collective::Alltoall, &cfg).unwrap();
        let node = &by_name("Frontera").unwrap().spec.node;
        let jobs: Vec<JobConfig> = [(1, 2, 16), (2, 4, 1024), (3, 5, 65536), (16, 56, 1 << 20)]
            .into_iter()
            .map(|(n, p, m)| JobConfig::new(n, p, m))
            .collect();
        let batch = model.predict_batch(node, &jobs);
        assert_eq!(batch.len(), jobs.len());
        for (a, &j) in batch.iter().zip(&jobs) {
            assert_eq!(*a, model.predict(node, j));
            assert!(a.supports(j.world_size()));
        }
    }

    #[test]
    fn training_without_records_errors() {
        let err = PretrainedModel::train(&[], Collective::Allgather, &TrainConfig::default())
            .unwrap_err();
        assert!(matches!(err, PmlError::NoTrainingRecords(_)), "{err}");
        assert!(PretrainedModel::train_restricted(
            &tiny_records(Collective::Alltoall),
            Collective::Alltoall,
            &TrainConfig::default(),
            &[],
        )
        .is_err());
    }

    #[test]
    fn selector_rejects_model_in_wrong_slot() {
        let recs = tiny_records(Collective::Alltoall);
        let aa =
            PretrainedModel::train(&recs, Collective::Alltoall, &TrainConfig::default()).unwrap();
        let node = by_name("Frontera").unwrap().spec.node.clone();
        assert!(MlSelector::new(node, Some(aa), None).is_err());
    }

    #[test]
    fn selector_wraps_models() {
        let ag = PretrainedModel::train(
            &tiny_records(Collective::Allgather),
            Collective::Allgather,
            &TrainConfig {
                forest: ForestParams {
                    n_estimators: 5,
                    seed: 5,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .unwrap();
        let node = by_name("Frontera").unwrap().spec.node.clone();
        let sel = MlSelector::new(node, Some(ag), None).unwrap();
        let a = sel.select(Collective::Allgather, JobConfig::new(2, 2, 512));
        assert_eq!(a.collective(), Collective::Allgather);
    }

    #[test]
    fn selector_falls_back_to_default_rules_without_a_model() {
        use crate::selectors::MvapichDefault;
        let node = by_name("Frontera").unwrap().spec.node.clone();
        let sel = MlSelector::new(node, None, None).unwrap();
        let job = JobConfig::new(2, 4, 4096);
        for coll in Collective::ALL {
            assert_eq!(sel.select(coll, job), MvapichDefault.select(coll, job));
        }
    }

    #[test]
    fn with_model_attaches_extension_collectives() {
        let recs = tiny_records(Collective::Alltoall);
        let cfg = TrainConfig {
            forest: ForestParams {
                n_estimators: 5,
                seed: 6,
                ..Default::default()
            },
            ..Default::default()
        };
        let aa = PretrainedModel::train(&recs, Collective::Alltoall, &cfg).unwrap();
        let node = by_name("Frontera").unwrap().spec.node.clone();
        let sel = MlSelector::new(node, None, None)
            .unwrap()
            .with_model(aa.clone());
        assert!(sel.model_for(Collective::Alltoall).is_some());
        assert!(sel.model_for(Collective::Bcast).is_none());
    }
}
