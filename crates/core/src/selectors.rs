//! Algorithm-selection strategies — the contenders of §VII.
//!
//! * [`MlSelector`] — the proposed pre-trained-model selector;
//! * [`MvapichDefault`] — a static size-threshold heuristic in the style of
//!   MVAPICH2 2.3.7's shipped tuning tables (hardware-blind, which is
//!   precisely the weakness the paper attacks);
//! * [`OpenMpiDefault`] — Open MPI's empirical decision rules, with
//!   different thresholds and algorithm preferences;
//! * [`RandomSelector`] — uniform over applicable algorithms (Fig. 8's
//!   strawman);
//! * [`OracleSelector`] — exhaustive offline micro-benchmarking (the upper
//!   bound every other strategy is measured against).

use pml_clusters::TuningRecord;
use pml_collectives::{
    Algorithm, AllgatherAlgo, AllreduceAlgo, AlltoallAlgo, BcastAlgo, Collective,
};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;

/// A job configuration to select an algorithm for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JobConfig {
    pub nodes: u32,
    pub ppn: u32,
    pub msg_size: usize,
}

impl JobConfig {
    pub fn new(nodes: u32, ppn: u32, msg_size: usize) -> Self {
        JobConfig {
            nodes,
            ppn,
            msg_size,
        }
    }

    pub fn world_size(&self) -> u32 {
        self.nodes * self.ppn
    }
}

/// An algorithm-selection strategy.
pub trait AlgorithmSelector {
    /// Human-readable strategy name (used in benchmark reports).
    fn name(&self) -> &str;

    /// Choose an algorithm for this collective and job. Implementations
    /// must return an algorithm that supports the job's world size.
    fn select(&self, collective: Collective, job: JobConfig) -> Algorithm;

    /// Choose algorithms for a whole batch of jobs. The default loops over
    /// [`AlgorithmSelector::select`]; selectors with a cheaper bulk path
    /// (the ML selector runs one batched forest inference) override it.
    fn select_batch(&self, collective: Collective, jobs: &[JobConfig]) -> Vec<Algorithm> {
        jobs.iter().map(|&j| self.select(collective, j)).collect()
    }
}

/// If `preferred` is undefined at this world size, fall back to the best
/// always-applicable relative (every MPI library does a variant of this).
pub fn applicable_or_fallback(preferred: Algorithm, world: u32) -> Algorithm {
    if preferred.supports(world) {
        return preferred;
    }
    match preferred {
        // Bruck is recursive doubling's any-p generalization.
        Algorithm::Allgather(AllgatherAlgo::RecursiveDoubling) => {
            Algorithm::Allgather(AllgatherAlgo::Bruck)
        }
        // Ring has the same bandwidth profile as neighbour exchange.
        Algorithm::Allgather(AllgatherAlgo::NeighborExchange) => {
            Algorithm::Allgather(AllgatherAlgo::Ring)
        }
        Algorithm::Alltoall(AlltoallAlgo::RecursiveDoubling) => {
            Algorithm::Alltoall(AlltoallAlgo::Bruck)
        }
        // Ring reduce-scatter matches RD-allreduce's bandwidth class.
        Algorithm::Allreduce(AllreduceAlgo::RecursiveDoubling) => {
            Algorithm::Allreduce(AllreduceAlgo::RingReduceScatter)
        }
        other => other,
    }
}

// ---------------------------------------------------------------------------

/// MVAPICH2-style static default tuning: pure message-size (and world-size)
/// thresholds, identical on every machine.
#[derive(Debug, Clone, Default)]
pub struct MvapichDefault;

impl AlgorithmSelector for MvapichDefault {
    fn name(&self) -> &str {
        "MVAPICH2-2.3.7-default"
    }

    fn select(&self, collective: Collective, job: JobConfig) -> Algorithm {
        let p = job.world_size();
        let m = job.msg_size;
        let preferred = match collective {
            Collective::Allgather => {
                // The MPICH/MVAPICH rule keys on the *total* gathered data
                // p·m: short vectors use recursive doubling (power-of-two)
                // or Bruck (otherwise), long vectors use the ring.
                let total = m * (p as usize);
                if total < 80 * 1024 && p.is_power_of_two() {
                    Algorithm::Allgather(AllgatherAlgo::RecursiveDoubling)
                } else if total < 80 * 1024 {
                    Algorithm::Allgather(AllgatherAlgo::Bruck)
                } else {
                    Algorithm::Allgather(AllgatherAlgo::Ring)
                }
            }
            Collective::Alltoall => {
                if m <= 256 {
                    Algorithm::Alltoall(AlltoallAlgo::Bruck)
                } else if m <= 32 * 1024 {
                    Algorithm::Alltoall(AlltoallAlgo::ScatterDest)
                } else {
                    Algorithm::Alltoall(AlltoallAlgo::Pairwise)
                }
            }
            Collective::Bcast => {
                // MPICH: binomial short, scatter+allgather long.
                if m < 12 * 1024 || p < 8 {
                    Algorithm::Bcast(BcastAlgo::Binomial)
                } else if m < 512 * 1024 {
                    Algorithm::Bcast(BcastAlgo::ScatterAllgather)
                } else {
                    Algorithm::Bcast(BcastAlgo::PipelinedRing)
                }
            }
            Collective::Allreduce => {
                // MPICH: recursive doubling short, Rabenseifner-style long.
                if m <= 2048 {
                    Algorithm::Allreduce(AllreduceAlgo::RecursiveDoubling)
                } else {
                    Algorithm::Allreduce(AllreduceAlgo::RingReduceScatter)
                }
            }
        };
        applicable_or_fallback(preferred, p)
    }
}

/// Open MPI-style decision rules (the empirical decision trees of Open MPI
/// 4.x/5.x `tuned`): different thresholds, neighbour-exchange preference
/// for mid-size allgathers, linear/scatter for mid-size alltoall.
#[derive(Debug, Clone, Default)]
pub struct OpenMpiDefault;

impl AlgorithmSelector for OpenMpiDefault {
    fn name(&self) -> &str {
        "OpenMPI-5.1.0a-default"
    }

    fn select(&self, collective: Collective, job: JobConfig) -> Algorithm {
        let p = job.world_size();
        let m = job.msg_size;
        let preferred = match collective {
            Collective::Allgather => {
                if m <= 1024 && p.is_power_of_two() {
                    Algorithm::Allgather(AllgatherAlgo::RecursiveDoubling)
                } else if m <= 1024 {
                    Algorithm::Allgather(AllgatherAlgo::Bruck)
                } else if m <= 64 * 1024 {
                    Algorithm::Allgather(AllgatherAlgo::NeighborExchange)
                } else {
                    Algorithm::Allgather(AllgatherAlgo::Ring)
                }
            }
            Collective::Alltoall => {
                if m <= 64 {
                    Algorithm::Alltoall(AlltoallAlgo::Bruck)
                } else if m <= 8 * 1024 {
                    Algorithm::Alltoall(AlltoallAlgo::ScatterDest)
                } else if p <= 64 {
                    Algorithm::Alltoall(AlltoallAlgo::Inplace)
                } else {
                    Algorithm::Alltoall(AlltoallAlgo::Pairwise)
                }
            }
            Collective::Bcast => {
                if m <= 2048 {
                    Algorithm::Bcast(BcastAlgo::Binomial)
                } else if m <= 128 * 1024 {
                    Algorithm::Bcast(BcastAlgo::ScatterAllgather)
                } else {
                    Algorithm::Bcast(BcastAlgo::PipelinedRing)
                }
            }
            Collective::Allreduce => {
                if m <= 8 * 1024 && p.is_power_of_two() {
                    Algorithm::Allreduce(AllreduceAlgo::RecursiveDoubling)
                } else if m <= 1024 {
                    Algorithm::Allreduce(AllreduceAlgo::ReduceBroadcast)
                } else {
                    Algorithm::Allreduce(AllreduceAlgo::RingReduceScatter)
                }
            }
        };
        applicable_or_fallback(preferred, p)
    }
}

// ---------------------------------------------------------------------------

/// Uniform random choice among applicable algorithms, deterministic per
/// (seed, collective, job).
#[derive(Debug, Clone)]
pub struct RandomSelector {
    pub seed: u64,
}

impl RandomSelector {
    pub fn new(seed: u64) -> Self {
        RandomSelector { seed }
    }
}

impl AlgorithmSelector for RandomSelector {
    fn name(&self) -> &str {
        "random-selection"
    }

    fn select(&self, collective: Collective, job: JobConfig) -> Algorithm {
        let p = job.world_size();
        let candidates = Algorithm::applicable_for(collective, p);
        let mix = self
            .seed
            .wrapping_mul(0x9e3779b97f4a7c15)
            .wrapping_add((job.nodes as u64) << 40)
            .wrapping_add((job.ppn as u64) << 24)
            .wrapping_add(job.msg_size as u64)
            .wrapping_add(collective as u64);
        let mut rng = StdRng::seed_from_u64(mix);
        match candidates.choose(&mut rng) {
            Some(a) => *a,
            // applicable_for never returns an empty set, but stay total.
            None => MvapichDefault.select(collective, job),
        }
    }
}

// ---------------------------------------------------------------------------

/// Exhaustive offline micro-benchmarking: looks the winner up in measured
/// records (nearest grid bucket for off-grid queries). This is the paper's
/// "optimal" reference — unbeatable on-grid by construction, but obtained
/// at the core-hour cost Figs. 1/7 quantify.
#[derive(Debug, Clone)]
pub struct OracleSelector {
    name: String,
    /// (collective, nodes, ppn, msg) -> best algorithm.
    table: HashMap<(Collective, u32, u32, usize), Algorithm>,
}

impl OracleSelector {
    /// Build from measured tuning records (usually
    /// [`pml_clusters::generate_cluster`] output for one cluster).
    pub fn from_records(cluster: &str, records: &[TuningRecord]) -> Self {
        let mut table = HashMap::new();
        for r in records {
            if r.cluster == cluster {
                table.insert((r.collective, r.nodes, r.ppn, r.msg_size), r.best);
            }
        }
        OracleSelector {
            name: format!("oracle-microbenchmark[{cluster}]"),
            table,
        }
    }

    pub fn len(&self) -> usize {
        self.table.len()
    }

    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

impl AlgorithmSelector for OracleSelector {
    fn name(&self) -> &str {
        &self.name
    }

    fn select(&self, collective: Collective, job: JobConfig) -> Algorithm {
        if let Some(&a) = self
            .table
            .get(&(collective, job.nodes, job.ppn, job.msg_size))
        {
            return a;
        }
        // Nearest bucket on the log grid.
        fn lg(x: f64) -> f64 {
            x.max(1.0).log2()
        }
        let best = self
            .table
            .iter()
            .filter(|((c, ..), _)| *c == collective)
            .map(|((_, n, p, m), a)| {
                let d = 4.0 * (lg(*n as f64) - lg(job.nodes as f64)).abs()
                    + 4.0 * (lg(*p as f64) - lg(job.ppn as f64)).abs()
                    + (lg(*m as f64) - lg(job.msg_size as f64)).abs();
                (d, *a)
            })
            .min_by(|a, b| a.0.total_cmp(&b.0))
            .map(|(_, a)| a);
        match best {
            Some(a) => applicable_or_fallback(a, job.world_size()),
            // No measurements for this collective at all: behave like the
            // library default rather than dying mid-benchmark.
            None => MvapichDefault.select(collective, job),
        }
    }
}

// ---------------------------------------------------------------------------

/// The proposed selector: a pre-trained model's tuning-table output.
/// Defined in [`crate::pipeline`]; re-exported here for discoverability.
pub use crate::pipeline::MlSelector;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_respect_applicability() {
        for selector in [&MvapichDefault as &dyn AlgorithmSelector, &OpenMpiDefault] {
            for coll in Collective::ALL {
                for (n, ppn, m) in [(3, 2, 64), (2, 3, 1 << 20), (5, 7, 8192), (1, 2, 1)] {
                    let a = selector.select(coll, JobConfig::new(n, ppn, m));
                    assert!(
                        a.supports(n * ppn),
                        "{} chose {a} for p={}",
                        selector.name(),
                        n * ppn
                    );
                    assert_eq!(a.collective(), coll);
                }
            }
        }
    }

    #[test]
    fn mvapich_thresholds() {
        let s = MvapichDefault;
        let small = s.select(Collective::Alltoall, JobConfig::new(2, 8, 64));
        let large = s.select(Collective::Alltoall, JobConfig::new(2, 8, 1 << 20));
        assert_eq!(small, Algorithm::Alltoall(AlltoallAlgo::Bruck));
        assert_eq!(large, Algorithm::Alltoall(AlltoallAlgo::Pairwise));
    }

    #[test]
    fn defaults_disagree_somewhere() {
        // The two libraries must be distinguishable baselines.
        let a = MvapichDefault;
        let b = OpenMpiDefault;
        let mut differ = false;
        for logm in 0..=20 {
            let job = JobConfig::new(4, 8, 1 << logm);
            for coll in Collective::ALL {
                if a.select(coll, job) != b.select(coll, job) {
                    differ = true;
                }
            }
        }
        assert!(differ);
    }

    #[test]
    fn random_is_deterministic_per_config_but_varies() {
        let s = RandomSelector::new(7);
        let job = JobConfig::new(2, 8, 1024);
        let a1 = s.select(Collective::Alltoall, job);
        let a2 = s.select(Collective::Alltoall, job);
        assert_eq!(a1, a2);
        let mut seen = std::collections::BTreeSet::new();
        for logm in 0..=20 {
            seen.insert(s.select(Collective::Alltoall, JobConfig::new(2, 8, 1 << logm)));
        }
        assert!(seen.len() >= 3, "random selection barely varies: {seen:?}");
    }

    #[test]
    fn oracle_matches_records_and_interpolates() {
        use pml_clusters::{measure_cell, DatagenConfig};
        let e = pml_clusters::by_name("RI").unwrap();
        let recs = vec![
            measure_cell(
                e,
                Collective::Alltoall,
                2,
                4,
                64,
                &DatagenConfig::noiseless(),
            )
            .unwrap(),
            measure_cell(
                e,
                Collective::Alltoall,
                2,
                4,
                65536,
                &DatagenConfig::noiseless(),
            )
            .unwrap(),
        ];
        let o = OracleSelector::from_records("RI", &recs);
        assert_eq!(o.len(), 2);
        assert_eq!(
            o.select(Collective::Alltoall, JobConfig::new(2, 4, 64)),
            recs[0].best
        );
        // Off-grid: nearest bucket.
        assert_eq!(
            o.select(Collective::Alltoall, JobConfig::new(2, 4, 100)),
            recs[0].best
        );
    }

    #[test]
    fn oracle_without_records_falls_back_to_default_rules() {
        let o = OracleSelector::from_records("nowhere", &[]);
        assert!(o.is_empty());
        let job = JobConfig::new(2, 4, 4096);
        for coll in Collective::ALL {
            assert_eq!(o.select(coll, job), MvapichDefault.select(coll, job));
        }
    }

    #[test]
    fn select_batch_matches_per_job_selection() {
        let jobs: Vec<JobConfig> = (0..=16)
            .map(|logm| JobConfig::new(4, 8, 1 << logm))
            .collect();
        for selector in [&MvapichDefault as &dyn AlgorithmSelector, &OpenMpiDefault] {
            let batch = selector.select_batch(Collective::Allgather, &jobs);
            for (a, &j) in batch.iter().zip(&jobs) {
                assert_eq!(*a, selector.select(Collective::Allgather, j));
            }
        }
    }

    #[test]
    fn fallback_rules() {
        assert_eq!(
            applicable_or_fallback(Algorithm::Allgather(AllgatherAlgo::RecursiveDoubling), 6),
            Algorithm::Allgather(AllgatherAlgo::Bruck)
        );
        assert_eq!(
            applicable_or_fallback(Algorithm::Allgather(AllgatherAlgo::NeighborExchange), 7),
            Algorithm::Allgather(AllgatherAlgo::Ring)
        );
        assert_eq!(
            applicable_or_fallback(Algorithm::Alltoall(AlltoallAlgo::RecursiveDoubling), 12),
            Algorithm::Alltoall(AlltoallAlgo::Bruck)
        );
    }
}
