//! The runtime-side tuner facade — the piece an MPI library links.
//!
//! At application startup the library builds one [`Tuner`] from the tuning
//! tables produced at compile time (Fig. 4's JSON artifacts, one per
//! collective). Every collective call then asks the tuner which algorithm
//! to run; lookups are memoized per (collective, job shape, message size),
//! so the steady-state cost is one map probe — the "constant time at
//! application runtime" the paper's title promises.
//!
//! The memo cache is sharded per collective and read-mostly: every shard
//! is an [`RwLock`] over an ordered map, so concurrent callers on the
//! steady-state path take a shared read lock on *different* shards and
//! never serialize behind one global mutex. [`Tuner`] is `Send + Sync` and
//! designed to live in an [`std::sync::Arc`] shared by every serving
//! thread (see `pml-serve`).

use crate::error::PmlError;
use crate::selectors::{applicable_or_fallback, AlgorithmSelector, JobConfig, MvapichDefault};
use crate::tuning_table::TuningTable;
use pml_collectives::{Algorithm, Collective};
use pml_obs::{Counter, Histogram};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

static CACHE_HIT: Counter = Counter::new("tuner.cache.hit");
static CACHE_MISS: Counter = Counter::new("tuner.cache.miss");
/// How far each (uncached) lookup strayed from the pre-computed table —
/// bucketed by [`FallbackDepth`] (0 exact … 3 default rules).
static FALLBACK_DEPTH: Histogram = Histogram::new("table.fallback.depth", &[0, 1, 2, 3]);

/// How a [`Tuner::select`] decision was reached, from best to worst:
/// the lower the depth, the more the pre-trained table was trusted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FallbackDepth {
    /// The queried (nodes, ppn, msg) was an exact grid cell and its
    /// algorithm applied as-is.
    Exact = 0,
    /// Off-grid query resolved to the nearest table bucket.
    NearestBucket = 1,
    /// The table's recommendation was inapplicable at this world size and
    /// a fallback algorithm was substituted.
    Substituted = 2,
    /// No table covers the collective (or no applicable algorithm was
    /// found): the library's static default rules decided.
    DefaultRules = 3,
}

impl FallbackDepth {
    pub fn as_u64(self) -> u64 {
        self as u64
    }
}

/// Memo key within a shard: the job shape (nodes, ppn, msg_size).
type ShardKey = (u32, u32, usize);
/// Memoized decision: the algorithm and how it was reached.
type Decision = (Algorithm, FallbackDepth);

/// One memo shard: the decisions for a single collective, behind a
/// read-mostly lock. Hit/miss tallies are relaxed atomics so the read path
/// never upgrades to a write lock just to count.
#[derive(Debug, Default)]
struct Shard {
    map: RwLock<BTreeMap<ShardKey, Decision>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Shard {
    /// Read view, recovering from a poisoned lock: the map holds plain
    /// lookup results, so a panic in another thread mid-insert cannot
    /// leave it semantically inconsistent — worst case is one lost memo.
    fn read(&self) -> RwLockReadGuard<'_, BTreeMap<ShardKey, Decision>> {
        self.map.read().unwrap_or_else(PoisonError::into_inner)
    }

    fn write(&self) -> RwLockWriteGuard<'_, BTreeMap<ShardKey, Decision>> {
        self.map.write().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Shard index for a collective: its position in [`Collective::ALL`].
fn shard_index(collective: Collective) -> usize {
    match collective {
        Collective::Allgather => 0,
        Collective::Alltoall => 1,
        Collective::Bcast => 2,
        Collective::Allreduce => 3,
    }
}

/// Per-process algorithm selection with memoized tuning-table lookups.
///
/// Thread-safety: the tables are immutable after construction and the memo
/// cache is sharded per collective behind read-mostly locks, so any number
/// of threads may call [`Tuner::select`] concurrently on one shared
/// (`Arc`-wrapped) tuner. Ordered maps throughout: iteration order (e.g.
/// in [`Tuner::covered`] or any future cache dump) is deterministic, never
/// hash-seed dependent.
#[derive(Debug)]
pub struct Tuner {
    tables: BTreeMap<Collective, TuningTable>,
    shards: [Shard; Collective::ALL.len()],
}

impl Tuner {
    /// Build from tuning tables (typically deserialized from the JSON files
    /// next to the MPI library). Collectives without a table fall back to
    /// the library's static default rules.
    pub fn new(tables: impl IntoIterator<Item = TuningTable>) -> Self {
        Tuner {
            tables: tables.into_iter().map(|t| (t.collective, t)).collect(),
            shards: Default::default(),
        }
    }

    /// Load every `*.json` tuning table in a directory, routing each
    /// through the static verifier ([`crate::verify::verify_table`]) — grid
    /// totality, collective consistency, fallback termination. Files that
    /// fail to parse or verify are skipped, not fatal — the warnings list
    /// says which and why (a deployment with one damaged table still serves
    /// the rest).
    pub fn from_dir(dir: &std::path::Path) -> Result<(Self, Vec<String>), PmlError> {
        let io_err = |e: std::io::Error, path: &std::path::Path| PmlError::Io {
            path: path.to_path_buf(),
            source: e,
        };
        let mut tables = Vec::new();
        let mut warnings = Vec::new();
        for entry in std::fs::read_dir(dir).map_err(|e| io_err(e, dir))? {
            let path = entry.map_err(|e| io_err(e, dir))?.path();
            if path.extension().is_some_and(|e| e == "json") {
                let text = std::fs::read_to_string(&path).map_err(|e| io_err(e, &path))?;
                match crate::verify::verify_table_json(&text) {
                    Ok(t) => tables.push(t),
                    Err(e) => warnings.push(format!("skipping table {}: {e}", path.display())),
                }
            }
        }
        Ok((Tuner::new(tables), warnings))
    }

    /// Which collectives have tables loaded.
    pub fn covered(&self) -> Vec<Collective> {
        let mut v: Vec<Collective> = self.tables.keys().copied().collect();
        v.sort();
        v
    }

    /// (cache hits, cache misses) so far, summed over every shard.
    pub fn stats(&self) -> (u64, u64) {
        self.shards.iter().fold((0, 0), |(h, m), s| {
            (
                h + s.hits.load(Ordering::Relaxed),
                m + s.misses.load(Ordering::Relaxed),
            )
        })
    }

    /// Memoized decisions held right now, summed over every shard.
    pub fn cached_decisions(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Pick the algorithm for one collective call.
    pub fn select(&self, collective: Collective, job: JobConfig) -> Algorithm {
        self.select_traced(collective, job).0
    }

    /// Like [`Tuner::select`], but also report how the decision was reached.
    /// The depth is recorded in the `table.fallback.depth` histogram only on
    /// memo-cache misses (a cached hit repeats an already-counted decision);
    /// the returned depth is accurate either way.
    pub fn select_traced(
        &self,
        collective: Collective,
        job: JobConfig,
    ) -> (Algorithm, FallbackDepth) {
        let key = (job.nodes, job.ppn, job.msg_size);
        let shard = &self.shards[shard_index(collective)];
        if let Some(&(a, depth)) = shard.read().get(&key) {
            shard.hits.fetch_add(1, Ordering::Relaxed);
            CACHE_HIT.inc();
            return (a, depth);
        }
        shard.misses.fetch_add(1, Ordering::Relaxed);
        CACHE_MISS.inc();
        let world = job.world_size();
        let mut depth = FallbackDepth::DefaultRules;
        let mut chosen = None;
        if let Some(t) = self.tables.get(&collective) {
            let exact = t.get(job.nodes, job.ppn, job.msg_size as u64);
            let raw = exact.or_else(|| t.lookup(job.nodes, job.ppn, job.msg_size as u64));
            if let Some(a) = raw {
                let applied = applicable_or_fallback(a, world);
                if applied.supports(world) {
                    depth = if applied != a {
                        FallbackDepth::Substituted
                    } else if exact.is_some() {
                        FallbackDepth::Exact
                    } else {
                        FallbackDepth::NearestBucket
                    };
                    chosen = Some(applied);
                }
            }
        }
        let chosen = chosen.unwrap_or_else(|| MvapichDefault.select(collective, job));
        FALLBACK_DEPTH.observe(depth.as_u64());
        // Two threads racing on the same uncached key both compute the same
        // deterministic decision; whichever inserts second overwrites with
        // an identical value, so the memo never flaps.
        shard.write().insert(key, (chosen, depth));
        (chosen, depth)
    }
}

impl AlgorithmSelector for Tuner {
    fn name(&self) -> &str {
        "pml-tuner"
    }

    fn select(&self, collective: Collective, job: JobConfig) -> Algorithm {
        Tuner::select(self, collective, job)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pml_collectives::AlltoallAlgo;

    fn table() -> TuningTable {
        let mut t = TuningTable::new("X", Collective::Alltoall);
        t.insert(2, 8, 64, Algorithm::Alltoall(AlltoallAlgo::Bruck))
            .unwrap();
        t.insert(2, 8, 65536, Algorithm::Alltoall(AlltoallAlgo::Pairwise))
            .unwrap();
        t
    }

    #[test]
    fn table_lookups_are_memoized() {
        let tuner = Tuner::new([table()]);
        let job = JobConfig::new(2, 8, 64);
        let a = tuner.select(Collective::Alltoall, job);
        assert_eq!(a, Algorithm::Alltoall(AlltoallAlgo::Bruck));
        let b = tuner.select(Collective::Alltoall, job);
        assert_eq!(a, b);
        assert_eq!(tuner.stats(), (1, 1));
    }

    #[test]
    fn uncovered_collectives_use_default_rules() {
        let tuner = Tuner::new([table()]);
        let job = JobConfig::new(2, 8, 1024);
        let a = tuner.select(Collective::Allgather, job);
        assert_eq!(a, MvapichDefault.select(Collective::Allgather, job));
        assert_eq!(tuner.covered(), vec![Collective::Alltoall]);
    }

    #[test]
    fn inapplicable_table_entries_fall_back_safely() {
        // Table recommends RD (pow2 only); a 6-rank job must not get it.
        let mut t = TuningTable::new("X", Collective::Alltoall);
        t.insert(
            3,
            2,
            64,
            Algorithm::Alltoall(AlltoallAlgo::RecursiveDoubling),
        )
        .unwrap();
        let tuner = Tuner::new([t]);
        let a = tuner.select(Collective::Alltoall, JobConfig::new(3, 2, 64));
        assert!(a.supports(6));
        assert_eq!(a, Algorithm::Alltoall(AlltoallAlgo::Bruck)); // RD's fallback
    }

    #[test]
    fn directory_loading_roundtrips() {
        let dir = std::env::temp_dir().join(format!("pmltuner-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("aa.json"), table().to_json().unwrap()).unwrap();
        std::fs::write(dir.join("junk.json"), "not json").unwrap();
        let (tuner, warnings) = Tuner::from_dir(&dir).unwrap();
        assert_eq!(tuner.covered(), vec![Collective::Alltoall]);
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].contains("junk.json"), "{warnings:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn off_grid_queries_resolve_by_nearest_bucket() {
        let tuner = Tuner::new([table()]);
        let a = tuner.select(Collective::Alltoall, JobConfig::new(2, 8, 100));
        assert_eq!(a, Algorithm::Alltoall(AlltoallAlgo::Bruck));
    }

    /// An exact grid-cell hit must report fallback depth 0 — the regression
    /// guard for the `table.fallback.depth` metric's base case.
    #[test]
    fn exact_cell_hits_have_zero_fallback_depth() {
        let tuner = Tuner::new([table()]);
        let job = JobConfig::new(2, 8, 64);
        let (a, depth) = tuner.select_traced(Collective::Alltoall, job);
        assert_eq!(a, Algorithm::Alltoall(AlltoallAlgo::Bruck));
        assert_eq!(depth, FallbackDepth::Exact);
        assert_eq!(depth.as_u64(), 0);
        // A memoized repeat reports the same depth.
        assert_eq!(
            tuner.select_traced(Collective::Alltoall, job),
            (a, FallbackDepth::Exact)
        );
    }

    /// The whole point of the sharded cache: a tuner in an `Arc` is usable
    /// from any number of threads. Compile-time guarantee.
    #[test]
    fn tuner_is_send_sync_and_arc_shareable() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<Tuner>();
        assert_send_sync::<std::sync::Arc<Tuner>>();
    }

    #[test]
    fn concurrent_lookups_agree_with_serial_ones() {
        let tuner = std::sync::Arc::new(Tuner::new([table()]));
        let serial = Tuner::new([table()]);
        let jobs: Vec<JobConfig> = (0..64)
            .map(|i| JobConfig::new(1 + i % 5, 1 + i % 7, 1usize << (i % 18)))
            .collect();
        let want: Vec<_> = jobs
            .iter()
            .map(|&j| serial.select_traced(Collective::Alltoall, j))
            .collect();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let tuner = std::sync::Arc::clone(&tuner);
                let jobs = &jobs;
                let want = &want;
                scope.spawn(move || {
                    for (j, w) in jobs.iter().zip(want) {
                        assert_eq!(tuner.select_traced(Collective::Alltoall, *j), *w);
                    }
                });
            }
        });
        // Every decision memoized exactly once; the rest were shard hits.
        let (hits, misses) = tuner.stats();
        assert_eq!(hits + misses, 4 * jobs.len() as u64);
        assert!(tuner.cached_decisions() <= jobs.len());
    }

    #[test]
    fn fallback_depth_grades_by_distance_from_the_table() {
        let tuner = Tuner::new([table()]);
        // Off-grid message size → nearest bucket.
        let (_, d) = tuner.select_traced(Collective::Alltoall, JobConfig::new(2, 8, 100));
        assert_eq!(d, FallbackDepth::NearestBucket);
        // No table for the collective → default rules.
        let (_, d) = tuner.select_traced(Collective::Allgather, JobConfig::new(2, 8, 64));
        assert_eq!(d, FallbackDepth::DefaultRules);
        // Inapplicable recommendation → substituted fallback.
        let mut t = TuningTable::new("X", Collective::Alltoall);
        t.insert(
            3,
            2,
            64,
            Algorithm::Alltoall(AlltoallAlgo::RecursiveDoubling),
        )
        .unwrap();
        let tuner = Tuner::new([t]);
        let (a, d) = tuner.select_traced(Collective::Alltoall, JobConfig::new(3, 2, 64));
        assert_eq!(d, FallbackDepth::Substituted);
        assert!(a.supports(6));
    }
}
