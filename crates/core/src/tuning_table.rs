//! Tuning tables — the JSON artifact the online-inference stage emits
//! (Fig. 4) and the MPI library reads at application runtime.
//!
//! A table maps (#nodes, PPN, message size) to the algorithm to use. Lookup
//! is total: query points that fall between grid entries resolve to the
//! geometrically nearest bucket (message sizes and node counts live on
//! log-scale grids).

use crate::error::PmlError;
use pml_collectives::{Algorithm, Collective};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One tuning-table row.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TableEntry {
    pub nodes: u32,
    pub ppn: u32,
    pub msg_size: u64,
    pub algorithm: Algorithm,
}

/// A per-(cluster, collective) tuning table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuningTable {
    pub cluster: String,
    pub collective: Collective,
    entries: Vec<TableEntry>,
}

impl TuningTable {
    pub fn new(cluster: impl Into<String>, collective: Collective) -> Self {
        TuningTable {
            cluster: cluster.into(),
            collective,
            entries: Vec::new(),
        }
    }

    /// Insert or replace the entry for a grid point. Rejects algorithms of
    /// a different collective than the table's.
    pub fn insert(
        &mut self,
        nodes: u32,
        ppn: u32,
        msg_size: u64,
        algorithm: Algorithm,
    ) -> Result<(), PmlError> {
        if algorithm.collective() != self.collective {
            return Err(PmlError::CrossCollective {
                expected: self.collective,
                got: algorithm.collective(),
            });
        }
        match self
            .entries
            .iter_mut()
            .find(|e| e.nodes == nodes && e.ppn == ppn && e.msg_size == msg_size)
        {
            Some(e) => e.algorithm = algorithm,
            None => self.entries.push(TableEntry {
                nodes,
                ppn,
                msg_size,
                algorithm,
            }),
        }
        Ok(())
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn entries(&self) -> &[TableEntry] {
        &self.entries
    }

    /// Exact-match lookup.
    pub fn get(&self, nodes: u32, ppn: u32, msg_size: u64) -> Option<Algorithm> {
        self.entries
            .iter()
            .find(|e| e.nodes == nodes && e.ppn == ppn && e.msg_size == msg_size)
            .map(|e| e.algorithm)
    }

    /// Nearest-bucket lookup: log-scale distance over (nodes, ppn, msg),
    /// with the job-shape dimensions weighted above message size so a query
    /// never jumps to a different machine scale just to match a size.
    /// Returns `None` only for an empty table.
    pub fn lookup(&self, nodes: u32, ppn: u32, msg_size: u64) -> Option<Algorithm> {
        fn lg(x: f64) -> f64 {
            x.max(1.0).log2()
        }
        self.entries
            .iter()
            .map(|e| {
                let d = 4.0 * (lg(e.nodes as f64) - lg(nodes as f64)).abs()
                    + 4.0 * (lg(e.ppn as f64) - lg(ppn as f64)).abs()
                    + (lg(e.msg_size as f64) - lg(msg_size as f64)).abs();
                (d, e)
            })
            .min_by(|a, b| a.0.total_cmp(&b.0))
            .map(|(_, e)| e.algorithm)
    }

    /// Serialize to the JSON wire format stored next to the MPI library.
    pub fn to_json(&self) -> Result<String, PmlError> {
        Ok(serde_json::to_string_pretty(self)?)
    }

    /// Parse and validate the JSON wire format: every entry's algorithm
    /// must belong to the table's collective.
    pub fn from_json(s: &str) -> Result<Self, PmlError> {
        let table: TuningTable = serde_json::from_str(s)?;
        if let Some(bad) = table
            .entries
            .iter()
            .find(|e| e.algorithm.collective() != table.collective)
        {
            return Err(PmlError::CrossCollective {
                expected: table.collective,
                got: bad.algorithm.collective(),
            });
        }
        Ok(table)
    }

    /// Sort entries for stable output (nodes, ppn, msg).
    pub fn normalize(&mut self) {
        self.entries.sort_by_key(|e| (e.nodes, e.ppn, e.msg_size));
    }
}

/// The compile-time table cache of Fig. 4: "the framework examines whether
/// a tuning table for the current cluster exists … if present, bypasses the
/// ML tuning process."
#[derive(Debug, Default, Clone)]
pub struct TableStore {
    tables: BTreeMap<(String, Collective), TuningTable>,
}

impl TableStore {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn contains(&self, cluster: &str, collective: Collective) -> bool {
        self.tables.contains_key(&(cluster.to_string(), collective))
    }

    pub fn get(&self, cluster: &str, collective: Collective) -> Option<&TuningTable> {
        self.tables.get(&(cluster.to_string(), collective))
    }

    pub fn put(&mut self, table: TuningTable) {
        self.tables
            .insert((table.cluster.clone(), table.collective), table);
    }

    /// Fetch the cached table or build one with `make` and cache it.
    /// Returns (table, was_cached).
    pub fn get_or_insert_with(
        &mut self,
        cluster: &str,
        collective: Collective,
        make: impl FnOnce() -> TuningTable,
    ) -> (&TuningTable, bool) {
        let key = (cluster.to_string(), collective);
        let cached = self.tables.contains_key(&key);
        let t = self.tables.entry(key).or_insert_with(make);
        (t, cached)
    }

    pub fn len(&self) -> usize {
        self.tables.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pml_collectives::{AllgatherAlgo, AlltoallAlgo};

    fn table() -> TuningTable {
        let mut t = TuningTable::new("X", Collective::Alltoall);
        t.insert(2, 8, 64, Algorithm::Alltoall(AlltoallAlgo::Bruck))
            .unwrap();
        t.insert(2, 8, 65536, Algorithm::Alltoall(AlltoallAlgo::Pairwise))
            .unwrap();
        t.insert(16, 8, 64, Algorithm::Alltoall(AlltoallAlgo::ScatterDest))
            .unwrap();
        t
    }

    #[test]
    fn exact_and_nearest_lookup() {
        let t = table();
        assert_eq!(
            t.get(2, 8, 64),
            Some(Algorithm::Alltoall(AlltoallAlgo::Bruck))
        );
        assert_eq!(t.get(2, 8, 100), None);
        // 100 bytes is nearest to the 64-byte bucket at the same shape.
        assert_eq!(
            t.lookup(2, 8, 100),
            Some(Algorithm::Alltoall(AlltoallAlgo::Bruck))
        );
        // Shape dominates: a 16-node query at small size picks the 16-node row.
        assert_eq!(
            t.lookup(16, 8, 256),
            Some(Algorithm::Alltoall(AlltoallAlgo::ScatterDest))
        );
    }

    #[test]
    fn insert_replaces() {
        let mut t = table();
        t.insert(2, 8, 64, Algorithm::Alltoall(AlltoallAlgo::Inplace))
            .unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(
            t.get(2, 8, 64),
            Some(Algorithm::Alltoall(AlltoallAlgo::Inplace))
        );
    }

    #[test]
    fn cross_collective_insert_rejected() {
        let mut t = table();
        let err = t
            .insert(1, 1, 1, Algorithm::Allgather(AllgatherAlgo::Ring))
            .unwrap_err();
        assert!(err.to_string().contains("collective mismatch"), "{err}");
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn cross_collective_json_rejected() {
        // A table whose declared collective disagrees with its entries must
        // not deserialize into an inconsistent value.
        let mut t = table();
        t.normalize();
        let json = t
            .to_json()
            .unwrap()
            .replace("\"Alltoall\",", "\"Allgather\",");
        assert_ne!(json, t.to_json().unwrap(), "collective field not found");
        assert!(TuningTable::from_json(&json).is_err());
    }

    #[test]
    fn json_roundtrip() {
        let mut t = table();
        t.normalize();
        let back = TuningTable::from_json(&t.to_json().unwrap()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn empty_table_lookup_is_none() {
        let t = TuningTable::new("X", Collective::Allgather);
        assert_eq!(t.lookup(1, 1, 1), None);
    }

    #[test]
    fn store_caches() {
        let mut store = TableStore::new();
        assert!(!store.contains("X", Collective::Alltoall));
        let (_, cached) = store.get_or_insert_with("X", Collective::Alltoall, table);
        assert!(!cached);
        let (_, cached) = store.get_or_insert_with("X", Collective::Alltoall, || {
            panic!("must not rebuild a cached table")
        });
        assert!(cached);
        assert_eq!(store.len(), 1);
    }
}
