//! pml-verify: static structural verification of shipped artifacts.
//!
//! The deployment story ships two JSON artifacts to clusters the trainer
//! never sees — a pre-trained model and the tuning tables generated from
//! it — and the MPI library consumes them blindly at startup. This module
//! proves their well-formedness *without executing them*: no descent, no
//! lookup, no inference. Checks:
//!
//! * **Models** — every tree's SoA store is well-formed (children
//!   in-bounds, parent-before-child order ⇒ acyclic, contiguous leaf
//!   arena, leaf sentinel slots zeroed, per-leaf probability simplex
//!   within 1e-6; see `pml_mlcore::verify`), ensemble metadata is
//!   consistent (class/feature counts, selected-feature indices, bin
//!   budget), and every class index maps to a real [`Algorithm`] of the
//!   model's collective. v1 artifacts are migrated during parse, so this
//!   pass doubles as the post-migration re-check.
//! * **Tuning tables** — every entry's algorithm belongs to the table's
//!   collective, the (nodes × ppn × msg) grid is total (no missing or
//!   duplicate cells), and the static fallback chain terminates in an
//!   algorithm applicable at each cell's world size.
//! * **Binned matrices** — strictly increasing bin edges, codes within
//!   the ≤ 256-bin u8 budget (see `BinnedMatrix::verify`).
//!
//! Every failure is a typed [`VerifyError`] carrying the artifact path.
//! [`crate::PretrainedModel::from_json`] and [`crate::Tuner::from_dir`]
//! route through this module, so corrupt inputs degrade into errors (or
//! skip-warnings) instead of indexing out of bounds mid-collective.

use crate::features::N_FEATURES;
use crate::pipeline::PretrainedModel;
use crate::selectors::{applicable_or_fallback, AlgorithmSelector, JobConfig, MvapichDefault};
use crate::tuning_table::TuningTable;
use pml_collectives::{Algorithm, Collective};
use pml_mlcore::{BinnedMatrix, ForestIssue, StructureIssue};
use pml_obs::Counter;
use std::fmt;
use std::path::Path;

/// Artifacts rejected by the structural verifier (any entry point).
static VERIFY_ERRORS: Counter = Counter::new("verify.errors");
/// Artifacts accepted by the structural verifier (any entry point).
static VERIFY_PASSED: Counter = Counter::new("verify.passed");

/// What kind of artifact a verified file turned out to hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactKind {
    Model,
    TuningTable,
    BinnedMatrix,
}

impl fmt::Display for ArtifactKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactKind::Model => write!(f, "model"),
            ArtifactKind::TuningTable => write!(f, "tuning table"),
            ArtifactKind::BinnedMatrix => write!(f, "binned matrix"),
        }
    }
}

/// Why an artifact failed verification.
#[derive(Debug, Clone, PartialEq)]
pub enum VerifyErrorKind {
    /// The bytes never parsed into the artifact's schema.
    Malformed(String),
    /// A structural violation inside tree `tree` of the model's forest.
    Tree { tree: usize, issue: StructureIssue },
    /// An ensemble-level violation of the model's forest.
    Forest(StructureIssue),
    /// A violation of a binned matrix's metadata.
    Binned(StructureIssue),
    /// Model metadata inconsistent with the feature schema.
    Model(String),
    /// A model class index with no corresponding algorithm.
    UnknownClass { class: usize, n_algorithms: usize },
    /// A tuning table with no entries cannot answer any query.
    EmptyTable,
    /// Two table entries for the same grid cell.
    DuplicateCell { nodes: u32, ppn: u32, msg_size: u64 },
    /// A grid cell missing from the node×ppn×msg cross product.
    IncompleteGrid { nodes: u32, ppn: u32, msg_size: u64 },
    /// A table entry's algorithm belongs to a different collective.
    CrossCollective {
        expected: Collective,
        got: Collective,
    },
    /// The static fallback chain cannot reach an applicable algorithm
    /// for this cell.
    FallbackStuck {
        nodes: u32,
        ppn: u32,
        algorithm: Algorithm,
    },
    /// The JSON parsed but matches no known artifact schema.
    UnrecognizedArtifact,
}

impl fmt::Display for VerifyErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyErrorKind::Malformed(e) => write!(f, "malformed artifact: {e}"),
            VerifyErrorKind::Tree { tree, issue } => write!(f, "forest tree {tree}: {issue}"),
            VerifyErrorKind::Forest(issue) => write!(f, "forest: {issue}"),
            VerifyErrorKind::Binned(issue) => write!(f, "binned matrix: {issue}"),
            VerifyErrorKind::Model(why) => write!(f, "model metadata: {why}"),
            VerifyErrorKind::UnknownClass {
                class,
                n_algorithms,
            } => write!(
                f,
                "class {class} has no algorithm (collective defines {n_algorithms})"
            ),
            VerifyErrorKind::EmptyTable => write!(f, "tuning table has no entries"),
            VerifyErrorKind::DuplicateCell {
                nodes,
                ppn,
                msg_size,
            } => write!(
                f,
                "duplicate tuning-table cell ({nodes} nodes, ppn {ppn}, {msg_size} B)"
            ),
            VerifyErrorKind::IncompleteGrid {
                nodes,
                ppn,
                msg_size,
            } => write!(
                f,
                "tuning-table grid missing cell ({nodes} nodes, ppn {ppn}, {msg_size} B)"
            ),
            VerifyErrorKind::CrossCollective { expected, got } => {
                write!(f, "entry for {got} in a {expected} table")
            }
            VerifyErrorKind::FallbackStuck {
                nodes,
                ppn,
                algorithm,
            } => write!(
                f,
                "fallback chain from {algorithm} cannot reach an applicable \
                 algorithm at {nodes} nodes × ppn {ppn}"
            ),
            VerifyErrorKind::UnrecognizedArtifact => {
                write!(f, "JSON matches no known artifact schema")
            }
        }
    }
}

impl std::error::Error for VerifyErrorKind {}

/// A [`VerifyErrorKind`] located at an artifact path (or `<memory>` for
/// artifacts verified before they ever touch disk).
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyError {
    pub artifact: String,
    pub kind: VerifyErrorKind,
}

impl VerifyError {
    pub fn new(artifact: impl Into<String>, kind: VerifyErrorKind) -> Self {
        VerifyError {
            artifact: artifact.into(),
            kind,
        }
    }

    /// Locate an error in an artifact that only exists in memory.
    pub fn inline(kind: VerifyErrorKind) -> Self {
        VerifyError::new("<memory>", kind)
    }
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.artifact == "<memory>" {
            // The caller already names the source (e.g. the file it read
            // the JSON from); a placeholder location would only add noise.
            self.kind.fmt(f)
        } else {
            write!(f, "{}: {}", self.artifact, self.kind)
        }
    }
}

impl std::error::Error for VerifyError {}

fn forest_issue(e: ForestIssue) -> VerifyErrorKind {
    match e.tree {
        Some(tree) => VerifyErrorKind::Tree {
            tree,
            issue: e.issue,
        },
        None => VerifyErrorKind::Forest(e.issue),
    }
}

/// Structurally verify a parsed model. Since v1 artifacts are migrated to
/// the SoA layout inside deserialization, running this after parse is
/// exactly the post-migration re-check: the migrated topology has to
/// satisfy the same invariants as a natively written v2 artifact.
pub fn verify_model(model: &PretrainedModel) -> Result<(), VerifyErrorKind> {
    let forest = model.forest();
    forest.verify().map_err(forest_issue)?;
    let selected = model.selected_features();
    if selected.len() != forest.n_features() {
        return Err(VerifyErrorKind::Model(format!(
            "{} selected features but the forest consumes {}",
            selected.len(),
            forest.n_features()
        )));
    }
    for w in selected.windows(2) {
        if w[0] >= w[1] {
            return Err(VerifyErrorKind::Model(format!(
                "selected features must be strictly increasing, got {} then {}",
                w[0], w[1]
            )));
        }
    }
    if let Some(&bad) = selected.iter().find(|&&i| i >= N_FEATURES) {
        return Err(VerifyErrorKind::Model(format!(
            "selected feature {bad} out of range (schema has {N_FEATURES})"
        )));
    }
    if model.full_importances().len() != N_FEATURES {
        return Err(VerifyErrorKind::Model(format!(
            "{} full importances, schema has {N_FEATURES}",
            model.full_importances().len()
        )));
    }
    let n_algorithms = model.collective.algo_count();
    for class in 0..forest.n_classes() {
        if Algorithm::from_index(model.collective, class).is_none() {
            return Err(VerifyErrorKind::UnknownClass {
                class,
                n_algorithms,
            });
        }
    }
    Ok(())
}

/// Verify a tuning table: collective consistency, grid totality (every
/// node×ppn×msg cross-product cell present exactly once), and fallback
/// termination — each cell's algorithm must reach something applicable at
/// that cell's world size through the static fallback chain.
pub fn verify_table(table: &TuningTable) -> Result<(), VerifyErrorKind> {
    if table.is_empty() {
        return Err(VerifyErrorKind::EmptyTable);
    }
    let mut nodes_axis = Vec::new();
    let mut ppn_axis = Vec::new();
    let mut msg_axis = Vec::new();
    let mut cells = std::collections::BTreeSet::new();
    for e in table.entries() {
        if e.algorithm.collective() != table.collective {
            return Err(VerifyErrorKind::CrossCollective {
                expected: table.collective,
                got: e.algorithm.collective(),
            });
        }
        if e.nodes == 0 || e.ppn == 0 {
            return Err(VerifyErrorKind::Malformed(format!(
                "cell ({}, {}, {}) has a zero dimension",
                e.nodes, e.ppn, e.msg_size
            )));
        }
        if (e.nodes as u64) * (e.ppn as u64) > u32::MAX as u64 {
            return Err(VerifyErrorKind::Malformed(format!(
                "cell ({}, {}, {}) world size overflows u32",
                e.nodes, e.ppn, e.msg_size
            )));
        }
        if !cells.insert((e.nodes, e.ppn, e.msg_size)) {
            return Err(VerifyErrorKind::DuplicateCell {
                nodes: e.nodes,
                ppn: e.ppn,
                msg_size: e.msg_size,
            });
        }
        nodes_axis.push(e.nodes);
        ppn_axis.push(e.ppn);
        msg_axis.push(e.msg_size);
    }
    nodes_axis.sort_unstable();
    nodes_axis.dedup();
    ppn_axis.sort_unstable();
    ppn_axis.dedup();
    msg_axis.sort_unstable();
    msg_axis.dedup();
    for &n in &nodes_axis {
        for &p in &ppn_axis {
            for &m in &msg_axis {
                if !cells.contains(&(n, p, m)) {
                    return Err(VerifyErrorKind::IncompleteGrid {
                        nodes: n,
                        ppn: p,
                        msg_size: m,
                    });
                }
            }
        }
    }
    for e in table.entries() {
        let world = e.nodes * e.ppn;
        let job = JobConfig::new(e.nodes, e.ppn, e.msg_size as usize);
        let mut algo = applicable_or_fallback(e.algorithm, world);
        if !algo.supports(world) {
            algo = MvapichDefault.select(table.collective, job);
        }
        if !algo.supports(world) || algo.collective() != table.collective {
            return Err(VerifyErrorKind::FallbackStuck {
                nodes: e.nodes,
                ppn: e.ppn,
                algorithm: e.algorithm,
            });
        }
    }
    Ok(())
}

/// Verify a binned matrix's metadata (edges, codes, bin budget).
pub fn verify_binned(b: &BinnedMatrix) -> Result<(), VerifyErrorKind> {
    b.verify().map_err(VerifyErrorKind::Binned)
}

/// Parse and verify a model artifact from JSON.
pub fn verify_model_json(s: &str) -> Result<PretrainedModel, VerifyErrorKind> {
    let model: PretrainedModel =
        serde_json::from_str(s).map_err(|e| VerifyErrorKind::Malformed(e.to_string()))?;
    verify_model(&model)?;
    Ok(model)
}

/// Parse and verify a tuning-table artifact from JSON.
pub fn verify_table_json(s: &str) -> Result<TuningTable, VerifyErrorKind> {
    let table: TuningTable =
        serde_json::from_str(s).map_err(|e| VerifyErrorKind::Malformed(e.to_string()))?;
    verify_table(&table)?;
    Ok(table)
}

/// Parse and verify a binned-matrix artifact from JSON.
pub fn verify_binned_json(s: &str) -> Result<BinnedMatrix, VerifyErrorKind> {
    let b: BinnedMatrix =
        serde_json::from_str(s).map_err(|e| VerifyErrorKind::Malformed(e.to_string()))?;
    verify_binned(&b)?;
    Ok(b)
}

/// Sniff the artifact kind from the document's top-level keys and run the
/// matching verifier — the engine behind `pml verify <path>`.
pub fn verify_artifact_str(s: &str) -> Result<ArtifactKind, VerifyErrorKind> {
    let sniff = || -> Result<ArtifactKind, VerifyErrorKind> {
        let value: serde_json::JsonValue =
            serde_json::from_str(s).map_err(|e| VerifyErrorKind::Malformed(e.to_string()))?;
        let Some(pairs) = value.as_object() else {
            return Err(VerifyErrorKind::UnrecognizedArtifact);
        };
        let has = |key: &str| pairs.iter().any(|(k, _)| k == key);
        if has("forest") && has("collective") {
            verify_model_json(s).map(|_| ArtifactKind::Model)
        } else if has("entries") && has("cluster") {
            verify_table_json(s).map(|_| ArtifactKind::TuningTable)
        } else if has("codes") && has("edges") {
            verify_binned_json(s).map(|_| ArtifactKind::BinnedMatrix)
        } else {
            Err(VerifyErrorKind::UnrecognizedArtifact)
        }
    };
    let out = sniff();
    match &out {
        Ok(_) => VERIFY_PASSED.inc(),
        Err(_) => VERIFY_ERRORS.inc(),
    }
    out
}

/// Read, sniff, and verify an artifact file, locating any failure at its
/// path.
pub fn verify_artifact_file(path: &Path) -> Result<ArtifactKind, VerifyError> {
    let located = |kind| VerifyError::new(path.display().to_string(), kind);
    let text = std::fs::read_to_string(path)
        .map_err(|e| located(VerifyErrorKind::Malformed(format!("read failed: {e}"))))?;
    verify_artifact_str(&text).map_err(located)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pml_collectives::AlltoallAlgo;

    fn total_table() -> TuningTable {
        let mut t = TuningTable::new("X", Collective::Alltoall);
        for (n, p, m, a) in [
            (2, 8, 64, AlltoallAlgo::Bruck),
            (2, 8, 65536, AlltoallAlgo::Pairwise),
            (16, 8, 64, AlltoallAlgo::ScatterDest),
            (16, 8, 65536, AlltoallAlgo::Pairwise),
        ] {
            t.insert(n, p, m, Algorithm::Alltoall(a)).unwrap();
        }
        t
    }

    /// Mutate one field of a table's JSON document tree.
    fn mutate_json(
        t: &TuningTable,
        f: impl FnOnce(&mut Vec<(String, serde_json::JsonValue)>),
    ) -> String {
        let text = serde_json::to_string(t).unwrap();
        let mut v: serde_json::JsonValue = serde_json::from_str(&text).unwrap();
        match &mut v {
            serde_json::JsonValue::Object(pairs) => f(pairs),
            other => panic!("table serialized as non-object: {other:?}"),
        }
        serde_json::to_string(&v).unwrap()
    }

    #[test]
    fn total_table_verifies() {
        assert_eq!(verify_table(&total_table()), Ok(()));
    }

    #[test]
    fn empty_table_rejected() {
        let t = TuningTable::new("X", Collective::Alltoall);
        assert_eq!(verify_table(&t), Err(VerifyErrorKind::EmptyTable));
    }

    #[test]
    fn incomplete_grid_rejected() {
        let mut t = TuningTable::new("X", Collective::Alltoall);
        for (n, p, m) in [(2, 8, 64), (2, 8, 65536), (16, 8, 64)] {
            t.insert(n, p, m, Algorithm::Alltoall(AlltoallAlgo::Bruck))
                .unwrap();
        }
        assert_eq!(
            verify_table(&t),
            Err(VerifyErrorKind::IncompleteGrid {
                nodes: 16,
                ppn: 8,
                msg_size: 65536,
            })
        );
    }

    #[test]
    fn zero_dimension_rejected() {
        let mut t = TuningTable::new("X", Collective::Alltoall);
        t.insert(0, 8, 64, Algorithm::Alltoall(AlltoallAlgo::Bruck))
            .unwrap();
        assert!(matches!(
            verify_table(&t),
            Err(VerifyErrorKind::Malformed(_))
        ));
    }

    #[test]
    fn duplicate_cell_rejected_from_json() {
        let json = mutate_json(&total_table(), |pairs| {
            for (k, v) in pairs {
                if k == "entries" {
                    if let serde_json::JsonValue::Array(items) = v {
                        let first = items[0].clone();
                        items.push(first);
                    }
                }
            }
        });
        assert!(matches!(
            verify_table_json(&json),
            Err(VerifyErrorKind::DuplicateCell {
                nodes: 2,
                ppn: 8,
                msg_size: 64
            })
        ));
    }

    #[test]
    fn cross_collective_rejected_from_json() {
        // Flip the table-level collective; the Alltoall entries no longer
        // belong. verify_table_json parses with plain serde, so this must be
        // caught by the verifier itself.
        let json = mutate_json(&total_table(), |pairs| {
            for (k, v) in pairs {
                if k == "collective" {
                    *v = serde_json::JsonValue::Str("Allgather".into());
                }
            }
        });
        assert_eq!(
            verify_table_json(&json).unwrap_err(),
            VerifyErrorKind::CrossCollective {
                expected: Collective::Allgather,
                got: Collective::Alltoall,
            }
        );
    }

    #[test]
    fn artifact_sniffing() {
        let table_json = serde_json::to_string(&total_table()).unwrap();
        assert_eq!(
            verify_artifact_str(&table_json),
            Ok(ArtifactKind::TuningTable)
        );
        assert!(matches!(
            verify_artifact_str("{\"a\": 1}"),
            Err(VerifyErrorKind::UnrecognizedArtifact)
        ));
        assert!(matches!(
            verify_artifact_str("[1, 2]"),
            Err(VerifyErrorKind::UnrecognizedArtifact)
        ));
        assert!(matches!(
            verify_artifact_str("{nope"),
            Err(VerifyErrorKind::Malformed(_))
        ));
    }
}
