//! Histogram binning for tree training (LightGBM-style split finding).
//!
//! [`BinnedMatrix`] quantizes each feature column once per fit into at most
//! 256 bins (`u8` codes, stored column-major), so a tree node can evaluate
//! every candidate split of a feature from one O(n) histogram pass instead
//! of an O(n log n) re-sort. When a column has no more distinct values than
//! bins — always true for this project's log₂-style features — the bin
//! edges are the midpoints between adjacent distinct values, and binned
//! split finding is *exactly* equivalent to the sort-based search (the
//! property tests in `tree.rs` pin this down). Denser columns fall back to
//! equal-frequency (quantile) bins.

use crate::matrix::Matrix;
use crate::verify::StructureIssue;
use serde::{DeError, Deserialize, Serialize, Value};

/// Which split-finding kernel tree growth uses at every node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitFinder {
    /// Sort every candidate column at every node — the original kernel,
    /// kept as the reference implementation and benchmark baseline.
    Exact,
    /// Accumulate per-bin histograms over pre-quantized columns.
    Hist {
        /// Bin budget per feature, clamped to `2..=256` (`u8` codes).
        max_bins: u16,
    },
}

impl Default for SplitFinder {
    fn default() -> Self {
        SplitFinder::Hist { max_bins: 256 }
    }
}

// Externally tagged, matching what the derive macro would emit — plus
// `Null → default`, so `ForestParams` artifacts written before this field
// existed still deserialize.
impl Serialize for SplitFinder {
    fn to_value(&self) -> Value {
        match *self {
            SplitFinder::Exact => Value::Str("Exact".to_string()),
            SplitFinder::Hist { max_bins } => Value::Object(vec![(
                "Hist".to_string(),
                Value::Object(vec![("max_bins".to_string(), max_bins.to_value())]),
            )]),
        }
    }
}

impl Deserialize for SplitFinder {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(SplitFinder::default()),
            Value::Str(s) if s == "Exact" => Ok(SplitFinder::Exact),
            Value::Object(pairs) => match pairs.first() {
                Some((tag, body)) if tag == "Hist" && pairs.len() == 1 => {
                    let fields = body
                        .as_object()
                        .ok_or_else(|| DeError::expected("Hist variant body", body))?;
                    let max_bins: u16 = serde::__get_field(fields, "max_bins")?;
                    Ok(SplitFinder::Hist { max_bins })
                }
                _ => Err(DeError::expected("SplitFinder variant", v)),
            },
            other => Err(DeError::expected("SplitFinder variant", other)),
        }
    }
}

/// A feature matrix quantized for histogram split finding: one `u8` code
/// per (row, feature), laid out column-major so a node's histogram pass
/// streams one contiguous column, plus the real-valued bin edges so the
/// trained tree predicts directly on raw feature rows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinnedMatrix {
    /// Column-major codes: `codes[f * rows + i]` is row `i`, feature `f`.
    codes: Vec<u8>,
    rows: usize,
    cols: usize,
    /// Per feature, the ascending split thresholds between adjacent bins
    /// (`n_bins = edges.len() + 1`). A value `v` lands in bin `b` iff
    /// `edges[b-1] < v <= edges[b]`, so `code <= b ⇔ v <= edges[b]` — the
    /// same left-closed convention as tree descent.
    edges: Vec<Vec<f64>>,
}

fn midpoint(a: f64, b: f64) -> f64 {
    0.5 * (a + b)
}

impl BinnedMatrix {
    /// Quantize every column of `x` into at most `max_bins` bins
    /// (clamped to `2..=256`).
    pub fn from_matrix(x: &Matrix, max_bins: u16) -> Self {
        let rows = x.rows();
        let cols = x.cols();
        let max_bins = (max_bins as usize).clamp(2, 256);
        let mut codes = vec![0u8; rows * cols];
        let mut edges = Vec::with_capacity(cols);
        let mut vals: Vec<f64> = Vec::with_capacity(rows);
        for f in 0..cols {
            vals.clear();
            vals.extend((0..rows).map(|i| x.get(i, f)));
            vals.sort_by(f64::total_cmp);
            // Runs of the sorted column: (distinct value, multiplicity).
            let mut distinct: Vec<(f64, usize)> = Vec::new();
            for &v in &vals {
                match distinct.last_mut() {
                    Some((d, c)) if *d == v || (d.is_nan() && v.is_nan()) => *c += 1,
                    _ => distinct.push((v, 1)),
                }
            }
            let col_edges: Vec<f64> = if distinct.len() <= max_bins {
                // Lossless: one bin per distinct value, edges at midpoints —
                // identical candidate splits to the exact sort-based search.
                distinct
                    .windows(2)
                    .map(|w| midpoint(w[0].0, w[1].0))
                    .collect()
            } else {
                // Equal-frequency: close a bin at the first value change
                // after ~rows/max_bins samples.
                let target = rows.div_ceil(max_bins).max(1);
                let mut acc = 0usize;
                let mut e = Vec::with_capacity(max_bins - 1);
                for w in distinct.windows(2) {
                    acc += w[0].1;
                    if acc >= target {
                        e.push(midpoint(w[0].0, w[1].0));
                        acc = 0;
                        if e.len() == max_bins - 1 {
                            break;
                        }
                    }
                }
                e
            };
            let col = &mut codes[f * rows..(f + 1) * rows];
            for (i, slot) in col.iter_mut().enumerate() {
                let v = x.get(i, f);
                *slot = col_edges.partition_point(|&e| v > e) as u8;
            }
            edges.push(col_edges);
        }
        BinnedMatrix {
            codes,
            rows,
            cols,
            edges,
        }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of bins for feature `f` (at least 1; 1 means unsplittable).
    pub fn n_bins(&self, f: usize) -> usize {
        self.edges[f].len() + 1
    }

    /// The code column for feature `f`, indexed by row.
    pub fn column(&self, f: usize) -> &[u8] {
        &self.codes[f * self.rows..(f + 1) * self.rows]
    }

    /// Real-valued split threshold between bins `bin` and `bin + 1` of
    /// feature `f`: rows with `code <= bin` satisfy `value <= threshold`.
    pub fn threshold(&self, f: usize, bin: usize) -> f64 {
        self.edges[f][bin]
    }

    /// Assemble a binned matrix from its parts, verifying the metadata —
    /// the trust-boundary counterpart of [`BinnedMatrix::from_matrix`].
    pub fn from_parts(
        codes: Vec<u8>,
        rows: usize,
        cols: usize,
        edges: Vec<Vec<f64>>,
    ) -> Result<Self, StructureIssue> {
        let b = BinnedMatrix {
            codes,
            rows,
            cols,
            edges,
        };
        b.verify()?;
        Ok(b)
    }

    /// Prove the binned-matrix invariants: code and edge arrays match the
    /// declared shape, every per-feature edge list is strictly increasing
    /// and within the 256-bin u8 budget, and every code addresses an
    /// existing bin. Histogram kernels index bins without rechecking, so
    /// this must pass before a deserialized binning is trained on.
    pub fn verify(&self) -> Result<(), StructureIssue> {
        if self.codes.len() != self.rows * self.cols || self.edges.len() != self.cols {
            return Err(StructureIssue::Shape(format!(
                "{}x{} matrix with {} codes and {} edge lists",
                self.rows,
                self.cols,
                self.codes.len(),
                self.edges.len()
            )));
        }
        for (f, col_edges) in self.edges.iter().enumerate() {
            if col_edges.len() + 1 > 256 {
                return Err(StructureIssue::BinBudget {
                    n_bins: col_edges.len() + 1,
                });
            }
            for (i, w) in col_edges.windows(2).enumerate() {
                // NaN edges fail too: thresholds must be comparable.
                if w[0].is_nan() || w[1].is_nan() || w[0] >= w[1] {
                    return Err(StructureIssue::BinEdgesNotIncreasing {
                        feature: f,
                        index: i + 1,
                    });
                }
            }
            let n_bins = col_edges.len() + 1;
            for (row, &code) in self.column(f).iter().enumerate() {
                if code as usize >= n_bins {
                    return Err(StructureIssue::BinCodeOutOfRange {
                        feature: f,
                        row,
                        code,
                        n_bins,
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn column(vals: &[f64]) -> Matrix {
        Matrix::from_rows(vals.iter().map(|&v| [v]).collect::<Vec<_>>())
    }

    #[test]
    fn lossless_binning_preserves_value_identity() {
        let x = column(&[3.0, 1.0, 2.0, 1.0, 3.0, 2.0]);
        let b = BinnedMatrix::from_matrix(&x, 256);
        assert_eq!(b.n_bins(0), 3);
        let codes = b.column(0);
        // Equal values share a code; order follows value order.
        assert_eq!(codes, &[2, 0, 1, 0, 2, 1]);
    }

    #[test]
    fn codes_consistent_with_thresholds() {
        let x = column(&[0.5, 1.5, 2.5, 3.5, 10.0]);
        let b = BinnedMatrix::from_matrix(&x, 256);
        for bin in 0..b.n_bins(0) - 1 {
            let t = b.threshold(0, bin);
            for (i, &code) in b.column(0).iter().enumerate() {
                let v = x.get(i, 0);
                assert_eq!(v <= t, (code as usize) <= bin, "v={v} t={t} code={code}");
            }
        }
    }

    #[test]
    fn quantile_path_respects_bin_budget() {
        let vals: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let x = column(&vals);
        let b = BinnedMatrix::from_matrix(&x, 16);
        assert!(b.n_bins(0) <= 16, "n_bins {}", b.n_bins(0));
        assert!(b.n_bins(0) >= 8, "n_bins {}", b.n_bins(0));
        // Codes are monotone in value.
        let codes = b.column(0);
        for w in codes.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn constant_column_is_single_bin() {
        let x = column(&[4.0; 10]);
        let b = BinnedMatrix::from_matrix(&x, 256);
        assert_eq!(b.n_bins(0), 1);
        assert!(b.column(0).iter().all(|&c| c == 0));
    }

    #[test]
    fn from_parts_verifies_metadata() {
        let x = column(&[0.5, 1.5, 2.5]);
        let b = BinnedMatrix::from_matrix(&x, 256);
        assert_eq!(b.verify(), Ok(()));
        // Round-trip through serde, re-verify, and reassemble via from_parts.
        let json = serde_json::to_string(&b).unwrap();
        let back: BinnedMatrix = serde_json::from_str(&json).unwrap();
        assert_eq!(back.verify(), Ok(()));
        assert_eq!(back, b);

        // Non-monotone edges.
        assert!(matches!(
            BinnedMatrix::from_parts(vec![0, 0, 1], 3, 1, vec![vec![2.0, 1.0]]),
            Err(StructureIssue::BinEdgesNotIncreasing {
                feature: 0,
                index: 1
            })
        ));
        // Code addressing a bin past the edge list.
        assert!(matches!(
            BinnedMatrix::from_parts(vec![0, 5, 1], 3, 1, vec![vec![1.0, 2.0]]),
            Err(StructureIssue::BinCodeOutOfRange {
                feature: 0,
                row: 1,
                code: 5,
                ..
            })
        ));
        // Declared shape disagreeing with the code array.
        assert!(matches!(
            BinnedMatrix::from_parts(vec![0, 0], 3, 1, vec![vec![1.0]]),
            Err(StructureIssue::Shape(_))
        ));
        // More than 256 bins cannot be coded in u8.
        let edges: Vec<f64> = (0..256).map(|i| i as f64).collect();
        assert!(matches!(
            BinnedMatrix::from_parts(vec![0], 1, 1, vec![edges]),
            Err(StructureIssue::BinBudget { n_bins: 257 })
        ));
    }

    #[test]
    fn split_finder_serde_roundtrip_and_null_default() {
        for sf in [SplitFinder::Exact, SplitFinder::Hist { max_bins: 64 }] {
            let v = sf.to_value();
            assert_eq!(SplitFinder::from_value(&v).unwrap(), sf);
        }
        assert_eq!(
            SplitFinder::from_value(&Value::Null).unwrap(),
            SplitFinder::default()
        );
    }
}
