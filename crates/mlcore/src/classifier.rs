//! The common classifier interface all four paper models implement.

use crate::error::MlError;
use crate::matrix::Matrix;
use crate::tree::argmax;

/// A multiclass probabilistic classifier.
pub trait Classifier {
    /// Fit on features `x` and labels `y` (each in `0..n_classes`).
    ///
    /// Rejects malformed input — shape mismatches, empty data, labels out
    /// of range, invalid hyperparameters — as an [`MlError`] instead of
    /// panicking, so callers can surface the problem to their own users.
    fn fit(&mut self, x: &Matrix, y: &[usize], n_classes: usize) -> Result<(), MlError>;

    /// Class-probability (or score, normalized) vector for one sample.
    fn predict_proba_row(&self, row: &[f64]) -> Vec<f64>;

    /// Number of classes the model was fit with.
    fn n_classes(&self) -> usize;

    /// Class-probability matrix, one row per sample.
    fn predict_proba(&self, x: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(x.rows(), self.n_classes());
        for i in 0..x.rows() {
            let p = self.predict_proba_row(x.row(i));
            out.row_mut(i).copy_from_slice(&p);
        }
        out
    }

    /// Hard predictions (argmax of the probability vector).
    fn predict(&self, x: &Matrix) -> Vec<usize> {
        (0..x.rows())
            .map(|i| argmax(&self.predict_proba_row(x.row(i))))
            .collect()
    }
}
