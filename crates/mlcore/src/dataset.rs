//! Labelled dataset: a feature matrix, integer class labels, and metadata.

use crate::error::MlError;
use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// A classification dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    pub x: Matrix,
    /// Class label per row, in `0..n_classes`.
    pub y: Vec<usize>,
    pub n_classes: usize,
    /// Column names (for feature-importance reports).
    pub feature_names: Vec<String>,
}

impl Dataset {
    /// Validated construction; rejects shape mismatches and labels outside
    /// `0..n_classes`. This is the entry point for data that originates
    /// outside the program (files, CLI input).
    pub fn try_new(
        x: Matrix,
        y: Vec<usize>,
        n_classes: usize,
        feature_names: Vec<String>,
    ) -> Result<Self, MlError> {
        if x.rows() != y.len() {
            return Err(MlError::ShapeMismatch {
                rows: x.rows(),
                labels: y.len(),
            });
        }
        if x.cols() != feature_names.len() {
            return Err(MlError::FeatureCountMismatch {
                expected: feature_names.len(),
                got: x.cols(),
            });
        }
        if let Some(&bad) = y.iter().find(|&&c| c >= n_classes) {
            return Err(MlError::LabelOutOfRange {
                label: bad,
                n_classes,
            });
        }
        Ok(Dataset {
            x,
            y,
            n_classes,
            feature_names,
        })
    }

    /// Construction for literals whose invariants hold at the call site
    /// (tests, generated data) — debug builds assert them. Data that
    /// originates outside the program goes through [`Dataset::try_new`].
    pub fn new(x: Matrix, y: Vec<usize>, n_classes: usize, feature_names: Vec<String>) -> Self {
        debug_assert_eq!(x.rows(), y.len(), "one label per row");
        debug_assert_eq!(x.cols(), feature_names.len(), "one name per feature column");
        debug_assert!(y.iter().all(|&c| c < n_classes), "label out of range");
        Dataset {
            x,
            y,
            n_classes,
            feature_names,
        }
    }

    pub fn len(&self) -> usize {
        self.y.len()
    }

    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    pub fn n_features(&self) -> usize {
        self.x.cols()
    }

    /// Sub-dataset of the given rows (order preserved).
    pub fn select(&self, idx: &[usize]) -> Dataset {
        Dataset {
            x: self.x.select_rows(idx),
            y: idx.iter().map(|&i| self.y[i]).collect(),
            n_classes: self.n_classes,
            feature_names: self.feature_names.clone(),
        }
    }

    /// Per-class sample counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes];
        for &c in &self.y {
            counts[c] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::new(
            Matrix::from_rows([[0.0, 1.0], [1.0, 0.0], [2.0, 2.0]]),
            vec![0, 1, 1],
            2,
            vec!["a".into(), "b".into()],
        )
    }

    #[test]
    fn construction_and_counts() {
        let d = toy();
        assert_eq!(d.len(), 3);
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.class_counts(), vec![1, 2]);
    }

    #[test]
    fn select_subsets() {
        let d = toy().select(&[2, 0]);
        assert_eq!(d.y, vec![1, 0]);
        assert_eq!(d.x.row(0), &[2.0, 2.0]);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "label out of range")]
    fn label_range_checked() {
        Dataset::new(Matrix::from_rows([[0.0]]), vec![3], 2, vec!["a".into()]);
    }

    #[test]
    fn try_new_rejects_out_of_range_label() {
        let err =
            Dataset::try_new(Matrix::from_rows([[0.0]]), vec![3], 2, vec!["a".into()]).unwrap_err();
        assert_eq!(
            err,
            MlError::LabelOutOfRange {
                label: 3,
                n_classes: 2
            }
        );
    }
}
