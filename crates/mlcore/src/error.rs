//! Error type for the ML layer: everything a caller-supplied dataset or
//! hyperparameter set can get wrong, surfaced as values instead of panics.

use std::fmt;

/// Why a fit / split / search request was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MlError {
    /// Fit called with zero rows.
    EmptyTrainingSet,
    /// Feature matrix and label vector disagree on the row count.
    ShapeMismatch { rows: usize, labels: usize },
    /// A label is outside `0..n_classes`.
    LabelOutOfRange { label: usize, n_classes: usize },
    /// Column count does not match the expected feature count.
    FeatureCountMismatch { expected: usize, got: usize },
    /// A hyperparameter fails validation.
    InvalidParam { param: &'static str, why: String },
    /// Grid search called with an empty candidate list.
    NoCandidates,
    /// Prediction requested from a model that was never fitted.
    NotFitted,
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::EmptyTrainingSet => write!(f, "cannot fit on an empty dataset"),
            MlError::ShapeMismatch { rows, labels } => {
                write!(
                    f,
                    "one label per row required: {rows} rows but {labels} labels"
                )
            }
            MlError::LabelOutOfRange { label, n_classes } => {
                write!(f, "label {label} out of range for {n_classes} classes")
            }
            MlError::FeatureCountMismatch { expected, got } => {
                write!(f, "expected {expected} features, got {got}")
            }
            MlError::InvalidParam { param, why } => write!(f, "invalid `{param}`: {why}"),
            MlError::NoCandidates => write!(f, "grid search needs at least one candidate"),
            MlError::NotFitted => write!(f, "model has not been fitted"),
        }
    }
}

impl std::error::Error for MlError {}

/// Shared fit-input validation used by every classifier.
pub(crate) fn validate_fit(rows: usize, y: &[usize], n_classes: usize) -> Result<(), MlError> {
    if rows != y.len() {
        return Err(MlError::ShapeMismatch {
            rows,
            labels: y.len(),
        });
    }
    if rows == 0 {
        return Err(MlError::EmptyTrainingSet);
    }
    if n_classes == 0 {
        return Err(MlError::InvalidParam {
            param: "n_classes",
            why: "must be at least 1".into(),
        });
    }
    if let Some(&bad) = y.iter().find(|&&c| c >= n_classes) {
        return Err(MlError::LabelOutOfRange {
            label: bad,
            n_classes,
        });
    }
    Ok(())
}
