//! Random Forest classifier — the model the paper selects (§V-C), with the
//! Gini-decrease feature importances behind its Figs. 5–6.
//!
//! Training bins the feature matrix once ([`BinnedMatrix`]) and fits every
//! tree over index slices into it — bootstrap sampling never copies row
//! data, and each rayon worker reuses one [`TreeScratch`] across all the
//! trees it grows. The original sort-based trainer stays available behind
//! [`SplitFinder::Exact`] as the reference implementation.

use crate::binned::{BinnedMatrix, SplitFinder};
use crate::classifier::Classifier;
use crate::error::{validate_fit, MlError};
use crate::matrix::Matrix;
use crate::tree::{argmax, normalize, DecisionTree, MaxFeatures, TreeParams, TreeScratch};
use crate::verify::{ForestIssue, ForestLoadError, StructureIssue};
use pml_obs::{span, Counter, Histogram};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Trees fitted across every forest trained in this process.
static TRAIN_TREES: Counter = Counter::new("train.trees");
/// Node count per fitted tree.
static TRAIN_TREE_NODES: Histogram = Histogram::new("train.tree.nodes", &pml_obs::SIZE_BOUNDS);

/// Rows per parallel work unit in the batched inference kernels, and trees
/// per work unit in the OOB pass. Fixed (not derived from thread count) so
/// floating-point accumulation order — and therefore every serialized
/// artifact — is identical on any machine.
const BLOCK: usize = 64;
const OOB_CHUNK: usize = 8;

/// Random Forest hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ForestParams {
    pub n_estimators: usize,
    pub max_depth: Option<usize>,
    pub min_samples_split: usize,
    pub min_samples_leaf: usize,
    pub max_features: MaxFeatures,
    /// Bootstrap-sample each tree's training set.
    pub bootstrap: bool,
    pub seed: u64,
    /// Split-finding kernel. Artifacts serialized before this field existed
    /// deserialize to the default (histogram).
    pub split_finder: SplitFinder,
}

impl Default for ForestParams {
    fn default() -> Self {
        ForestParams {
            n_estimators: 100,
            max_depth: None,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: MaxFeatures::Sqrt,
            bootstrap: true,
            seed: 0,
            split_finder: SplitFinder::default(),
        }
    }
}

/// Bagged ensemble of Gini CART trees with per-split feature subsampling.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomForest {
    params: ForestParams,
    trees: Vec<DecisionTree>,
    n_classes: usize,
    n_features: usize,
    oob_score: Option<f64>,
}

impl RandomForest {
    pub fn new(params: ForestParams) -> Self {
        RandomForest {
            params,
            trees: Vec::new(),
            n_classes: 0,
            n_features: 0,
            oob_score: None,
        }
    }

    pub fn params(&self) -> &ForestParams {
        &self.params
    }

    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Number of features the forest was fitted on (0 before fitting).
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of classes the forest was fitted on (0 before fitting).
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Prove every structural invariant of the ensemble: each tree's SoA
    /// store is well-formed (child indices in-bounds, parent-before-child
    /// order, contiguous leaf arena, per-leaf probability simplex — see
    /// `DecisionTree::verify`), every tree agrees with the ensemble on the
    /// class and feature counts, and the histogram bin budget fits the u8
    /// code layout. Deserialization checks parse shape only; run this on
    /// any forest that crossed a trust boundary before predicting with it.
    pub fn verify(&self) -> Result<(), ForestIssue> {
        let ensemble = |issue| ForestIssue { tree: None, issue };
        if self.trees.is_empty() {
            return Err(ensemble(StructureIssue::Empty));
        }
        if let SplitFinder::Hist { max_bins } = self.params.split_finder {
            if !(2..=256).contains(&max_bins) {
                return Err(ensemble(StructureIssue::BinBudget {
                    n_bins: max_bins as usize,
                }));
            }
        }
        for (i, t) in self.trees.iter().enumerate() {
            let located = |issue| ForestIssue {
                tree: Some(i),
                issue,
            };
            if t.n_classes() != self.n_classes {
                return Err(located(StructureIssue::ClassCount {
                    expected: self.n_classes,
                    actual: t.n_classes(),
                }));
            }
            if t.raw_importance().len() != self.n_features {
                return Err(located(StructureIssue::ImportanceLength {
                    expected: self.n_features,
                    actual: t.raw_importance().len(),
                }));
            }
            t.verify().map_err(located)?;
        }
        Ok(())
    }

    /// Parse a serialized forest and structurally verify it — the
    /// trust-boundary load path. Corrupt artifacts come back as typed
    /// errors instead of indexing out of bounds during descent.
    pub fn from_json(s: &str) -> Result<Self, ForestLoadError> {
        let forest: RandomForest =
            serde_json::from_str(s).map_err(|e| ForestLoadError::Parse(e.to_string()))?;
        forest.verify().map_err(ForestLoadError::Structure)?;
        Ok(forest)
    }

    /// Out-of-bag accuracy estimate (only available with bootstrap).
    pub fn oob_score(&self) -> Option<f64> {
        self.oob_score
    }

    /// Mean decrease in Gini impurity per feature, accumulated over all
    /// trees and normalized to sum 1 — the paper's Eq. (1) importance.
    pub fn feature_importances(&self) -> Vec<f64> {
        let mut acc = vec![0.0; self.n_features];
        for t in &self.trees {
            for (a, r) in acc.iter_mut().zip(t.raw_importance()) {
                *a += r;
            }
        }
        normalize(acc)
    }

    /// Average the ensemble's class probabilities for one row into `out`
    /// (length `n_classes`) without allocating: every tree contributes a
    /// borrowed leaf slice, nothing is cloned.
    pub fn predict_proba_into(&self, row: &[f64], out: &mut [f64]) {
        debug_assert!(!self.trees.is_empty(), "predict before fit");
        if self.trees.is_empty() {
            // Unfit model: uniform distribution, never an abort.
            out.fill(1.0 / self.n_classes.max(1) as f64);
            return;
        }
        out.fill(0.0);
        for t in &self.trees {
            for (a, p) in out.iter_mut().zip(t.predict_proba_slice(row)) {
                *a += p;
            }
        }
        let k = self.trees.len() as f64;
        for a in out.iter_mut() {
            *a /= k;
        }
    }

    /// Class-probability matrix for a whole batch of rows, written into a
    /// caller-provided matrix of shape `x.rows() × n_classes`. Workers fill
    /// disjoint row blocks of the output buffer directly — the inner loop
    /// performs no allocation at all. This is the inference hot path:
    /// tuning-table generation and the ML selector push entire job grids
    /// through here instead of calling [`Classifier::predict_proba_row`]
    /// per cell.
    pub fn predict_proba_batch_into(&self, x: &Matrix, out: &mut Matrix) {
        let k = self.n_classes.max(1);
        debug_assert_eq!(out.rows(), x.rows());
        debug_assert_eq!(out.cols(), k);
        if x.rows() == 0 {
            return;
        }
        out.as_mut_slice()
            .par_chunks_mut(BLOCK * k)
            .enumerate()
            .for_each(|(blk, chunk)| {
                let base = blk * BLOCK;
                for (j, orow) in chunk.chunks_mut(k).enumerate() {
                    self.predict_proba_into(x.row(base + j), orow);
                }
            });
    }

    /// Class-probability matrix for a whole batch of rows.
    pub fn predict_proba_batch(&self, x: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(x.rows(), self.n_classes.max(1));
        self.predict_proba_batch_into(x, &mut out);
        out
    }

    /// Hard predictions for a whole batch of rows, in parallel. Each worker
    /// reuses one probability buffer across its rows.
    pub fn predict_batch(&self, x: &Matrix) -> Vec<usize> {
        debug_assert!(!self.trees.is_empty(), "predict before fit");
        let k = self.n_classes.max(1);
        let n = x.rows();
        let blocks: Vec<usize> = (0..n.div_ceil(BLOCK)).collect();
        let nested: Vec<Vec<usize>> = blocks
            .into_par_iter()
            .map_init(
                || vec![0.0f64; k],
                |buf, blk| {
                    let base = blk * BLOCK;
                    (base..(base + BLOCK).min(n))
                        .map(|i| {
                            self.predict_proba_into(x.row(i), buf);
                            argmax(buf)
                        })
                        .collect()
                },
            )
            .collect();
        nested.into_iter().flatten().collect()
    }
}

impl Classifier for RandomForest {
    fn fit(&mut self, x: &Matrix, y: &[usize], n_classes: usize) -> Result<(), MlError> {
        validate_fit(x.rows(), y, n_classes)?;
        if self.params.n_estimators < 1 {
            return Err(MlError::InvalidParam {
                param: "n_estimators",
                why: "need at least one tree".into(),
            });
        }
        if x.cols() >= u16::MAX as usize {
            return Err(MlError::InvalidParam {
                param: "n_features",
                why: format!("{} features exceed the u16 tree layout", x.cols()),
            });
        }
        self.n_classes = n_classes;
        self.n_features = x.cols();
        let n = x.rows();
        let tree_params = TreeParams {
            max_depth: self.params.max_depth,
            min_samples_split: self.params.min_samples_split,
            min_samples_leaf: self.params.min_samples_leaf,
            max_features: self.params.max_features,
        };

        // Per-tree seeds derived up front so training can run in parallel
        // yet stay deterministic.
        let seeds: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(self.params.seed);
            (0..self.params.n_estimators).map(|_| rng.gen()).collect()
        };

        let bootstrap = self.params.bootstrap;
        debug_assert!(n < u32::MAX as usize, "row ids must fit u32");
        // Both kernels draw the bootstrap sample identically (`usize` range
        // keeps the RNG stream aligned with the exact path, and with models
        // trained before the histogram kernel existed).
        let draw_sample = |rng: &mut StdRng| -> Vec<u32> {
            if bootstrap {
                (0..n).map(|_| rng.gen_range(0..n) as u32).collect()
            } else {
                (0..n as u32).collect()
            }
        };

        let _span = span!("fit.forest", trees = self.params.n_estimators, rows = n);
        let fitted: Vec<(DecisionTree, Vec<u32>)> = match self.params.split_finder {
            SplitFinder::Hist { max_bins } => {
                // Bin once; every tree trains over index slices into the
                // shared binned matrix — no per-tree row materialization.
                let binned = {
                    let _span = span!("fit.bin", rows = n, cols = x.cols());
                    BinnedMatrix::from_matrix(x, max_bins)
                };
                seeds
                    .par_iter()
                    .map_init(TreeScratch::default, |scratch, &seed| {
                        let mut rng = StdRng::seed_from_u64(seed);
                        let sample = draw_sample(&mut rng);
                        let tree = DecisionTree::fit_binned(
                            &binned,
                            y,
                            &sample,
                            n_classes,
                            &tree_params,
                            &mut rng,
                            scratch,
                        );
                        (tree, sample)
                    })
                    .collect()
            }
            SplitFinder::Exact => seeds
                .par_iter()
                .map(|&seed| {
                    let mut rng = StdRng::seed_from_u64(seed);
                    let sample = draw_sample(&mut rng);
                    let idx: Vec<usize> = sample.iter().map(|&i| i as usize).collect();
                    let xs = x.select_rows(&idx);
                    let ys: Vec<usize> = idx.iter().map(|&i| y[i]).collect();
                    (
                        DecisionTree::fit(&xs, &ys, n_classes, &tree_params, &mut rng),
                        sample,
                    )
                })
                .collect(),
        };

        // OOB score: vote each sample with the trees that never saw it.
        // Fixed-size tree chunks fan out over rayon (one in-bag buffer per
        // worker); partial votes merge back in chunk order so the float
        // summation order never depends on thread count.
        TRAIN_TREES.add(fitted.len() as u64);
        for (tree, _) in &fitted {
            TRAIN_TREE_NODES.observe(tree.node_count() as u64);
        }

        self.oob_score = if bootstrap {
            let _span = span!("fit.oob", trees = fitted.len());
            let chunks: Vec<&[(DecisionTree, Vec<u32>)]> = fitted.chunks(OOB_CHUNK).collect();
            let partials: Vec<(Vec<f64>, Vec<bool>)> = chunks
                .par_iter()
                .map_init(
                    || vec![false; n],
                    |in_bag, chunk| {
                        let mut votes = vec![0.0f64; n * n_classes];
                        let mut any = vec![false; n];
                        for (tree, sample) in chunk.iter() {
                            in_bag.fill(false);
                            for &i in sample {
                                in_bag[i as usize] = true;
                            }
                            for (i, bagged) in in_bag.iter().enumerate() {
                                if !bagged {
                                    let p = tree.predict_proba_slice(x.row(i));
                                    let v = &mut votes[i * n_classes..(i + 1) * n_classes];
                                    for (vi, pi) in v.iter_mut().zip(p) {
                                        *vi += pi;
                                    }
                                    any[i] = true;
                                }
                            }
                        }
                        (votes, any)
                    },
                )
                .collect();
            let mut votes = vec![0.0f64; n * n_classes];
            let mut any = vec![false; n];
            for (pv, pa) in &partials {
                for (v, p) in votes.iter_mut().zip(pv) {
                    *v += p;
                }
                for (a, p) in any.iter_mut().zip(pa) {
                    *a |= p;
                }
            }
            let mut correct = 0usize;
            let mut counted = 0usize;
            for i in 0..n {
                if any[i] {
                    counted += 1;
                    if argmax(&votes[i * n_classes..(i + 1) * n_classes]) == y[i] {
                        correct += 1;
                    }
                }
            }
            (counted > 0).then(|| correct as f64 / counted as f64)
        } else {
            None
        };

        self.trees = fitted.into_iter().map(|(t, _)| t).collect();
        Ok(())
    }

    fn predict_proba_row(&self, row: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.n_classes.max(1)];
        self.predict_proba_into(row, &mut out);
        out
    }

    /// Batched override of the default per-row loop.
    fn predict_proba(&self, x: &Matrix) -> Matrix {
        self.predict_proba_batch(x)
    }

    /// Batched override of the default per-row loop.
    fn predict(&self, x: &Matrix) -> Vec<usize> {
        self.predict_batch(x)
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// Noisy two-moon-ish data: class = x0 + noise > x1.
    fn noisy_data(n: usize, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let a: f64 = rng.gen_range(0.0..1.0);
            let b: f64 = rng.gen_range(0.0..1.0);
            let noise: f64 = rng.gen_range(-0.05..0.05);
            rows.push(vec![a, b, rng.gen_range(0.0..1.0)]); // third column: noise
            y.push(usize::from(a + noise > b));
        }
        (Matrix::from_rows(rows), y)
    }

    #[test]
    fn learns_noisy_boundary() {
        let (x, y) = noisy_data(400, 1);
        let (xt, yt) = noisy_data(200, 2);
        let mut f = RandomForest::new(ForestParams {
            n_estimators: 40,
            ..Default::default()
        });
        f.fit(&x, &y, 2).unwrap();
        let acc = crate::metrics::accuracy(&yt, &f.predict(&xt));
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = noisy_data(100, 3);
        let mut a = RandomForest::new(ForestParams {
            n_estimators: 10,
            seed: 7,
            ..Default::default()
        });
        let mut b = RandomForest::new(ForestParams {
            n_estimators: 10,
            seed: 7,
            ..Default::default()
        });
        a.fit(&x, &y, 2).unwrap();
        b.fit(&x, &y, 2).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn oob_score_close_to_holdout_accuracy() {
        let (x, y) = noisy_data(500, 4);
        let mut f = RandomForest::new(ForestParams {
            n_estimators: 60,
            ..Default::default()
        });
        f.fit(&x, &y, 2).unwrap();
        let oob = f.oob_score().unwrap();
        assert!(oob > 0.85, "oob {oob}");
    }

    #[test]
    fn importances_ignore_pure_noise_feature() {
        let (x, y) = noisy_data(600, 5);
        let mut f = RandomForest::new(ForestParams {
            n_estimators: 40,
            ..Default::default()
        });
        f.fit(&x, &y, 2).unwrap();
        let imp = f.feature_importances();
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Informative features dominate the noise column.
        assert!(imp[0] > imp[2] && imp[1] > imp[2], "{imp:?}");
    }

    #[test]
    fn probabilities_are_distributions() {
        let (x, y) = noisy_data(100, 6);
        let mut f = RandomForest::new(ForestParams {
            n_estimators: 15,
            ..Default::default()
        });
        f.fit(&x, &y, 2).unwrap();
        let p = f.predict_proba(&x);
        for i in 0..p.rows() {
            let s: f64 = p.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
            assert!(p.row(i).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn batch_prediction_matches_per_row() {
        let (x, y) = noisy_data(120, 9);
        let mut f = RandomForest::new(ForestParams {
            n_estimators: 10,
            ..Default::default()
        });
        f.fit(&x, &y, 2).unwrap();
        let per_row: Vec<usize> = (0..x.rows())
            .map(|i| argmax(&f.predict_proba_row(x.row(i))))
            .collect();
        assert_eq!(f.predict_batch(&x), per_row);
        let batched = f.predict_proba_batch(&x);
        for i in 0..x.rows() {
            assert_eq!(batched.row(i), f.predict_proba_row(x.row(i)));
        }
    }

    #[test]
    fn proba_into_matches_allocating_variant() {
        let (x, y) = noisy_data(50, 11);
        let mut f = RandomForest::new(ForestParams {
            n_estimators: 8,
            ..Default::default()
        });
        f.fit(&x, &y, 2).unwrap();
        let mut buf = [0.0f64; 2];
        for i in 0..x.rows() {
            f.predict_proba_into(x.row(i), &mut buf);
            assert_eq!(buf.to_vec(), f.predict_proba_row(x.row(i)));
        }
        let mut out = Matrix::zeros(x.rows(), 2);
        f.predict_proba_batch_into(&x, &mut out);
        assert_eq!(out, f.predict_proba_batch(&x));
    }

    /// Forest-level pin of the tentpole equivalence: on data where binning
    /// is lossless (distinct values per column ≤ 256), the histogram and
    /// exact kernels — fed the same seed — grow forests with identical
    /// train-set predictions and importances. Bootstrap is off because the
    /// guarantee covers each tree's own training rows: an out-of-bag row
    /// can legitimately fall between a sample-midpoint threshold (exact)
    /// and the full-data bin edge (hist).
    #[test]
    fn hist_and_exact_forests_agree_when_binning_is_lossless() {
        let (x, y) = noisy_data(120, 13);
        let fit = |split_finder: SplitFinder| {
            let mut f = RandomForest::new(ForestParams {
                n_estimators: 12,
                seed: 21,
                bootstrap: false,
                split_finder,
                ..Default::default()
            });
            f.fit(&x, &y, 2).unwrap();
            f
        };
        let hist = fit(SplitFinder::default());
        let exact = fit(SplitFinder::Exact);
        assert_eq!(hist.predict_batch(&x), exact.predict_batch(&x));
        for (h, e) in hist
            .feature_importances()
            .iter()
            .zip(exact.feature_importances())
        {
            assert!((h - e).abs() < 1e-9, "importances diverge: {h} vs {e}");
        }
    }

    #[test]
    fn params_without_split_finder_field_deserialize_to_default() {
        // A ForestParams artifact serialized before the split_finder knob
        // existed.
        let json = r#"{"n_estimators":15,"max_depth":null,"min_samples_split":2,
                       "min_samples_leaf":1,"max_features":"Sqrt","bootstrap":true,
                       "seed":3}"#;
        let p: ForestParams = serde_json::from_str(json).unwrap();
        assert_eq!(p.split_finder, SplitFinder::default());
        assert_eq!(p.n_estimators, 15);
    }

    #[test]
    fn serde_roundtrip_preserves_predictions() {
        let (x, y) = noisy_data(80, 8);
        let mut f = RandomForest::new(ForestParams {
            n_estimators: 8,
            ..Default::default()
        });
        f.fit(&x, &y, 2).unwrap();
        let json = serde_json::to_string(&f).unwrap();
        let back: RandomForest = serde_json::from_str(&json).unwrap();
        assert_eq!(f.predict(&x), back.predict(&x));
    }

    #[test]
    fn from_json_verifies_and_rejects_corruption() {
        let (x, y) = noisy_data(60, 10);
        let mut f = RandomForest::new(ForestParams {
            n_estimators: 4,
            ..Default::default()
        });
        f.fit(&x, &y, 2).unwrap();
        assert_eq!(f.verify(), Ok(()));
        let json = serde_json::to_string(&f).unwrap();
        let loaded = RandomForest::from_json(&json).unwrap();
        assert_eq!(loaded.predict(&x), f.predict(&x));

        // A child index flipped out of range surfaces as a typed
        // structural error, never an out-of-bounds descent. The first
        // tree's root is a split, so its left child serializes as 1.
        let corrupt = json.replacen("\"children\":[1,", "\"children\":[40000,", 1);
        assert_ne!(corrupt, json, "expected to corrupt the root's left child");
        match RandomForest::from_json(&corrupt) {
            Err(ForestLoadError::Structure(ForestIssue {
                tree: Some(0),
                issue: StructureIssue::ChildOutOfBounds { .. },
            })) => {}
            other => panic!("expected typed corruption error, got {other:?}"),
        }
        assert!(matches!(
            RandomForest::from_json("{"),
            Err(ForestLoadError::Parse(_))
        ));
        // An unfit forest is not a shippable artifact.
        assert!(RandomForest::new(ForestParams::default()).verify().is_err());
    }
}
