//! Random Forest classifier — the model the paper selects (§V-C), with the
//! Gini-decrease feature importances behind its Figs. 5–6.

use crate::classifier::Classifier;
use crate::error::{validate_fit, MlError};
use crate::matrix::Matrix;
use crate::tree::{argmax, normalize, DecisionTree, MaxFeatures, TreeParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Random Forest hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ForestParams {
    pub n_estimators: usize,
    pub max_depth: Option<usize>,
    pub min_samples_split: usize,
    pub min_samples_leaf: usize,
    pub max_features: MaxFeatures,
    /// Bootstrap-sample each tree's training set.
    pub bootstrap: bool,
    pub seed: u64,
}

impl Default for ForestParams {
    fn default() -> Self {
        ForestParams {
            n_estimators: 100,
            max_depth: None,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: MaxFeatures::Sqrt,
            bootstrap: true,
            seed: 0,
        }
    }
}

/// Bagged ensemble of Gini CART trees with per-split feature subsampling.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomForest {
    params: ForestParams,
    trees: Vec<DecisionTree>,
    n_classes: usize,
    n_features: usize,
    oob_score: Option<f64>,
}

impl RandomForest {
    pub fn new(params: ForestParams) -> Self {
        RandomForest {
            params,
            trees: Vec::new(),
            n_classes: 0,
            n_features: 0,
            oob_score: None,
        }
    }

    pub fn params(&self) -> &ForestParams {
        &self.params
    }

    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Out-of-bag accuracy estimate (only available with bootstrap).
    pub fn oob_score(&self) -> Option<f64> {
        self.oob_score
    }

    /// Mean decrease in Gini impurity per feature, accumulated over all
    /// trees and normalized to sum 1 — the paper's Eq. (1) importance.
    pub fn feature_importances(&self) -> Vec<f64> {
        let mut acc = vec![0.0; self.n_features];
        for t in &self.trees {
            for (a, r) in acc.iter_mut().zip(t.raw_importance()) {
                *a += r;
            }
        }
        normalize(acc)
    }

    /// Class-probability matrix for a whole batch of rows, trees × rows
    /// fanned out over rayon. This is the inference hot path: tuning-table
    /// generation and the ML selector push entire job grids through here
    /// instead of calling [`Classifier::predict_proba_row`] per cell.
    pub fn predict_proba_batch(&self, x: &Matrix) -> Matrix {
        debug_assert!(!self.trees.is_empty(), "predict before fit");
        let rows: Vec<usize> = (0..x.rows()).collect();
        let probs: Vec<Vec<f64>> = rows
            .par_iter()
            .map(|&i| self.predict_proba_row(x.row(i)))
            .collect();
        let mut out = Matrix::zeros(x.rows(), self.n_classes);
        for (i, p) in probs.iter().enumerate() {
            out.row_mut(i).copy_from_slice(p);
        }
        out
    }

    /// Hard predictions for a whole batch of rows, in parallel.
    pub fn predict_batch(&self, x: &Matrix) -> Vec<usize> {
        debug_assert!(!self.trees.is_empty(), "predict before fit");
        let rows: Vec<usize> = (0..x.rows()).collect();
        rows.par_iter()
            .map(|&i| argmax(&self.predict_proba_row(x.row(i))))
            .collect()
    }
}

impl Classifier for RandomForest {
    fn fit(&mut self, x: &Matrix, y: &[usize], n_classes: usize) -> Result<(), MlError> {
        validate_fit(x.rows(), y, n_classes)?;
        if self.params.n_estimators < 1 {
            return Err(MlError::InvalidParam {
                param: "n_estimators",
                why: "need at least one tree".into(),
            });
        }
        self.n_classes = n_classes;
        self.n_features = x.cols();
        let n = x.rows();
        let tree_params = TreeParams {
            max_depth: self.params.max_depth,
            min_samples_split: self.params.min_samples_split,
            min_samples_leaf: self.params.min_samples_leaf,
            max_features: self.params.max_features,
        };

        // Per-tree seeds derived up front so training can run in parallel
        // yet stay deterministic.
        let seeds: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(self.params.seed);
            (0..self.params.n_estimators).map(|_| rng.gen()).collect()
        };

        let bootstrap = self.params.bootstrap;
        let fitted: Vec<(DecisionTree, Vec<usize>)> = seeds
            .par_iter()
            .map(|&seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                let sample: Vec<usize> = if bootstrap {
                    (0..n).map(|_| rng.gen_range(0..n)).collect()
                } else {
                    (0..n).collect()
                };
                let xs = x.select_rows(&sample);
                let ys: Vec<usize> = sample.iter().map(|&i| y[i]).collect();
                (
                    DecisionTree::fit(&xs, &ys, n_classes, &tree_params, &mut rng),
                    sample,
                )
            })
            .collect();

        // OOB score: vote each sample with the trees that never saw it.
        self.oob_score = if bootstrap {
            let mut votes = vec![vec![0.0f64; n_classes]; n];
            let mut any = vec![false; n];
            for (tree, sample) in &fitted {
                let mut in_bag = vec![false; n];
                for &i in sample {
                    in_bag[i] = true;
                }
                for i in 0..n {
                    if !in_bag[i] {
                        let p = tree.predict_proba_row(x.row(i));
                        for (v, pi) in votes[i].iter_mut().zip(&p) {
                            *v += pi;
                        }
                        any[i] = true;
                    }
                }
            }
            let mut correct = 0usize;
            let mut counted = 0usize;
            for i in 0..n {
                if any[i] {
                    counted += 1;
                    if crate::tree::argmax(&votes[i]) == y[i] {
                        correct += 1;
                    }
                }
            }
            (counted > 0).then(|| correct as f64 / counted as f64)
        } else {
            None
        };

        self.trees = fitted.into_iter().map(|(t, _)| t).collect();
        Ok(())
    }

    fn predict_proba_row(&self, row: &[f64]) -> Vec<f64> {
        debug_assert!(!self.trees.is_empty(), "predict before fit");
        if self.trees.is_empty() {
            // Unfit model: uniform distribution, never an abort.
            return vec![1.0 / self.n_classes.max(1) as f64; self.n_classes];
        }
        let mut acc = vec![0.0; self.n_classes];
        for t in &self.trees {
            for (a, p) in acc.iter_mut().zip(t.predict_proba_row(row)) {
                *a += p;
            }
        }
        let k = self.trees.len() as f64;
        for a in &mut acc {
            *a /= k;
        }
        acc
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// Noisy two-moon-ish data: class = x0 + noise > x1.
    fn noisy_data(n: usize, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let a: f64 = rng.gen_range(0.0..1.0);
            let b: f64 = rng.gen_range(0.0..1.0);
            let noise: f64 = rng.gen_range(-0.05..0.05);
            rows.push(vec![a, b, rng.gen_range(0.0..1.0)]); // third column: noise
            y.push(usize::from(a + noise > b));
        }
        (Matrix::from_rows(rows), y)
    }

    #[test]
    fn learns_noisy_boundary() {
        let (x, y) = noisy_data(400, 1);
        let (xt, yt) = noisy_data(200, 2);
        let mut f = RandomForest::new(ForestParams {
            n_estimators: 40,
            ..Default::default()
        });
        f.fit(&x, &y, 2).unwrap();
        let acc = crate::metrics::accuracy(&yt, &f.predict(&xt));
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = noisy_data(100, 3);
        let mut a = RandomForest::new(ForestParams {
            n_estimators: 10,
            seed: 7,
            ..Default::default()
        });
        let mut b = RandomForest::new(ForestParams {
            n_estimators: 10,
            seed: 7,
            ..Default::default()
        });
        a.fit(&x, &y, 2).unwrap();
        b.fit(&x, &y, 2).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn oob_score_close_to_holdout_accuracy() {
        let (x, y) = noisy_data(500, 4);
        let mut f = RandomForest::new(ForestParams {
            n_estimators: 60,
            ..Default::default()
        });
        f.fit(&x, &y, 2).unwrap();
        let oob = f.oob_score().unwrap();
        assert!(oob > 0.85, "oob {oob}");
    }

    #[test]
    fn importances_ignore_pure_noise_feature() {
        let (x, y) = noisy_data(600, 5);
        let mut f = RandomForest::new(ForestParams {
            n_estimators: 40,
            ..Default::default()
        });
        f.fit(&x, &y, 2).unwrap();
        let imp = f.feature_importances();
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Informative features dominate the noise column.
        assert!(imp[0] > imp[2] && imp[1] > imp[2], "{imp:?}");
    }

    #[test]
    fn probabilities_are_distributions() {
        let (x, y) = noisy_data(100, 6);
        let mut f = RandomForest::new(ForestParams {
            n_estimators: 15,
            ..Default::default()
        });
        f.fit(&x, &y, 2).unwrap();
        let p = f.predict_proba(&x);
        for i in 0..p.rows() {
            let s: f64 = p.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
            assert!(p.row(i).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn batch_prediction_matches_per_row() {
        let (x, y) = noisy_data(120, 9);
        let mut f = RandomForest::new(ForestParams {
            n_estimators: 10,
            ..Default::default()
        });
        f.fit(&x, &y, 2).unwrap();
        assert_eq!(f.predict_batch(&x), f.predict(&x));
        let batched = f.predict_proba_batch(&x);
        let serial = f.predict_proba(&x);
        for i in 0..x.rows() {
            assert_eq!(batched.row(i), serial.row(i));
        }
    }

    #[test]
    fn serde_roundtrip_preserves_predictions() {
        let (x, y) = noisy_data(80, 8);
        let mut f = RandomForest::new(ForestParams {
            n_estimators: 8,
            ..Default::default()
        });
        f.fit(&x, &y, 2).unwrap();
        let json = serde_json::to_string(&f).unwrap();
        let back: RandomForest = serde_json::from_str(&json).unwrap();
        assert_eq!(f.predict(&x), back.predict(&x));
    }
}
