//! Multinomial Gradient Boosting (Friedman's GBM with softmax loss),
//! regression trees on the per-class negative gradient.

use crate::binned::BinnedMatrix;
use crate::classifier::Classifier;
use crate::error::{validate_fit, MlError};
use crate::matrix::Matrix;
use crate::tree::{MaxFeatures, RegressionTree, TreeParams, TreeScratch};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Gradient Boosting hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GBoostParams {
    pub n_estimators: usize,
    pub learning_rate: f64,
    pub max_depth: usize,
    pub min_samples_leaf: usize,
    /// Row subsample fraction per boosting round (stochastic GBM).
    pub subsample: f64,
    pub seed: u64,
}

impl Default for GBoostParams {
    fn default() -> Self {
        GBoostParams {
            n_estimators: 100,
            learning_rate: 0.1,
            max_depth: 3,
            min_samples_leaf: 1,
            subsample: 1.0,
            seed: 0,
        }
    }
}

/// One boosting round: one regression tree per class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Round {
    trees: Vec<RegressionTree>,
}

/// Softmax gradient-boosted trees.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GradientBoosting {
    params: GBoostParams,
    rounds: Vec<Round>,
    /// Log-prior initialization per class.
    base_score: Vec<f64>,
    n_classes: usize,
}

impl GradientBoosting {
    pub fn new(params: GBoostParams) -> Self {
        GradientBoosting {
            params,
            rounds: Vec::new(),
            base_score: Vec::new(),
            n_classes: 0,
        }
    }

    pub fn params(&self) -> &GBoostParams {
        &self.params
    }

    pub fn n_rounds(&self) -> usize {
        self.rounds.len()
    }

    /// Raw (pre-softmax) scores for one sample.
    fn raw_scores(&self, row: &[f64]) -> Vec<f64> {
        let mut f = self.base_score.clone();
        for round in &self.rounds {
            for (fc, tree) in f.iter_mut().zip(&round.trees) {
                *fc += self.params.learning_rate * tree.predict_row(row);
            }
        }
        f
    }
}

fn softmax(scores: &[f64]) -> Vec<f64> {
    let m = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let exp: Vec<f64> = scores.iter().map(|s| (s - m).exp()).collect();
    let z: f64 = exp.iter().sum();
    exp.into_iter().map(|e| e / z).collect()
}

impl Classifier for GradientBoosting {
    fn fit(&mut self, x: &Matrix, y: &[usize], n_classes: usize) -> Result<(), MlError> {
        validate_fit(x.rows(), y, n_classes)?;
        if self.params.n_estimators < 1 {
            return Err(MlError::InvalidParam {
                param: "n_estimators",
                why: "need at least one boosting round".into(),
            });
        }
        if self.params.learning_rate <= 0.0 {
            return Err(MlError::InvalidParam {
                param: "learning_rate",
                why: format!("{} is not positive", self.params.learning_rate),
            });
        }
        if !(self.params.subsample > 0.0 && self.params.subsample <= 1.0) {
            return Err(MlError::InvalidParam {
                param: "subsample",
                why: format!("{} not in (0, 1]", self.params.subsample),
            });
        }
        self.n_classes = n_classes;
        let n = x.rows();

        // Log-prior init (with Laplace smoothing for absent classes).
        let mut counts = vec![1.0f64; n_classes];
        for &c in y {
            counts[c] += 1.0;
        }
        let total: f64 = counts.iter().sum();
        self.base_score = counts.iter().map(|c| (c / total).ln()).collect();

        let tree_params = TreeParams {
            max_depth: Some(self.params.max_depth),
            min_samples_split: 2,
            min_samples_leaf: self.params.min_samples_leaf,
            max_features: MaxFeatures::All,
        };

        // Bin the features once; every boosting round's trees train over
        // index slices into the shared binned matrix (no per-round row
        // materialization), reusing one scratch and gradient buffer.
        let binned = BinnedMatrix::from_matrix(x, 256);
        let mut scratch = TreeScratch::default();
        let mut grad = vec![0.0f64; n];

        // Current raw scores per (sample, class).
        let mut f: Vec<Vec<f64>> = (0..n).map(|_| self.base_score.clone()).collect();
        let mut rng = StdRng::seed_from_u64(self.params.seed);
        self.rounds.clear();

        debug_assert!(n < u32::MAX as usize, "row ids must fit u32");
        for _ in 0..self.params.n_estimators {
            // Stochastic row subsample for this round.
            let sample: Vec<u32> = if self.params.subsample < 1.0 {
                use rand::seq::SliceRandom;
                let k = ((n as f64) * self.params.subsample).ceil() as usize;
                let mut all: Vec<usize> = (0..n).collect();
                all.shuffle(&mut rng);
                all.truncate(k.max(1));
                all.into_iter().map(|i| i as u32).collect()
            } else {
                (0..n as u32).collect()
            };

            let mut trees = Vec::with_capacity(n_classes);
            for c in 0..n_classes {
                // Negative gradient of softmax cross-entropy: y_ic − p_ic,
                // written at the original row ids the index slice refers to.
                for &i in &sample {
                    let i = i as usize;
                    let p = softmax(&f[i]);
                    grad[i] = (if y[i] == c { 1.0 } else { 0.0 }) - p[c];
                }
                let tree = RegressionTree::fit_binned(
                    &binned,
                    &grad,
                    &sample,
                    &tree_params,
                    &mut rng,
                    &mut scratch,
                );
                trees.push(tree);
            }
            // Update scores on all samples.
            for (i, fi) in f.iter_mut().enumerate() {
                for (c, tree) in trees.iter().enumerate() {
                    fi[c] += self.params.learning_rate * tree.predict_row(x.row(i));
                }
            }
            self.rounds.push(Round { trees });
        }
        Ok(())
    }

    fn predict_proba_row(&self, row: &[f64]) -> Vec<f64> {
        // With no boosting rounds the raw scores are the base scores and the
        // softmax is well-defined, so an unfit model degrades to its prior
        // instead of aborting.
        debug_assert!(!self.rounds.is_empty(), "predict before fit");
        softmax(&self.raw_scores(row))
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn three_class_data(n: usize, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let a: f64 = rng.gen_range(0.0..3.0);
            let b: f64 = rng.gen_range(0.0..1.0);
            rows.push(vec![a, b]);
            y.push(a as usize); // class = floor of a
        }
        (Matrix::from_rows(rows), y)
    }

    #[test]
    fn learns_three_classes() {
        let (x, y) = three_class_data(300, 1);
        let (xt, yt) = three_class_data(150, 2);
        let mut g = GradientBoosting::new(GBoostParams {
            n_estimators: 30,
            ..Default::default()
        });
        g.fit(&x, &y, 3).unwrap();
        let acc = crate::metrics::accuracy(&yt, &g.predict(&xt));
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn more_rounds_reduce_training_error() {
        let (x, y) = three_class_data(200, 3);
        let mut weak = GradientBoosting::new(GBoostParams {
            n_estimators: 2,
            ..Default::default()
        });
        let mut strong = GradientBoosting::new(GBoostParams {
            n_estimators: 40,
            ..Default::default()
        });
        weak.fit(&x, &y, 3).unwrap();
        strong.fit(&x, &y, 3).unwrap();
        let aw = crate::metrics::accuracy(&y, &weak.predict(&x));
        let as_ = crate::metrics::accuracy(&y, &strong.predict(&x));
        assert!(as_ >= aw);
    }

    #[test]
    fn probabilities_are_distributions() {
        let (x, y) = three_class_data(100, 4);
        let mut g = GradientBoosting::new(GBoostParams {
            n_estimators: 5,
            ..Default::default()
        });
        g.fit(&x, &y, 3).unwrap();
        for i in 0..x.rows() {
            let p = g.predict_proba_row(x.row(i));
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = three_class_data(120, 5);
        let params = GBoostParams {
            n_estimators: 8,
            subsample: 0.7,
            seed: 11,
            ..Default::default()
        };
        let mut a = GradientBoosting::new(params);
        let mut b = GradientBoosting::new(params);
        a.fit(&x, &y, 3).unwrap();
        b.fit(&x, &y, 3).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn softmax_is_stable_for_large_scores() {
        let p = softmax(&[1000.0, 1000.0]);
        assert!((p[0] - 0.5).abs() < 1e-12);
    }
}
