//! K-Nearest-Neighbours classifier (z-scored Euclidean distance, majority
//! vote). One of the two simple baselines the paper found to underfit.

use crate::classifier::Classifier;
use crate::error::{validate_fit, MlError};
use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// KNN hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KnnParams {
    pub k: usize,
}

impl Default for KnnParams {
    fn default() -> Self {
        KnnParams { k: 5 }
    }
}

/// Standardizing KNN. Stores the training set (it is a lazy learner).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Knn {
    params: KnnParams,
    x: Option<Matrix>,
    y: Vec<usize>,
    mean: Vec<f64>,
    std: Vec<f64>,
    n_classes: usize,
}

impl Knn {
    pub fn new(params: KnnParams) -> Self {
        Knn {
            params,
            x: None,
            y: Vec::new(),
            mean: Vec::new(),
            std: Vec::new(),
            n_classes: 0,
        }
    }

    pub fn params(&self) -> &KnnParams {
        &self.params
    }

    fn standardize(&self, row: &[f64]) -> Vec<f64> {
        row.iter()
            .zip(&self.mean)
            .zip(&self.std)
            .map(|((v, m), s)| if *s > 0.0 { (v - m) / s } else { 0.0 })
            .collect()
    }
}

impl Classifier for Knn {
    fn fit(&mut self, x: &Matrix, y: &[usize], n_classes: usize) -> Result<(), MlError> {
        validate_fit(x.rows(), y, n_classes)?;
        if self.params.k < 1 {
            return Err(MlError::InvalidParam {
                param: "k",
                why: "must be at least 1".into(),
            });
        }
        let (mean, std) = x.column_stats();
        self.mean = mean;
        self.std = std;
        let mut z = Matrix::zeros(x.rows(), x.cols());
        for i in 0..x.rows() {
            let s = self.standardize(x.row(i));
            z.row_mut(i).copy_from_slice(&s);
        }
        self.x = Some(z);
        self.y = y.to_vec();
        self.n_classes = n_classes;
        Ok(())
    }

    fn predict_proba_row(&self, row: &[f64]) -> Vec<f64> {
        debug_assert!(self.x.is_some(), "predict before fit");
        let Some(x) = self.x.as_ref() else {
            // Unfit model: uniform distribution, never an abort.
            return vec![1.0 / self.n_classes.max(1) as f64; self.n_classes];
        };
        let q = self.standardize(row);
        // Distances to every training point; take the k smallest.
        let mut dist: Vec<(f64, usize)> = (0..x.rows())
            .map(|i| {
                let d: f64 = x
                    .row(i)
                    .iter()
                    .zip(&q)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                (d, self.y[i])
            })
            .collect();
        let k = self.params.k.min(dist.len());
        dist.select_nth_unstable_by(k - 1, |a, b| a.0.total_cmp(&b.0));
        let mut votes = vec![0.0; self.n_classes];
        for &(_, c) in &dist[..k] {
            votes[c] += 1.0;
        }
        for v in &mut votes {
            *v /= k as f64;
        }
        votes
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_neighbour_classifies_blobs() {
        let x = Matrix::from_rows([[0.0, 0.0], [0.1, 0.1], [5.0, 5.0], [5.1, 5.2]]);
        let y = vec![0, 0, 1, 1];
        let mut m = Knn::new(KnnParams { k: 1 });
        m.fit(&x, &y, 2).unwrap();
        assert_eq!(
            m.predict(&Matrix::from_rows([[0.05, 0.0], [5.05, 5.1]])),
            vec![0, 1]
        );
    }

    #[test]
    fn standardization_rescues_dominant_feature() {
        // Feature 0 has a huge scale but is pure noise; feature 1 decides.
        let x = Matrix::from_rows([[1000.0, 0.0], [-950.0, 0.1], [980.0, 5.0], [-990.0, 5.1]]);
        let y = vec![0, 0, 1, 1];
        let mut m = Knn::new(KnnParams { k: 1 });
        m.fit(&x, &y, 2).unwrap();
        let pred = m.predict(&Matrix::from_rows([[0.0, 0.05], [0.0, 5.05]]));
        assert_eq!(pred, vec![0, 1]);
    }

    #[test]
    fn votes_are_probabilities() {
        let x = Matrix::from_rows([[0.0], [0.2], [0.4], [5.0]]);
        let y = vec![0, 0, 1, 1];
        let mut m = Knn::new(KnnParams { k: 3 });
        m.fit(&x, &y, 2).unwrap();
        let p = m.predict_proba_row(&[0.1]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(p, vec![2.0 / 3.0, 1.0 / 3.0]);
    }

    #[test]
    fn k_larger_than_dataset_is_clamped() {
        let x = Matrix::from_rows([[0.0], [1.0]]);
        let y = vec![0, 1];
        let mut m = Knn::new(KnnParams { k: 50 });
        m.fit(&x, &y, 2).unwrap();
        let p = m.predict_proba_row(&[0.4]);
        assert_eq!(p, vec![0.5, 0.5]);
    }
}
