//! # pml-mlcore
//!
//! From-scratch classical machine learning for the PML-MPI reproduction —
//! the scikit-learn 1.2.2 stand-in (§V-C of the paper).
//!
//! Estimators: [`forest::RandomForest`] (the model the paper ships),
//! [`gboost::GradientBoosting`], [`knn::Knn`], and [`svm::LinearSvm`], all
//! behind the [`classifier::Classifier`] trait. [`tree`] holds the CART
//! building blocks (Gini classification + MSE regression trees, with
//! Gini-decrease feature importances). [`metrics`] and [`model_selection`]
//! provide accuracy / macro one-vs-rest ROC AUC, stratified k-fold CV, and
//! grid search. Every fitted model serializes with serde — that is how the
//! "pre-trained model shipped with the MPI library" workflow is realized.

#![deny(rust_2018_idioms, missing_debug_implementations)]
#![deny(clippy::dbg_macro, clippy::todo)]
pub mod binned;
pub mod classifier;
pub mod dataset;
pub mod error;
pub mod forest;
pub mod gboost;
pub mod knn;
pub mod matrix;
pub mod metrics;
pub mod model_selection;
pub mod svm;
pub mod tree;
pub mod verify;

pub use binned::{BinnedMatrix, SplitFinder};
pub use classifier::Classifier;
pub use dataset::Dataset;
pub use error::MlError;
pub use forest::{ForestParams, RandomForest};
pub use gboost::{GBoostParams, GradientBoosting};
pub use knn::{Knn, KnnParams};
pub use matrix::Matrix;
pub use svm::{LinearSvm, SvmParams};
pub use tree::{DecisionTree, MaxFeatures, RegressionTree, TreeParams, TreeScratch};
pub use verify::{ForestIssue, ForestLoadError, StructureIssue};
