//! Dense row-major feature matrix.
//!
//! Deliberately minimal: the dataset here is ~10⁴ rows × 14 columns, so a
//! contiguous `Vec<f64>` with row views is all the linear algebra this
//! project needs — no BLAS, no ndarray.

use serde::{Deserialize, Serialize};

/// Dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl Matrix {
    /// Build from row-major data whose shape holds at the call site;
    /// debug builds assert `data.len() == rows·cols`.
    pub fn from_vec(data: Vec<f64>, rows: usize, cols: usize) -> Self {
        debug_assert_eq!(data.len(), rows * cols, "data length must be rows*cols");
        Matrix { data, rows, cols }
    }

    /// Build from an iterator of rows, which must all share one width;
    /// debug builds assert against ragged input.
    pub fn from_rows<I, R>(rows: I) -> Self
    where
        I: IntoIterator<Item = R>,
        R: AsRef<[f64]>,
    {
        let mut data = Vec::new();
        let mut n_rows = 0;
        let mut n_cols = None;
        for row in rows {
            let row = row.as_ref();
            match n_cols {
                None => n_cols = Some(row.len()),
                Some(c) => debug_assert_eq!(c, row.len(), "ragged rows"),
            }
            data.extend_from_slice(row);
            n_rows += 1;
        }
        Matrix {
            data,
            rows: n_rows,
            cols: n_cols.unwrap_or(0),
        }
    }

    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// View of row `i`.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of row `i`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.cols + j]
    }

    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.cols + j] = v;
    }

    /// New matrix containing the given rows, in order.
    pub fn select_rows(&self, idx: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(idx.len() * self.cols);
        for &i in idx {
            data.extend_from_slice(self.row(i));
        }
        Matrix {
            data,
            rows: idx.len(),
            cols: self.cols,
        }
    }

    /// The whole row-major backing buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the row-major backing buffer, for kernels that fill
    /// disjoint row blocks in parallel.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Iterator over row views.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1)).take(self.rows)
    }

    /// Per-column mean and standard deviation (population), used by the
    /// distance/margin-based models that need standardized inputs.
    pub fn column_stats(&self) -> (Vec<f64>, Vec<f64>) {
        let mut mean = vec![0.0; self.cols];
        for row in self.iter_rows() {
            for (m, v) in mean.iter_mut().zip(row) {
                *m += v;
            }
        }
        let n = self.rows.max(1) as f64;
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0; self.cols];
        for row in self.iter_rows() {
            for ((s, v), m) in var.iter_mut().zip(row).zip(&mean) {
                *s += (v - m) * (v - m);
            }
        }
        let std: Vec<f64> = var.iter().map(|s| (s / n).sqrt()).collect();
        (mean, std)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_and_access() {
        let m = Matrix::from_rows([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]]);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.get(2, 1), 6.0);
    }

    #[test]
    fn select_rows_reorders() {
        let m = Matrix::from_rows([[1.0], [2.0], [3.0]]);
        let s = m.select_rows(&[2, 0]);
        assert_eq!(s.row(0), &[3.0]);
        assert_eq!(s.row(1), &[1.0]);
    }

    #[test]
    fn column_stats() {
        let m = Matrix::from_rows([[1.0, 10.0], [3.0, 10.0]]);
        let (mean, std) = m.column_stats();
        assert_eq!(mean, vec![2.0, 10.0]);
        assert_eq!(std[0], 1.0);
        assert_eq!(std[1], 0.0);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "rows*cols")]
    fn bad_shape_rejected() {
        Matrix::from_vec(vec![1.0, 2.0, 3.0], 2, 2);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rejected() {
        Matrix::from_rows([vec![1.0], vec![1.0, 2.0]]);
    }
}
