//! Evaluation metrics: accuracy, confusion matrix, and the one-vs-rest
//! macro ROC AUC the paper uses during cross-validation to resist class
//! imbalance (§V-C).

use crate::matrix::Matrix;

/// Fraction of exact label matches.
///
/// Callers pass equal-length slices (debug builds assert); a missing
/// prediction counts as a miss, never an abort.
pub fn accuracy(truth: &[usize], pred: &[usize]) -> f64 {
    debug_assert_eq!(truth.len(), pred.len(), "length mismatch");
    if truth.is_empty() {
        return 0.0;
    }
    let correct = truth.iter().zip(pred).filter(|(t, p)| t == p).count();
    correct as f64 / truth.len() as f64
}

/// `confusion[t][p]` = samples of true class t predicted as p.
///
/// Callers pass equal-length slices with labels below `n_classes` (debug
/// builds assert); surplus samples and out-of-range labels are dropped.
pub fn confusion_matrix(truth: &[usize], pred: &[usize], n_classes: usize) -> Vec<Vec<usize>> {
    debug_assert_eq!(truth.len(), pred.len(), "length mismatch");
    let mut m = vec![vec![0usize; n_classes]; n_classes];
    for (&t, &p) in truth.iter().zip(pred) {
        debug_assert!(t < n_classes && p < n_classes, "label out of range");
        if t < n_classes && p < n_classes {
            m[t][p] += 1;
        }
    }
    m
}

/// Binary ROC AUC from scores (probability of the positive class), computed
/// as the Mann–Whitney U statistic with proper tie handling.
///
/// Callers pass equal-length slices (debug builds assert); otherwise the
/// common prefix is scored.
pub fn roc_auc_binary(truth: &[bool], scores: &[f64]) -> f64 {
    debug_assert_eq!(truth.len(), scores.len(), "length mismatch");
    let n = truth.len().min(scores.len());
    let (truth, scores) = (&truth[..n], &scores[..n]);
    let n_pos = truth.iter().filter(|&&t| t).count();
    let n_neg = truth.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5; // undefined; neutral by convention
    }
    // Rank the scores (average ranks over ties).
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    let mut rank = vec![0.0f64; scores.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0; // 1-based average rank
        for &k in &order[i..=j] {
            rank[k] = avg;
        }
        i = j + 1;
    }
    let rank_sum_pos: f64 = truth
        .iter()
        .zip(&rank)
        .filter_map(|(&t, &r)| t.then_some(r))
        .sum();
    let u = rank_sum_pos - (n_pos * (n_pos + 1)) as f64 / 2.0;
    u / (n_pos * n_neg) as f64
}

/// Macro-averaged one-vs-rest ROC AUC from a class-probability matrix.
/// Classes absent from `truth` are skipped (their OvR AUC is undefined).
///
/// Callers pass one probability row per sample (debug builds assert);
/// otherwise the common prefix is scored.
pub fn macro_ovr_auc(truth: &[usize], proba: &Matrix) -> f64 {
    debug_assert_eq!(truth.len(), proba.rows(), "one probability row per sample");
    let n = truth.len().min(proba.rows());
    let truth = &truth[..n];
    let n_classes = proba.cols();
    let mut total = 0.0;
    let mut counted = 0usize;
    for c in 0..n_classes {
        let bin: Vec<bool> = truth.iter().map(|&t| t == c).collect();
        if bin.iter().all(|&b| !b) || bin.iter().all(|&b| b) {
            continue;
        }
        let scores: Vec<f64> = (0..n).map(|i| proba.get(i, c)).collect();
        total += roc_auc_binary(&bin, &scores);
        counted += 1;
    }
    if counted == 0 {
        0.5
    } else {
        total / counted as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basics() {
        assert_eq!(accuracy(&[0, 1, 1], &[0, 1, 0]), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn confusion_counts() {
        let m = confusion_matrix(&[0, 0, 1, 1], &[0, 1, 1, 1], 2);
        assert_eq!(m, vec![vec![1, 1], vec![0, 2]]);
    }

    #[test]
    fn perfect_ranking_gives_auc_one() {
        let auc = roc_auc_binary(&[false, false, true, true], &[0.1, 0.2, 0.8, 0.9]);
        assert_eq!(auc, 1.0);
    }

    #[test]
    fn inverted_ranking_gives_auc_zero() {
        let auc = roc_auc_binary(&[true, true, false, false], &[0.1, 0.2, 0.8, 0.9]);
        assert_eq!(auc, 0.0);
    }

    #[test]
    fn random_scores_give_auc_half_under_ties() {
        let auc = roc_auc_binary(&[true, false, true, false], &[0.5, 0.5, 0.5, 0.5]);
        assert_eq!(auc, 0.5);
    }

    #[test]
    fn single_class_defaults_to_half() {
        assert_eq!(roc_auc_binary(&[true, true], &[0.3, 0.9]), 0.5);
    }

    #[test]
    fn macro_auc_on_perfect_probabilities() {
        let truth = vec![0, 1, 2];
        let proba = Matrix::from_rows([[0.9, 0.05, 0.05], [0.05, 0.9, 0.05], [0.05, 0.05, 0.9]]);
        assert_eq!(macro_ovr_auc(&truth, &proba), 1.0);
    }

    #[test]
    fn macro_auc_skips_absent_classes() {
        let truth = vec![0, 0, 1];
        let proba = Matrix::from_rows([[0.9, 0.1, 0.0], [0.8, 0.2, 0.0], [0.2, 0.8, 0.0]]);
        // Class 2 never appears; AUC averages over classes 0 and 1 only.
        assert_eq!(macro_ovr_auc(&truth, &proba), 1.0);
    }
}
