//! Train/test splitting, stratified k-fold cross-validation, and grid
//! search — the paper's "extensive hyperparameter tuning" machinery, with
//! AUC as the CV criterion (§V-C).

use crate::classifier::Classifier;
use crate::dataset::Dataset;
use crate::error::MlError;
use crate::metrics::{accuracy, macro_ovr_auc};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Shuffled train/test split: `test_fraction` of rows go to the test set.
pub fn train_test_split(
    data: &Dataset,
    test_fraction: f64,
    seed: u64,
) -> Result<(Dataset, Dataset), MlError> {
    if !(0.0..1.0).contains(&test_fraction) {
        return Err(MlError::InvalidParam {
            param: "test_fraction",
            why: format!("{test_fraction} not in [0, 1)"),
        });
    }
    let mut idx: Vec<usize> = (0..data.len()).collect();
    idx.shuffle(&mut StdRng::seed_from_u64(seed));
    let n_test = ((data.len() as f64) * test_fraction).round() as usize;
    let (test_idx, train_idx) = idx.split_at(n_test.min(data.len()));
    Ok((data.select(train_idx), data.select(test_idx)))
}

/// Stratified k-fold assignment: `fold[i]` in `0..k`, with each class's
/// samples spread evenly over folds.
pub fn stratified_folds(
    y: &[usize],
    n_classes: usize,
    k: usize,
    seed: u64,
) -> Result<Vec<usize>, MlError> {
    if k < 2 {
        return Err(MlError::InvalidParam {
            param: "k",
            why: "need at least two folds".into(),
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut fold = vec![0usize; y.len()];
    for c in 0..n_classes {
        let mut members: Vec<usize> = (0..y.len()).filter(|&i| y[i] == c).collect();
        members.shuffle(&mut rng);
        for (pos, &i) in members.iter().enumerate() {
            fold[i] = pos % k;
        }
    }
    Ok(fold)
}

/// What a cross-validation run optimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scoring {
    Accuracy,
    /// Macro one-vs-rest ROC AUC — robust to class imbalance, the paper's
    /// choice during CV.
    MacroAuc,
}

/// Mean k-fold cross-validation score for a model factory.
pub fn cross_val_score<M, F>(
    data: &Dataset,
    k: usize,
    seed: u64,
    scoring: Scoring,
    make_model: F,
) -> Result<f64, MlError>
where
    M: Classifier,
    F: Fn() -> M,
{
    let folds = stratified_folds(&data.y, data.n_classes, k, seed)?;
    let mut total = 0.0;
    for f in 0..k {
        let train_idx: Vec<usize> = (0..data.len()).filter(|&i| folds[i] != f).collect();
        let val_idx: Vec<usize> = (0..data.len()).filter(|&i| folds[i] == f).collect();
        if train_idx.is_empty() || val_idx.is_empty() {
            continue;
        }
        let train = data.select(&train_idx);
        let val = data.select(&val_idx);
        let mut model = make_model();
        model.fit(&train.x, &train.y, data.n_classes)?;
        total += match scoring {
            Scoring::Accuracy => accuracy(&val.y, &model.predict(&val.x)),
            Scoring::MacroAuc => macro_ovr_auc(&val.y, &model.predict_proba(&val.x)),
        };
    }
    Ok(total / k as f64)
}

/// Exhaustive grid search: evaluates `make_model(params)` for every
/// candidate by k-fold CV and returns (best params, best score).
pub fn grid_search<P, M, F>(
    data: &Dataset,
    candidates: &[P],
    k: usize,
    seed: u64,
    scoring: Scoring,
    make_model: F,
) -> Result<(P, f64), MlError>
where
    P: Clone,
    M: Classifier,
    F: Fn(&P) -> M,
{
    let mut best: Option<(P, f64)> = None;
    for p in candidates {
        let score = cross_val_score(data, k, seed, scoring, || make_model(p))?;
        if best.as_ref().is_none_or(|(_, bs)| score > *bs) {
            best = Some((p.clone(), score));
        }
    }
    best.ok_or(MlError::NoCandidates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::{ForestParams, RandomForest};
    use crate::matrix::Matrix;
    use rand::Rng;

    fn dataset(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let a: f64 = rng.gen_range(0.0..1.0);
            let b: f64 = rng.gen_range(0.0..1.0);
            rows.push(vec![a, b]);
            y.push(usize::from(a > b));
        }
        Dataset::new(Matrix::from_rows(rows), y, 2, vec!["a".into(), "b".into()])
    }

    #[test]
    fn split_partitions_data() {
        let d = dataset(100, 1);
        let (train, test) = train_test_split(&d, 0.3, 42).unwrap();
        assert_eq!(train.len(), 70);
        assert_eq!(test.len(), 30);
    }

    #[test]
    fn split_is_deterministic() {
        let d = dataset(50, 2);
        let (a, _) = train_test_split(&d, 0.3, 7).unwrap();
        let (b, _) = train_test_split(&d, 0.3, 7).unwrap();
        assert_eq!(a.y, b.y);
    }

    #[test]
    fn stratified_folds_balance_classes() {
        let y: Vec<usize> = (0..100).map(|i| usize::from(i < 20)).collect();
        let folds = stratified_folds(&y, 2, 5, 0).unwrap();
        for f in 0..5 {
            let minority = (0..100).filter(|&i| folds[i] == f && y[i] == 1).count();
            assert_eq!(minority, 4); // 20 minority samples over 5 folds
        }
    }

    #[test]
    fn cross_val_scores_sensibly() {
        let d = dataset(200, 3);
        let score = cross_val_score(&d, 5, 0, Scoring::Accuracy, || {
            RandomForest::new(ForestParams {
                n_estimators: 15,
                ..Default::default()
            })
        })
        .unwrap();
        assert!(score > 0.85, "cv accuracy {score}");
    }

    #[test]
    fn grid_search_prefers_more_trees() {
        let d = dataset(150, 4);
        let candidates = vec![1usize, 25];
        let (best, score) = grid_search(&d, &candidates, 4, 0, Scoring::MacroAuc, |&n| {
            RandomForest::new(ForestParams {
                n_estimators: n,
                ..Default::default()
            })
        })
        .unwrap();
        assert_eq!(best, 25);
        assert!(score > 0.9);
    }
}
