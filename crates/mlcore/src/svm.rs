//! Linear Support Vector Machine, one-vs-rest, trained with the Pegasos
//! stochastic sub-gradient method on the hinge loss. The paper's other
//! underfitting baseline (the tuning-table decision surface is far from
//! linear).

use crate::classifier::Classifier;
use crate::error::{validate_fit, MlError};
use crate::matrix::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// SVM hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SvmParams {
    /// Regularization strength λ of the Pegasos objective.
    pub lambda: f64,
    /// Passes over the data.
    pub epochs: usize,
    pub seed: u64,
}

impl Default for SvmParams {
    fn default() -> Self {
        SvmParams {
            lambda: 1e-3,
            epochs: 30,
            seed: 0,
        }
    }
}

/// One binary hyperplane (w, b) per class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearSvm {
    params: SvmParams,
    /// Per-class weight vectors, in standardized feature space.
    w: Vec<Vec<f64>>,
    b: Vec<f64>,
    mean: Vec<f64>,
    std: Vec<f64>,
    n_classes: usize,
}

impl LinearSvm {
    pub fn new(params: SvmParams) -> Self {
        LinearSvm {
            params,
            w: Vec::new(),
            b: Vec::new(),
            mean: Vec::new(),
            std: Vec::new(),
            n_classes: 0,
        }
    }

    pub fn params(&self) -> &SvmParams {
        &self.params
    }

    fn standardize(&self, row: &[f64]) -> Vec<f64> {
        row.iter()
            .zip(&self.mean)
            .zip(&self.std)
            .map(|((v, m), s)| if *s > 0.0 { (v - m) / s } else { 0.0 })
            .collect()
    }

    /// Per-class margins for one (already standardized) sample.
    fn margins(&self, z: &[f64]) -> Vec<f64> {
        (0..self.n_classes)
            .map(|c| self.w[c].iter().zip(z).map(|(wi, zi)| wi * zi).sum::<f64>() + self.b[c])
            .collect()
    }
}

impl Classifier for LinearSvm {
    fn fit(&mut self, x: &Matrix, y: &[usize], n_classes: usize) -> Result<(), MlError> {
        validate_fit(x.rows(), y, n_classes)?;
        if self.params.lambda <= 0.0 {
            return Err(MlError::InvalidParam {
                param: "lambda",
                why: format!("{} is not positive", self.params.lambda),
            });
        }
        if self.params.epochs < 1 {
            return Err(MlError::InvalidParam {
                param: "epochs",
                why: "need at least one epoch".into(),
            });
        }
        let n = x.rows();
        let d = x.cols();
        self.n_classes = n_classes;
        let (mean, std) = x.column_stats();
        self.mean = mean;
        self.std = std;
        let z: Vec<Vec<f64>> = (0..n).map(|i| self.standardize(x.row(i))).collect();

        self.w = vec![vec![0.0; d]; n_classes];
        self.b = vec![0.0; n_classes];
        let lambda = self.params.lambda;
        let mut rng = StdRng::seed_from_u64(self.params.seed);
        let mut order: Vec<usize> = (0..n).collect();

        for c in 0..n_classes {
            let w = &mut self.w[c];
            let b = &mut self.b[c];
            let mut t = 0u64;
            for _ in 0..self.params.epochs {
                order.shuffle(&mut rng);
                for &i in order.iter() {
                    t += 1;
                    let eta = 1.0 / (lambda * t as f64);
                    let yi = if y[i] == c { 1.0 } else { -1.0 };
                    let margin: f64 = w.iter().zip(&z[i]).map(|(wi, zi)| wi * zi).sum::<f64>() + *b;
                    // w ← (1 − ηλ)w [+ η·y·x when the margin is violated]
                    let shrink = 1.0 - eta * lambda;
                    for wi in w.iter_mut() {
                        *wi *= shrink;
                    }
                    if yi * margin < 1.0 {
                        for (wi, zi) in w.iter_mut().zip(&z[i]) {
                            *wi += eta * yi * zi;
                        }
                        *b += eta * yi;
                    }
                }
            }
        }
        Ok(())
    }

    fn predict_proba_row(&self, row: &[f64]) -> Vec<f64> {
        debug_assert!(!self.w.is_empty(), "predict before fit");
        if self.w.is_empty() {
            // Unfit model: uniform distribution, never an abort.
            return vec![1.0 / self.n_classes.max(1) as f64; self.n_classes];
        }
        let z = self.standardize(row);
        // Softmax over margins: a calibrated-ish score good enough for
        // argmax and AUC ranking.
        let m = self.margins(&z);
        let mx = m.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let exp: Vec<f64> = m.iter().map(|v| (v - mx).exp()).collect();
        let s: f64 = exp.iter().sum();
        exp.into_iter().map(|e| e / s).collect()
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn linearly_separable(n: usize, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let a: f64 = rng.gen_range(-1.0..1.0);
            let b: f64 = rng.gen_range(-1.0..1.0);
            rows.push(vec![a, b]);
            y.push(usize::from(a + 2.0 * b > 0.2));
        }
        (Matrix::from_rows(rows), y)
    }

    #[test]
    fn separates_linear_classes() {
        let (x, y) = linearly_separable(400, 1);
        let (xt, yt) = linearly_separable(200, 2);
        let mut m = LinearSvm::new(SvmParams::default());
        m.fit(&x, &y, 2).unwrap();
        let acc = crate::metrics::accuracy(&yt, &m.predict(&xt));
        assert!(acc > 0.93, "accuracy {acc}");
    }

    #[test]
    fn underfits_xor_as_expected() {
        // XOR is not linearly separable; a linear SVM must do badly —
        // this is the paper's observed failure mode for SVM.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let a: f64 = rng.gen_range(-1.0..1.0);
            let b: f64 = rng.gen_range(-1.0..1.0);
            rows.push(vec![a, b]);
            y.push(usize::from((a > 0.0) != (b > 0.0)));
        }
        let x = Matrix::from_rows(rows);
        let mut m = LinearSvm::new(SvmParams::default());
        m.fit(&x, &y, 2).unwrap();
        let acc = crate::metrics::accuracy(&y, &m.predict(&x));
        assert!(acc < 0.75, "XOR should not be separable, got {acc}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = linearly_separable(100, 4);
        let mut a = LinearSvm::new(SvmParams {
            seed: 5,
            ..Default::default()
        });
        let mut b = LinearSvm::new(SvmParams {
            seed: 5,
            ..Default::default()
        });
        a.fit(&x, &y, 2).unwrap();
        b.fit(&x, &y, 2).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn multiclass_one_vs_rest() {
        // Three vertical bands.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..90 {
            let a = (i % 3) as f64 * 10.0 + (i as f64 % 1.0);
            rows.push(vec![a, 0.0]);
            y.push(i % 3);
        }
        let x = Matrix::from_rows(rows);
        let mut m = LinearSvm::new(SvmParams {
            epochs: 60,
            ..Default::default()
        });
        m.fit(&x, &y, 3).unwrap();
        let acc = crate::metrics::accuracy(&y, &m.predict(&x));
        assert!(acc > 0.9, "accuracy {acc}");
    }
}
