//! CART decision trees: a Gini classification tree (the building block of
//! the Random Forest) and an MSE regression tree (the weak learner inside
//! Gradient Boosting).

use crate::matrix::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

/// How many candidate features each split considers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MaxFeatures {
    /// Every feature (plain CART).
    All,
    /// ⌈√d⌉ random features — the Random Forest default.
    Sqrt,
    /// ⌈log₂ d⌉ random features.
    Log2,
    /// Exactly this many random features.
    Count(usize),
}

impl MaxFeatures {
    fn resolve(self, d: usize) -> usize {
        match self {
            MaxFeatures::All => d,
            MaxFeatures::Sqrt => (d as f64).sqrt().ceil() as usize,
            MaxFeatures::Log2 => (d as f64).log2().ceil().max(1.0) as usize,
            MaxFeatures::Count(k) => k.clamp(1, d),
        }
    }
}

/// Growth limits shared by both tree kinds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeParams {
    pub max_depth: Option<usize>,
    pub min_samples_split: usize,
    pub min_samples_leaf: usize,
    pub max_features: MaxFeatures,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: None,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: MaxFeatures::All,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    /// Class-probability leaf (classification) or mean-value leaf
    /// (regression, stored as a 1-element vector).
    Leaf { value: Vec<f64> },
    Split {
        feature: usize,
        threshold: f64,
        left: u32,
        right: u32,
    },
}

/// Walk shared by both tree kinds: follow splits from the root and return
/// the reached leaf's payload.
fn descend<'a>(nodes: &'a [Node], row: &[f64]) -> &'a [f64] {
    let mut i = 0usize;
    loop {
        match &nodes[i] {
            Node::Leaf { value } => return value,
            Node::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                i = if row[*feature] <= *threshold {
                    *left as usize
                } else {
                    *right as usize
                };
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Classification
// ---------------------------------------------------------------------------

/// Gini-impurity CART classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    n_classes: usize,
    /// Unnormalized Gini-decrease importance per feature.
    raw_importance: Vec<f64>,
}

fn gini(counts: &[f64], total: f64) -> f64 {
    if total <= 0.0 {
        return 0.0;
    }
    1.0 - counts
        .iter()
        .map(|c| (c / total) * (c / total))
        .sum::<f64>()
}

impl DecisionTree {
    /// Fit on `x`/`y`. The RNG drives the per-split feature subsampling
    /// (only relevant when `max_features != All`).
    ///
    /// Callers pass one label per row and at least one sample (the public
    /// path validates through `Dataset::try_new`); on mismatched lengths the
    /// fit uses the common prefix, and debug builds assert.
    pub fn fit(
        x: &Matrix,
        y: &[usize],
        n_classes: usize,
        params: &TreeParams,
        rng: &mut StdRng,
    ) -> Self {
        debug_assert_eq!(x.rows(), y.len(), "one label per row");
        debug_assert!(n_classes >= 1);
        debug_assert!(x.rows() >= 1, "cannot fit on an empty dataset");
        let n = x.rows().min(y.len());
        let mut tree = DecisionTree {
            nodes: Vec::new(),
            n_classes,
            raw_importance: vec![0.0; x.cols()],
        };
        let idx: Vec<usize> = (0..n).collect();
        tree.grow(x, y, idx, params, rng, 0, n as f64);
        tree
    }

    fn leaf_from(&mut self, y: &[usize], idx: &[usize]) -> u32 {
        let mut dist = vec![0.0; self.n_classes];
        for &i in idx {
            dist[y[i]] += 1.0;
        }
        let total: f64 = dist.iter().sum();
        if total > 0.0 {
            for d in &mut dist {
                *d /= total;
            }
        }
        self.nodes.push(Node::Leaf { value: dist });
        (self.nodes.len() - 1) as u32
    }

    #[allow(clippy::too_many_arguments)]
    fn grow(
        &mut self,
        x: &Matrix,
        y: &[usize],
        idx: Vec<usize>,
        params: &TreeParams,
        rng: &mut StdRng,
        depth: usize,
        n_total: f64,
    ) -> u32 {
        let n = idx.len();
        let mut counts = vec![0.0f64; self.n_classes];
        for &i in &idx {
            counts[y[i]] += 1.0;
        }
        let impurity = gini(&counts, n as f64);
        let depth_stop = params.max_depth.is_some_and(|d| depth >= d);
        if impurity == 0.0 || n < params.min_samples_split || depth_stop {
            return self.leaf_from(y, &idx);
        }

        // Feature subset for this split.
        let d = x.cols();
        let k = params.max_features.resolve(d);
        let features: Vec<usize> = if k >= d {
            (0..d).collect()
        } else {
            let mut all: Vec<usize> = (0..d).collect();
            all.shuffle(rng);
            let mut subset = all[..k].to_vec();
            subset.sort_unstable();
            subset
        };

        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, decrease)
        let mut sorted: Vec<(f64, usize)> = Vec::with_capacity(n);
        for &f in &features {
            sorted.clear();
            sorted.extend(idx.iter().map(|&i| (x.get(i, f), y[i])));
            sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
            let mut left = vec![0.0f64; self.n_classes];
            let mut right = counts.clone();
            for split_at in 1..n {
                let (v_prev, c_prev) = sorted[split_at - 1];
                left[c_prev] += 1.0;
                right[c_prev] -= 1.0;
                let v_next = sorted[split_at].0;
                if v_prev == v_next {
                    continue; // cannot split between equal values
                }
                let nl = split_at;
                let nr = n - split_at;
                if nl < params.min_samples_leaf || nr < params.min_samples_leaf {
                    continue;
                }
                let w_impurity = (nl as f64 * gini(&left, nl as f64)
                    + nr as f64 * gini(&right, nr as f64))
                    / n as f64;
                let decrease = impurity - w_impurity;
                if best.map_or(decrease > 1e-12, |(_, _, bd)| decrease > bd + 1e-12) {
                    best = Some((f, 0.5 * (v_prev + v_next), decrease));
                }
            }
        }

        let Some((feature, threshold, decrease)) = best else {
            return self.leaf_from(y, &idx);
        };
        self.raw_importance[feature] += (n as f64 / n_total) * decrease;

        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = idx
            .into_iter()
            .partition(|&i| x.get(i, feature) <= threshold);
        // Reserve this node's slot before growing children.
        self.nodes.push(Node::Leaf { value: Vec::new() });
        let me = (self.nodes.len() - 1) as u32;
        let left = self.grow(x, y, left_idx, params, rng, depth + 1, n_total);
        let right = self.grow(x, y, right_idx, params, rng, depth + 1, n_total);
        self.nodes[me as usize] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        me
    }

    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Depth of the deepest leaf.
    pub fn depth(&self) -> usize {
        fn rec(nodes: &[Node], i: usize) -> usize {
            match &nodes[i] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => {
                    1 + rec(nodes, *left as usize).max(rec(nodes, *right as usize))
                }
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            rec(&self.nodes, 0)
        }
    }

    /// Class-probability vector for one sample.
    pub fn predict_proba_row(&self, row: &[f64]) -> Vec<f64> {
        descend(&self.nodes, row).to_vec()
    }

    pub fn predict_row(&self, row: &[f64]) -> usize {
        argmax(&self.predict_proba_row(row))
    }

    pub fn predict(&self, x: &Matrix) -> Vec<usize> {
        (0..x.rows()).map(|i| self.predict_row(x.row(i))).collect()
    }

    /// Unnormalized accumulated Gini decrease per feature (the forest sums
    /// these across trees before normalizing).
    pub fn raw_importance(&self) -> &[f64] {
        &self.raw_importance
    }

    /// Normalized feature importance (sums to 1 when any split exists).
    pub fn feature_importances(&self) -> Vec<f64> {
        normalize(self.raw_importance.clone())
    }
}

// ---------------------------------------------------------------------------
// Regression
// ---------------------------------------------------------------------------

/// MSE (variance-reduction) CART regressor, the gradient-boosting weak
/// learner.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegressionTree {
    nodes: Vec<Node>,
    raw_importance: Vec<f64>,
}

impl RegressionTree {
    /// Fit on `x`/`y`. Same contract as [`DecisionTree::fit`]: mismatched
    /// lengths fall back to the common prefix, debug builds assert.
    pub fn fit(x: &Matrix, y: &[f64], params: &TreeParams, rng: &mut StdRng) -> Self {
        debug_assert_eq!(x.rows(), y.len(), "one target per row");
        debug_assert!(x.rows() >= 1, "cannot fit on an empty dataset");
        let n = x.rows().min(y.len());
        let mut tree = RegressionTree {
            nodes: Vec::new(),
            raw_importance: vec![0.0; x.cols()],
        };
        let idx: Vec<usize> = (0..n).collect();
        tree.grow(x, y, idx, params, rng, 0, n as f64);
        tree
    }

    fn leaf_from(&mut self, y: &[f64], idx: &[usize]) -> u32 {
        let mean = idx.iter().map(|&i| y[i]).sum::<f64>() / idx.len() as f64;
        self.nodes.push(Node::Leaf { value: vec![mean] });
        (self.nodes.len() - 1) as u32
    }

    #[allow(clippy::too_many_arguments)]
    fn grow(
        &mut self,
        x: &Matrix,
        y: &[f64],
        idx: Vec<usize>,
        params: &TreeParams,
        rng: &mut StdRng,
        depth: usize,
        n_total: f64,
    ) -> u32 {
        let n = idx.len();
        let sum: f64 = idx.iter().map(|&i| y[i]).sum();
        let sum2: f64 = idx.iter().map(|&i| y[i] * y[i]).sum();
        let var = (sum2 - sum * sum / n as f64).max(0.0) / n as f64;
        let depth_stop = params.max_depth.is_some_and(|d| depth >= d);
        if var <= 1e-18 || n < params.min_samples_split || depth_stop {
            return self.leaf_from(y, &idx);
        }

        let d = x.cols();
        let k = params.max_features.resolve(d);
        let features: Vec<usize> = if k >= d {
            (0..d).collect()
        } else {
            let mut all: Vec<usize> = (0..d).collect();
            all.shuffle(rng);
            let mut subset = all[..k].to_vec();
            subset.sort_unstable();
            subset
        };

        let mut best: Option<(usize, f64, f64)> = None;
        let mut sorted: Vec<(f64, f64)> = Vec::with_capacity(n);
        for &f in &features {
            sorted.clear();
            sorted.extend(idx.iter().map(|&i| (x.get(i, f), y[i])));
            sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
            let mut lsum = 0.0;
            let mut lsum2 = 0.0;
            let mut rsum = sum;
            let mut rsum2 = sum2;
            for split_at in 1..n {
                let (v_prev, t_prev) = sorted[split_at - 1];
                lsum += t_prev;
                lsum2 += t_prev * t_prev;
                rsum -= t_prev;
                rsum2 -= t_prev * t_prev;
                let v_next = sorted[split_at].0;
                if v_prev == v_next {
                    continue;
                }
                let nl = split_at as f64;
                let nr = (n - split_at) as f64;
                if (nl as usize) < params.min_samples_leaf
                    || (nr as usize) < params.min_samples_leaf
                {
                    continue;
                }
                let sse = (lsum2 - lsum * lsum / nl) + (rsum2 - rsum * rsum / nr);
                let decrease = var - sse / n as f64;
                if best.map_or(decrease > 1e-15, |(_, _, bd)| decrease > bd + 1e-15) {
                    best = Some((f, 0.5 * (v_prev + v_next), decrease));
                }
            }
        }

        let Some((feature, threshold, decrease)) = best else {
            return self.leaf_from(y, &idx);
        };
        self.raw_importance[feature] += (n as f64 / n_total) * decrease;

        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = idx
            .into_iter()
            .partition(|&i| x.get(i, feature) <= threshold);
        self.nodes.push(Node::Leaf { value: Vec::new() });
        let me = (self.nodes.len() - 1) as u32;
        let left = self.grow(x, y, left_idx, params, rng, depth + 1, n_total);
        let right = self.grow(x, y, right_idx, params, rng, depth + 1, n_total);
        self.nodes[me as usize] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        me
    }

    pub fn predict_row(&self, row: &[f64]) -> f64 {
        descend(&self.nodes, row).first().copied().unwrap_or(0.0)
    }

    pub fn predict(&self, x: &Matrix) -> Vec<f64> {
        (0..x.rows()).map(|i| self.predict_row(x.row(i))).collect()
    }

    pub fn raw_importance(&self) -> &[f64] {
        &self.raw_importance
    }
}

/// Index of the maximum element (first wins ties).
pub fn argmax(v: &[f64]) -> usize {
    let mut best = 0;
    for (i, &x) in v.iter().enumerate() {
        if x > v[best] {
            best = i;
        }
    }
    best
}

/// Normalize a non-negative vector to sum 1 (identity on all-zero input).
pub fn normalize(mut v: Vec<f64>) -> Vec<f64> {
    let s: f64 = v.iter().sum();
    if s > 0.0 {
        for x in &mut v {
            *x /= s;
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    /// Two clearly separable blobs.
    fn blobs() -> (Matrix, Vec<usize>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..40 {
            let j = i as f64 * 0.01;
            rows.push(vec![j, 1.0 + j]);
            y.push(0);
            rows.push(vec![5.0 + j, 6.0 + j]);
            y.push(1);
        }
        (Matrix::from_rows(rows), y)
    }

    #[test]
    fn fits_separable_data_perfectly() {
        let (x, y) = blobs();
        let t = DecisionTree::fit(&x, &y, 2, &TreeParams::default(), &mut rng());
        assert_eq!(t.predict(&x), y);
        assert!(t.depth() >= 1);
    }

    #[test]
    fn pure_node_becomes_leaf() {
        let x = Matrix::from_rows([[1.0], [2.0], [3.0]]);
        let y = vec![1, 1, 1];
        let t = DecisionTree::fit(&x, &y, 2, &TreeParams::default(), &mut rng());
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.predict_proba_row(&[5.0]), vec![0.0, 1.0]);
    }

    #[test]
    fn max_depth_limits_growth() {
        let (x, y) = blobs();
        let params = TreeParams {
            max_depth: Some(1),
            ..Default::default()
        };
        let t = DecisionTree::fit(&x, &y, 2, &params, &mut rng());
        assert!(t.depth() <= 1);
    }

    #[test]
    fn min_samples_leaf_respected() {
        let x = Matrix::from_rows([[0.0], [1.0], [2.0], [3.0]]);
        let y = vec![0, 0, 0, 1];
        let params = TreeParams {
            min_samples_leaf: 2,
            ..Default::default()
        };
        let t = DecisionTree::fit(&x, &y, 2, &params, &mut rng());
        // Only split leaving >= 2 on each side is between index 1 and 2.
        if let Node::Split { threshold, .. } = &t.nodes[0] {
            assert!((1.0..2.0).contains(threshold));
        }
    }

    #[test]
    fn importances_sum_to_one_and_pick_informative_feature() {
        // Feature 1 is informative, feature 0 is constant.
        let x = Matrix::from_rows([[7.0, 0.0], [7.0, 1.0], [7.0, 10.0], [7.0, 11.0]]);
        let y = vec![0, 0, 1, 1];
        let t = DecisionTree::fit(&x, &y, 2, &TreeParams::default(), &mut rng());
        let imp = t.feature_importances();
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(imp[0], 0.0);
        assert!((imp[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = blobs();
        let params = TreeParams {
            max_features: MaxFeatures::Count(1),
            ..Default::default()
        };
        let a = DecisionTree::fit(&x, &y, 2, &params, &mut StdRng::seed_from_u64(9));
        let b = DecisionTree::fit(&x, &y, 2, &params, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn regression_tree_fits_step_function() {
        let x = Matrix::from_rows([[0.0], [1.0], [2.0], [10.0], [11.0], [12.0]]);
        let y = vec![1.0, 1.0, 1.0, 5.0, 5.0, 5.0];
        let t = RegressionTree::fit(&x, &y, &TreeParams::default(), &mut rng());
        assert!((t.predict_row(&[1.5]) - 1.0).abs() < 1e-9);
        assert!((t.predict_row(&[11.0]) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn regression_tree_constant_target_single_leaf() {
        let x = Matrix::from_rows([[0.0], [1.0], [2.0]]);
        let y = vec![3.0, 3.0, 3.0];
        let t = RegressionTree::fit(&x, &y, &TreeParams::default(), &mut rng());
        assert_eq!(t.nodes.len(), 1);
        assert_eq!(t.predict_row(&[9.0]), 3.0);
    }

    #[test]
    fn tree_serde_roundtrip() {
        let (x, y) = blobs();
        let t = DecisionTree::fit(&x, &y, 2, &TreeParams::default(), &mut rng());
        let json = serde_json::to_string(&t).unwrap();
        let back: DecisionTree = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn argmax_first_wins_ties() {
        assert_eq!(argmax(&[0.5, 0.5]), 0);
        assert_eq!(argmax(&[0.1, 0.9, 0.3]), 1);
    }
}
