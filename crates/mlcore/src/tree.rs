//! CART decision trees: a Gini classification tree (the building block of
//! the Random Forest) and an MSE regression tree (the weak learner inside
//! Gradient Boosting).
//!
//! Both tree kinds share a flattened struct-of-arrays node store
//! ([`TreeNodes`]) — parallel `feature`/`threshold`/`children` arrays plus
//! one contiguous leaf-payload arena — so descent touches three small hot
//! arrays instead of chasing an enum per node, and prediction never
//! allocates. Growth comes in two kernels: the original exact sort-based
//! search, and a histogram kernel over a [`BinnedMatrix`] that scores every
//! candidate split of a feature from one O(n) counting pass. On lossless
//! binnings the two kernels choose identical splits (see the equivalence
//! tests at the bottom of this file).

use crate::binned::BinnedMatrix;
use crate::matrix::Matrix;
use crate::verify::StructureIssue;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use serde::{DeError, Deserialize, Serialize, Value};

/// How many candidate features each split considers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MaxFeatures {
    /// Every feature (plain CART).
    All,
    /// ⌈√d⌉ random features — the Random Forest default.
    Sqrt,
    /// ⌈log₂ d⌉ random features.
    Log2,
    /// Exactly this many random features.
    Count(usize),
}

impl MaxFeatures {
    fn resolve(self, d: usize) -> usize {
        match self {
            MaxFeatures::All => d,
            MaxFeatures::Sqrt => (d as f64).sqrt().ceil() as usize,
            MaxFeatures::Log2 => (d as f64).log2().ceil().max(1.0) as usize,
            MaxFeatures::Count(k) => k.clamp(1, d),
        }
    }
}

/// Growth limits shared by both tree kinds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeParams {
    pub max_depth: Option<usize>,
    pub min_samples_split: usize,
    pub min_samples_leaf: usize,
    pub max_features: MaxFeatures,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: None,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: MaxFeatures::All,
        }
    }
}

/// Sentinel in the `feature` array marking a leaf node.
const LEAF: u16 = u16::MAX;

/// Struct-of-arrays node storage shared by both tree kinds.
///
/// Node `i` is a split when `feature[i] != LEAF`: its children are
/// `children[2i]` (left, `row[feature] <= threshold`) and
/// `children[2i + 1]` (right). A leaf stores the offset of its payload in
/// the `leaf_values` arena in `children[2i]`; the payload length is fixed
/// per tree kind (`n_classes` probabilities, or one mean).
#[derive(Debug, Clone, PartialEq, Default)]
struct TreeNodes {
    feature: Vec<u16>,
    threshold: Vec<f64>,
    children: Vec<u32>,
    leaf_values: Vec<f64>,
}

impl TreeNodes {
    fn len(&self) -> usize {
        self.feature.len()
    }

    fn push_leaf(&mut self, values: &[f64]) -> u32 {
        debug_assert!(self.leaf_values.len() < u32::MAX as usize - values.len());
        debug_assert!(self.feature.len() < u32::MAX as usize);
        let off = self.leaf_values.len() as u32;
        self.leaf_values.extend_from_slice(values);
        self.feature.push(LEAF);
        self.threshold.push(0.0);
        self.children.extend([off, 0]);
        (self.feature.len() - 1) as u32
    }

    /// Reserve a node slot before growing its children (the recursion
    /// numbers nodes pre-order, so the slot must exist first).
    fn push_placeholder(&mut self) -> u32 {
        debug_assert!(self.feature.len() < u32::MAX as usize);
        self.feature.push(LEAF);
        self.threshold.push(0.0);
        self.children.extend([0, 0]);
        (self.feature.len() - 1) as u32
    }

    fn set_split(&mut self, i: u32, feature: usize, threshold: f64, left: u32, right: u32) {
        debug_assert!(feature < LEAF as usize, "feature index must fit u16");
        let i = i as usize;
        self.feature[i] = feature as u16;
        self.threshold[i] = threshold;
        self.children[2 * i] = left;
        self.children[2 * i + 1] = right;
    }

    /// Walk from the root and return the reached leaf's payload slice.
    #[inline]
    fn descend(&self, row: &[f64], leaf_len: usize) -> &[f64] {
        let mut i = 0usize;
        loop {
            let f = self.feature[i];
            if f == LEAF {
                let off = self.children[2 * i] as usize;
                return &self.leaf_values[off..off + leaf_len];
            }
            let go_right = row[f as usize] > self.threshold[i];
            i = self.children[2 * i + usize::from(go_right)] as usize;
        }
    }

    fn depth_from(&self, i: usize) -> usize {
        if self.feature[i] == LEAF {
            0
        } else {
            let l = self.depth_from(self.children[2 * i] as usize);
            let r = self.depth_from(self.children[2 * i + 1] as usize);
            1 + l.max(r)
        }
    }
}

/// Reusable per-worker buffers for binned tree growth, so a rayon worker
/// fitting many trees allocates its index/partition/histogram storage once.
#[derive(Debug, Default)]
pub struct TreeScratch {
    /// Row indices of the tree being grown, recursively partitioned in
    /// place — each node owns a `[lo, hi)` window of this buffer.
    rows: Vec<u32>,
    /// Spill buffer for the right half during a stable in-place partition.
    part: Vec<u32>,
    /// Per-(bin, class) counts (classification) or per-bin
    /// (count, sum, sum²) stats (regression), wiped per feature pass —
    /// the bin budget keeps it small enough that a plain fill beats any
    /// touched-slot bookkeeping on this project's low-cardinality features.
    hist: Vec<f64>,
    /// Candidate feature indices for the current node.
    feats: Vec<usize>,
    /// Node-local gather of the labels (classification) or targets
    /// (regression), aligned with the node's `rows` window so every
    /// histogram pass streams them sequentially instead of re-reading `y`
    /// at random — one gather pays for `max_features` histogram passes.
    labels: Vec<u32>,
    yvals: Vec<f64>,
    /// Per-class accumulators for the node being scanned (class counts and
    /// the left/right sides of the candidate boundary) — only live between
    /// a node's entry and its recursion, so one set serves the whole tree.
    counts: Vec<f64>,
    left: Vec<f64>,
    right: Vec<f64>,
}

// ---------------------------------------------------------------------------
// Serialization: versioned, hand-rolled
//
// v2 (written by this code) stores the SoA arrays directly. v1 — the layout
// before the flattening — stored an externally tagged `Node` enum per
// element under a "nodes" key; `migrate_v1` rebuilds it index for index, so
// artifacts serialized by older builds keep their exact topology and
// predictions.
// ---------------------------------------------------------------------------

fn nodes_to_pairs(nodes: &TreeNodes) -> Vec<(String, Value)> {
    vec![
        ("version".to_string(), Value::UInt(2)),
        ("feature".to_string(), nodes.feature.to_value()),
        ("threshold".to_string(), nodes.threshold.to_value()),
        ("children".to_string(), nodes.children.to_value()),
        ("leaf_values".to_string(), nodes.leaf_values.to_value()),
    ]
}

fn nodes_from_pairs(pairs: &[(String, Value)], leaf_len: usize) -> Result<TreeNodes, DeError> {
    let nodes = if pairs.iter().any(|(k, _)| k == "version") {
        TreeNodes {
            feature: serde::__get_field(pairs, "feature")?,
            threshold: serde::__get_field(pairs, "threshold")?,
            children: serde::__get_field(pairs, "children")?,
            leaf_values: serde::__get_field(pairs, "leaf_values")?,
        }
    } else {
        let v1: Vec<Value> = serde::__get_field(pairs, "nodes")?;
        migrate_v1(&v1, leaf_len)?
    };
    validate_nodes(&nodes, leaf_len)?;
    Ok(nodes)
}

fn migrate_v1(nodes: &[Value], leaf_len: usize) -> Result<TreeNodes, DeError> {
    let mut out = TreeNodes::default();
    for v in nodes {
        let pairs = v
            .as_object()
            .ok_or_else(|| DeError::expected("tree node object", v))?;
        match pairs {
            [(tag, body)] if tag == "Leaf" => {
                let fields = body
                    .as_object()
                    .ok_or_else(|| DeError::expected("Leaf body", body))?;
                let value: Vec<f64> = serde::__get_field(fields, "value")?;
                if value.len() != leaf_len {
                    return Err(DeError(format!(
                        "leaf payload has {} values, expected {leaf_len}",
                        value.len()
                    )));
                }
                out.push_leaf(&value);
            }
            [(tag, body)] if tag == "Split" => {
                let fields = body
                    .as_object()
                    .ok_or_else(|| DeError::expected("Split body", body))?;
                let feature: u64 = serde::__get_field(fields, "feature")?;
                let threshold: f64 = serde::__get_field(fields, "threshold")?;
                let left: u32 = serde::__get_field(fields, "left")?;
                let right: u32 = serde::__get_field(fields, "right")?;
                if feature >= u64::from(LEAF) {
                    return Err(DeError(format!(
                        "split feature {feature} exceeds the u16 node layout"
                    )));
                }
                let me = out.push_placeholder();
                out.set_split(me, feature as usize, threshold, left, right);
            }
            _ => return Err(DeError::expected("externally tagged Leaf/Split", v)),
        }
    }
    Ok(out)
}

/// Parse-shape consistency only: the parallel arrays must agree on the
/// node count. Deeper structural invariants (child bounds, topological
/// order, arena layout, leaf simplices) are the typed [`verify_nodes`]
/// pass — deserialization is the wrong layer to diagnose corruption, and
/// every artifact load path runs `verify` before descending a node.
fn validate_nodes(nodes: &TreeNodes, _leaf_len: usize) -> Result<(), DeError> {
    let n = nodes.len();
    if nodes.threshold.len() != n || nodes.children.len() != 2 * n {
        return Err(DeError(format!(
            "inconsistent node arrays: {n} features, {} thresholds, {} children",
            nodes.threshold.len(),
            nodes.children.len()
        )));
    }
    Ok(())
}

/// Prove every structural invariant of a node store: parallel-array
/// consistency, child indices in-bounds and strictly parent-before-child
/// (which rules out cycles and guarantees descent terminates), every
/// non-root node referenced exactly once, leaf sentinel slots zeroed, leaf
/// payloads laid out contiguously in node order, and — for classification
/// trees (`simplex`) — each leaf a probability distribution within 1e-6.
fn verify_nodes(
    nodes: &TreeNodes,
    leaf_len: usize,
    n_features: usize,
    simplex: bool,
) -> Result<(), StructureIssue> {
    const EPS: f64 = 1e-6;
    let n = nodes.len();
    if nodes.threshold.len() != n || nodes.children.len() != 2 * n {
        return Err(StructureIssue::Shape(format!(
            "{n} features, {} thresholds, {} children",
            nodes.threshold.len(),
            nodes.children.len()
        )));
    }
    if n == 0 {
        return Err(StructureIssue::Empty);
    }
    let mut refs = vec![0u8; n];
    let mut next_leaf_off = 0usize;
    for i in 0..n {
        if nodes.feature[i] == LEAF {
            if nodes.children[2 * i + 1] != 0 {
                return Err(StructureIssue::BadLeafSentinel { node: i });
            }
            let off = nodes.children[2 * i] as usize;
            if off != next_leaf_off {
                return Err(StructureIssue::ArenaMismatch {
                    node: i,
                    offset: off,
                    expected: next_leaf_off,
                });
            }
            next_leaf_off += leaf_len;
            if next_leaf_off > nodes.leaf_values.len() {
                return Err(StructureIssue::ArenaLength {
                    expected: next_leaf_off,
                    actual: nodes.leaf_values.len(),
                });
            }
            if simplex {
                let payload = &nodes.leaf_values[off..off + leaf_len];
                for &v in payload {
                    if !(-EPS..=1.0 + EPS).contains(&v) {
                        return Err(StructureIssue::LeafValueOutOfRange { node: i, value: v });
                    }
                }
                let sum: f64 = payload.iter().sum();
                if (sum - 1.0).abs() > EPS {
                    return Err(StructureIssue::NotSimplex { node: i, sum });
                }
            }
        } else {
            let f = nodes.feature[i] as usize;
            if f >= n_features {
                return Err(StructureIssue::FeatureOutOfRange {
                    node: i,
                    feature: f,
                    n_features,
                });
            }
            for &c in &nodes.children[2 * i..2 * i + 2] {
                let c = c as usize;
                if c >= n {
                    return Err(StructureIssue::ChildOutOfBounds {
                        node: i,
                        child: c,
                        n_nodes: n,
                    });
                }
                if c <= i {
                    return Err(StructureIssue::OrderViolation { node: i, child: c });
                }
                refs[c] = refs[c].saturating_add(1);
            }
        }
    }
    if next_leaf_off != nodes.leaf_values.len() {
        return Err(StructureIssue::ArenaLength {
            expected: next_leaf_off,
            actual: nodes.leaf_values.len(),
        });
    }
    for (i, &r) in refs.iter().enumerate().skip(1) {
        match r {
            1 => {}
            0 => return Err(StructureIssue::UnreachableNode { node: i }),
            _ => return Err(StructureIssue::MultiParent { node: i }),
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Classification
// ---------------------------------------------------------------------------

/// Gini-impurity CART classifier.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTree {
    nodes: TreeNodes,
    n_classes: usize,
    /// Unnormalized Gini-decrease importance per feature.
    raw_importance: Vec<f64>,
}

fn gini(counts: &[f64], total: f64) -> f64 {
    if total <= 0.0 {
        return 0.0;
    }
    1.0 - counts
        .iter()
        .map(|c| (c / total) * (c / total))
        .sum::<f64>()
}

impl Serialize for DecisionTree {
    fn to_value(&self) -> Value {
        let mut pairs = nodes_to_pairs(&self.nodes);
        pairs.push(("n_classes".to_string(), self.n_classes.to_value()));
        pairs.push(("raw_importance".to_string(), self.raw_importance.to_value()));
        Value::Object(pairs)
    }
}

impl Deserialize for DecisionTree {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let pairs = v
            .as_object()
            .ok_or_else(|| DeError::expected("DecisionTree object", v))?;
        let n_classes: usize = serde::__get_field(pairs, "n_classes")?;
        if n_classes == 0 {
            return Err(DeError("n_classes must be at least 1".to_string()));
        }
        let raw_importance: Vec<f64> = serde::__get_field(pairs, "raw_importance")?;
        let nodes = nodes_from_pairs(pairs, n_classes)?;
        Ok(DecisionTree {
            nodes,
            n_classes,
            raw_importance,
        })
    }
}

impl DecisionTree {
    /// Fit on `x`/`y` with the exact sort-based split search. The RNG
    /// drives the per-split feature subsampling (only relevant when
    /// `max_features != All`).
    ///
    /// Callers pass one label per row and at least one sample (the public
    /// path validates through `Dataset::try_new`); on mismatched lengths the
    /// fit uses the common prefix, and debug builds assert.
    pub fn fit(
        x: &Matrix,
        y: &[usize],
        n_classes: usize,
        params: &TreeParams,
        rng: &mut StdRng,
    ) -> Self {
        debug_assert_eq!(x.rows(), y.len(), "one label per row");
        debug_assert!(n_classes >= 1);
        debug_assert!(x.rows() >= 1, "cannot fit on an empty dataset");
        debug_assert!(x.cols() < LEAF as usize, "feature index must fit u16");
        let n = x.rows().min(y.len());
        let mut tree = DecisionTree {
            nodes: TreeNodes::default(),
            n_classes,
            raw_importance: vec![0.0; x.cols()],
        };
        let idx: Vec<usize> = (0..n).collect();
        tree.grow(x, y, idx, params, rng, 0, n as f64);
        tree
    }

    /// Fit over `rows` (indices into the shared binned matrix, duplicates
    /// allowed — a bootstrap sample) with histogram split finding. No row
    /// data is copied; `scratch` buffers are reused across fits.
    pub fn fit_binned(
        b: &BinnedMatrix,
        y: &[usize],
        rows: &[u32],
        n_classes: usize,
        params: &TreeParams,
        rng: &mut StdRng,
        scratch: &mut TreeScratch,
    ) -> Self {
        debug_assert!(n_classes >= 1);
        debug_assert!(!rows.is_empty(), "cannot fit on an empty sample");
        debug_assert!(rows.iter().all(|&r| (r as usize) < b.rows()));
        debug_assert!(b.cols() < LEAF as usize, "feature index must fit u16");
        let mut tree = DecisionTree {
            nodes: TreeNodes::default(),
            n_classes,
            raw_importance: vec![0.0; b.cols()],
        };
        scratch.rows.clear();
        scratch.rows.extend_from_slice(rows);
        scratch.hist.clear();
        scratch.hist.resize(256 * n_classes, 0.0);
        let n = rows.len();
        tree.grow_binned(b, y, params, rng, scratch, 0, n, 0, n as f64);
        tree
    }

    /// Leaf from raw class counts: normalized into the arena directly.
    fn push_dist_leaf(&mut self, dist: &[f64]) -> u32 {
        debug_assert!(self.nodes.leaf_values.len() < u32::MAX as usize - dist.len());
        debug_assert!(self.nodes.feature.len() < u32::MAX as usize);
        let total: f64 = dist.iter().sum();
        let off = self.nodes.leaf_values.len() as u32;
        if total > 0.0 {
            self.nodes
                .leaf_values
                .extend(dist.iter().map(|d| d / total));
        } else {
            self.nodes.leaf_values.extend_from_slice(dist);
        }
        self.nodes.feature.push(LEAF);
        self.nodes.threshold.push(0.0);
        self.nodes.children.extend([off, 0]);
        (self.nodes.feature.len() - 1) as u32
    }

    fn leaf_from(&mut self, y: &[usize], idx: &[usize]) -> u32 {
        let mut dist = vec![0.0; self.n_classes];
        for &i in idx {
            dist[y[i]] += 1.0;
        }
        self.push_dist_leaf(&dist)
    }

    #[allow(clippy::too_many_arguments)]
    fn grow(
        &mut self,
        x: &Matrix,
        y: &[usize],
        idx: Vec<usize>,
        params: &TreeParams,
        rng: &mut StdRng,
        depth: usize,
        n_total: f64,
    ) -> u32 {
        let n = idx.len();
        let mut counts = vec![0.0f64; self.n_classes];
        for &i in &idx {
            counts[y[i]] += 1.0;
        }
        let impurity = gini(&counts, n as f64);
        let depth_stop = params.max_depth.is_some_and(|d| depth >= d);
        if impurity == 0.0 || n < params.min_samples_split || depth_stop {
            return self.leaf_from(y, &idx);
        }

        // Feature subset for this split.
        let d = x.cols();
        let k = params.max_features.resolve(d);
        let features: Vec<usize> = if k >= d {
            (0..d).collect()
        } else {
            let mut all: Vec<usize> = (0..d).collect();
            all.shuffle(rng);
            let mut subset = all[..k].to_vec();
            subset.sort_unstable();
            subset
        };

        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, decrease)
        let mut sorted: Vec<(f64, usize)> = Vec::with_capacity(n);
        for &f in &features {
            sorted.clear();
            sorted.extend(idx.iter().map(|&i| (x.get(i, f), y[i])));
            sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
            let mut left = vec![0.0f64; self.n_classes];
            let mut right = counts.clone();
            for split_at in 1..n {
                let (v_prev, c_prev) = sorted[split_at - 1];
                left[c_prev] += 1.0;
                right[c_prev] -= 1.0;
                let v_next = sorted[split_at].0;
                if v_prev == v_next {
                    continue; // cannot split between equal values
                }
                let nl = split_at;
                let nr = n - split_at;
                if nl < params.min_samples_leaf || nr < params.min_samples_leaf {
                    continue;
                }
                let w_impurity = (nl as f64 * gini(&left, nl as f64)
                    + nr as f64 * gini(&right, nr as f64))
                    / n as f64;
                let decrease = impurity - w_impurity;
                if best.map_or(decrease > 1e-12, |(_, _, bd)| decrease > bd + 1e-12) {
                    best = Some((f, 0.5 * (v_prev + v_next), decrease));
                }
            }
        }

        let Some((feature, threshold, decrease)) = best else {
            return self.leaf_from(y, &idx);
        };
        self.raw_importance[feature] += (n as f64 / n_total) * decrease;

        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = idx
            .into_iter()
            .partition(|&i| x.get(i, feature) <= threshold);
        let me = self.nodes.push_placeholder();
        let left = self.grow(x, y, left_idx, params, rng, depth + 1, n_total);
        let right = self.grow(x, y, right_idx, params, rng, depth + 1, n_total);
        self.nodes.set_split(me, feature, threshold, left, right);
        me
    }

    #[allow(clippy::too_many_arguments)]
    fn grow_binned(
        &mut self,
        b: &BinnedMatrix,
        y: &[usize],
        params: &TreeParams,
        rng: &mut StdRng,
        scratch: &mut TreeScratch,
        lo: usize,
        hi: usize,
        depth: usize,
        n_total: f64,
    ) -> u32 {
        let n = hi - lo;
        let nc = self.n_classes;
        debug_assert!(
            scratch.rows[lo..hi].iter().all(|&r| y[r as usize] < nc),
            "labels exceed n_classes (validated at the fit boundary)"
        );
        scratch.labels.clear();
        scratch
            .labels
            .extend(scratch.rows[lo..hi].iter().map(|&r| y[r as usize] as u32));
        scratch.counts.clear();
        scratch.counts.resize(nc, 0.0);
        for &lab in &scratch.labels {
            scratch.counts[lab as usize] += 1.0;
        }
        let impurity = gini(&scratch.counts, n as f64);
        let depth_stop = params.max_depth.is_some_and(|d| depth >= d);
        if impurity == 0.0 || n < params.min_samples_split || depth_stop {
            return self.push_dist_leaf(&scratch.counts);
        }

        // Feature subset: same RNG consumption as the exact grower, so both
        // kernels draw identical subsets at every node.
        let d = b.cols();
        let k = params.max_features.resolve(d);
        scratch.feats.clear();
        scratch.feats.extend(0..d);
        if k < d {
            scratch.feats.shuffle(rng);
            scratch.feats.truncate(k);
            scratch.feats.sort_unstable();
        }

        let mut best: Option<(usize, usize, f64)> = None; // (feature, bin, decrease)
        {
            let TreeScratch {
                rows,
                hist,
                feats,
                labels,
                counts,
                left,
                right,
                ..
            } = &mut *scratch;
            left.clear();
            left.resize(nc, 0.0);
            right.clear();
            right.resize(nc, 0.0);
            for &f in feats.iter() {
                let nb = b.n_bins(f);
                if nb < 2 {
                    continue;
                }
                let col = b.column(f);
                let hist = &mut hist[..nb * nc];
                hist.fill(0.0);
                for (&r, &lab) in rows[lo..hi].iter().zip(labels.iter()) {
                    hist[col[r as usize] as usize * nc + lab as usize] += 1.0;
                }
                // Prefix-scan bins ascending; a boundary after bin `bin` is
                // a candidate only when the bin holds samples of this node
                // (matching the exact kernel's distinct-value candidates) —
                // empty bins change neither `left` nor the partition.
                for l in left.iter_mut() {
                    *l = 0.0;
                }
                let mut n_left = 0usize;
                for bin in 0..nb - 1 {
                    let h = &hist[bin * nc..(bin + 1) * nc];
                    let mut bc = 0.0f64;
                    for (l, hv) in left.iter_mut().zip(h) {
                        *l += hv;
                        bc += hv;
                    }
                    if bc == 0.0 {
                        continue; // same partition as the previous boundary
                    }
                    n_left += bc as usize;
                    let nl = n_left;
                    let nr = n - nl;
                    if nr == 0 {
                        break; // no samples to the right of any later boundary
                    }
                    if nl < params.min_samples_leaf || nr < params.min_samples_leaf {
                        continue;
                    }
                    for ((rv, cv), lv) in right.iter_mut().zip(counts.iter()).zip(left.iter()) {
                        *rv = cv - lv;
                    }
                    let w_impurity = (nl as f64 * gini(left, nl as f64)
                        + nr as f64 * gini(right, nr as f64))
                        / n as f64;
                    let decrease = impurity - w_impurity;
                    if best.map_or(decrease > 1e-12, |(_, _, bd)| decrease > bd + 1e-12) {
                        best = Some((f, bin, decrease));
                    }
                }
            }
        }

        let Some((feature, bin, decrease)) = best else {
            return self.push_dist_leaf(&scratch.counts);
        };
        self.raw_importance[feature] += (n as f64 / n_total) * decrease;
        let threshold = b.threshold(feature, bin);

        // Stable in-place partition of this node's index window.
        let mid = {
            let TreeScratch { rows, part, .. } = &mut *scratch;
            let col = b.column(feature);
            part.clear();
            let mut write = lo;
            for read in lo..hi {
                let r = rows[read];
                if col[r as usize] as usize <= bin {
                    rows[write] = r;
                    write += 1;
                } else {
                    part.push(r);
                }
            }
            rows[write..hi].copy_from_slice(part);
            write
        };

        let me = self.nodes.push_placeholder();
        let left_child = self.grow_binned(b, y, params, rng, scratch, lo, mid, depth + 1, n_total);
        let right_child = self.grow_binned(b, y, params, rng, scratch, mid, hi, depth + 1, n_total);
        self.nodes
            .set_split(me, feature, threshold, left_child, right_child);
        me
    }

    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Depth of the deepest leaf.
    pub fn depth(&self) -> usize {
        if self.nodes.len() == 0 {
            0
        } else {
            self.nodes.depth_from(0)
        }
    }

    /// Borrowed class-probability slice for one sample — the zero-copy
    /// descent the forest's batched kernels build on.
    #[inline]
    pub fn predict_proba_slice(&self, row: &[f64]) -> &[f64] {
        self.nodes.descend(row, self.n_classes)
    }

    /// Write the class-probability vector for one sample into `out`
    /// (length `n_classes`) without allocating.
    pub fn predict_proba_into(&self, row: &[f64], out: &mut [f64]) {
        out.copy_from_slice(self.predict_proba_slice(row));
    }

    /// Class-probability vector for one sample.
    pub fn predict_proba_row(&self, row: &[f64]) -> Vec<f64> {
        self.predict_proba_slice(row).to_vec()
    }

    pub fn predict_row(&self, row: &[f64]) -> usize {
        argmax(self.predict_proba_slice(row))
    }

    pub fn predict(&self, x: &Matrix) -> Vec<usize> {
        (0..x.rows()).map(|i| self.predict_row(x.row(i))).collect()
    }

    /// Unnormalized accumulated Gini decrease per feature (the forest sums
    /// these across trees before normalizing).
    pub fn raw_importance(&self) -> &[f64] {
        &self.raw_importance
    }

    /// Normalized feature importance (sums to 1 when any split exists).
    pub fn feature_importances(&self) -> Vec<f64> {
        normalize(self.raw_importance.clone())
    }

    /// Prove the tree's structural invariants (see [`verify_nodes`]),
    /// including the per-leaf probability simplex. Deserialization only
    /// checks parse shape — call this before predicting on a tree that
    /// crossed a trust boundary.
    pub fn verify(&self) -> Result<(), StructureIssue> {
        verify_nodes(&self.nodes, self.n_classes, self.raw_importance.len(), true)
    }
}

// ---------------------------------------------------------------------------
// Regression
// ---------------------------------------------------------------------------

/// MSE (variance-reduction) CART regressor, the gradient-boosting weak
/// learner.
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionTree {
    nodes: TreeNodes,
    raw_importance: Vec<f64>,
}

impl Serialize for RegressionTree {
    fn to_value(&self) -> Value {
        let mut pairs = nodes_to_pairs(&self.nodes);
        pairs.push(("raw_importance".to_string(), self.raw_importance.to_value()));
        Value::Object(pairs)
    }
}

impl Deserialize for RegressionTree {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let pairs = v
            .as_object()
            .ok_or_else(|| DeError::expected("RegressionTree object", v))?;
        let raw_importance: Vec<f64> = serde::__get_field(pairs, "raw_importance")?;
        let nodes = nodes_from_pairs(pairs, 1)?;
        Ok(RegressionTree {
            nodes,
            raw_importance,
        })
    }
}

impl RegressionTree {
    /// Fit on `x`/`y` with the exact sort-based split search. Same contract
    /// as [`DecisionTree::fit`]: mismatched lengths fall back to the common
    /// prefix, debug builds assert.
    pub fn fit(x: &Matrix, y: &[f64], params: &TreeParams, rng: &mut StdRng) -> Self {
        debug_assert_eq!(x.rows(), y.len(), "one target per row");
        debug_assert!(x.rows() >= 1, "cannot fit on an empty dataset");
        debug_assert!(x.cols() < LEAF as usize, "feature index must fit u16");
        let n = x.rows().min(y.len());
        let mut tree = RegressionTree {
            nodes: TreeNodes::default(),
            raw_importance: vec![0.0; x.cols()],
        };
        let idx: Vec<usize> = (0..n).collect();
        tree.grow(x, y, idx, params, rng, 0, n as f64);
        tree
    }

    /// Fit over `rows` (indices into the shared binned matrix) with
    /// histogram split finding; `y` is indexed by original row id.
    pub fn fit_binned(
        b: &BinnedMatrix,
        y: &[f64],
        rows: &[u32],
        params: &TreeParams,
        rng: &mut StdRng,
        scratch: &mut TreeScratch,
    ) -> Self {
        debug_assert!(!rows.is_empty(), "cannot fit on an empty sample");
        debug_assert!(rows.iter().all(|&r| (r as usize) < b.rows()));
        debug_assert!(b.cols() < LEAF as usize, "feature index must fit u16");
        let mut tree = RegressionTree {
            nodes: TreeNodes::default(),
            raw_importance: vec![0.0; b.cols()],
        };
        scratch.rows.clear();
        scratch.rows.extend_from_slice(rows);
        scratch.hist.clear();
        scratch.hist.resize(256 * 3, 0.0);
        let n = rows.len();
        tree.grow_binned(b, y, params, rng, scratch, 0, n, 0, n as f64);
        tree
    }

    fn leaf_from(&mut self, y: &[f64], idx: &[usize]) -> u32 {
        let mean = idx.iter().map(|&i| y[i]).sum::<f64>() / idx.len() as f64;
        self.nodes.push_leaf(&[mean])
    }

    #[allow(clippy::too_many_arguments)]
    fn grow(
        &mut self,
        x: &Matrix,
        y: &[f64],
        idx: Vec<usize>,
        params: &TreeParams,
        rng: &mut StdRng,
        depth: usize,
        n_total: f64,
    ) -> u32 {
        let n = idx.len();
        let sum: f64 = idx.iter().map(|&i| y[i]).sum();
        let sum2: f64 = idx.iter().map(|&i| y[i] * y[i]).sum();
        let var = (sum2 - sum * sum / n as f64).max(0.0) / n as f64;
        let depth_stop = params.max_depth.is_some_and(|d| depth >= d);
        if var <= 1e-18 || n < params.min_samples_split || depth_stop {
            return self.leaf_from(y, &idx);
        }

        let d = x.cols();
        let k = params.max_features.resolve(d);
        let features: Vec<usize> = if k >= d {
            (0..d).collect()
        } else {
            let mut all: Vec<usize> = (0..d).collect();
            all.shuffle(rng);
            let mut subset = all[..k].to_vec();
            subset.sort_unstable();
            subset
        };

        let mut best: Option<(usize, f64, f64)> = None;
        let mut sorted: Vec<(f64, f64)> = Vec::with_capacity(n);
        for &f in &features {
            sorted.clear();
            sorted.extend(idx.iter().map(|&i| (x.get(i, f), y[i])));
            sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
            let mut lsum = 0.0;
            let mut lsum2 = 0.0;
            let mut rsum = sum;
            let mut rsum2 = sum2;
            for split_at in 1..n {
                let (v_prev, t_prev) = sorted[split_at - 1];
                lsum += t_prev;
                lsum2 += t_prev * t_prev;
                rsum -= t_prev;
                rsum2 -= t_prev * t_prev;
                let v_next = sorted[split_at].0;
                if v_prev == v_next {
                    continue;
                }
                let nl = split_at as f64;
                let nr = (n - split_at) as f64;
                if (nl as usize) < params.min_samples_leaf
                    || (nr as usize) < params.min_samples_leaf
                {
                    continue;
                }
                let sse = (lsum2 - lsum * lsum / nl) + (rsum2 - rsum * rsum / nr);
                let decrease = var - sse / n as f64;
                if best.map_or(decrease > 1e-15, |(_, _, bd)| decrease > bd + 1e-15) {
                    best = Some((f, 0.5 * (v_prev + v_next), decrease));
                }
            }
        }

        let Some((feature, threshold, decrease)) = best else {
            return self.leaf_from(y, &idx);
        };
        self.raw_importance[feature] += (n as f64 / n_total) * decrease;

        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = idx
            .into_iter()
            .partition(|&i| x.get(i, feature) <= threshold);
        let me = self.nodes.push_placeholder();
        let left = self.grow(x, y, left_idx, params, rng, depth + 1, n_total);
        let right = self.grow(x, y, right_idx, params, rng, depth + 1, n_total);
        self.nodes.set_split(me, feature, threshold, left, right);
        me
    }

    #[allow(clippy::too_many_arguments)]
    fn grow_binned(
        &mut self,
        b: &BinnedMatrix,
        y: &[f64],
        params: &TreeParams,
        rng: &mut StdRng,
        scratch: &mut TreeScratch,
        lo: usize,
        hi: usize,
        depth: usize,
        n_total: f64,
    ) -> u32 {
        let n = hi - lo;
        scratch.yvals.clear();
        scratch
            .yvals
            .extend(scratch.rows[lo..hi].iter().map(|&r| y[r as usize]));
        let mut sum = 0.0f64;
        let mut sum2 = 0.0f64;
        for &t in &scratch.yvals {
            sum += t;
            sum2 += t * t;
        }
        let var = (sum2 - sum * sum / n as f64).max(0.0) / n as f64;
        let depth_stop = params.max_depth.is_some_and(|d| depth >= d);
        if var <= 1e-18 || n < params.min_samples_split || depth_stop {
            return self.nodes.push_leaf(&[sum / n as f64]);
        }

        let d = b.cols();
        let k = params.max_features.resolve(d);
        scratch.feats.clear();
        scratch.feats.extend(0..d);
        if k < d {
            scratch.feats.shuffle(rng);
            scratch.feats.truncate(k);
            scratch.feats.sort_unstable();
        }

        let mut best: Option<(usize, usize, f64)> = None; // (feature, bin, decrease)
        {
            let TreeScratch {
                rows,
                hist,
                feats,
                yvals,
                ..
            } = &mut *scratch;
            for &f in feats.iter() {
                let nb = b.n_bins(f);
                if nb < 2 {
                    continue;
                }
                let col = b.column(f);
                let hist = &mut hist[..nb * 3];
                hist.fill(0.0);
                for (&r, &t) in rows[lo..hi].iter().zip(yvals.iter()) {
                    let base = col[r as usize] as usize * 3;
                    hist[base] += 1.0;
                    hist[base + 1] += t;
                    hist[base + 2] += t * t;
                }
                // Prefix-scan bins ascending; empty bins change nothing and
                // are skipped, and the last populated bin exits via the
                // `nr == 0` break (covering `bin == nb - 1`).
                let mut lcnt = 0.0f64;
                let mut lsum = 0.0f64;
                let mut lsum2 = 0.0f64;
                for bin in 0..nb - 1 {
                    let base = bin * 3;
                    if hist[base] == 0.0 {
                        continue;
                    }
                    lcnt += hist[base];
                    lsum += hist[base + 1];
                    lsum2 += hist[base + 2];
                    let nl = lcnt;
                    let nr = n as f64 - nl;
                    if nr == 0.0 {
                        break;
                    }
                    if (nl as usize) < params.min_samples_leaf
                        || (nr as usize) < params.min_samples_leaf
                    {
                        continue;
                    }
                    let rsum = sum - lsum;
                    let rsum2 = sum2 - lsum2;
                    let sse = (lsum2 - lsum * lsum / nl) + (rsum2 - rsum * rsum / nr);
                    let decrease = var - sse / n as f64;
                    if best.map_or(decrease > 1e-15, |(_, _, bd)| decrease > bd + 1e-15) {
                        best = Some((f, bin, decrease));
                    }
                }
            }
        }

        let Some((feature, bin, decrease)) = best else {
            return self.nodes.push_leaf(&[sum / n as f64]);
        };
        self.raw_importance[feature] += (n as f64 / n_total) * decrease;
        let threshold = b.threshold(feature, bin);

        let mid = {
            let TreeScratch { rows, part, .. } = &mut *scratch;
            let col = b.column(feature);
            part.clear();
            let mut write = lo;
            for read in lo..hi {
                let r = rows[read];
                if col[r as usize] as usize <= bin {
                    rows[write] = r;
                    write += 1;
                } else {
                    part.push(r);
                }
            }
            rows[write..hi].copy_from_slice(part);
            write
        };

        let me = self.nodes.push_placeholder();
        let left_child = self.grow_binned(b, y, params, rng, scratch, lo, mid, depth + 1, n_total);
        let right_child = self.grow_binned(b, y, params, rng, scratch, mid, hi, depth + 1, n_total);
        self.nodes
            .set_split(me, feature, threshold, left_child, right_child);
        me
    }

    pub fn predict_row(&self, row: &[f64]) -> f64 {
        self.nodes.descend(row, 1).first().copied().unwrap_or(0.0)
    }

    pub fn predict(&self, x: &Matrix) -> Vec<f64> {
        (0..x.rows()).map(|i| self.predict_row(x.row(i))).collect()
    }

    pub fn raw_importance(&self) -> &[f64] {
        &self.raw_importance
    }

    /// Prove the tree's structural invariants (see [`verify_nodes`]).
    /// Regression leaves hold one mean each, so no simplex check applies.
    pub fn verify(&self) -> Result<(), StructureIssue> {
        verify_nodes(&self.nodes, 1, self.raw_importance.len(), false)
    }
}

/// Index of the maximum element (first wins ties).
pub fn argmax(v: &[f64]) -> usize {
    let mut best = 0;
    for (i, &x) in v.iter().enumerate() {
        if x > v[best] {
            best = i;
        }
    }
    best
}

/// Normalize a non-negative vector to sum 1 (identity on all-zero input).
pub fn normalize(mut v: Vec<f64>) -> Vec<f64> {
    let s: f64 = v.iter().sum();
    if s > 0.0 {
        for x in &mut v {
            *x /= s;
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    /// Two clearly separable blobs.
    fn blobs() -> (Matrix, Vec<usize>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..40 {
            let j = i as f64 * 0.01;
            rows.push(vec![j, 1.0 + j]);
            y.push(0);
            rows.push(vec![5.0 + j, 6.0 + j]);
            y.push(1);
        }
        (Matrix::from_rows(rows), y)
    }

    #[test]
    fn fits_separable_data_perfectly() {
        let (x, y) = blobs();
        let t = DecisionTree::fit(&x, &y, 2, &TreeParams::default(), &mut rng());
        assert_eq!(t.predict(&x), y);
        assert!(t.depth() >= 1);
    }

    #[test]
    fn pure_node_becomes_leaf() {
        let x = Matrix::from_rows([[1.0], [2.0], [3.0]]);
        let y = vec![1, 1, 1];
        let t = DecisionTree::fit(&x, &y, 2, &TreeParams::default(), &mut rng());
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.predict_proba_row(&[5.0]), vec![0.0, 1.0]);
    }

    #[test]
    fn max_depth_limits_growth() {
        let (x, y) = blobs();
        let params = TreeParams {
            max_depth: Some(1),
            ..Default::default()
        };
        let t = DecisionTree::fit(&x, &y, 2, &params, &mut rng());
        assert!(t.depth() <= 1);
    }

    #[test]
    fn min_samples_leaf_respected() {
        let x = Matrix::from_rows([[0.0], [1.0], [2.0], [3.0]]);
        let y = vec![0, 0, 0, 1];
        let params = TreeParams {
            min_samples_leaf: 2,
            ..Default::default()
        };
        let t = DecisionTree::fit(&x, &y, 2, &params, &mut rng());
        // Only split leaving >= 2 on each side is between index 1 and 2.
        if t.nodes.feature[0] != LEAF {
            assert!((1.0..2.0).contains(&t.nodes.threshold[0]));
        }
    }

    #[test]
    fn importances_sum_to_one_and_pick_informative_feature() {
        // Feature 1 is informative, feature 0 is constant.
        let x = Matrix::from_rows([[7.0, 0.0], [7.0, 1.0], [7.0, 10.0], [7.0, 11.0]]);
        let y = vec![0, 0, 1, 1];
        let t = DecisionTree::fit(&x, &y, 2, &TreeParams::default(), &mut rng());
        let imp = t.feature_importances();
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(imp[0], 0.0);
        assert!((imp[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = blobs();
        let params = TreeParams {
            max_features: MaxFeatures::Count(1),
            ..Default::default()
        };
        let a = DecisionTree::fit(&x, &y, 2, &params, &mut StdRng::seed_from_u64(9));
        let b = DecisionTree::fit(&x, &y, 2, &params, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn regression_tree_fits_step_function() {
        let x = Matrix::from_rows([[0.0], [1.0], [2.0], [10.0], [11.0], [12.0]]);
        let y = vec![1.0, 1.0, 1.0, 5.0, 5.0, 5.0];
        let t = RegressionTree::fit(&x, &y, &TreeParams::default(), &mut rng());
        assert!((t.predict_row(&[1.5]) - 1.0).abs() < 1e-9);
        assert!((t.predict_row(&[11.0]) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn regression_tree_constant_target_single_leaf() {
        let x = Matrix::from_rows([[0.0], [1.0], [2.0]]);
        let y = vec![3.0, 3.0, 3.0];
        let t = RegressionTree::fit(&x, &y, &TreeParams::default(), &mut rng());
        assert_eq!(t.nodes.len(), 1);
        assert_eq!(t.predict_row(&[9.0]), 3.0);
    }

    #[test]
    fn tree_serde_roundtrip() {
        let (x, y) = blobs();
        let t = DecisionTree::fit(&x, &y, 2, &TreeParams::default(), &mut rng());
        let json = serde_json::to_string(&t).unwrap();
        let back: DecisionTree = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn regression_tree_serde_roundtrip() {
        let x = Matrix::from_rows([[0.0], [1.0], [2.0], [10.0], [11.0]]);
        let y = vec![1.0, 1.0, 1.5, 5.0, 5.0];
        let t = RegressionTree::fit(&x, &y, &TreeParams::default(), &mut rng());
        let json = serde_json::to_string(&t).unwrap();
        let back: RegressionTree = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn v1_node_enum_layout_migrates() {
        // A hand-written pre-SoA artifact: root split, two leaves.
        let json = r#"{
            "nodes": [
                {"Split": {"feature": 0, "threshold": 1.5, "left": 1, "right": 2}},
                {"Leaf": {"value": [1.0, 0.0]}},
                {"Leaf": {"value": [0.0, 1.0]}}
            ],
            "n_classes": 2,
            "raw_importance": [0.5]
        }"#;
        let t: DecisionTree = serde_json::from_str(json).unwrap();
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.predict_row(&[0.0]), 0);
        assert_eq!(t.predict_row(&[9.0]), 1);
        assert_eq!(t.predict_proba_row(&[9.0]), vec![0.0, 1.0]);
        // Re-serializing writes the v2 layout, which round-trips.
        let back: DecisionTree = serde_json::from_str(&serde_json::to_string(&t).unwrap()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn corrupt_artifacts_are_rejected_not_panics() {
        // Leaf payload length mismatching n_classes.
        let bad_leaf = r#"{"nodes": [{"Leaf": {"value": [1.0]}}],
                           "n_classes": 2, "raw_importance": []}"#;
        assert!(serde_json::from_str::<DecisionTree>(bad_leaf).is_err());
        // Split child out of range: parses (shape is consistent), but the
        // typed verify pass names the corruption before any descent.
        let bad_child = r#"{"nodes": [{"Split": {"feature": 0, "threshold": 0.0,
                            "left": 7, "right": 8}}],
                            "n_classes": 2, "raw_importance": [0.5]}"#;
        let t: DecisionTree = serde_json::from_str(bad_child).unwrap();
        assert!(matches!(
            t.verify(),
            Err(StructureIssue::ChildOutOfBounds {
                node: 0,
                child: 7,
                n_nodes: 1
            })
        ));
        // v2 arrays of inconsistent lengths.
        let bad_soa = r#"{"version": 2, "feature": [65535], "threshold": [],
                          "children": [0, 0], "leaf_values": [0.5, 0.5],
                          "n_classes": 2, "raw_importance": []}"#;
        assert!(serde_json::from_str::<DecisionTree>(bad_soa).is_err());
    }

    /// Exercise `verify` against one hand-built violation per invariant
    /// class, and confirm fitted trees of both kinds verify clean.
    #[test]
    fn verify_catches_each_structural_corruption() {
        let (x, y) = blobs();
        let t = DecisionTree::fit(&x, &y, 2, &TreeParams::default(), &mut rng());
        assert_eq!(t.verify(), Ok(()));
        let r = RegressionTree::fit(
            &x,
            &y.iter().map(|&c| c as f64).collect::<Vec<_>>(),
            &TreeParams::default(),
            &mut rng(),
        );
        assert_eq!(r.verify(), Ok(()));

        let corrupt = |f: &dyn Fn(&mut DecisionTree)| {
            let mut bad = t.clone();
            f(&mut bad);
            bad.verify().unwrap_err()
        };
        assert!(matches!(
            corrupt(&|b| b.nodes.children[0] = 10_000),
            StructureIssue::ChildOutOfBounds { node: 0, .. }
        ));
        assert!(matches!(
            corrupt(&|b| b.nodes.children[1] = 0),
            StructureIssue::OrderViolation { node: 0, child: 0 }
        ));
        // First leaf: its unused slot must stay zero, its payload a simplex.
        let leaf = (0..t.nodes.len())
            .find(|&i| t.nodes.feature[i] == LEAF)
            .expect("fitted tree has a leaf");
        assert!(matches!(
            corrupt(&|b| b.nodes.children[2 * leaf + 1] = 1),
            StructureIssue::BadLeafSentinel { .. }
        ));
        assert!(matches!(
            corrupt(&|b| {
                let off = b.nodes.children[2 * leaf] as usize;
                b.nodes.leaf_values[off] += 0.5;
            }),
            StructureIssue::NotSimplex { .. } | StructureIssue::LeafValueOutOfRange { .. }
        ));
        assert!(matches!(
            corrupt(&|b| b.nodes.children[2 * leaf] += 1),
            StructureIssue::ArenaMismatch { .. }
        ));
        assert!(matches!(
            corrupt(&|b| b.nodes.leaf_values.push(0.0)),
            StructureIssue::ArenaLength { .. }
        ));
        assert!(matches!(
            corrupt(&|b| b.nodes.feature[0] = 9),
            StructureIssue::FeatureOutOfRange {
                node: 0,
                feature: 9,
                ..
            }
        ));
        assert!(matches!(
            corrupt(&|b| {
                b.nodes.threshold.pop();
            }),
            StructureIssue::Shape(_)
        ));
        let empty = DecisionTree {
            nodes: TreeNodes::default(),
            n_classes: 2,
            raw_importance: vec![0.0],
        };
        assert_eq!(empty.verify(), Err(StructureIssue::Empty));
    }

    #[test]
    fn predict_proba_into_matches_row() {
        let (x, y) = blobs();
        let t = DecisionTree::fit(&x, &y, 2, &TreeParams::default(), &mut rng());
        let mut buf = [0.0f64; 2];
        for i in 0..x.rows() {
            t.predict_proba_into(x.row(i), &mut buf);
            assert_eq!(buf.to_vec(), t.predict_proba_row(x.row(i)));
        }
    }

    /// Random small dataset with duplicate-heavy columns (the regime the
    /// real features live in: log₂ sizes, node counts).
    fn random_dataset(seed: u64, n: usize, d: usize, k: usize) -> (Matrix, Vec<usize>) {
        let mut r = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| {
                (0..d)
                    .map(|_| {
                        if r.gen_bool(0.5) {
                            r.gen_range(0..8) as f64 // discrete, duplicate-heavy
                        } else {
                            r.gen_range(0.0..4.0) // continuous
                        }
                    })
                    .collect()
            })
            .collect();
        let y: Vec<usize> = rows
            .iter()
            .map(|row| ((row[0] + row[1 % d]) as usize + row.len()) % k)
            .collect();
        (Matrix::from_rows(rows), y)
    }

    /// Property: on lossless binnings (distinct values ≤ bins) the
    /// histogram kernel grows a tree whose train-set predictions match the
    /// exact sort-based kernel, and whose importances agree.
    #[test]
    fn binned_split_finding_matches_exact_on_train_data() {
        for seed in 0..12u64 {
            let (x, y) = random_dataset(seed, 60, 4, 3);
            let b = BinnedMatrix::from_matrix(&x, 256);
            let rows: Vec<u32> = (0..x.rows() as u32).collect();
            let params = TreeParams::default();
            let mut scratch = TreeScratch::default();
            let exact = DecisionTree::fit(&x, &y, 3, &params, &mut StdRng::seed_from_u64(seed));
            let hist = DecisionTree::fit_binned(
                &b,
                &y,
                &rows,
                3,
                &params,
                &mut StdRng::seed_from_u64(seed),
                &mut scratch,
            );
            assert_eq!(
                exact.predict(&x),
                hist.predict(&x),
                "seed {seed}: train predictions diverge"
            );
            for (e, h) in exact.raw_importance().iter().zip(hist.raw_importance()) {
                assert!((e - h).abs() < 1e-12, "seed {seed}: importances diverge");
            }
            assert_eq!(exact.depth(), hist.depth(), "seed {seed}");
            assert_eq!(exact.node_count(), hist.node_count(), "seed {seed}");
        }
    }

    /// The same equivalence holds under per-node feature subsampling: both
    /// kernels consume the RNG identically, so the subsets align.
    #[test]
    fn binned_matches_exact_with_feature_subsampling() {
        for seed in 0..6u64 {
            let (x, y) = random_dataset(100 + seed, 50, 5, 3);
            let b = BinnedMatrix::from_matrix(&x, 256);
            let rows: Vec<u32> = (0..x.rows() as u32).collect();
            let params = TreeParams {
                max_features: MaxFeatures::Count(2),
                ..Default::default()
            };
            let mut scratch = TreeScratch::default();
            let exact = DecisionTree::fit(&x, &y, 3, &params, &mut StdRng::seed_from_u64(seed));
            let hist = DecisionTree::fit_binned(
                &b,
                &y,
                &rows,
                3,
                &params,
                &mut StdRng::seed_from_u64(seed),
                &mut scratch,
            );
            assert_eq!(exact.predict(&x), hist.predict(&x), "seed {seed}");
        }
    }

    #[test]
    fn binned_regression_tree_fits_step_function() {
        let x = Matrix::from_rows([[0.0], [1.0], [2.0], [10.0], [11.0], [12.0]]);
        let y = vec![1.0, 1.0, 1.0, 5.0, 5.0, 5.0];
        let b = BinnedMatrix::from_matrix(&x, 256);
        let rows: Vec<u32> = (0..6).collect();
        let mut scratch = TreeScratch::default();
        let t = RegressionTree::fit_binned(
            &b,
            &y,
            &rows,
            &TreeParams::default(),
            &mut rng(),
            &mut scratch,
        );
        assert!((t.predict_row(&[1.5]) - 1.0).abs() < 1e-9);
        assert!((t.predict_row(&[11.0]) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn binned_fit_over_duplicated_bootstrap_rows() {
        let (x, y) = blobs();
        let b = BinnedMatrix::from_matrix(&x, 256);
        // A bootstrap-style sample: duplicates, not all rows present.
        let rows: Vec<u32> = (0..x.rows() as u32).map(|i| (i * 7) % 40).collect();
        let mut scratch = TreeScratch::default();
        let t = DecisionTree::fit_binned(
            &b,
            &y,
            &rows,
            2,
            &TreeParams::default(),
            &mut rng(),
            &mut scratch,
        );
        // Still separates the blobs.
        assert_eq!(t.predict_row(&[0.1, 1.1]), 0);
        assert_eq!(t.predict_row(&[5.1, 6.1]), 1);
    }

    #[test]
    fn argmax_first_wins_ties() {
        assert_eq!(argmax(&[0.5, 0.5]), 0);
        assert_eq!(argmax(&[0.1, 0.9, 0.3]), 1);
    }
}
