//! Typed structural verification for deserialized model artifacts.
//!
//! The SoA tree layout (`tree.rs`) trades per-node enums for parallel
//! arrays, which means a hand-edited or bit-rotted artifact can encode
//! out-of-bounds children, reference cycles, dangling leaf payloads, or
//! probability vectors that are not distributions — none of which the
//! parser alone can rule out without re-walking the whole structure.
//! [`StructureIssue`] enumerates every invariant a well-formed tree (or
//! binned matrix) satisfies; `DecisionTree::verify`,
//! `RegressionTree::verify`, [`crate::RandomForest::verify`], and
//! `BinnedMatrix::verify` prove them before inference ever descends a
//! node. Deserialization itself only enforces parse-shape consistency —
//! run `verify` on anything that crossed a trust boundary.

use std::fmt;

/// A structural invariant violated by a deserialized tree ensemble or
/// binned matrix. Every variant names the offending node/feature so the
/// report points at the corruption, not just the artifact.
#[derive(Debug, Clone, PartialEq)]
pub enum StructureIssue {
    /// Parallel arrays disagree on the node count.
    Shape(String),
    /// A tree with zero nodes cannot be descended.
    Empty,
    /// A split references a child index past the node array.
    ChildOutOfBounds {
        node: usize,
        child: usize,
        n_nodes: usize,
    },
    /// A split references a child at or before itself — a cycle or a
    /// violation of the parent-before-child (pre-order) numbering.
    OrderViolation { node: usize, child: usize },
    /// A non-root node is never referenced by any split.
    UnreachableNode { node: usize },
    /// A node is referenced by more than one split (shared subtree / DAG).
    MultiParent { node: usize },
    /// A leaf's unused child slot is not the zero sentinel.
    BadLeafSentinel { node: usize },
    /// A leaf's arena offset breaks the contiguous in-order layout.
    ArenaMismatch {
        node: usize,
        offset: usize,
        expected: usize,
    },
    /// The leaf arena is shorter or longer than the leaves require.
    ArenaLength { expected: usize, actual: usize },
    /// A classification leaf's probabilities do not sum to 1.
    NotSimplex { node: usize, sum: f64 },
    /// A classification leaf holds a probability outside `[0, 1]`.
    LeafValueOutOfRange { node: usize, value: f64 },
    /// A split tests a feature past the tree's feature count.
    FeatureOutOfRange {
        node: usize,
        feature: usize,
        n_features: usize,
    },
    /// A tree's class count disagrees with its ensemble.
    ClassCount { expected: usize, actual: usize },
    /// A tree's importance vector disagrees with the feature count.
    ImportanceLength { expected: usize, actual: usize },
    /// Bin edges are not strictly increasing at this position.
    BinEdgesNotIncreasing { feature: usize, index: usize },
    /// The per-feature bin count exceeds the u8 code budget.
    BinBudget { n_bins: usize },
    /// Binned codes reference a bin past the feature's edge list.
    BinCodeOutOfRange {
        feature: usize,
        row: usize,
        code: u8,
        n_bins: usize,
    },
}

impl fmt::Display for StructureIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StructureIssue::Shape(detail) => write!(f, "inconsistent node arrays: {detail}"),
            StructureIssue::Empty => write!(f, "empty node array"),
            StructureIssue::ChildOutOfBounds {
                node,
                child,
                n_nodes,
            } => write!(
                f,
                "split {node} references child {child}, out of range for {n_nodes} nodes"
            ),
            StructureIssue::OrderViolation { node, child } => write!(
                f,
                "split {node} references child {child}: children must follow their \
                 parent (cycle or order violation)"
            ),
            StructureIssue::UnreachableNode { node } => {
                write!(f, "node {node} is unreachable from the root")
            }
            StructureIssue::MultiParent { node } => {
                write!(f, "node {node} is referenced by more than one split")
            }
            StructureIssue::BadLeafSentinel { node } => {
                write!(f, "leaf {node} has a nonzero unused child slot")
            }
            StructureIssue::ArenaMismatch {
                node,
                offset,
                expected,
            } => write!(
                f,
                "leaf {node} points at arena offset {offset}, expected {expected} \
                 (leaf payloads must be contiguous in node order)"
            ),
            StructureIssue::ArenaLength { expected, actual } => write!(
                f,
                "leaf arena holds {actual} values, leaves require {expected}"
            ),
            StructureIssue::NotSimplex { node, sum } => {
                write!(f, "leaf {node} probabilities sum to {sum}, expected 1")
            }
            StructureIssue::LeafValueOutOfRange { node, value } => {
                write!(f, "leaf {node} holds probability {value} outside [0, 1]")
            }
            StructureIssue::FeatureOutOfRange {
                node,
                feature,
                n_features,
            } => write!(
                f,
                "split {node} tests feature {feature}, out of range for {n_features} features"
            ),
            StructureIssue::ClassCount { expected, actual } => {
                write!(f, "tree has {actual} classes, ensemble expects {expected}")
            }
            StructureIssue::ImportanceLength { expected, actual } => write!(
                f,
                "importance vector has {actual} entries, expected {expected}"
            ),
            StructureIssue::BinEdgesNotIncreasing { feature, index } => write!(
                f,
                "feature {feature} bin edges not strictly increasing at index {index}"
            ),
            StructureIssue::BinBudget { n_bins } => {
                write!(f, "{n_bins} bins exceed the 256-bin u8 code budget")
            }
            StructureIssue::BinCodeOutOfRange {
                feature,
                row,
                code,
                n_bins,
            } => write!(
                f,
                "feature {feature} row {row} has code {code}, out of range for {n_bins} bins"
            ),
        }
    }
}

impl std::error::Error for StructureIssue {}

/// A [`StructureIssue`] located within an ensemble: `tree` is the index of
/// the offending tree, or `None` for ensemble-level metadata violations.
#[derive(Debug, Clone, PartialEq)]
pub struct ForestIssue {
    pub tree: Option<usize>,
    pub issue: StructureIssue,
}

impl fmt::Display for ForestIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.tree {
            Some(t) => write!(f, "tree {t}: {}", self.issue),
            None => write!(f, "{}", self.issue),
        }
    }
}

impl std::error::Error for ForestIssue {}

/// Why loading a serialized forest through
/// [`crate::RandomForest::from_json`] failed: the JSON never parsed, or it
/// parsed into a structurally corrupt ensemble.
#[derive(Debug, Clone, PartialEq)]
pub enum ForestLoadError {
    Parse(String),
    Structure(ForestIssue),
}

impl fmt::Display for ForestLoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ForestLoadError::Parse(e) => write!(f, "model JSON failed to parse: {e}"),
            ForestLoadError::Structure(issue) => {
                write!(f, "model failed structural verification: {issue}")
            }
        }
    }
}

impl std::error::Error for ForestLoadError {}
