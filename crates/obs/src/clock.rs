//! Injected time sources.
//!
//! The nondeterminism lint bans `Instant::now` in pipeline scope (and in
//! every other `pml-obs` module): a wall-clock reading anywhere near the
//! dataset → train → table path could leak into a derived result. Timing
//! therefore flows through the [`Clock`] trait — the CLI edge injects
//! [`MonotonicClock`] (this file is the single lint-exempt site), tests
//! inject [`FakeClock`], and the disabled tracer holds [`NullClock`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic nanosecond source. Implementations must be cheap and
/// thread-safe; values only ever feed observability output, never
/// computation.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Nanoseconds since an arbitrary (per-clock) origin.
    fn now_nanos(&self) -> u64;
}

/// Real monotonic time, measured from the clock's construction. The only
/// place in the workspace allowed to call `Instant::now`.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    pub fn new() -> Self {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_nanos(&self) -> u64 {
        // A u64 of nanoseconds holds ~584 years of process uptime; the
        // saturating cast is unreachable in practice but keeps the
        // conversion total.
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// Deterministic test clock: every reading advances by a fixed step, so
/// span durations and orderings are exactly reproducible.
#[derive(Debug)]
pub struct FakeClock {
    step: u64,
    ticks: AtomicU64,
}

impl FakeClock {
    /// A clock whose readings are `step, 2*step, 3*step, …`.
    pub fn with_step(step: u64) -> Self {
        FakeClock {
            step,
            ticks: AtomicU64::new(0),
        }
    }

    /// How many readings have been taken so far.
    pub fn readings(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }
}

impl Clock for FakeClock {
    fn now_nanos(&self) -> u64 {
        let n = self.ticks.fetch_add(1, Ordering::Relaxed) + 1;
        n.saturating_mul(self.step)
    }
}

/// The clock behind a disabled tracer: always zero, never consults time.
#[derive(Debug, Default)]
pub struct NullClock;

impl Clock for NullClock {
    fn now_nanos(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_is_monotonic() {
        let c = MonotonicClock::new();
        let a = c.now_nanos();
        let b = c.now_nanos();
        assert!(b >= a);
    }

    #[test]
    fn fake_clock_steps_deterministically() {
        let c = FakeClock::with_step(10);
        assert_eq!(c.now_nanos(), 10);
        assert_eq!(c.now_nanos(), 20);
        assert_eq!(c.now_nanos(), 30);
        assert_eq!(c.readings(), 3);
    }

    #[test]
    fn null_clock_is_zero() {
        assert_eq!(NullClock.now_nanos(), 0);
        assert_eq!(NullClock.now_nanos(), 0);
    }
}
