//! Leveled structured events — the replacement for scattered `eprintln!`
//! warning sites.
//!
//! Library code emits an [`Event`] (usually through the `event!` macro);
//! emission appends to a bounded process-wide sink and bumps per-level
//! counters. An edge — the [`SelectionEngine`] for its `warnings()`
//! compatibility view, or the CLI for `stats` — drains the sink with
//! [`drain`]. Nothing is ever printed from library code.
//!
//! The sink is bounded ([`SINK_CAP`]): if nobody drains, the oldest events
//! drop and `obs.events.dropped` counts them, so an un-drained process
//! cannot grow without limit.
//!
//! [`SelectionEngine`]: ../../pml_core/engine/struct.SelectionEngine.html

use crate::metrics::Counter;
use std::collections::VecDeque;
use std::fmt;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Upper bound on buffered events.
pub const SINK_CAP: usize = 4096;

static EVENTS_INFO: Counter = Counter::new("obs.events.info");
static EVENTS_WARN: Counter = Counter::new("obs.events.warn");
static EVENTS_ERROR: Counter = Counter::new("obs.events.error");
static EVENTS_DROPPED: Counter = Counter::new("obs.events.dropped");

static SINK: Mutex<VecDeque<Event>> = Mutex::new(VecDeque::new());

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Event severity. `Warn` and above surface through
/// `SelectionEngine::warnings()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    Info,
    Warn,
    Error,
}

impl Level {
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One structured event: severity, a static target naming the subsystem
/// (`"cache"`, `"tuner"`, …), and a rendered message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    pub level: Level,
    pub target: &'static str,
    pub message: String,
}

impl Event {
    pub fn new(level: Level, target: &'static str, message: String) -> Self {
        Event {
            level,
            target,
            message,
        }
    }

    pub fn info(target: &'static str, message: impl Into<String>) -> Self {
        Event::new(Level::Info, target, message.into())
    }

    pub fn warn(target: &'static str, message: impl Into<String>) -> Self {
        Event::new(Level::Warn, target, message.into())
    }

    pub fn error(target: &'static str, message: impl Into<String>) -> Self {
        Event::new(Level::Error, target, message.into())
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.level, self.target, self.message)
    }
}

/// Append an event to the global sink (dropping the oldest entry at
/// capacity) and bump its level counter.
pub fn emit(ev: Event) {
    match ev.level {
        Level::Info => EVENTS_INFO.inc(),
        Level::Warn => EVENTS_WARN.inc(),
        Level::Error => EVENTS_ERROR.inc(),
    }
    let mut sink = lock(&SINK);
    if sink.len() >= SINK_CAP {
        sink.pop_front();
        EVENTS_DROPPED.inc();
    }
    sink.push_back(ev);
}

/// Take every buffered event, oldest first.
pub fn drain() -> Vec<Event> {
    lock(&SINK).drain(..).collect()
}

/// Buffered events without draining them.
pub fn buffered() -> usize {
    lock(&SINK).len()
}

#[cfg(test)]
mod tests {
    use super::*;

    // The sink is process-global and other tests in this binary may emit;
    // assertions therefore check only this test's own events, found by
    // target.
    #[test]
    fn emit_and_drain_roundtrip() {
        emit(Event::warn("test-sink", "first"));
        emit(Event::error("test-sink", "second"));
        let drained = drain();
        let mine: Vec<&Event> = drained.iter().filter(|e| e.target == "test-sink").collect();
        assert_eq!(mine.len(), 2);
        assert_eq!(mine[0].level, Level::Warn);
        assert_eq!(mine[0].message, "first");
        assert_eq!(mine[1].level, Level::Error);
        assert!(drain().iter().all(|e| e.target != "test-sink"));
    }

    #[test]
    fn display_is_leveled() {
        let e = Event::warn("cache", "corrupt, regenerating");
        assert_eq!(e.to_string(), "[warn] cache: corrupt, regenerating");
    }

    #[test]
    fn level_ordering() {
        assert!(Level::Info < Level::Warn);
        assert!(Level::Warn < Level::Error);
    }
}
