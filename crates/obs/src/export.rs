//! JSON export of metrics snapshots and span aggregates — the payload
//! behind `--metrics-out`.
//!
//! Rendering is hand-rolled (this crate takes no dependencies): metric
//! names are the only strings that need escaping, and all values are
//! unsigned integers. Maps come from `BTreeMap`s, so key order — and
//! therefore the whole document — is deterministic for a given snapshot.
//!
//! Schema (`"schema": "pml-obs/v1"`):
//!
//! ```json
//! {
//!   "schema": "pml-obs/v1",
//!   "metrics_total": 12,
//!   "counters": {"tuner.cache.hit": 3},
//!   "gauges": {"train.model.features": 5},
//!   "histograms": {
//!     "table.fallback.depth": {
//!       "bounds": [0, 1, 2, 3],
//!       "counts": [10, 2, 0, 1],
//!       "overflow": 0, "sum": 5, "count": 13
//!     }
//!   },
//!   "spans": [
//!     {"name": "table", "count": 1, "total_ns": 52000, "self_ns": 1000}
//!   ]
//! }
//! ```
//!
//! The `spans` section is present only when a [`SpanForest`] is supplied
//! (tracing was enabled for the run).

use crate::metrics::MetricsSnapshot;
use crate::trace::SpanForest;
use std::fmt::Write as _;

/// Escape a string for a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).ok();
            }
            c => out.push(c),
        }
    }
    out
}

fn write_u64_list(out: &mut String, values: &[u64]) {
    out.push('[');
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write!(out, "{v}").ok();
    }
    out.push(']');
}

/// Render a metrics snapshot (and optional span aggregates) as the
/// `pml-obs/v1` JSON document.
pub fn metrics_json(snapshot: &MetricsSnapshot, spans: Option<&SpanForest>) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    writeln!(out, "  \"schema\": \"pml-obs/v1\",").ok();
    writeln!(out, "  \"metrics_total\": {},", snapshot.total_metrics()).ok();

    out.push_str("  \"counters\": {");
    for (i, (name, v)) in snapshot.counters.iter().enumerate() {
        let sep = if i > 0 { "," } else { "" };
        write!(out, "{sep}\n    \"{}\": {v}", escape(name)).ok();
    }
    if !snapshot.counters.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("},\n");

    out.push_str("  \"gauges\": {");
    for (i, (name, v)) in snapshot.gauges.iter().enumerate() {
        let sep = if i > 0 { "," } else { "" };
        write!(out, "{sep}\n    \"{}\": {v}", escape(name)).ok();
    }
    if !snapshot.gauges.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("},\n");

    out.push_str("  \"histograms\": {");
    for (i, (name, h)) in snapshot.histograms.iter().enumerate() {
        let sep = if i > 0 { "," } else { "" };
        write!(out, "{sep}\n    \"{}\": {{\"bounds\": ", escape(name)).ok();
        write_u64_list(&mut out, &h.bounds);
        out.push_str(", \"counts\": ");
        write_u64_list(&mut out, &h.counts);
        write!(
            out,
            ", \"overflow\": {}, \"sum\": {}, \"count\": {}}}",
            h.overflow, h.sum, h.count
        )
        .ok();
    }
    if !snapshot.histograms.is_empty() {
        out.push_str("\n  ");
    }
    out.push('}');

    if let Some(forest) = spans {
        out.push_str(",\n  \"spans\": [");
        for (i, (name, stats)) in forest.aggregate().iter().enumerate() {
            let sep = if i > 0 { "," } else { "" };
            write!(
                out,
                "{sep}\n    {{\"name\": \"{}\", \"count\": {}, \"total_ns\": {}, \"self_ns\": {}}}",
                escape(name),
                stats.count,
                stats.total_nanos,
                stats.self_nanos
            )
            .ok();
        }
        if !forest.is_empty() {
            out.push_str("\n  ");
        }
        out.push(']');
    }

    out.push_str("\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{HistogramSnapshot, MetricsSnapshot};
    use crate::trace::{SpanForest, SpanRecord};

    // The vendored serde `Value` has no `Index` impls; look keys up in the
    // object's pair list directly.
    fn get<'a>(v: &'a serde_json::JsonValue, key: &str) -> &'a serde_json::JsonValue {
        v.as_object()
            .and_then(|pairs| pairs.iter().find(|(k, _)| k == key))
            .map(|(_, val)| val)
            .unwrap_or_else(|| panic!("missing key `{key}`"))
    }

    fn sample_snapshot() -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("tuner.cache.hit".into(), 3);
        snap.counters.insert("tuner.cache.miss".into(), 1);
        snap.gauges.insert("train.model.features".into(), 5);
        snap.histograms.insert(
            "table.fallback.depth".into(),
            HistogramSnapshot {
                bounds: vec![0, 1, 2, 3],
                counts: vec![10, 2, 0, 1],
                overflow: 0,
                sum: 5,
                count: 13,
            },
        );
        snap
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain.name"), "plain.name");
    }

    /// Schema round-trip: render → parse with serde_json → rebuild the
    /// snapshot → equal. Guards both JSON validity and field fidelity.
    #[test]
    fn metrics_json_roundtrips_through_serde() {
        let snap = sample_snapshot();
        let json = metrics_json(&snap, None);
        let v: serde_json::JsonValue = serde_json::from_str(&json).expect("valid JSON");
        assert_eq!(get(&v, "schema").as_str(), Some("pml-obs/v1"));
        assert_eq!(get(&v, "metrics_total").as_u64(), Some(4));

        let mut back = MetricsSnapshot::default();
        for (k, val) in get(&v, "counters").as_object().expect("counters object") {
            back.counters
                .insert(k.clone(), val.as_u64().expect("counter u64"));
        }
        for (k, val) in get(&v, "gauges").as_object().expect("gauges object") {
            back.gauges
                .insert(k.clone(), val.as_u64().expect("gauge u64"));
        }
        for (k, h) in get(&v, "histograms")
            .as_object()
            .expect("histograms object")
        {
            let nums = |field: &str| -> Vec<u64> {
                get(h, field)
                    .as_array()
                    .expect("array")
                    .iter()
                    .map(|x| x.as_u64().expect("u64"))
                    .collect()
            };
            back.histograms.insert(
                k.clone(),
                HistogramSnapshot {
                    bounds: nums("bounds"),
                    counts: nums("counts"),
                    overflow: get(h, "overflow").as_u64().expect("overflow"),
                    sum: get(h, "sum").as_u64().expect("sum"),
                    count: get(h, "count").as_u64().expect("count"),
                },
            );
        }
        assert_eq!(back, snap);
    }

    #[test]
    fn span_section_appears_only_with_a_forest() {
        let snap = sample_snapshot();
        assert!(!metrics_json(&snap, None).contains("\"spans\""));

        let forest = SpanForest::from_records(vec![
            SpanRecord {
                id: 1,
                parent: None,
                name: "table",
                fields: vec![],
                start_nanos: 0,
                end_nanos: 100,
            },
            SpanRecord {
                id: 2,
                parent: Some(1),
                name: "train",
                fields: vec![],
                start_nanos: 10,
                end_nanos: 60,
            },
        ]);
        let json = metrics_json(&snap, Some(&forest));
        let v: serde_json::JsonValue = serde_json::from_str(&json).expect("valid JSON");
        let spans = get(&v, "spans").as_array().expect("spans array");
        assert_eq!(spans.len(), 2);
        let table = spans
            .iter()
            .find(|s| get(s, "name").as_str() == Some("table"))
            .expect("table");
        assert_eq!(get(table, "total_ns").as_u64(), Some(100));
        assert_eq!(get(table, "self_ns").as_u64(), Some(50));
    }

    #[test]
    fn empty_snapshot_is_valid_json() {
        let json = metrics_json(&MetricsSnapshot::default(), None);
        let v: serde_json::JsonValue = serde_json::from_str(&json).expect("valid JSON");
        assert_eq!(get(&v, "metrics_total").as_u64(), Some(0));
        assert!(get(&v, "counters").as_object().expect("obj").is_empty());
    }
}
