//! # pml-obs
//!
//! Zero-dependency observability for the selection stack: structured
//! tracing, a metrics registry, and a leveled event sink.
//!
//! The paper's headline claim is an *overhead* argument (constant-time
//! inference vs. core-hours of micro-benchmarking), so the reproduction
//! needs to observe its own costs. This crate is the hook layer every
//! other crate links:
//!
//! * [`clock`] — the injected [`clock::Clock`] trait. Library code never
//!   reads the wall clock directly: timing flows through a clock handed in
//!   at the edge ([`clock::MonotonicClock`] in the CLI, a deterministic
//!   [`clock::FakeClock`] in tests), so artifacts stay byte-identical
//!   whether observability is on or off.
//! * [`trace`] — the span API. `span!("train", collective = c)` opens a
//!   timed span on the global [`trace::Tracer`]; finished spans collect
//!   into a tree rendered with self/total times ([`trace::SpanForest`]).
//!   Tracing is off by default and every disabled span is one atomic load.
//! * [`metrics`] — named counters, gauges, and fixed-bucket histograms as
//!   `static` items ([`metrics::Counter::new`] is `const`), registered
//!   into a process-wide registry on first touch and exported as a sorted
//!   [`metrics::MetricsSnapshot`].
//! * [`events`] — leveled structured events replacing ad-hoc `eprintln!`
//!   warnings. Emission buffers into a bounded global sink that the engine
//!   (or the CLI) drains.
//! * [`export`] — hand-rolled JSON rendering of the metrics snapshot and
//!   aggregated span stats (`--metrics-out`); no serde, no dependencies.
//!
//! Nothing in this crate feeds back into computation: metrics and spans
//! are strictly write-only from the pipeline's point of view, which is
//! what makes the byte-identical-artifacts guarantee (enforced by the
//! `obs-determinism` CI lane) hold by construction.

#![deny(rust_2018_idioms, missing_debug_implementations)]
#![deny(clippy::dbg_macro, clippy::todo)]

pub mod clock;
pub mod events;
pub mod export;
pub mod metrics;
pub mod trace;

pub use clock::{Clock, FakeClock, MonotonicClock, NullClock};
pub use events::{Event, Level};
pub use export::metrics_json;
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, LATENCY_NS_BOUNDS, SIZE_BOUNDS,
};
pub use trace::{tracer, SpanForest, SpanGuard, SpanNode, SpanRecord, Tracer};

/// Open a timed span on the global tracer. Returns a guard; the span ends
/// when the guard drops, so bind it: `let _span = span!("train");`.
///
/// Fields are `key = value` pairs rendered with `Display`; they are only
/// formatted when tracing is enabled, so a disabled span costs one atomic
/// load and no allocation.
///
/// ```
/// let _span = pml_obs::span!("train", collective = "allgather", rows = 9216);
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr $(, $key:ident = $value:expr)* $(,)?) => {{
        #[allow(unused_mut)]
        let mut __pml_obs_guard = $crate::trace::tracer().span($name);
        $(
            if __pml_obs_guard.is_enabled() {
                __pml_obs_guard.record_field(stringify!($key), format!("{}", $value));
            }
        )*
        __pml_obs_guard
    }};
}

/// Emit a leveled structured event into the global sink.
///
/// ```
/// pml_obs::event!(Warn, "cache", "cache {}: corrupt, regenerating", "data/x.json");
/// ```
#[macro_export]
macro_rules! event {
    ($level:ident, $target:expr, $($fmt:tt)+) => {
        $crate::events::emit($crate::Event::new(
            $crate::Level::$level,
            $target,
            format!($($fmt)+),
        ))
    };
}
