//! The metrics registry: named counters, gauges, and fixed-bucket
//! histograms.
//!
//! Metrics are declared as `static` items next to the code they observe —
//! [`Counter::new`], [`Gauge::new`], and [`Histogram::new`] are all
//! `const`, so declaration costs nothing at startup:
//!
//! ```
//! use pml_obs::Counter;
//! static CACHE_HIT: Counter = Counter::new("tuner.cache.hit");
//! CACHE_HIT.inc();
//! ```
//!
//! A metric registers itself into the process-wide registry on first
//! touch; untouched metrics never appear in a snapshot. Every operation is
//! a relaxed atomic, so instrumentation is always on, thread-safe under
//! rayon, and cannot perturb any deterministic pipeline output.
//!
//! Naming convention: `<subsystem>.<thing>.<aspect>` in lowercase
//! dot-separated segments (`tuner.cache.hit`, `table.fallback.depth`,
//! `train.tree.nodes`). Snapshots sort by name, so exported JSON is stable
//! for a given set of touched metrics.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Maximum finite bucket bounds per histogram (one extra slot counts
/// overflow). Fixed so histograms stay `const`-constructible. Sized for
/// [`LATENCY_NS_BOUNDS`]'s sub-millisecond resolution (serve-path
/// latencies are single-digit microseconds) with a little headroom.
pub const MAX_BUCKETS: usize = 24;

/// Recover from lock poisoning: metric state is plain atomics, so a panic
/// elsewhere cannot leave it semantically inconsistent.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

static REGISTRY: Mutex<Vec<MetricRef>> = Mutex::new(Vec::new());

/// A registered metric: a `'static` reference to the declaring item.
#[derive(Debug, Clone, Copy)]
enum MetricRef {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

/// Monotonically increasing event count.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Counter {
    pub const fn new(name: &'static str) -> Self {
        Counter {
            name,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    pub fn inc(&'static self) {
        self.add(1);
    }

    pub fn add(&'static self, n: u64) {
        if !self.registered.swap(true, Ordering::Relaxed) {
            lock(&REGISTRY).push(MetricRef::Counter(self));
        }
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Last-written value (model feature count, loaded-table count, …).
#[derive(Debug)]
pub struct Gauge {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Gauge {
    pub const fn new(name: &'static str) -> Self {
        Gauge {
            name,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    pub fn set(&'static self, v: u64) {
        if !self.registered.swap(true, Ordering::Relaxed) {
            lock(&REGISTRY).push(MetricRef::Gauge(self));
        }
        self.value.store(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Fixed-bucket histogram over `u64` observations (latencies in
/// nanoseconds, batch sizes, fallback depths, …).
///
/// `bounds` are inclusive upper bounds in ascending order; an observation
/// lands in the first bucket whose bound is `>= value`, or in the implicit
/// overflow bucket past the last bound. Only the first [`MAX_BUCKETS`]
/// bounds are used.
#[derive(Debug)]
pub struct Histogram {
    name: &'static str,
    bounds: &'static [u64],
    counts: [AtomicU64; MAX_BUCKETS + 1],
    sum: AtomicU64,
    registered: AtomicBool,
}

impl Histogram {
    pub const fn new(name: &'static str, bounds: &'static [u64]) -> Self {
        Histogram {
            name,
            bounds,
            counts: [const { AtomicU64::new(0) }; MAX_BUCKETS + 1],
            sum: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The finite bucket bounds in use (capped at [`MAX_BUCKETS`]).
    pub fn bounds(&self) -> &'static [u64] {
        &self.bounds[..self.bounds.len().min(MAX_BUCKETS)]
    }

    pub fn observe(&'static self, value: u64) {
        if !self.registered.swap(true, Ordering::Relaxed) {
            lock(&REGISTRY).push(MetricRef::Histogram(self));
        }
        let bounds = self.bounds();
        let idx = bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(bounds.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Per-bucket counts; the final element is the overflow bucket.
    pub fn bucket_counts(&self) -> Vec<u64> {
        let n = self.bounds().len();
        (0..=n)
            .map(|i| self.counts[i].load(Ordering::Relaxed))
            .collect()
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.bucket_counts().iter().sum()
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }
}

/// Point-in-time copy of one histogram, used in snapshots and exports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Finite upper bounds, ascending.
    pub bounds: Vec<u64>,
    /// Per-bucket counts, index-aligned with `bounds`.
    pub counts: Vec<u64>,
    /// Observations above the last bound.
    pub overflow: u64,
    pub sum: u64,
    pub count: u64,
}

/// A sorted point-in-time copy of every touched metric in the process.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, u64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Number of distinct metrics in the snapshot.
    pub fn total_metrics(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.histograms.len()
    }
}

/// Snapshot every metric touched so far, merged by name (duplicate
/// counters sum; duplicate histograms with identical bounds merge
/// bucket-wise; a duplicate gauge keeps the last registration's value).
pub fn snapshot() -> MetricsSnapshot {
    let registry = lock(&REGISTRY).clone();
    let mut snap = MetricsSnapshot::default();
    for m in registry {
        match m {
            MetricRef::Counter(c) => {
                *snap.counters.entry(c.name.to_string()).or_insert(0) += c.get();
            }
            MetricRef::Gauge(g) => {
                snap.gauges.insert(g.name.to_string(), g.get());
            }
            MetricRef::Histogram(h) => {
                let mut counts = h.bucket_counts();
                let overflow = counts.pop().unwrap_or(0);
                let fresh = HistogramSnapshot {
                    bounds: h.bounds().to_vec(),
                    counts,
                    overflow,
                    sum: h.sum(),
                    count: h.count(),
                };
                match snap.histograms.entry(h.name.to_string()) {
                    std::collections::btree_map::Entry::Vacant(e) => {
                        e.insert(fresh);
                    }
                    std::collections::btree_map::Entry::Occupied(mut e) => {
                        let have = e.get_mut();
                        if have.bounds == fresh.bounds {
                            for (a, b) in have.counts.iter_mut().zip(&fresh.counts) {
                                *a += b;
                            }
                            have.overflow += fresh.overflow;
                            have.sum += fresh.sum;
                            have.count += fresh.count;
                        }
                    }
                }
            }
        }
    }
    snap
}

/// Nanosecond bounds for latency histograms: 250 ns … 16 s.
///
/// Sub-millisecond values get power-of-two resolution (250 ns, 500 ns,
/// 1 µs, 2 µs, … 500 µs) because that is where serve-path selection
/// latencies live; above 1 ms the spacing widens to the original
/// exponential ladder. Superset of the pre-serve 15-bound layout — the
/// `pml-obs/v1` export shape (`bounds`/`counts`/`overflow`/`sum`/`count`)
/// is unchanged, the arrays are just longer.
pub const LATENCY_NS_BOUNDS: [u64; 21] = [
    250,
    500,
    1_000,
    2_000,
    4_000,
    8_000,
    16_000,
    32_000,
    64_000,
    125_000,
    250_000,
    500_000,
    1_000_000,
    4_000_000,
    16_000_000,
    64_000_000,
    250_000_000,
    1_000_000_000,
    4_000_000_000,
    8_000_000_000,
    16_000_000_000,
];

/// Power-of-four size bounds for row/element-count histograms: 1 … ~268M.
pub const SIZE_BOUNDS: [u64; 15] = [
    1,
    4,
    16,
    64,
    256,
    1_024,
    4_096,
    16_384,
    65_536,
    262_144,
    1_048_576,
    4_194_304,
    16_777_216,
    67_108_864,
    268_435_456,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        static C: Counter = Counter::new("test.counter.basic");
        assert_eq!(C.get(), 0);
        C.inc();
        C.add(41);
        assert_eq!(C.get(), 42);
        assert!(snapshot().counters.contains_key("test.counter.basic"));
    }

    #[test]
    fn gauge_keeps_last_value() {
        static G: Gauge = Gauge::new("test.gauge.basic");
        G.set(7);
        G.set(3);
        assert_eq!(G.get(), 3);
        assert_eq!(snapshot().gauges.get("test.gauge.basic"), Some(&3));
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive_upper_bounds() {
        static H: Histogram = Histogram::new("test.hist.bounds", &[10, 100, 1000]);
        // At, below, and just above each boundary.
        H.observe(0); // bucket 0 (<= 10)
        H.observe(10); // bucket 0 (boundary is inclusive)
        H.observe(11); // bucket 1
        H.observe(100); // bucket 1
        H.observe(101); // bucket 2
        H.observe(1000); // bucket 2
        H.observe(1001); // overflow
        H.observe(u64::MAX); // overflow
        assert_eq!(H.bucket_counts(), vec![2, 2, 2, 2]);
        assert_eq!(H.count(), 8);
        let snap = snapshot();
        let hs = &snap.histograms["test.hist.bounds"];
        assert_eq!(hs.bounds, vec![10, 100, 1000]);
        assert_eq!(hs.counts, vec![2, 2, 2]);
        assert_eq!(hs.overflow, 2);
        assert_eq!(hs.count, 8);
    }

    #[test]
    fn histogram_caps_bounds_at_max_buckets() {
        static BIG: [u64; 30] = [
            1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23, 24,
            25, 26, 27, 28, 29, 30,
        ];
        static H: Histogram = Histogram::new("test.hist.cap", &BIG);
        assert_eq!(H.bounds().len(), MAX_BUCKETS);
        H.observe(MAX_BUCKETS as u64 + 1); // past the usable bounds -> overflow
        H.observe(MAX_BUCKETS as u64); // last usable bucket
        let counts = H.bucket_counts();
        assert_eq!(counts.len(), MAX_BUCKETS + 1);
        assert_eq!(counts[MAX_BUCKETS - 1], 1);
        assert_eq!(counts[MAX_BUCKETS], 1);
    }

    /// The serve path observes µs-scale latencies: the shared latency
    /// ladder must resolve them into distinct sub-millisecond buckets
    /// instead of lumping everything under one coarse bound.
    #[test]
    fn latency_bounds_resolve_sub_millisecond_values() {
        assert!(LATENCY_NS_BOUNDS.len() <= MAX_BUCKETS);
        let sub_ms = LATENCY_NS_BOUNDS.iter().filter(|&&b| b < 1_000_000).count();
        assert!(sub_ms >= 10, "only {sub_ms} sub-ms bounds");
        assert!(LATENCY_NS_BOUNDS.windows(2).all(|w| w[0] < w[1]));
        // Distinct buckets for 0.4 µs, 3 µs, and 40 µs observations.
        static H: Histogram = Histogram::new("test.hist.subms", &LATENCY_NS_BOUNDS);
        H.observe(400);
        H.observe(3_000);
        H.observe(40_000);
        let counts = H.bucket_counts();
        assert_eq!(counts.iter().filter(|&&c| c == 1).count(), 3);
    }

    #[test]
    fn histogram_sum_tracks_observations() {
        static H: Histogram = Histogram::new("test.hist.sum", &[5]);
        H.observe(2);
        H.observe(9);
        assert_eq!(H.sum(), 11);
    }

    #[test]
    fn concurrent_counter_increments_under_rayon() {
        use rayon::prelude::*;
        static C: Counter = Counter::new("test.counter.concurrent");
        static H: Histogram = Histogram::new("test.hist.concurrent", &[4, 8, 12]);
        let lanes: Vec<u64> = (0..16).collect();
        lanes.into_par_iter().for_each(|t| {
            for i in 0..10_000u64 {
                C.inc();
                H.observe((t + i) % 16);
            }
        });
        assert_eq!(C.get(), 160_000);
        assert_eq!(H.count(), 160_000);
        // 160k observations uniform over 0..16: 5 values per bucket of
        // width 5,4,4 and 3 overflow values (13,14,15).
        assert_eq!(H.bucket_counts(), vec![50_000, 40_000, 40_000, 30_000]);
    }

    #[test]
    fn snapshot_is_sorted_by_name() {
        static A: Counter = Counter::new("test.order.a");
        static Z: Counter = Counter::new("test.order.z");
        Z.inc();
        A.inc();
        let snap = snapshot();
        let names: Vec<&String> = snap.counters.keys().collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }
}
