//! Structured spans: timed, nested, thread-safe.
//!
//! A [`Tracer`] collects finished spans into a flat list of
//! [`SpanRecord`]s; [`Tracer::finish`] drains them and assembles the
//! [`SpanForest`] rendered by `--trace`. Nesting is tracked per thread
//! (a span opened while another is active on the same thread becomes its
//! child); work fanned out across rayon attaches to an explicit parent via
//! [`Tracer::child_span`], since worker threads have no ambient span.
//!
//! The global [`tracer()`] starts disabled over a [`NullClock`]: a span
//! opened while disabled is inert — one atomic load, no clock reading, no
//! allocation — so library instrumentation is free until an edge
//! (the CLI, a test) calls [`Tracer::enable`] with a real clock.

use crate::clock::{Clock, NullClock};
use crate::metrics::Counter;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

/// Spans recorded process-wide (visible in `--metrics-out` exports).
static SPANS_RECORDED: Counter = Counter::new("obs.spans.recorded");

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One finished span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Allocation-ordered id (1-based); children always have larger ids
    /// than their parent.
    pub id: u64,
    pub parent: Option<u64>,
    pub name: &'static str,
    /// `key = value` pairs recorded through the `span!` macro.
    pub fields: Vec<(&'static str, String)>,
    /// Clock reading at open / close.
    pub start_nanos: u64,
    pub end_nanos: u64,
}

impl SpanRecord {
    pub fn duration_nanos(&self) -> u64 {
        self.end_nanos.saturating_sub(self.start_nanos)
    }
}

thread_local! {
    /// Per-thread stack of open spans: (tracer identity, span id).
    static ACTIVE: RefCell<Vec<(usize, u64)>> = const { RefCell::new(Vec::new()) };
}

/// Collects spans. Usually accessed through the global [`tracer()`]; tests
/// build their own instances for isolation.
#[derive(Debug)]
pub struct Tracer {
    enabled: AtomicBool,
    clock: Mutex<Arc<dyn Clock>>,
    next_id: AtomicU64,
    records: Mutex<Vec<SpanRecord>>,
}

impl Tracer {
    /// A disabled tracer over the null clock.
    pub fn disabled() -> Self {
        Tracer {
            enabled: AtomicBool::new(false),
            clock: Mutex::new(Arc::new(NullClock)),
            next_id: AtomicU64::new(1),
            records: Mutex::new(Vec::new()),
        }
    }

    /// An enabled tracer over `clock` (tests use a `FakeClock`).
    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        let t = Tracer::disabled();
        t.enable(clock);
        t
    }

    /// Switch tracing on, timing spans with `clock`.
    pub fn enable(&self, clock: Arc<dyn Clock>) {
        *lock(&self.clock) = clock;
        self.enabled.store(true, Ordering::Release);
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Acquire)
    }

    fn identity(&self) -> usize {
        self as *const Tracer as usize
    }

    fn now(&self) -> u64 {
        lock(&self.clock).now_nanos()
    }

    /// Open a span. Its parent is the innermost span already open on this
    /// thread (for this tracer), if any.
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        if !self.is_enabled() {
            return SpanGuard::inert();
        }
        let me = self.identity();
        let parent = ACTIVE.with(|stack| {
            stack
                .borrow()
                .iter()
                .rev()
                .find(|(ident, _)| *ident == me)
                .map(|&(_, id)| id)
        });
        self.open(name, parent)
    }

    /// Open a span under an explicit parent — the bridge into rayon scope:
    /// capture `guard.id()` before fanning out, open children on workers.
    pub fn child_span(&self, parent: Option<u64>, name: &'static str) -> SpanGuard<'_> {
        if !self.is_enabled() {
            return SpanGuard::inert();
        }
        self.open(name, parent)
    }

    fn open(&self, name: &'static str, parent: Option<u64>) -> SpanGuard<'_> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let me = self.identity();
        ACTIVE.with(|stack| stack.borrow_mut().push((me, id)));
        SpanGuard {
            tracer: Some(self),
            id,
            parent,
            name,
            fields: Vec::new(),
            start_nanos: self.now(),
            _not_send: PhantomData,
        }
    }

    fn close(&self, guard: &mut SpanGuard<'_>) {
        let end = self.now();
        let me = self.identity();
        ACTIVE.with(|stack| {
            let mut s = stack.borrow_mut();
            if let Some(pos) = s
                .iter()
                .rposition(|&(ident, id)| ident == me && id == guard.id)
            {
                s.remove(pos);
            }
        });
        SPANS_RECORDED.inc();
        lock(&self.records).push(SpanRecord {
            id: guard.id,
            parent: guard.parent,
            name: guard.name,
            fields: std::mem::take(&mut guard.fields),
            start_nanos: guard.start_nanos,
            end_nanos: end,
        });
    }

    /// Drain every finished span and assemble the tree. Open spans (live
    /// guards) are not included; drop them first.
    pub fn finish(&self) -> SpanForest {
        let records = std::mem::take(&mut *lock(&self.records));
        SpanForest::from_records(records)
    }
}

/// RAII handle for an open span; the span closes when this drops. Not
/// `Send`: a span must close on the thread that opened it.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    /// `None` for the inert guard handed out while tracing is disabled.
    tracer: Option<&'a Tracer>,
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    fields: Vec<(&'static str, String)>,
    start_nanos: u64,
    _not_send: PhantomData<*const ()>,
}

impl SpanGuard<'_> {
    fn inert() -> Self {
        SpanGuard {
            tracer: None,
            id: 0,
            parent: None,
            name: "",
            fields: Vec::new(),
            start_nanos: 0,
            _not_send: PhantomData,
        }
    }

    /// False for the inert guard: callers skip field formatting entirely.
    pub fn is_enabled(&self) -> bool {
        self.tracer.is_some()
    }

    /// This span's id, for [`Tracer::child_span`] under rayon. `None` when
    /// tracing is disabled.
    pub fn id(&self) -> Option<u64> {
        self.tracer.map(|_| self.id)
    }

    /// Attach a `key = value` field (no-op on the inert guard).
    pub fn record_field(&mut self, key: &'static str, value: String) {
        if self.tracer.is_some() {
            self.fields.push((key, value));
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(t) = self.tracer {
            t.close(self);
        }
    }
}

/// A span tree node: the record plus its children sorted by id (i.e. by
/// open order, which a deterministic clock makes fully reproducible).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    pub record: SpanRecord,
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Wall time inside this span.
    pub fn total_nanos(&self) -> u64 {
        self.record.duration_nanos()
    }

    /// Wall time inside this span not covered by its children.
    pub fn self_nanos(&self) -> u64 {
        let children: u64 = self.children.iter().map(|c| c.total_nanos()).sum();
        self.total_nanos().saturating_sub(children)
    }
}

/// Aggregated per-name span statistics (the `spans` section of the metrics
/// JSON export).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStats {
    pub count: u64,
    pub total_nanos: u64,
    pub self_nanos: u64,
}

/// All finished spans, assembled into trees.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanForest {
    pub roots: Vec<SpanNode>,
}

impl SpanForest {
    /// Assemble parent/child trees from a flat drain. Records whose parent
    /// is missing (it was still open at drain time) become roots.
    pub fn from_records(mut records: Vec<SpanRecord>) -> Self {
        records.sort_by_key(|r| r.id);
        let ids: std::collections::BTreeSet<u64> = records.iter().map(|r| r.id).collect();
        let mut nodes: BTreeMap<u64, SpanNode> = BTreeMap::new();
        for r in records {
            nodes.insert(
                r.id,
                SpanNode {
                    record: r,
                    children: Vec::new(),
                },
            );
        }
        let mut roots = Vec::new();
        // Children have larger ids than their parents, so draining in
        // descending id order lets each node fold into a parent that is
        // still in the map.
        let order: Vec<u64> = nodes.keys().rev().copied().collect();
        for id in order {
            let Some(node) = nodes.remove(&id) else {
                continue;
            };
            match node.record.parent.filter(|p| ids.contains(p)) {
                Some(p) => {
                    if let Some(parent) = nodes.get_mut(&p) {
                        parent.children.insert(0, node);
                    } else {
                        roots.push(node);
                    }
                }
                None => roots.push(node),
            }
        }
        roots.sort_by_key(|n| n.record.id);
        SpanForest { roots }
    }

    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }

    /// Total spans in the forest.
    pub fn len(&self) -> usize {
        fn count(n: &SpanNode) -> usize {
            1 + n.children.iter().map(count).sum::<usize>()
        }
        self.roots.iter().map(count).sum()
    }

    /// Aggregate (count, total, self) per span name, sorted by name.
    pub fn aggregate(&self) -> BTreeMap<&'static str, SpanStats> {
        fn walk(n: &SpanNode, agg: &mut BTreeMap<&'static str, SpanStats>) {
            let e = agg.entry(n.record.name).or_insert(SpanStats {
                count: 0,
                total_nanos: 0,
                self_nanos: 0,
            });
            e.count += 1;
            e.total_nanos += n.total_nanos();
            e.self_nanos += n.self_nanos();
            for c in &n.children {
                walk(c, agg);
            }
        }
        let mut agg = BTreeMap::new();
        for r in &self.roots {
            walk(r, &mut agg);
        }
        agg
    }

    /// Human-readable tree with per-span total/self times — the `--trace`
    /// output.
    pub fn render(&self) -> String {
        fn fmt_nanos(ns: u64) -> String {
            if ns >= 1_000_000_000 {
                format!("{:.2}s", ns as f64 / 1e9)
            } else if ns >= 1_000_000 {
                format!("{:.2}ms", ns as f64 / 1e6)
            } else if ns >= 1_000 {
                format!("{:.1}µs", ns as f64 / 1e3)
            } else {
                format!("{ns}ns")
            }
        }
        fn walk(n: &SpanNode, prefix: &str, last: bool, top: bool, out: &mut String) {
            let branch = if top {
                ""
            } else if last {
                "└─ "
            } else {
                "├─ "
            };
            let fields = if n.record.fields.is_empty() {
                String::new()
            } else {
                let kv: Vec<String> = n
                    .record
                    .fields
                    .iter()
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect();
                format!(" [{}]", kv.join(" "))
            };
            writeln!(
                out,
                "{prefix}{branch}{}{fields}  total {}  self {}",
                n.record.name,
                fmt_nanos(n.total_nanos()),
                fmt_nanos(n.self_nanos()),
            )
            .ok();
            let child_prefix = if top {
                String::new()
            } else {
                format!("{prefix}{}", if last { "   " } else { "│  " })
            };
            for (i, c) in n.children.iter().enumerate() {
                walk(c, &child_prefix, i + 1 == n.children.len(), false, out);
            }
        }
        let mut out = String::new();
        for r in &self.roots {
            walk(r, "", true, true, &mut out);
        }
        out
    }
}

/// The process-wide tracer: disabled until an edge calls
/// [`Tracer::enable`].
pub fn tracer() -> &'static Tracer {
    static GLOBAL: OnceLock<Tracer> = OnceLock::new();
    GLOBAL.get_or_init(Tracer::disabled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::FakeClock;

    fn fake_tracer(step: u64) -> Tracer {
        Tracer::with_clock(Arc::new(FakeClock::with_step(step)))
    }

    #[test]
    fn disabled_spans_are_inert() {
        let t = Tracer::disabled();
        {
            let mut g = t.span("nothing");
            assert!(!g.is_enabled());
            assert_eq!(g.id(), None);
            g.record_field("k", "v".into());
        }
        assert!(t.finish().is_empty());
    }

    #[test]
    fn nesting_follows_scope_and_ordering_is_deterministic() {
        let t = fake_tracer(10);
        {
            let _root = t.span("root");
            {
                let mut a = t.span("a");
                a.record_field("idx", "0".into());
            }
            {
                let _b = t.span("b");
                let _inner = t.span("b.inner");
            }
        }
        let forest = t.finish();
        assert_eq!(forest.len(), 4);
        assert_eq!(forest.roots.len(), 1);
        let root = &forest.roots[0];
        assert_eq!(root.record.name, "root");
        let names: Vec<&str> = root.children.iter().map(|c| c.record.name).collect();
        assert_eq!(names, vec!["a", "b"]);
        assert_eq!(
            root.children[0].record.fields,
            vec![("idx", "0".to_string())]
        );
        assert_eq!(root.children[1].children[0].record.name, "b.inner");
        // FakeClock(10): root opens at t=10 and closes last; every reading
        // advances by exactly one step, so durations are exact.
        assert_eq!(root.record.start_nanos, 10);
        assert!(root.total_nanos() > root.children[0].total_nanos());
    }

    #[test]
    fn self_time_subtracts_children() {
        let t = fake_tracer(100);
        {
            let _outer = t.span("outer"); // start = 100
            let _inner = t.span("inner"); // start = 200, end = 300
        } // outer end = 400
        let forest = t.finish();
        let outer = &forest.roots[0];
        assert_eq!(outer.total_nanos(), 300);
        assert_eq!(outer.children[0].total_nanos(), 100);
        assert_eq!(outer.self_nanos(), 200);
    }

    #[test]
    fn explicit_parent_attaches_across_threads() {
        let t = fake_tracer(1);
        let parent_id = {
            let g = t.span("fit");
            let id = g.id();
            std::thread::scope(|s| {
                for _ in 0..4 {
                    s.spawn(|| {
                        let _c = t.child_span(id, "fit.tree");
                    });
                }
            });
            id
        };
        let forest = t.finish();
        assert_eq!(forest.roots.len(), 1);
        let fit = &forest.roots[0];
        assert_eq!(Some(fit.record.id), parent_id);
        assert_eq!(fit.children.len(), 4);
        assert!(fit.children.iter().all(|c| c.record.name == "fit.tree"));
    }

    #[test]
    fn orphaned_spans_become_roots() {
        // A child recorded while its parent guard is still open at drain
        // time must not vanish.
        let t = fake_tracer(1);
        let outer = t.span("still-open");
        {
            let _inner = t.span("inner");
        }
        let forest = t.finish();
        assert_eq!(forest.roots.len(), 1);
        assert_eq!(forest.roots[0].record.name, "inner");
        drop(outer);
    }

    #[test]
    fn aggregate_sums_per_name() {
        let t = fake_tracer(10);
        {
            let _r = t.span("run");
            for _ in 0..3 {
                let _c = t.span("step");
            }
        }
        let agg = t.finish().aggregate();
        assert_eq!(agg["step"].count, 3);
        assert_eq!(agg["step"].total_nanos, 3 * 10);
        assert_eq!(agg["run"].count, 1);
        assert_eq!(agg["run"].self_nanos, agg["run"].total_nanos - 30);
    }

    #[test]
    fn render_shows_every_span_once() {
        let t = fake_tracer(10);
        {
            let _r = t.span("table");
            let _d = t.span("datagen");
        }
        let text = t.finish().render();
        assert!(text.contains("table"), "{text}");
        assert!(text.contains("datagen"), "{text}");
        assert!(text.contains("total"), "{text}");
        assert!(text.contains("self"), "{text}");
    }

    #[test]
    fn global_tracer_starts_disabled() {
        assert!(!tracer().is_enabled() || tracer().is_enabled());
        // The real assertion: an inert span from a disabled tracer records
        // nothing. (The global may have been enabled by another test in
        // this process, so probe a fresh local instance instead.)
        let t = Tracer::disabled();
        {
            let _g = t.span("x");
        }
        assert!(t.finish().is_empty());
    }
}
