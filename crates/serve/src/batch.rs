//! The request batcher: many concurrent `predict` lookups, one forest
//! inference.
//!
//! Forest inference amortizes: feature extraction and tree traversal over
//! a batch of rows costs far less than the same rows one at a time (the
//! `infer.batch.rows` histogram in pml-obs exists to show exactly that).
//! So the daemon never calls [`PretrainedModel::predict_batch`] per
//! request — connection threads enqueue work items into a bounded queue
//! and a single worker drains it in windows: it blocks for the first item,
//! then keeps collecting until either the batch cap or a small time window
//! is hit, groups the batch by (collective, cluster), and runs one batched
//! inference per group.
//!
//! Backpressure is explicit: when the queue is full, [`Batcher::submit`]
//! returns a typed `overload` error immediately instead of blocking the
//! connection thread — the client sees `{"error":{"kind":"overload"}}` and
//! can back off.

use crate::protocol::{collective_wire_name, ErrorKind, ProtoError};
use pml_collectives::{Algorithm, Collective};
use pml_core::{JobConfig, PretrainedModel};
use pml_obs::Histogram;
use std::collections::BTreeMap;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Rows per flushed inference batch (how well the window coalesces).
static BATCH_ROWS: Histogram =
    Histogram::new("serve.batch.rows", &[1, 2, 4, 8, 16, 32, 64, 128, 256]);

/// Queue and window sizing for the batcher.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Bounded queue depth; a full queue rejects with `overload`.
    pub queue_depth: usize,
    /// Flush as soon as this many items are in hand.
    pub max_batch: usize,
    /// Flush when the oldest queued item has waited this long.
    pub window: Duration,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            queue_depth: 4096,
            max_batch: 128,
            window: Duration::from_micros(200),
        }
    }
}

/// One queued lookup plus the channel its answer goes back on.
struct WorkItem {
    cluster: String,
    collective: Collective,
    job: JobConfig,
    reply: mpsc::Sender<Result<Algorithm, ProtoError>>,
}

/// The batching front end to a set of pre-trained models (one per
/// collective). `Send + Sync`: connection threads share one batcher.
#[derive(Debug)]
pub struct Batcher {
    tx: Option<mpsc::SyncSender<WorkItem>>,
    worker: Option<JoinHandle<()>>,
}

impl Batcher {
    /// Spawn the worker thread over `models` (keyed by collective).
    pub fn new(models: BTreeMap<Collective, Arc<PretrainedModel>>, cfg: BatchConfig) -> Batcher {
        let (tx, rx) = mpsc::sync_channel::<WorkItem>(cfg.queue_depth.max(1));
        let max_batch = cfg.max_batch.max(1);
        let window = cfg.window;
        let worker = std::thread::spawn(move || {
            // Blocks for the first item of each window; exits when every
            // sender (the Batcher) is gone.
            while let Ok(first) = rx.recv() {
                let mut batch = vec![first];
                let deadline = Instant::now() + window;
                while batch.len() < max_batch {
                    let left = deadline.saturating_duration_since(Instant::now());
                    match rx.recv_timeout(left) {
                        Ok(item) => batch.push(item),
                        Err(_) => break, // window elapsed or senders gone
                    }
                }
                flush(&models, batch);
            }
        });
        Batcher {
            tx: Some(tx),
            worker: Some(worker),
        }
    }

    /// Enqueue one lookup and wait for its batched answer. Fails fast with
    /// an `overload` error when the queue is full.
    pub fn submit(
        &self,
        cluster: &str,
        collective: Collective,
        job: JobConfig,
    ) -> Result<Algorithm, ProtoError> {
        let internal = || ProtoError::new(ErrorKind::Internal, "batch worker is gone");
        let tx = self.tx.as_ref().ok_or_else(internal)?;
        let (reply_tx, reply_rx) = mpsc::channel();
        let item = WorkItem {
            cluster: cluster.to_string(),
            collective,
            job,
            reply: reply_tx,
        };
        match tx.try_send(item) {
            Ok(()) => {}
            Err(mpsc::TrySendError::Full(_)) => {
                return Err(ProtoError::new(
                    ErrorKind::Overload,
                    "batch queue full; retry after a backoff",
                ))
            }
            Err(mpsc::TrySendError::Disconnected(_)) => return Err(internal()),
        }
        reply_rx.recv().map_err(|_| internal())?
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        // Dropping the sender ends the worker's recv loop; join so queued
        // items are answered before the models are torn down.
        self.tx.take();
        if let Some(worker) = self.worker.take() {
            worker.join().ok();
        }
    }
}

/// Answer one collected batch: group by (collective, cluster), one
/// [`PretrainedModel::predict_batch`] call per group. Send failures are
/// ignored — a disconnected client just stops caring about its answer.
fn flush(models: &BTreeMap<Collective, Arc<PretrainedModel>>, batch: Vec<WorkItem>) {
    BATCH_ROWS.observe(batch.len() as u64);
    let mut groups: BTreeMap<(Collective, String), Vec<WorkItem>> = BTreeMap::new();
    for item in batch {
        groups
            .entry((item.collective, item.cluster.clone()))
            .or_default()
            .push(item);
    }
    for ((collective, cluster), items) in groups {
        let Some(model) = models.get(&collective) else {
            let err = ProtoError::new(
                ErrorKind::Unsupported,
                format!(
                    "no model loaded for {} (daemon has: {})",
                    collective_wire_name(collective),
                    loaded_names(models)
                ),
            );
            for item in items {
                item.reply.send(Err(err.clone())).ok();
            }
            continue;
        };
        let Some(entry) = pml_clusters::by_name(&cluster) else {
            let err = ProtoError::new(
                ErrorKind::Unsupported,
                format!("unknown cluster {cluster:?} (see `pml-mpi zoo`)"),
            );
            for item in items {
                item.reply.send(Err(err.clone())).ok();
            }
            continue;
        };
        let jobs: Vec<JobConfig> = items.iter().map(|i| i.job).collect();
        let algos = model.predict_batch(&entry.spec.node, &jobs);
        for (item, algo) in items.into_iter().zip(algos) {
            item.reply.send(Ok(algo)).ok();
        }
    }
}

fn loaded_names(models: &BTreeMap<Collective, Arc<PretrainedModel>>) -> String {
    if models.is_empty() {
        return "none".to_string();
    }
    models
        .keys()
        .map(|c| collective_wire_name(*c))
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pml_core::{EngineConfig, SelectionEngine, TrainConfig};
    use pml_mlcore::ForestParams;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn batcher_is_send_sync() {
        assert_send_sync::<Batcher>();
    }

    fn mini_model(collective: Collective) -> Arc<PretrainedModel> {
        let clusters: Vec<_> = ["RI", "Haswell"]
            .iter()
            .map(|name| {
                let mut e = pml_clusters::by_name(name).expect("zoo cluster").clone();
                e.node_grid = vec![1, 2, 4];
                e.ppn_grid = vec![2, 8];
                e.msg_grid = vec![16, 1024, 65536];
                e
            })
            .collect();
        let cfg = EngineConfig {
            datagen: pml_clusters::DatagenConfig::noiseless(),
            train: TrainConfig {
                forest: ForestParams {
                    n_estimators: 15,
                    seed: 3,
                    ..Default::default()
                },
                top_k_features: Some(5),
            },
            cache_dir: None,
        };
        SelectionEngine::with_clusters(clusters, cfg)
            .train(collective)
            .expect("mini training succeeds")
    }

    #[test]
    fn batched_answers_match_direct_model_calls() {
        let model = mini_model(Collective::Alltoall);
        let batcher = Arc::new(Batcher::new(
            BTreeMap::from([(Collective::Alltoall, Arc::clone(&model))]),
            BatchConfig {
                window: Duration::from_millis(2),
                ..BatchConfig::default()
            },
        ));
        let node = &pml_clusters::by_name("Frontera")
            .expect("zoo cluster")
            .spec
            .node;
        let jobs: Vec<JobConfig> = (0..32)
            .map(|i| JobConfig::new(1 + i % 5, 1 + (i * 3) % 16, 1usize << (i % 18)))
            .collect();
        let direct = model.predict_batch(node, &jobs);

        let handles: Vec<_> = jobs
            .iter()
            .map(|&job| {
                let b = Arc::clone(&batcher);
                std::thread::spawn(move || b.submit("Frontera", Collective::Alltoall, job))
            })
            .collect();
        let got: Vec<Algorithm> = handles
            .into_iter()
            .map(|h| h.join().expect("no panic").expect("submit succeeds"))
            .collect();
        assert_eq!(got, direct, "batched answers must equal direct inference");
    }

    #[test]
    fn missing_model_and_unknown_cluster_are_typed_unsupported() {
        let model = mini_model(Collective::Alltoall);
        let batcher = Batcher::new(
            BTreeMap::from([(Collective::Alltoall, model)]),
            BatchConfig::default(),
        );
        let job = JobConfig::new(2, 8, 1024);
        let err = batcher
            .submit("Frontera", Collective::Bcast, job)
            .expect_err("no bcast model");
        assert_eq!(err.kind, ErrorKind::Unsupported);
        let err = batcher
            .submit("Atlantis", Collective::Alltoall, job)
            .expect_err("unknown cluster");
        assert_eq!(err.kind, ErrorKind::Unsupported);
    }
}
