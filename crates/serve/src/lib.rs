//! # pml-serve
//!
//! The selection path as a concurrent service.
//!
//! An MPI library normally links [`pml_core::Tuner`] in-process, but a
//! shared deployment (one tuned model per cluster, many launching jobs)
//! wants a daemon: load the tuning tables and model artifacts once, answer
//! selection queries from every process on the node. This crate is that
//! daemon, kept deliberately air-gap-safe — the wire format is
//! newline-delimited JSON over a Unix domain socket, no network stack, no
//! external dependencies.
//!
//! * [`protocol`] — the versioned `pml-serve/v1` frame format: request
//!   parsing with typed error replies (a malformed frame is answered, never
//!   dropped) and reply rendering;
//! * [`batch`] — the request batcher: concurrent `predict` lookups funnel
//!   through a bounded queue into one batched forest inference
//!   ([`pml_core::PretrainedModel::predict_batch`]) per time/size window;
//! * [`server`] — artifact loading and the accept loop: per-connection
//!   threads over a shared [`pml_core::Tuner`], clean shutdown on SIGTERM
//!   or the `shutdown` op (socket file removed, connections joined);
//! * [`signal`] — the SIGTERM/SIGINT → atomic-flag bridge (no `libc`
//!   dependency; one `extern "C"` declaration).

#![deny(rust_2018_idioms, missing_debug_implementations)]
#![deny(clippy::dbg_macro, clippy::todo)]
pub mod batch;
pub mod protocol;
pub mod server;
pub mod signal;

pub use batch::{BatchConfig, Batcher};
pub use protocol::{
    collective_wire_name, parse_request, ErrorKind, Op, ProtoError, Request, PROTOCOL_VERSION,
};
pub use server::{load_artifacts, serve, LoadedArtifacts, ServeConfig, ServeError, Server};
pub use signal::install_termination_flag;
