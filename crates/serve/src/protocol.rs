//! The `pml-serve/v1` wire protocol: newline-delimited JSON frames.
//!
//! One request per line, one reply per line, strictly in order. Every
//! frame carries the protocol version (`"v": "pml-serve/v1"`) so a client
//! and daemon from different builds fail loudly instead of misparsing each
//! other, and an optional `"id"` the reply echoes so clients may pipeline.
//!
//! The contract that matters: **a bad frame is answered, never dropped**.
//! Malformed JSON, a missing version, an unknown op, a bad field — each
//! maps to a typed error reply (`{"ok": false, "error": {"kind": ...}}`)
//! on the same connection, which stays open. Only EOF or a transport error
//! closes a connection.
//!
//! Request frames:
//!
//! ```text
//! {"v":"pml-serve/v1","id":1,"op":"select","collective":"alltoall","nodes":4,"ppn":8,"msg_size":1024}
//! {"v":"pml-serve/v1","id":2,"op":"predict","cluster":"Frontera","collective":"allgather","nodes":16,"ppn":56,"msg_size":4096}
//! {"v":"pml-serve/v1","id":3,"op":"ping"}
//! {"v":"pml-serve/v1","id":4,"op":"stats"}
//! {"v":"pml-serve/v1","id":5,"op":"shutdown"}
//! ```
//!
//! `select` answers from the pre-computed tuning tables (memoized, the
//! constant-time path); `predict` runs the pre-trained forest through the
//! request batcher for job shapes no table covers.

use pml_collectives::{Algorithm, Collective};
use pml_core::{FallbackDepth, JobConfig};
use serde::Value;

/// The frame version this build speaks.
pub const PROTOCOL_VERSION: &str = "pml-serve/v1";

/// Last-resort reply if JSON rendering itself fails (it cannot with the
/// vendored printer, but the daemon must never answer with nothing).
const RENDER_FALLBACK: &str = r#"{"v":"pml-serve/v1","ok":false,"error":{"kind":"internal","message":"reply render failed"}}"#;

/// Typed error category, the `error.kind` field of an error reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The line is not valid JSON, or not a JSON object.
    Parse,
    /// Missing or unsupported `"v"` field.
    Version,
    /// Missing or unknown `"op"` field.
    Op,
    /// A request field is missing, mistyped, or out of range.
    Field,
    /// The daemon lacks the artifact the request needs (no model for the
    /// collective, unknown cluster).
    Unsupported,
    /// The batch queue is full; retry after a backoff.
    Overload,
    /// A daemon-side failure unrelated to the request content.
    Internal,
}

impl ErrorKind {
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::Parse => "parse",
            ErrorKind::Version => "version",
            ErrorKind::Op => "op",
            ErrorKind::Field => "field",
            ErrorKind::Unsupported => "unsupported",
            ErrorKind::Overload => "overload",
            ErrorKind::Internal => "internal",
        }
    }
}

/// One protocol-level failure: what went wrong, for the error reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    pub kind: ErrorKind,
    pub message: String,
}

impl ProtoError {
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> Self {
        ProtoError {
            kind,
            message: message.into(),
        }
    }
}

/// A parsed request: the operation plus the client's optional frame id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    pub id: Option<u64>,
    pub op: Op,
}

/// The operations `pml-serve/v1` defines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Tuning-table lookup (memoized constant-time path).
    Select {
        collective: Collective,
        job: JobConfig,
    },
    /// Batched forest inference for a named zoo cluster.
    Predict {
        cluster: String,
        collective: Collective,
        job: JobConfig,
    },
    /// Liveness probe.
    Ping,
    /// Counters: requests served, cache hits/misses, loaded artifacts.
    Stats,
    /// Ask the daemon to stop accepting and exit cleanly.
    Shutdown,
}

/// Wire name of a collective (`"allgather"`, ...). The inverse of the
/// `collective` request field.
pub fn collective_wire_name(c: Collective) -> &'static str {
    match c {
        Collective::Allgather => "allgather",
        Collective::Alltoall => "alltoall",
        Collective::Bcast => "bcast",
        Collective::Allreduce => "allreduce",
    }
}

fn parse_collective(s: &str) -> Option<Collective> {
    let want = s.to_ascii_lowercase();
    let want = want.trim_start_matches("mpi_");
    Collective::ALL
        .iter()
        .copied()
        .find(|c| collective_wire_name(*c) == want)
}

/// Parse one NDJSON line into a [`Request`]. On failure the error comes
/// back with whatever frame id could still be recovered, so even the error
/// reply stays correlatable when the frame was well-formed enough to carry
/// an `id`.
pub fn parse_request(line: &str) -> Result<Request, (Option<u64>, ProtoError)> {
    let value: Value = serde_json::from_str(line.trim())
        .map_err(|e| (None, ProtoError::new(ErrorKind::Parse, e.to_string())))?;
    let obj = value.as_object().ok_or_else(|| {
        (
            None,
            ProtoError::new(
                ErrorKind::Parse,
                format!("frame must be a JSON object, got {}", value.kind()),
            ),
        )
    })?;
    // The id is recovered first so every later error can echo it.
    let id = match get(obj, "id") {
        None | Some(Value::Null) => None,
        Some(v) => Some(v.as_u64().ok_or_else(|| {
            (
                None,
                ProtoError::new(ErrorKind::Field, "id must be a non-negative integer"),
            )
        })?),
    };
    let fail = |kind, msg: String| (id, ProtoError::new(kind, msg));
    match get(obj, "v").and_then(Value::as_str) {
        Some(PROTOCOL_VERSION) => {}
        Some(other) => {
            let msg = format!(
                "unsupported protocol version {other:?} (daemon speaks {PROTOCOL_VERSION})"
            );
            return Err(fail(ErrorKind::Version, msg));
        }
        None => {
            return Err(fail(
                ErrorKind::Version,
                format!("missing \"v\" field (expected {PROTOCOL_VERSION:?})"),
            ))
        }
    }
    let op = match get(obj, "op").and_then(Value::as_str) {
        Some(op) => op,
        None => return Err(fail(ErrorKind::Op, "missing \"op\" field".to_string())),
    };
    let op = match op {
        "select" => Op::Select {
            collective: field_collective(obj).map_err(|e| (id, e))?,
            job: field_job(obj).map_err(|e| (id, e))?,
        },
        "predict" => Op::Predict {
            cluster: field_str(obj, "cluster").map_err(|e| (id, e))?.to_string(),
            collective: field_collective(obj).map_err(|e| (id, e))?,
            job: field_job(obj).map_err(|e| (id, e))?,
        },
        "ping" => Op::Ping,
        "stats" => Op::Stats,
        "shutdown" => Op::Shutdown,
        other => {
            return Err(fail(
                ErrorKind::Op,
                format!("unknown op {other:?} (select, predict, ping, stats, shutdown)"),
            ))
        }
    };
    Ok(Request { id, op })
}

fn get<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn field_str<'a>(obj: &'a [(String, Value)], key: &str) -> Result<&'a str, ProtoError> {
    get(obj, key)
        .and_then(Value::as_str)
        .ok_or_else(|| ProtoError::new(ErrorKind::Field, format!("missing string field {key:?}")))
}

fn field_u64(obj: &[(String, Value)], key: &str) -> Result<u64, ProtoError> {
    get(obj, key).and_then(Value::as_u64).ok_or_else(|| {
        ProtoError::new(
            ErrorKind::Field,
            format!("missing non-negative integer field {key:?}"),
        )
    })
}

fn field_collective(obj: &[(String, Value)]) -> Result<Collective, ProtoError> {
    let s = field_str(obj, "collective")?;
    parse_collective(s).ok_or_else(|| {
        ProtoError::new(
            ErrorKind::Field,
            format!("unknown collective {s:?} (allgather, alltoall, bcast, allreduce)"),
        )
    })
}

fn field_job(obj: &[(String, Value)]) -> Result<JobConfig, ProtoError> {
    let ranged_u32 = |key: &str| -> Result<u32, ProtoError> {
        let raw = field_u64(obj, key)?;
        let v = u32::try_from(raw)
            .map_err(|_| ProtoError::new(ErrorKind::Field, format!("{key:?} out of range")))?;
        if v == 0 {
            return Err(ProtoError::new(
                ErrorKind::Field,
                format!("{key:?} must be >= 1"),
            ));
        }
        Ok(v)
    };
    let nodes = ranged_u32("nodes")?;
    let ppn = ranged_u32("ppn")?;
    let msg = field_u64(obj, "msg_size")?;
    let msg = usize::try_from(msg)
        .map_err(|_| ProtoError::new(ErrorKind::Field, "\"msg_size\" out of range"))?;
    Ok(JobConfig::new(nodes, ppn, msg))
}

// ---------------------------------------------------------------------------
// Reply rendering

fn frame(id: Option<u64>, ok: bool, extra: Vec<(String, Value)>) -> String {
    let mut pairs = vec![("v".to_string(), Value::Str(PROTOCOL_VERSION.to_string()))];
    if let Some(id) = id {
        pairs.push(("id".to_string(), Value::UInt(id)));
    }
    pairs.push(("ok".to_string(), Value::Bool(ok)));
    pairs.extend(extra);
    serde_json::to_string(&Value::Object(pairs)).unwrap_or_else(|_| RENDER_FALLBACK.to_string())
}

/// A successful reply with op-specific fields appended after `"ok": true`.
pub fn render_ok(id: Option<u64>, extra: Vec<(String, Value)>) -> String {
    frame(id, true, extra)
}

/// A `select` reply: the chosen algorithm plus the fallback depth (0 exact
/// table cell … 3 static default rules), mirroring [`FallbackDepth`].
pub fn render_select(id: Option<u64>, algo: Algorithm, depth: FallbackDepth) -> String {
    frame(
        id,
        true,
        vec![
            (
                "collective".to_string(),
                Value::Str(collective_wire_name(algo.collective()).to_string()),
            ),
            ("algorithm".to_string(), Value::Str(algo.name().to_string())),
            ("depth".to_string(), Value::UInt(depth.as_u64())),
        ],
    )
}

/// A `predict` reply: the model's pick for the requested job shape.
pub fn render_predict(id: Option<u64>, algo: Algorithm) -> String {
    frame(
        id,
        true,
        vec![
            (
                "collective".to_string(),
                Value::Str(collective_wire_name(algo.collective()).to_string()),
            ),
            ("algorithm".to_string(), Value::Str(algo.name().to_string())),
        ],
    )
}

/// A `ping` reply.
pub fn render_pong(id: Option<u64>) -> String {
    frame(id, true, vec![("pong".to_string(), Value::Bool(true))])
}

/// A typed error reply. The connection stays open after sending one.
pub fn render_error(id: Option<u64>, err: &ProtoError) -> String {
    frame(
        id,
        false,
        vec![(
            "error".to_string(),
            Value::Object(vec![
                (
                    "kind".to_string(),
                    Value::Str(err.kind.as_str().to_string()),
                ),
                ("message".to_string(), Value::Str(err.message.clone())),
            ]),
        )],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn must_parse(line: &str) -> Request {
        parse_request(line).expect("frame parses")
    }

    fn must_fail(line: &str) -> (Option<u64>, ProtoError) {
        parse_request(line).expect_err("frame rejected")
    }

    #[test]
    fn select_frame_round_trips() {
        let req = must_parse(
            r#"{"v":"pml-serve/v1","id":7,"op":"select","collective":"alltoall","nodes":4,"ppn":8,"msg_size":1024}"#,
        );
        assert_eq!(req.id, Some(7));
        assert_eq!(
            req.op,
            Op::Select {
                collective: Collective::Alltoall,
                job: JobConfig::new(4, 8, 1024),
            }
        );
    }

    #[test]
    fn predict_frame_names_a_cluster() {
        let req = must_parse(
            r#"{"v":"pml-serve/v1","op":"predict","cluster":"Frontera","collective":"allgather","nodes":16,"ppn":56,"msg_size":4096}"#,
        );
        assert_eq!(req.id, None);
        match req.op {
            Op::Predict {
                cluster,
                collective,
                job,
            } => {
                assert_eq!(cluster, "Frontera");
                assert_eq!(collective, Collective::Allgather);
                assert_eq!(job, JobConfig::new(16, 56, 4096));
            }
            other => panic!("expected predict, got {other:?}"),
        }
    }

    #[test]
    fn collective_names_accept_the_mpi_prefix() {
        for (wire, want) in [
            ("allgather", Collective::Allgather),
            ("MPI_Alltoall", Collective::Alltoall),
            ("Bcast", Collective::Bcast),
            ("mpi_allreduce", Collective::Allreduce),
        ] {
            let line = format!(
                r#"{{"v":"pml-serve/v1","op":"select","collective":"{wire}","nodes":2,"ppn":2,"msg_size":64}}"#
            );
            match must_parse(&line).op {
                Op::Select { collective, .. } => assert_eq!(collective, want, "{wire}"),
                other => panic!("expected select, got {other:?}"),
            }
        }
    }

    #[test]
    fn bare_ops_parse() {
        for (op, want) in [
            ("ping", Op::Ping),
            ("stats", Op::Stats),
            ("shutdown", Op::Shutdown),
        ] {
            let req = must_parse(&format!(r#"{{"v":"pml-serve/v1","id":1,"op":"{op}"}}"#));
            assert_eq!(req.op, want);
        }
    }

    #[test]
    fn malformed_frames_map_to_typed_errors() {
        let cases: [(&str, ErrorKind); 8] = [
            ("{not json", ErrorKind::Parse),
            ("[1,2,3]", ErrorKind::Parse),
            (r#"{"op":"ping"}"#, ErrorKind::Version),
            (r#"{"v":"pml-serve/v0","op":"ping"}"#, ErrorKind::Version),
            (r#"{"v":"pml-serve/v1"}"#, ErrorKind::Op),
            (r#"{"v":"pml-serve/v1","op":"dance"}"#, ErrorKind::Op),
            (
                r#"{"v":"pml-serve/v1","op":"select","collective":"alltoall","nodes":0,"ppn":8,"msg_size":1}"#,
                ErrorKind::Field,
            ),
            (
                r#"{"v":"pml-serve/v1","op":"select","collective":"gossip","nodes":2,"ppn":8,"msg_size":1}"#,
                ErrorKind::Field,
            ),
        ];
        for (line, want) in cases {
            let (_, err) = must_fail(line);
            assert_eq!(err.kind, want, "line: {line}");
        }
    }

    #[test]
    fn truncated_frame_is_a_parse_error() {
        let full = r#"{"v":"pml-serve/v1","id":3,"op":"select","collective":"bcast","nodes":2,"ppn":4,"msg_size":256}"#;
        // Every strict prefix must be rejected, never panic.
        for cut in 1..full.len() {
            if let Ok(req) = parse_request(&full[..cut]) {
                panic!("prefix of len {cut} unexpectedly parsed: {req:?}");
            }
        }
    }

    #[test]
    fn errors_echo_the_frame_id_when_recoverable() {
        let (id, err) = must_fail(r#"{"v":"pml-serve/v1","id":42,"op":"dance"}"#);
        assert_eq!(id, Some(42));
        assert_eq!(err.kind, ErrorKind::Op);
        // A frame too broken to read the id reports none.
        let (id, _) = must_fail("{broken");
        assert_eq!(id, None);
    }

    #[test]
    fn replies_are_single_line_versioned_json() {
        use pml_collectives::AlltoallAlgo;
        let replies = [
            render_select(
                Some(1),
                Algorithm::Alltoall(AlltoallAlgo::Bruck),
                FallbackDepth::Exact,
            ),
            render_predict(None, Algorithm::Alltoall(AlltoallAlgo::Pairwise)),
            render_pong(Some(2)),
            render_error(Some(3), &ProtoError::new(ErrorKind::Overload, "queue full")),
        ];
        for r in &replies {
            assert!(!r.contains('\n'), "reply must be one line: {r}");
            let v: Value = serde_json::from_str(r).expect("reply is valid JSON");
            let obj = v.as_object().expect("reply is an object");
            assert_eq!(
                get(obj, "v").and_then(Value::as_str),
                Some(PROTOCOL_VERSION)
            );
            assert!(get(obj, "ok").and_then(Value::as_bool).is_some());
        }
        let sel: Value = serde_json::from_str(&replies[0]).expect("select reply parses");
        let obj = sel.as_object().expect("object");
        assert_eq!(get(obj, "algorithm").and_then(Value::as_str), Some("bruck"));
        assert_eq!(get(obj, "depth").and_then(Value::as_u64), Some(0));
        let err: Value = serde_json::from_str(&replies[3]).expect("error reply parses");
        let obj = err.as_object().expect("object");
        assert_eq!(get(obj, "ok").and_then(Value::as_bool), Some(false));
        let inner = get(obj, "error").and_then(Value::as_object).expect("error");
        assert_eq!(get(inner, "kind").and_then(Value::as_str), Some("overload"));
    }
}
