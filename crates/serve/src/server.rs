//! The daemon: artifact loading, the accept loop, and clean shutdown.
//!
//! One process loads the tuning tables and pre-trained models once, then
//! any number of clients connect over a Unix domain socket and speak
//! [`crate::protocol`]. Every connection gets a thread; all threads share
//! one [`Tuner`] (`select`, the memoized constant-time path) and one
//! [`Batcher`] (`predict`, batched forest inference). Shutdown is
//! cooperative: SIGTERM/SIGINT (via [`crate::signal`]) or a `shutdown`
//! frame flips a flag, the accept loop stops, connection threads drain and
//! join, and the socket file is removed — a supervisor sees exit code 0.
//!
//! Artifact directory layout (`--model DIR`):
//!
//! ```text
//! DIR/*.json          verified tuning tables (pml-table/v1), one per collective
//! DIR/models/*.json   verified pre-trained model artifacts (pml-model/v1)
//! ```
//!
//! Damaged files are skipped with a warning, not fatal — a deployment with
//! one bad table still serves the rest (mirroring [`Tuner::from_dir`]).

use crate::batch::{BatchConfig, Batcher};
use crate::protocol::{self, Op};
use crate::signal;
use pml_collectives::Collective;
use pml_core::{PretrainedModel, Tuner};
use pml_obs::{Clock, Counter, Histogram, MonotonicClock, LATENCY_NS_BOUNDS};
use serde::Value;
use std::collections::BTreeMap;
use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

static REQUESTS: Counter = Counter::new("serve.requests");
static ERRORS: Counter = Counter::new("serve.errors");
static CONNECTIONS: Counter = Counter::new("serve.connections");
/// Daemon-side handling latency of the memoized `select` path.
static SELECT_LATENCY: Histogram = Histogram::new("serve.select.latency_ns", &LATENCY_NS_BOUNDS);
/// Daemon-side handling latency of the batched `predict` path.
static PREDICT_LATENCY: Histogram = Histogram::new("serve.predict.latency_ns", &LATENCY_NS_BOUNDS);

/// How often blocked loops re-check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Everything `Server::bind` needs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Unix-domain socket path to listen on (created, removed on exit).
    pub socket: PathBuf,
    /// Artifact directory: tables at the top level, models under `models/`.
    pub model_dir: PathBuf,
    /// Batcher sizing for the `predict` path.
    pub batch: BatchConfig,
}

/// A daemon-level failure (socket I/O or artifact loading).
#[derive(Debug)]
pub enum ServeError {
    Io {
        path: PathBuf,
        source: std::io::Error,
    },
    Load(pml_core::PmlError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io { path, source } => write!(f, "{}: {source}", path.display()),
            ServeError::Load(e) => write!(f, "loading artifacts: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<pml_core::PmlError> for ServeError {
    fn from(e: pml_core::PmlError) -> Self {
        ServeError::Load(e)
    }
}

/// What `load_artifacts` found in the model directory.
#[derive(Debug)]
pub struct LoadedArtifacts {
    pub tuner: Tuner,
    pub models: BTreeMap<Collective, Arc<PretrainedModel>>,
    /// Skipped files and why (surfaced on stderr by the CLI).
    pub warnings: Vec<String>,
}

/// Load and statically verify every artifact under `dir`: tuning tables
/// from `dir/*.json`, pre-trained models from `dir/models/*.json`.
pub fn load_artifacts(dir: &Path) -> Result<LoadedArtifacts, ServeError> {
    let (tuner, mut warnings) = Tuner::from_dir(dir)?;
    let mut models = BTreeMap::new();
    let models_dir = dir.join("models");
    if models_dir.is_dir() {
        let io_err = |e: std::io::Error, path: &Path| ServeError::Io {
            path: path.to_path_buf(),
            source: e,
        };
        for entry in std::fs::read_dir(&models_dir).map_err(|e| io_err(e, &models_dir))? {
            let path = entry.map_err(|e| io_err(e, &models_dir))?.path();
            if path.extension().is_none_or(|e| e != "json") {
                continue;
            }
            let text = std::fs::read_to_string(&path).map_err(|e| io_err(e, &path))?;
            match pml_core::verify_model_json(&text) {
                Ok(model) => {
                    models.insert(model.collective, Arc::new(model));
                }
                Err(e) => warnings.push(format!("skipping model {}: {e}", path.display())),
            }
        }
    }
    Ok(LoadedArtifacts {
        tuner,
        models,
        warnings,
    })
}

/// State every connection thread shares.
struct Shared {
    tuner: Tuner,
    batcher: Batcher,
    /// Which collectives have a loaded model (for `stats`).
    model_coverage: Vec<Collective>,
    /// Set by the `shutdown` op or the signal flag; read everywhere.
    shutdown: AtomicBool,
    requests: AtomicU64,
    errors: AtomicU64,
    clock: MonotonicClock,
}

/// A bound, not-yet-running daemon. [`Server::run`] blocks until shutdown.
pub struct Server {
    shared: Arc<Shared>,
    listener: UnixListener,
    socket: PathBuf,
    warnings: Vec<String>,
}

impl fmt::Debug for Server {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Server")
            .field("socket", &self.socket)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Load artifacts from `cfg.model_dir` and bind `cfg.socket`. A stale
    /// socket file from a previous unclean exit is replaced.
    pub fn bind(cfg: &ServeConfig) -> Result<Server, ServeError> {
        let artifacts = load_artifacts(&cfg.model_dir)?;
        Server::with_artifacts(&cfg.socket, artifacts, cfg.batch.clone())
    }

    /// Bind with already-loaded artifacts (tests and embedders).
    pub fn with_artifacts(
        socket: &Path,
        artifacts: LoadedArtifacts,
        batch: BatchConfig,
    ) -> Result<Server, ServeError> {
        let io_err = |e: std::io::Error| ServeError::Io {
            path: socket.to_path_buf(),
            source: e,
        };
        if socket.exists() {
            // A live daemon would hold the listener; a leftover file from a
            // crash just blocks bind(2).
            std::fs::remove_file(socket).map_err(io_err)?;
        }
        let listener = UnixListener::bind(socket).map_err(io_err)?;
        listener.set_nonblocking(true).map_err(io_err)?;
        let model_coverage: Vec<Collective> = artifacts.models.keys().copied().collect();
        Ok(Server {
            shared: Arc::new(Shared {
                tuner: artifacts.tuner,
                batcher: Batcher::new(artifacts.models, batch),
                model_coverage,
                shutdown: AtomicBool::new(false),
                requests: AtomicU64::new(0),
                errors: AtomicU64::new(0),
                clock: MonotonicClock::new(),
            }),
            listener,
            socket: socket.to_path_buf(),
            warnings: artifacts.warnings,
        })
    }

    /// Artifact-loading warnings (skipped files), for the CLI to surface.
    pub fn warnings(&self) -> &[String] {
        &self.warnings
    }

    /// (requests, errors) handled so far.
    pub fn counts(&self) -> (u64, u64) {
        (
            self.shared.requests.load(Ordering::SeqCst),
            self.shared.errors.load(Ordering::SeqCst),
        )
    }

    /// Accept until `term` (e.g. the SIGTERM flag from
    /// [`signal::install_termination_flag`]) or a `shutdown` frame fires,
    /// then drain: join every connection thread and remove the socket file.
    pub fn run(self, term: &AtomicBool) -> Result<(), ServeError> {
        let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
        loop {
            if term.load(Ordering::SeqCst) {
                self.shared.shutdown.store(true, Ordering::SeqCst);
            }
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _addr)) => {
                    CONNECTIONS.inc();
                    let shared = Arc::clone(&self.shared);
                    conns.push(std::thread::spawn(move || {
                        serve_connection(&shared, stream)
                    }));
                    // Reap finished threads so a long-lived daemon's handle
                    // list stays bounded by its live connections.
                    conns.retain(|h| !h.is_finished());
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(POLL_INTERVAL);
                }
                Err(e) => {
                    return Err(ServeError::Io {
                        path: self.socket.clone(),
                        source: e,
                    })
                }
            }
        }
        for handle in conns {
            handle.join().ok();
        }
        // Best effort: the file may already be gone if the directory was.
        std::fs::remove_file(&self.socket).ok();
        Ok(())
    }
}

/// One connection: read NDJSON lines, answer each, until EOF, a transport
/// error, or daemon shutdown. Read timeouts keep the thread responsive to
/// the shutdown flag without busy-waiting.
fn serve_connection(shared: &Shared, stream: UnixStream) {
    stream.set_read_timeout(Some(POLL_INTERVAL)).ok();
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    // The line buffer persists across read timeouts: a frame arriving in
    // pieces accumulates until its newline (or EOF) shows up.
    let mut line = String::new();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match reader.read_line(&mut line) {
            // EOF. A non-empty buffer is a frame truncated mid-line by the
            // disconnect: answer it (typed error or not) before closing.
            Ok(0) => {
                if !line.trim().is_empty() {
                    let (reply, _) = handle_line(shared, &line);
                    send(&mut writer, &reply).ok();
                }
                return;
            }
            Ok(_) => {
                if line.trim().is_empty() {
                    line.clear();
                    continue; // blank keep-alive line
                }
                let (reply, stop) = handle_line(shared, &line);
                line.clear();
                if send(&mut writer, &reply).is_err() || stop {
                    return;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        }
    }
}

fn send(writer: &mut UnixStream, reply: &str) -> std::io::Result<()> {
    writer.write_all(reply.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// Answer one frame. Returns the reply line and whether this frame asked
/// the daemon (or just this connection) to stop.
fn handle_line(shared: &Shared, line: &str) -> (String, bool) {
    shared.requests.fetch_add(1, Ordering::SeqCst);
    REQUESTS.inc();
    let req = match protocol::parse_request(line) {
        Ok(req) => req,
        Err((id, err)) => {
            shared.errors.fetch_add(1, Ordering::SeqCst);
            ERRORS.inc();
            return (protocol::render_error(id, &err), false);
        }
    };
    let id = req.id;
    match req.op {
        Op::Ping => (protocol::render_pong(id), false),
        Op::Select { collective, job } => {
            let t0 = shared.clock.now_nanos();
            let (algo, depth) = shared.tuner.select_traced(collective, job);
            SELECT_LATENCY.observe(shared.clock.now_nanos().saturating_sub(t0));
            (protocol::render_select(id, algo, depth), false)
        }
        Op::Predict {
            cluster,
            collective,
            job,
        } => {
            let t0 = shared.clock.now_nanos();
            let outcome = shared.batcher.submit(&cluster, collective, job);
            PREDICT_LATENCY.observe(shared.clock.now_nanos().saturating_sub(t0));
            match outcome {
                Ok(algo) => (protocol::render_predict(id, algo), false),
                Err(err) => {
                    shared.errors.fetch_add(1, Ordering::SeqCst);
                    ERRORS.inc();
                    (protocol::render_error(id, &err), false)
                }
            }
        }
        Op::Stats => (protocol::render_ok(id, stats_fields(shared)), false),
        Op::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            (
                protocol::render_ok(id, vec![("stopping".to_string(), Value::Bool(true))]),
                true,
            )
        }
    }
}

fn stats_fields(shared: &Shared) -> Vec<(String, Value)> {
    let (hits, misses) = shared.tuner.stats();
    let names = |cs: &[Collective]| {
        Value::Array(
            cs.iter()
                .map(|c| Value::Str(protocol::collective_wire_name(*c).to_string()))
                .collect(),
        )
    };
    vec![
        (
            "requests".to_string(),
            Value::UInt(shared.requests.load(Ordering::SeqCst)),
        ),
        (
            "errors".to_string(),
            Value::UInt(shared.errors.load(Ordering::SeqCst)),
        ),
        ("cache_hits".to_string(), Value::UInt(hits)),
        ("cache_misses".to_string(), Value::UInt(misses)),
        (
            "cached_decisions".to_string(),
            Value::UInt(shared.tuner.cached_decisions() as u64),
        ),
        ("tables".to_string(), names(&shared.tuner.covered())),
        ("models".to_string(), names(&shared.model_coverage)),
    ]
}

/// Convenience for binaries: install signal handlers, bind, run.
pub fn serve(cfg: &ServeConfig) -> Result<(), ServeError> {
    let term = signal::install_termination_flag();
    let server = Server::bind(cfg)?;
    for w in server.warnings() {
        eprintln!("warning: {w}");
    }
    server.run(term)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pml_collectives::{Algorithm, AlltoallAlgo};
    use pml_core::TuningTable;

    fn test_tuner() -> Tuner {
        let mut t = TuningTable::new("X", Collective::Alltoall);
        t.insert(2, 8, 64, Algorithm::Alltoall(AlltoallAlgo::Bruck))
            .unwrap();
        t.insert(2, 8, 65536, Algorithm::Alltoall(AlltoallAlgo::Pairwise))
            .unwrap();
        Tuner::new([t])
    }

    fn test_shared() -> Shared {
        Shared {
            tuner: test_tuner(),
            batcher: Batcher::new(BTreeMap::new(), BatchConfig::default()),
            model_coverage: Vec::new(),
            shutdown: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            clock: MonotonicClock::new(),
        }
    }

    fn obj_get<'a>(v: &'a Value, key: &str) -> Option<&'a Value> {
        v.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    #[test]
    fn select_frames_answer_from_the_table() {
        let shared = test_shared();
        let (reply, stop) = handle_line(
            &shared,
            r#"{"v":"pml-serve/v1","id":1,"op":"select","collective":"alltoall","nodes":2,"ppn":8,"msg_size":64}"#,
        );
        assert!(!stop);
        let v: Value = serde_json::from_str(&reply).unwrap();
        assert_eq!(obj_get(&v, "ok").and_then(Value::as_bool), Some(true));
        assert_eq!(
            obj_get(&v, "algorithm").and_then(Value::as_str),
            Some("bruck")
        );
        assert_eq!(obj_get(&v, "depth").and_then(Value::as_u64), Some(0));
    }

    #[test]
    fn bad_frames_get_typed_error_replies_and_count_as_errors() {
        let shared = test_shared();
        for line in ["{oops", r#"{"v":"pml-serve/v1","op":"dance"}"#] {
            let (reply, stop) = handle_line(&shared, line);
            assert!(!stop, "an error never closes the connection");
            let v: Value = serde_json::from_str(&reply).unwrap();
            assert_eq!(obj_get(&v, "ok").and_then(Value::as_bool), Some(false));
            assert!(obj_get(&v, "error").is_some());
        }
        assert_eq!(shared.errors.load(Ordering::SeqCst), 2);
        assert_eq!(shared.requests.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn predict_without_models_is_unsupported_not_a_crash() {
        let shared = test_shared();
        let (reply, _) = handle_line(
            &shared,
            r#"{"v":"pml-serve/v1","id":9,"op":"predict","cluster":"Frontera","collective":"alltoall","nodes":2,"ppn":8,"msg_size":64}"#,
        );
        let v: Value = serde_json::from_str(&reply).unwrap();
        assert_eq!(obj_get(&v, "ok").and_then(Value::as_bool), Some(false));
        let err = obj_get(&v, "error").unwrap();
        assert_eq!(
            obj_get(err, "kind").and_then(Value::as_str),
            Some("unsupported")
        );
    }

    #[test]
    fn shutdown_frame_stops_the_daemon() {
        let shared = test_shared();
        let (reply, stop) = handle_line(&shared, r#"{"v":"pml-serve/v1","op":"shutdown"}"#);
        assert!(stop);
        assert!(shared.shutdown.load(Ordering::SeqCst));
        let v: Value = serde_json::from_str(&reply).unwrap();
        assert_eq!(obj_get(&v, "ok").and_then(Value::as_bool), Some(true));
    }

    #[test]
    fn end_to_end_over_a_real_socket() {
        let dir = std::env::temp_dir().join(format!("pml-serve-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let socket = dir.join("pml.sock");
        let server = Server::with_artifacts(
            &socket,
            LoadedArtifacts {
                tuner: test_tuner(),
                models: BTreeMap::new(),
                warnings: Vec::new(),
            },
            BatchConfig::default(),
        )
        .unwrap();
        let term = Arc::new(AtomicBool::new(false));
        let t = Arc::clone(&term);
        let daemon = std::thread::spawn(move || server.run(&t));

        let mut client = UnixStream::connect(&socket).unwrap();
        let mut reader = BufReader::new(client.try_clone().unwrap());
        let mut ask = |line: &str| -> Value {
            client.write_all(line.as_bytes()).unwrap();
            client.write_all(b"\n").unwrap();
            client.flush().unwrap();
            let mut reply = String::new();
            reader.read_line(&mut reply).unwrap();
            serde_json::from_str(reply.trim()).unwrap()
        };

        let pong = ask(r#"{"v":"pml-serve/v1","id":1,"op":"ping"}"#);
        assert_eq!(obj_get(&pong, "pong").and_then(Value::as_bool), Some(true));

        let sel = ask(
            r#"{"v":"pml-serve/v1","id":2,"op":"select","collective":"alltoall","nodes":2,"ppn":8,"msg_size":65536}"#,
        );
        assert_eq!(
            obj_get(&sel, "algorithm").and_then(Value::as_str),
            Some("pairwise")
        );

        // Malformed frame: typed error, connection survives.
        let bad = ask("{nope");
        assert_eq!(obj_get(&bad, "ok").and_then(Value::as_bool), Some(false));
        let still = ask(r#"{"v":"pml-serve/v1","id":3,"op":"ping"}"#);
        assert_eq!(obj_get(&still, "id").and_then(Value::as_u64), Some(3));

        let stats = ask(r#"{"v":"pml-serve/v1","op":"stats"}"#);
        assert!(obj_get(&stats, "requests").and_then(Value::as_u64).unwrap() >= 4);

        let bye = ask(r#"{"v":"pml-serve/v1","op":"shutdown"}"#);
        assert_eq!(
            obj_get(&bye, "stopping").and_then(Value::as_bool),
            Some(true)
        );

        daemon.join().unwrap().unwrap();
        assert!(!socket.exists(), "socket file removed on clean shutdown");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn external_termination_flag_stops_run() {
        let dir = std::env::temp_dir().join(format!("pml-serve-term-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let socket = dir.join("pml.sock");
        let server = Server::with_artifacts(
            &socket,
            LoadedArtifacts {
                tuner: test_tuner(),
                models: BTreeMap::new(),
                warnings: Vec::new(),
            },
            BatchConfig::default(),
        )
        .unwrap();
        let term = Arc::new(AtomicBool::new(false));
        let t = Arc::clone(&term);
        let daemon = std::thread::spawn(move || server.run(&t));
        term.store(true, Ordering::SeqCst);
        daemon.join().unwrap().unwrap();
        assert!(!socket.exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
