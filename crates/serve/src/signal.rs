//! SIGTERM/SIGINT → atomic flag, without a `libc` dependency.
//!
//! The build is air-gapped, so instead of pulling in `libc` for one
//! symbol, the POSIX `signal(2)` entry point is declared directly. The
//! handler does the only thing that is async-signal-safe here: a relaxed
//! store into a static [`AtomicBool`] the accept loop polls. Process
//! managers (and `scripts/serve_smoke.sh`) stop the daemon with SIGTERM
//! and expect a clean exit: socket file removed, exit code 0.

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the signal handler; polled by [`crate::server::Server::run`].
static TERMINATE: AtomicBool = AtomicBool::new(false);

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" fn flag_termination(_signum: i32) {
    // Only async-signal-safe operation in this crate: one atomic store.
    TERMINATE.store(true, Ordering::SeqCst);
}

extern "C" {
    /// POSIX `signal(2)`. Returns the previous handler (unused here).
    fn signal(signum: i32, handler: usize) -> usize;
}

/// Install the SIGTERM/SIGINT handler and return the flag it sets.
/// Idempotent; safe to call once per process before serving.
pub fn install_termination_flag() -> &'static AtomicBool {
    let handler = flag_termination as extern "C" fn(i32) as usize;
    // SAFETY: `signal` is the POSIX entry point; the handler only performs
    // an atomic store, which is async-signal-safe.
    unsafe {
        signal(SIGTERM, handler);
        signal(SIGINT, handler);
    }
    &TERMINATE
}

/// The flag without installing handlers (tests flip it directly).
pub fn termination_flag() -> &'static AtomicBool {
    &TERMINATE
}
