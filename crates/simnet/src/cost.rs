//! The communication cost model.
//!
//! Converts a [`NodeSpec`] plus a job's process layout
//! into the per-operation costs the virtual-time executor charges:
//!
//! * **inter-node message**: CPU injection overhead (∝ 1/clock) + fabric
//!   latency (HCA generation) + serialization at the NIC (link rate capped
//!   by PCIe), with an eager→rendezvous knee;
//! * **intra-node message**: memory-system transfer whose bandwidth depends
//!   on whether the transfer fits in the rank's L3 share (cache-resident
//!   copies run at cache speed, streaming copies share DRAM bandwidth with
//!   the other ranks on the node) and whose latency grows with NUMA spread;
//! * **local copy** (packing/unpacking inside an algorithm): same memory
//!   model, no latency term beyond a per-op CPU cost.
//!
//! Every term is a function of exactly the hardware features the paper's
//! classifier consumes, which is what lets the learned model transfer across
//! clusters: the mapping features → optimal algorithm is *caused* by these
//! formulas rather than asserted.

use crate::hw::NodeSpec;

use serde::{Deserialize, Serialize};

/// Legacy fixed rendezvous threshold; the cost model now uses the
/// fabric-dependent [`crate::hw::HcaGeneration::eager_threshold_bytes`],
/// this constant only anchors tests and documentation.
pub const RENDEZVOUS_THRESHOLD: usize = 16 * 1024;

/// Per-rank L3 cache bandwidth in GB/s per GHz of core clock.
const L3_BW_GBS_PER_GHZ: f64 = 16.0;

/// CPU cycles-equivalent cost of injecting or completing one message,
/// expressed as seconds × GHz (i.e. microseconds at 1 GHz).
const PER_MSG_CPU_S_GHZ: f64 = 0.30e-6;

/// Per-local-copy fixed CPU cost, seconds × GHz.
const PER_COPY_CPU_S_GHZ: f64 = 0.05e-6;

/// Base intra-node (shared-memory) message latency, seconds × GHz.
const MEM_ALPHA_S_GHZ: f64 = 0.55e-6;

/// Cost model for one job (a node type plus processes-per-node).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CostModel {
    node: NodeSpec,
    ppn: u32,
    /// Cached: effective NIC bandwidth, bytes/s.
    net_bw: f64,
    /// Cached: per-rank L3 share in bytes.
    l3_share: f64,
    /// Cached: per-rank streaming DRAM bandwidth, bytes/s.
    dram_share: f64,
    /// Cached: per-rank cache-resident copy bandwidth, bytes/s.
    l3_bw: f64,
    /// Cached: NUMA latency multiplier for intra-node traffic.
    numa_factor: f64,
}

impl CostModel {
    pub fn new(node: NodeSpec, ppn: u32) -> Self {
        debug_assert!(ppn >= 1, "ppn must be at least 1");
        let net_bw = node.nic.effective_bw_bytes_per_s();
        let l3_share = node.cpu.l3_cache_mib * 1024.0 * 1024.0 / ppn as f64;
        let dram_share = node.cpu.mem_bw_gbs * 1e9 / ppn as f64;
        let l3_bw = node.cpu.max_clock_ghz * L3_BW_GBS_PER_GHZ * 1e9;
        // Expected fraction of intra-node pairs that cross a NUMA boundary
        // grows with the number of NUMA domains; crossing costs ~35% extra.
        let numa = node.cpu.numa_nodes.max(1) as f64;
        let numa_factor = 1.0 + 0.35 * (1.0 - 1.0 / numa);
        CostModel {
            node,
            ppn,
            net_bw,
            l3_share,
            dram_share,
            l3_bw,
            numa_factor,
        }
    }

    pub fn node_spec(&self) -> &NodeSpec {
        &self.node
    }

    pub fn ppn(&self) -> u32 {
        self.ppn
    }

    /// CPU time to issue or complete one *inter-node* message: the core's
    /// own work (∝ 1/clock) plus the HCA generation's software/driver
    /// overhead.
    pub fn per_msg_net_s(&self) -> f64 {
        PER_MSG_CPU_S_GHZ / self.node.cpu.max_clock_ghz
            + self.node.nic.generation.per_msg_sw_overhead_s()
    }

    /// CPU time to issue or complete one *intra-node* (shared-memory)
    /// message: no NIC in the path, so only the core's work.
    pub fn per_msg_shm_s(&self) -> f64 {
        PER_MSG_CPU_S_GHZ / self.node.cpu.max_clock_ghz
    }

    /// The fabric's eager→rendezvous switch point in bytes.
    pub fn rendezvous_threshold(&self) -> usize {
        self.node.nic.generation.eager_threshold_bytes()
    }

    /// Time the NIC is occupied per message beyond wire serialization
    /// (inverse message rate).
    pub fn nic_msg_occupancy_s(&self) -> f64 {
        1.0 / self.node.nic.generation.msg_rate_per_s()
    }

    /// One-way fabric latency for an inter-node message of `bytes`,
    /// including the rendezvous handshake above the eager threshold.
    pub fn net_alpha_s(&self, bytes: usize) -> f64 {
        let base = self.node.nic.generation.base_latency_s();
        if bytes >= self.rendezvous_threshold() {
            // Handshake: request + clear-to-send round trip at small-message
            // latency before the payload moves.
            base + 2.0 * base
        } else {
            base
        }
    }

    /// NIC serialization rate, bytes/s. The executor models the NIC as a
    /// shared per-node resource at this rate (concurrent senders queue).
    pub fn net_bw_bytes_per_s(&self) -> f64 {
        self.net_bw
    }

    /// Wire time for `bytes` once the NIC is free.
    pub fn net_serialize_s(&self, bytes: usize) -> f64 {
        bytes as f64 / self.net_bw
    }

    /// Latency of an intra-node (shared memory) message.
    pub fn mem_alpha_s(&self) -> f64 {
        MEM_ALPHA_S_GHZ / self.node.cpu.max_clock_ghz * self.numa_factor
    }

    /// Effective per-rank bandwidth for moving `bytes` through the memory
    /// system: cache speed when the transfer (double-buffered, hence ×2)
    /// fits this rank's L3 share, DRAM share otherwise.
    pub fn mem_bw_bytes_per_s(&self, bytes: usize) -> f64 {
        if (bytes as f64) * 2.0 <= self.l3_share {
            self.l3_bw
        } else {
            // Streaming transfers contend with every other rank on the node;
            // they still get at least a sliver even at extreme PPN.
            self.dram_share.max(0.2e9)
        }
    }

    /// Full cost of an intra-node message of `bytes`.
    pub fn intra_node_msg_s(&self, bytes: usize) -> f64 {
        self.mem_alpha_s() + bytes as f64 / self.mem_bw_bytes_per_s(bytes)
    }

    /// Cost of a local pack/unpack/rotate copy of `bytes`.
    pub fn copy_s(&self, bytes: usize) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        // Packing/unpacking copies touch memory laid out by another core's
        // writes; on many-NUMA parts the cache-coherence round trips make
        // the fixed per-copy cost grow with NUMA spread.
        PER_COPY_CPU_S_GHZ / self.node.cpu.max_clock_ghz * self.numa_factor
            + bytes as f64 / self.mem_bw_bytes_per_s(bytes)
    }

    /// Cost of a local elementwise reduction of `bytes`: reads both
    /// operands and writes one — half again the traffic of a plain copy.
    pub fn combine_s(&self, bytes: usize) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        PER_COPY_CPU_S_GHZ / self.node.cpu.max_clock_ghz * self.numa_factor
            + 1.5 * bytes as f64 / self.mem_bw_bytes_per_s(bytes)
    }

    /// Per-rank L3 share in bytes (exposed for diagnostics and tests).
    pub fn l3_share_bytes(&self) -> f64 {
        self.l3_share
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hw::{CpuFamily, CpuSpec, HcaGeneration, InterconnectSpec, NodeSpec, PcieVersion};

    fn node(clock: f64, l3: f64, mem_bw: f64, gen: HcaGeneration) -> NodeSpec {
        NodeSpec {
            cpu: CpuSpec {
                model: "t".into(),
                family: CpuFamily::IntelXeon,
                max_clock_ghz: clock,
                l3_cache_mib: l3,
                mem_bw_gbs: mem_bw,
                cores: 28,
                threads: 56,
                sockets: 2,
                numa_nodes: 2,
            },
            nic: InterconnectSpec::new(gen, PcieVersion::Gen3),
        }
    }

    #[test]
    fn faster_clock_lowers_cpu_overhead() {
        let slow = CostModel::new(node(1.4, 32.0, 100.0, HcaGeneration::Edr), 16);
        let fast = CostModel::new(node(3.4, 32.0, 100.0, HcaGeneration::Edr), 16);
        assert!(fast.per_msg_net_s() < slow.per_msg_net_s());
        assert!(fast.per_msg_shm_s() < slow.per_msg_shm_s());
    }

    #[test]
    fn newer_fabric_lowers_per_message_overhead() {
        let qdr = CostModel::new(node(2.7, 32.0, 100.0, HcaGeneration::Qdr), 16);
        let hdr = CostModel::new(node(2.7, 32.0, 100.0, HcaGeneration::Hdr), 16);
        assert!(hdr.per_msg_net_s() < qdr.per_msg_net_s());
        // Shared-memory path does not involve the NIC at all.
        assert_eq!(hdr.per_msg_shm_s(), qdr.per_msg_shm_s());
    }

    #[test]
    fn rendezvous_knee_raises_alpha() {
        let m = CostModel::new(node(2.7, 38.5, 140.0, HcaGeneration::Edr), 16);
        let thr = m.rendezvous_threshold();
        assert!(m.net_alpha_s(thr) > m.net_alpha_s(thr - 1));
    }

    #[test]
    fn eager_threshold_grows_with_fabric_speed() {
        let qdr = CostModel::new(node(2.7, 38.5, 140.0, HcaGeneration::Qdr), 16);
        let hdr = CostModel::new(node(2.7, 38.5, 140.0, HcaGeneration::Hdr), 16);
        assert!(hdr.rendezvous_threshold() > qdr.rendezvous_threshold());
    }

    #[test]
    fn message_rate_improves_with_generation() {
        let qdr = CostModel::new(node(2.7, 38.5, 140.0, HcaGeneration::Qdr), 16);
        let hdr = CostModel::new(node(2.7, 38.5, 140.0, HcaGeneration::Hdr), 16);
        assert!(hdr.nic_msg_occupancy_s() < qdr.nic_msg_occupancy_s());
    }

    #[test]
    fn l3_knee_in_memory_bandwidth() {
        let m = CostModel::new(node(2.7, 38.5, 140.0, HcaGeneration::Edr), 4);
        let small = 64 * 1024; // fits 38.5/4 MiB share comfortably
        let huge = 64 * 1024 * 1024;
        assert!(m.mem_bw_bytes_per_s(small) > m.mem_bw_bytes_per_s(huge));
    }

    #[test]
    fn bigger_l3_moves_the_knee() {
        // Same message: cache-resident on the large-L3 machine, streaming on
        // the small-L3 one.
        let big = CostModel::new(node(2.7, 256.0, 140.0, HcaGeneration::Edr), 8);
        let small = CostModel::new(node(2.7, 16.0, 140.0, HcaGeneration::Edr), 8);
        let bytes = 4 * 1024 * 1024;
        assert!(big.mem_bw_bytes_per_s(bytes) > small.mem_bw_bytes_per_s(bytes));
    }

    #[test]
    fn ppn_shrinks_dram_share() {
        let lo = CostModel::new(node(2.7, 38.5, 140.0, HcaGeneration::Edr), 2);
        let hi = CostModel::new(node(2.7, 38.5, 140.0, HcaGeneration::Edr), 56);
        let bytes = 64 * 1024 * 1024;
        assert!(lo.mem_bw_bytes_per_s(bytes) > hi.mem_bw_bytes_per_s(bytes));
    }

    #[test]
    fn hdr_beats_edr_on_wire_time() {
        let edr = CostModel::new(node(2.7, 38.5, 140.0, HcaGeneration::Edr), 16);
        let hdr = {
            let mut n = node(2.7, 38.5, 140.0, HcaGeneration::Hdr);
            n.nic.pcie_version = PcieVersion::Gen4;
            CostModel::new(n, 16)
        };
        assert!(hdr.net_serialize_s(1 << 20) < edr.net_serialize_s(1 << 20));
    }

    #[test]
    fn copy_is_cheaper_than_intra_node_message() {
        let m = CostModel::new(node(2.7, 38.5, 140.0, HcaGeneration::Edr), 16);
        assert!(m.copy_s(4096) < m.intra_node_msg_s(4096));
    }

    #[test]
    fn zero_byte_copy_is_free() {
        let m = CostModel::new(node(2.7, 38.5, 140.0, HcaGeneration::Edr), 16);
        assert_eq!(m.copy_s(0), 0.0);
        assert_eq!(m.combine_s(0), 0.0);
    }

    #[test]
    fn combine_costs_more_than_copy() {
        let m = CostModel::new(node(2.7, 38.5, 140.0, HcaGeneration::Edr), 16);
        assert!(m.combine_s(65536) > m.copy_s(65536));
    }
}
