//! Hardware descriptions: CPUs, interconnects, nodes, and whole clusters.
//!
//! These types carry exactly the hardware-feature surface the PML-MPI paper
//! feeds to its classifier (§V-A): CPU max clock, L3 cache, memory bandwidth,
//! core/thread/socket/NUMA counts, PCIe lanes and version, and the HCA link
//! speed and width. Everything else about a machine is deliberately absent — the
//! model must generalize from these features alone, nothing else.

use serde::{Deserialize, Serialize};

/// CPU vendor/ISA family. Only used for display; the classifier never sees
/// it (the paper deliberately avoids categorical CPU features).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CpuFamily {
    IntelXeon,
    IntelXeonPhi,
    AmdEpyc,
    ArmThunderX2,
    ArmA64fx,
    IbmPower8,
    IbmPower9,
}

/// A processor model, as reported by `lscpu` on the paper's clusters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuSpec {
    /// Marketing name, e.g. "Intel Xeon Platinum 8280".
    pub model: String,
    pub family: CpuFamily,
    /// Maximum (turbo) clock in GHz. The paper uses max over base clock
    /// because MPI jobs run hot enough to hold turbo.
    pub max_clock_ghz: f64,
    /// Total L3 cache per node in MiB.
    pub l3_cache_mib: f64,
    /// Sustained memory bandwidth per node in GB/s (STREAM-like).
    pub mem_bw_gbs: f64,
    /// Physical cores per node.
    pub cores: u32,
    /// Hardware threads per node (cores × SMT ways).
    pub threads: u32,
    /// CPU sockets per node.
    pub sockets: u32,
    /// NUMA domains per node.
    pub numa_nodes: u32,
}

/// InfiniBand / Omni-Path generation. Determines per-lane signalling rate
/// and the base injection latency of the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HcaGeneration {
    /// Mellanox QDR: 8 Gb/s data rate per lane (10 Gb/s signalling, 8b/10b).
    Qdr,
    /// Mellanox FDR: ~13.64 Gb/s per lane (14.0625 Gb/s, 64b/66b).
    Fdr,
    /// Mellanox EDR: 25 Gb/s per lane.
    Edr,
    /// Mellanox HDR: 50 Gb/s per lane.
    Hdr,
    /// Intel Omni-Path: 25 Gb/s per lane (100 Gb/s at x4).
    OmniPath,
}

impl HcaGeneration {
    /// Usable data rate per lane in Gb/s.
    pub fn lane_rate_gbps(self) -> f64 {
        match self {
            HcaGeneration::Qdr => 8.0,
            HcaGeneration::Fdr => 13.64,
            HcaGeneration::Edr => 25.0,
            HcaGeneration::Hdr => 50.0,
            HcaGeneration::OmniPath => 25.0,
        }
    }

    /// Base one-way MPI-level small-message latency of the fabric, seconds.
    /// Newer generations have lower switch + HCA latency; Omni-Path has
    /// slightly higher small-message overhead than contemporary IB (EDR).
    pub fn base_latency_s(self) -> f64 {
        match self {
            HcaGeneration::Qdr => 1.60e-6,
            HcaGeneration::Fdr => 1.20e-6,
            HcaGeneration::Edr => 0.90e-6,
            HcaGeneration::Hdr => 0.75e-6,
            HcaGeneration::OmniPath => 1.05e-6,
        }
    }

    /// Per-message host software/driver overhead, seconds. Newer HCA
    /// generations offload more of the message path; Omni-Path's onload
    /// (PSM2) model burns more host CPU per message than contemporary
    /// offloading InfiniBand. This is the main reason message-count-heavy
    /// algorithms (Scatter-Dest's p−1 posts) fare differently across
    /// fabrics of similar bandwidth.
    pub fn per_msg_sw_overhead_s(self) -> f64 {
        match self {
            HcaGeneration::Qdr => 0.90e-6,
            HcaGeneration::Fdr => 0.55e-6,
            HcaGeneration::Edr => 0.35e-6,
            HcaGeneration::Hdr => 0.16e-6,
            HcaGeneration::OmniPath => 0.50e-6,
        }
    }

    /// Eager→rendezvous switch point in bytes. MPI stacks tune the eager
    /// threshold to the fabric's bandwidth-delay product, so faster links
    /// push rendezvous out to larger messages. This is one of the
    /// strongest hardware-coupled behaviours a tuner can learn: the
    /// large-message cost knee sits at a different size on every fabric.
    pub fn eager_threshold_bytes(self) -> usize {
        match self {
            HcaGeneration::Qdr => 8 * 1024,
            HcaGeneration::Fdr => 12 * 1024,
            HcaGeneration::Edr => 16 * 1024,
            HcaGeneration::Hdr => 64 * 1024,
            HcaGeneration::OmniPath => 10 * 1024,
        }
    }

    /// Sustained NIC message rate (messages/second). Newer HCAs process
    /// small messages vastly faster; the per-message slot occupies the NIC
    /// alongside wire serialization, so message-count-heavy algorithms
    /// degrade on old fabrics and at high PPN.
    pub fn msg_rate_per_s(self) -> f64 {
        match self {
            HcaGeneration::Qdr => 4.0e6,
            HcaGeneration::Fdr => 10.0e6,
            HcaGeneration::Edr => 30.0e6,
            HcaGeneration::Hdr => 150.0e6,
            HcaGeneration::OmniPath => 40.0e6,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            HcaGeneration::Qdr => "InfiniBand QDR",
            HcaGeneration::Fdr => "InfiniBand FDR",
            HcaGeneration::Edr => "InfiniBand EDR",
            HcaGeneration::Hdr => "InfiniBand HDR",
            HcaGeneration::OmniPath => "Omni-Path",
        }
    }
}

/// PCIe generation of the slot the HCA sits in. Caps achievable injection
/// bandwidth regardless of link rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PcieVersion {
    Gen3,
    Gen4,
}

impl PcieVersion {
    /// Usable bandwidth per lane in GB/s (after encoding overhead).
    pub fn lane_bw_gbs(self) -> f64 {
        match self {
            PcieVersion::Gen3 => 0.985,
            PcieVersion::Gen4 => 1.969,
        }
    }

    pub fn number(self) -> u32 {
        match self {
            PcieVersion::Gen3 => 3,
            PcieVersion::Gen4 => 4,
        }
    }
}

/// Host Channel Adapter + slot description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InterconnectSpec {
    pub generation: HcaGeneration,
    /// Link width (number of lanes), almost always 4 in practice.
    pub link_width: u32,
    pub pcie_version: PcieVersion,
    /// PCIe lanes wired to the HCA slot.
    pub pcie_lanes: u32,
}

impl InterconnectSpec {
    /// Convenience constructor for the common x4 HCA in a x16 slot.
    pub fn new(generation: HcaGeneration, pcie_version: PcieVersion) -> Self {
        InterconnectSpec {
            generation,
            link_width: 4,
            pcie_version,
            pcie_lanes: 16,
        }
    }

    /// Raw link bandwidth in GB/s (lanes × per-lane rate / 8).
    pub fn link_bw_gbs(&self) -> f64 {
        self.generation.lane_rate_gbps() * self.link_width as f64 / 8.0
    }

    /// PCIe ceiling in GB/s.
    pub fn pcie_bw_gbs(&self) -> f64 {
        self.pcie_version.lane_bw_gbs() * self.pcie_lanes as f64
    }

    /// Effective injection bandwidth per node in bytes/second: the link
    /// rate capped by the PCIe slot, with a protocol-efficiency factor.
    pub fn effective_bw_bytes_per_s(&self) -> f64 {
        const PROTOCOL_EFFICIENCY: f64 = 0.92;
        self.link_bw_gbs().min(self.pcie_bw_gbs()) * 1e9 * PROTOCOL_EFFICIENCY
    }
}

/// One compute node: a CPU spec plus its network attachment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    pub cpu: CpuSpec,
    pub nic: InterconnectSpec,
}

/// A whole (homogeneous) cluster: `num_nodes` identical nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Human-readable cluster name, e.g. "Frontera".
    pub name: String,
    pub node: NodeSpec,
    /// Nodes available on the machine (upper bound for job sizes).
    pub num_nodes: u32,
}

impl ClusterSpec {
    /// Largest process count a single node supports (one rank per hardware
    /// thread).
    pub fn max_ppn(&self) -> u32 {
        self.node.cpu.threads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_cluster() -> ClusterSpec {
        ClusterSpec {
            name: "Testor".into(),
            node: NodeSpec {
                cpu: CpuSpec {
                    model: "Test CPU".into(),
                    family: CpuFamily::IntelXeon,
                    max_clock_ghz: 3.0,
                    l3_cache_mib: 32.0,
                    mem_bw_gbs: 100.0,
                    cores: 16,
                    threads: 32,
                    sockets: 2,
                    numa_nodes: 2,
                },
                nic: InterconnectSpec::new(HcaGeneration::Edr, PcieVersion::Gen3),
            },
            num_nodes: 8,
        }
    }

    #[test]
    fn lane_rates_increase_with_generation() {
        assert!(HcaGeneration::Qdr.lane_rate_gbps() < HcaGeneration::Fdr.lane_rate_gbps());
        assert!(HcaGeneration::Fdr.lane_rate_gbps() < HcaGeneration::Edr.lane_rate_gbps());
        assert!(HcaGeneration::Edr.lane_rate_gbps() < HcaGeneration::Hdr.lane_rate_gbps());
    }

    #[test]
    fn latency_decreases_with_generation() {
        assert!(HcaGeneration::Qdr.base_latency_s() > HcaGeneration::Fdr.base_latency_s());
        assert!(HcaGeneration::Fdr.base_latency_s() > HcaGeneration::Edr.base_latency_s());
        assert!(HcaGeneration::Edr.base_latency_s() > HcaGeneration::Hdr.base_latency_s());
    }

    #[test]
    fn edr_x4_is_100_gbps() {
        let ic = InterconnectSpec::new(HcaGeneration::Edr, PcieVersion::Gen3);
        assert!((ic.link_bw_gbs() - 12.5).abs() < 1e-9); // 100 Gb/s = 12.5 GB/s
    }

    #[test]
    fn pcie_gen3_x16_caps_hdr() {
        // HDR x4 = 25 GB/s link, but PCIe Gen3 x16 tops out at ~15.76 GB/s.
        let ic = InterconnectSpec::new(HcaGeneration::Hdr, PcieVersion::Gen3);
        assert!(ic.effective_bw_bytes_per_s() < 25.0e9 * 0.92);
        // With Gen4 the link is no longer PCIe-bound.
        let ic4 = InterconnectSpec::new(HcaGeneration::Hdr, PcieVersion::Gen4);
        assert!(ic4.effective_bw_bytes_per_s() > ic.effective_bw_bytes_per_s());
    }

    #[test]
    fn cluster_spec_serde_roundtrip() {
        let c = sample_cluster();
        let json = serde_json::to_string(&c).unwrap();
        let back: ClusterSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn max_ppn_is_thread_count() {
        assert_eq!(sample_cluster().max_ppn(), 32);
    }
}
