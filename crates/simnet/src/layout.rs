//! Process-to-node layout for a job.
//!
//! Ranks are laid out block-wise (the MVAPICH/Slurm default): ranks
//! `0..ppn` on node 0, `ppn..2·ppn` on node 1, and so on.

use serde::{Deserialize, Serialize};

/// The (#nodes, PPN) shape of one MPI job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct JobLayout {
    pub nodes: u32,
    pub ppn: u32,
}

impl JobLayout {
    pub fn new(nodes: u32, ppn: u32) -> Self {
        debug_assert!(nodes >= 1 && ppn >= 1, "job must have at least one rank");
        JobLayout { nodes, ppn }
    }

    /// Total number of ranks.
    pub fn world_size(&self) -> u32 {
        self.nodes * self.ppn
    }

    /// Node index hosting `rank`.
    pub fn node_of(&self, rank: u32) -> u32 {
        debug_assert!(rank < self.world_size());
        rank / self.ppn
    }

    /// Whether two ranks share a node (communicate through memory, not the
    /// fabric).
    pub fn same_node(&self, a: u32, b: u32) -> bool {
        self.node_of(a) == self.node_of(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_layout() {
        let l = JobLayout::new(3, 4);
        assert_eq!(l.world_size(), 12);
        assert_eq!(l.node_of(0), 0);
        assert_eq!(l.node_of(3), 0);
        assert_eq!(l.node_of(4), 1);
        assert_eq!(l.node_of(11), 2);
        assert!(l.same_node(4, 7));
        assert!(!l.same_node(3, 4));
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic]
    fn zero_nodes_rejected() {
        JobLayout::new(0, 4);
    }
}
