//! # pml-simnet
//!
//! Virtual-time cluster substrate for the PML-MPI reproduction.
//!
//! The PML-MPI paper measured collective-algorithm runtimes on 18 physical
//! HPC clusters. This crate replaces those machines with a parameterized
//! model of one: [`hw`] describes a cluster through exactly the hardware
//! features the paper's classifier consumes, [`cost`] turns those features
//! into per-operation communication costs, [`layout`] maps ranks onto nodes,
//! and [`noise`] reproduces run-to-run network variability.
//!
//! The virtual-time *executor* that walks a collective's communication
//! schedule against this cost model lives in `pml-collectives`; this crate
//! is purely the machine model.

#![deny(rust_2018_idioms, missing_debug_implementations)]
#![deny(clippy::dbg_macro, clippy::todo)]
pub mod cost;
pub mod hw;
pub mod layout;
pub mod noise;

pub use cost::{CostModel, RENDEZVOUS_THRESHOLD};
pub use hw::{
    ClusterSpec, CpuFamily, CpuSpec, HcaGeneration, InterconnectSpec, NodeSpec, PcieVersion,
};
pub use layout::JobLayout;
pub use noise::NoiseModel;
