//! Network-condition noise.
//!
//! The paper (§III) acknowledges that dynamic factors — congestion from
//! other jobs, adaptive routing, OS jitter — perturb collective timings, and
//! mitigates them by averaging several iterations. We reproduce that with a
//! seeded multiplicative log-normal perturbation applied to whole-collective
//! runtimes: deterministic given a seed, mean ≈ 1, heavier right tail (a
//! congested run is slow, never "anti-slow").

use rand::Rng;
use rand_distr::{Distribution, LogNormal};
use serde::{Deserialize, Serialize};

/// Multiplicative log-normal noise with unit median.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    /// σ of the underlying normal. 0 disables noise entirely.
    pub sigma: f64,
}

impl NoiseModel {
    /// Negative or NaN sigma clamps to 0 (noise disabled); debug builds
    /// assert, since passing one is a caller bug.
    pub fn new(sigma: f64) -> Self {
        debug_assert!(sigma >= 0.0, "sigma must be non-negative");
        NoiseModel {
            sigma: if sigma >= 0.0 { sigma } else { 0.0 },
        }
    }

    /// No noise at all: `sample` always returns exactly 1.0.
    pub fn disabled() -> Self {
        NoiseModel { sigma: 0.0 }
    }

    /// Typical quiet-cluster variability (a few percent run to run).
    pub fn typical() -> Self {
        NoiseModel { sigma: 0.06 }
    }

    pub fn is_disabled(&self) -> bool {
        self.sigma == 0.0
    }

    /// Draw one runtime multiplier.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.sigma == 0.0 {
            return 1.0;
        }
        match LogNormal::new(0.0, self.sigma) {
            Ok(dist) => dist.sample(rng),
            // Non-finite sigma (deserialized garbage): behave as disabled.
            Err(_) => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn disabled_noise_is_exactly_one() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = NoiseModel::disabled();
        for _ in 0..10 {
            assert_eq!(n.sample(&mut rng), 1.0);
        }
    }

    #[test]
    fn seeded_noise_is_deterministic() {
        let n = NoiseModel::typical();
        let a: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..16).map(|_| n.sample(&mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..16).map(|_| n.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn noise_is_positive_and_near_one() {
        let n = NoiseModel::typical();
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        let k = 4000;
        for _ in 0..k {
            let v = n.sample(&mut rng);
            assert!(v > 0.0);
            sum += v;
        }
        let mean = sum / k as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean} drifted");
    }

    #[test]
    fn negative_sigma_clamps_to_disabled() {
        // Release builds clamp instead of aborting; run the check there
        // (debug builds assert on the caller bug instead).
        if cfg!(debug_assertions) {
            let caught = std::panic::catch_unwind(|| NoiseModel::new(-0.1));
            assert!(caught.is_err(), "debug builds reject negative sigma");
        } else {
            assert!(NoiseModel::new(-0.1).is_disabled());
        }
    }
}
