//! The seeded allowlist (`crates/xtask/lint-allowlist.toml`) and the gate
//! that ratchets it downward.
//!
//! An entry is `"lint:path:count"` — `count` violations of `lint` are
//! tolerated in `path`. Entries are line-independent so unrelated edits
//! never invalidate the list; the legacy form `"lint:path"` (repeated once
//! per site) still parses and means count 1 per occurrence. The gate is a
//! true ratchet: a violation beyond a file's budget fails, and budget
//! beyond current violations also fails (the count must shrink, so the
//! list only ever shrinks). `cargo xtask lint --update-allowlist` rewrites
//! the file from the current state after a burn-down.

use crate::lints::Violation;
use std::collections::BTreeMap;

/// Parsed allowlist: key (`"lint:path"`) → tolerated count.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Allowlist {
    pub budgets: BTreeMap<String, usize>,
}

impl Allowlist {
    pub fn total_entries(&self) -> usize {
        self.budgets.values().sum()
    }
}

/// Parse the TOML-subset allowlist: a single `allow = [ "…", … ]` array of
/// strings, `#` comments allowed anywhere outside quotes. The restricted
/// grammar keeps the xtask dependency-free (no TOML crate in the vendored,
/// air-gapped dependency set).
pub fn parse(text: &str) -> Result<Allowlist, String> {
    let mut budgets: BTreeMap<String, usize> = BTreeMap::new();
    let mut in_array = false;
    let mut saw_array = false;
    for (lineno, raw) in text.lines().enumerate() {
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        let mut rest = line.as_str();
        if !in_array {
            let Some(tail) = rest.strip_prefix("allow") else {
                return Err(format!("line {}: expected `allow = [`", lineno + 1));
            };
            let tail = tail.trim_start();
            let Some(tail) = tail.strip_prefix('=') else {
                return Err(format!("line {}: expected `=` after `allow`", lineno + 1));
            };
            let tail = tail.trim_start();
            let Some(tail) = tail.strip_prefix('[') else {
                return Err(format!("line {}: expected `[`", lineno + 1));
            };
            in_array = true;
            saw_array = true;
            rest = tail;
        }
        for item in rest.split(',') {
            let item = item.trim();
            if item.is_empty() {
                continue;
            }
            if item == "]" || item.starts_with(']') {
                in_array = false;
                break;
            }
            let entry = item
                .strip_prefix('"')
                .and_then(|s| s.strip_suffix(']').map(str::trim_end).or(Some(s)))
                .and_then(|s| s.strip_suffix('"'))
                .ok_or_else(|| {
                    format!("line {}: expected quoted entry, got `{item}`", lineno + 1)
                })?;
            if !entry.contains(':') {
                return Err(format!(
                    "line {}: entry `{entry}` is not of the form `lint:path:count`",
                    lineno + 1
                ));
            }
            // `lint:path:count` when the last segment is a number and the
            // head is still a `lint:path` key; otherwise the legacy
            // one-line-per-site form (`lint:path`, budget 1 per line).
            let (key, count) = match entry.rsplit_once(':') {
                Some((head, tail))
                    if head.contains(':')
                        && !tail.is_empty()
                        && tail.bytes().all(|b| b.is_ascii_digit()) =>
                {
                    let n = tail
                        .parse::<usize>()
                        .map_err(|_| format!("line {}: count `{tail}` out of range", lineno + 1))?;
                    (head.to_string(), n)
                }
                _ => (entry.to_string(), 1),
            };
            *budgets.entry(key).or_insert(0) += count;
            if item.ends_with(']') {
                in_array = false;
            }
        }
    }
    if !saw_array {
        return Err("no `allow = [ … ]` array found".into());
    }
    Ok(Allowlist { budgets })
}

fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Render the current violations as a fresh allowlist file, one
/// `lint:path:count` entry per key, sorted for stable diffs.
pub fn render(violations: &[Violation]) -> String {
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    for v in violations {
        *counts.entry(v.key()).or_insert(0) += 1;
    }
    let total: usize = counts.values().sum();
    let mut out = String::new();
    out.push_str("# pml-lint allowlist: `lint:path:count` tolerates `count` sites per file.\n");
    out.push_str("# Policy: this file only shrinks. New violations fail CI; fixing a site\n");
    out.push_str("# requires lowering its count (the gate errors on excess budget too).\n");
    out.push_str("# Regenerate after a burn-down: cargo xtask lint --update-allowlist\n");
    out.push_str(&format!("# Tolerated sites: {total}\n"));
    out.push_str("allow = [\n");
    for (key, n) in &counts {
        out.push_str(&format!("    \"{key}:{n}\",\n"));
    }
    out.push_str("]\n");
    out
}

/// Gate outcome: what exceeds the budget and what budget is unused.
#[derive(Debug, Default)]
pub struct Gate {
    /// Violations beyond the allowlisted budget, i.e. new regressions.
    pub new: Vec<Violation>,
    /// Allowlist keys whose budget exceeds current violations (entry
    /// count that must be deleted to keep the ratchet honest).
    pub stale: BTreeMap<String, usize>,
    /// Violations covered by budget.
    pub allowed: usize,
}

impl Gate {
    pub fn is_clean(&self) -> bool {
        self.new.is_empty() && self.stale.is_empty()
    }
}

/// Compare found violations against the allowlist.
pub fn gate(violations: &[Violation], allow: &Allowlist) -> Gate {
    let mut found: BTreeMap<String, Vec<&Violation>> = BTreeMap::new();
    for v in violations {
        found.entry(v.key()).or_default().push(v);
    }
    let mut out = Gate::default();
    for (key, vs) in &found {
        let budget = allow.budgets.get(key).copied().unwrap_or(0);
        out.allowed += vs.len().min(budget);
        if vs.len() > budget {
            // More sites than budget: report the trailing ones (the list is
            // in file order, so later sites are the likelier newcomers).
            for v in &vs[budget..] {
                out.new.push((*v).clone());
            }
        }
    }
    for (key, &budget) in &allow.budgets {
        let have = found.get(key).map_or(0, |v| v.len());
        if budget > have {
            out.stale.insert(key.clone(), budget - have);
        }
    }
    out
}
