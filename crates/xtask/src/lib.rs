//! # pml-lint (`cargo xtask`)
//!
//! Repo-specific correctness tooling for the PML-MPI workspace: a static
//! lint pass enforcing invariants clippy cannot express, artifact
//! verification orchestration, plus the dynamic-analysis CI lanes
//! (ThreadSanitizer, Miri).
//!
//! The seven lints (see [`lints`]):
//!
//! 1. **forbidden-panic** — no `unwrap`/`expect`/`panic!`/`unreachable!`
//!    (or `todo!`/`unimplemented!`) in non-test library code. Seeded with a
//!    checked-in allowlist of current offenders
//!    (`crates/xtask/lint-allowlist.toml`); the gate is a ratchet that only
//!    shrinks.
//! 2. **nondeterminism** — no ambient entropy (`thread_rng`,
//!    `from_entropy`), wall-clock values (`Instant::now`,
//!    `SystemTime::now`), or unordered containers (`HashMap`/`HashSet`) in
//!    dataset generation, ML training, and tuning-table code: identical
//!    seeds must reproduce identical models and tables byte-for-byte.
//! 3. **wildcard-algorithm-match** — no `_ =>` arms in collective-
//!    `Algorithm` dispatch, so adding an algorithm is a compile gate, never
//!    a silent fallback.
//! 4. **cast-truncation** — no unguarded `as u8`/`as u16`/`as u32`
//!    narrowing casts in `mlcore`/`core`: node indices and class labels
//!    must be range-checked, not silently wrapped.
//! 5. **unchecked-indexing** — no `get_unchecked`/`get_unchecked_mut`
//!    anywhere: hot paths earn their speed through iterators, not
//!    `unsafe` bounds-check elision.
//! 6. **float-reduction-order** — no `.sum()`/`.reduce()`/`.fold()`/
//!    `.product()` directly on a rayon parallel iterator in deterministic-
//!    pipeline code: float addition is order-sensitive and the parallel
//!    schedule is not.
//! 7. **swallowed-result** — no `let _ = call(...)`: a discarded call
//!    result (usually a `Result`) silences the error path.
//!
//! The pass is a self-contained token-tree analyzer ([`mask`] blanks
//! comments, strings, and test-only code; [`tokens`] lexes what remains
//! into idents/numbers/punctuation with exact source spans) because the
//! vendored, air-gapped dependency set carries no `syn`/proc-macro stack —
//! and a dependency-free xtask keeps the tier-1 build fast.

#![deny(rust_2018_idioms, missing_debug_implementations)]
#![deny(clippy::dbg_macro, clippy::todo)]

pub mod allowlist;
pub mod lints;
pub mod mask;
pub mod tokens;
pub mod walk;

use lints::{LintConfig, Violation};
use std::path::Path;

/// Lint every workspace source file under `root` with `cfg` scopes.
pub fn scan_workspace(root: &Path, cfg: &LintConfig) -> Result<Vec<Violation>, String> {
    let files =
        walk::workspace_sources(root).map_err(|e| format!("walking {}: {e}", root.display()))?;
    let mut out = Vec::new();
    for (rel, path) in files {
        let src = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        out.extend(lints::lint_file(&rel, &src, cfg));
    }
    Ok(out)
}
