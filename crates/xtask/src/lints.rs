//! The repo-specific lint passes.
//!
//! All passes run over masked source (see [`crate::mask`]): comments,
//! strings, and test-only code are already blanked, so the token scans
//! cannot false-positive on prose or fixtures embedded in strings. The
//! masked text is tokenized once per file (see [`crate::tokens`]) and
//! every pass works on token adjacency rather than raw chars.

use crate::mask::{line_of, mask_source, mask_test_code};
use crate::tokens::{fn_body_spans, innermost_fn, tokenize, Token, TokenKind};
use std::fmt;

/// Which invariant a violation breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintKind {
    /// `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/`unimplemented!`
    /// in non-test library code: measurement and selection must degrade
    /// through `Result`, not abort a sweep.
    ForbiddenPanic,
    /// Ambient entropy or unordered iteration in the dataset / training /
    /// tuning-table pipeline: identical seeds must reproduce identical
    /// models and tables byte-for-byte.
    Nondeterminism,
    /// A wildcard `_ =>` arm in algorithm dispatch: adding an `Algorithm`
    /// variant must be a compile error, never a silent fallback.
    WildcardAlgoMatch,
    /// An `as u8`/`as u16`/`as u32` narrowing cast in an ML-core or core
    /// function with no visible range guard: silent truncation corrupts
    /// node indices and class labels instead of failing.
    CastTruncation,
    /// `get_unchecked`/`get_unchecked_mut`: every slice access in this
    /// workspace must be bounds-checked — the hot paths already avoid
    /// checks via iterators, not via `unsafe`.
    UncheckedIndexing,
    /// A float reduction (`.sum`/`.reduce`/`.fold`/`.product`) directly on
    /// a rayon parallel iterator in deterministic-pipeline code: float
    /// addition is not associative, so the result depends on the thread
    /// schedule. Collect first, reduce sequentially.
    FloatReductionOrder,
    /// `let _ = some_call(...)`: discarding a call result (usually a
    /// `Result`) silences the error path. Handle it or document why with
    /// `.ok()`; plain variable discards (`let _ = x;`) are fine.
    SwallowedResult,
    /// `.lock().unwrap()` / `.read().unwrap()` / `.write().unwrap()` on a
    /// poisonable guard in non-test code: one panicking holder turns every
    /// later acquisition into a cascade panic. Use the poison-handling
    /// idiom `unwrap_or_else(PoisonError::into_inner)` — the data is a
    /// plain value and stays usable.
    LockUnwrap,
    /// `Ordering::Relaxed` outside the designated metric/counter modules:
    /// Relaxed is correct for monotone counters read after a join, and
    /// silently wrong for flags, handshakes, or anything another load is
    /// ordered against. Everything else uses `SeqCst` until a measured
    /// need says otherwise.
    RelaxedAtomic,
}

impl LintKind {
    pub fn as_str(self) -> &'static str {
        match self {
            LintKind::ForbiddenPanic => "forbidden-panic",
            LintKind::Nondeterminism => "nondeterminism",
            LintKind::WildcardAlgoMatch => "wildcard-algorithm-match",
            LintKind::CastTruncation => "cast-truncation",
            LintKind::UncheckedIndexing => "unchecked-indexing",
            LintKind::FloatReductionOrder => "float-reduction-order",
            LintKind::SwallowedResult => "swallowed-result",
            LintKind::LockUnwrap => "lock-across-await-free-unwrap",
            LintKind::RelaxedAtomic => "relaxed-atomic-outside-counter",
        }
    }

    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "forbidden-panic" => Some(LintKind::ForbiddenPanic),
            "nondeterminism" => Some(LintKind::Nondeterminism),
            "wildcard-algorithm-match" => Some(LintKind::WildcardAlgoMatch),
            "cast-truncation" => Some(LintKind::CastTruncation),
            "unchecked-indexing" => Some(LintKind::UncheckedIndexing),
            "float-reduction-order" => Some(LintKind::FloatReductionOrder),
            "swallowed-result" => Some(LintKind::SwallowedResult),
            "lock-across-await-free-unwrap" => Some(LintKind::LockUnwrap),
            "relaxed-atomic-outside-counter" => Some(LintKind::RelaxedAtomic),
            _ => None,
        }
    }
}

impl fmt::Display for LintKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One lint hit: where and what.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub lint: LintKind,
    /// Repo-relative path with `/` separators (the allowlist key).
    pub file: String,
    pub line: usize,
    /// The offending token, for the human reading the report.
    pub what: String,
}

impl Violation {
    /// Allowlist key: `lint:file` (line-independent, so unrelated edits
    /// never invalidate the list). The allowlist stores a per-key budget.
    pub fn key(&self) -> String {
        format!("{}:{}", self.lint, self.file)
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.lint, self.what
        )
    }
}

/// Scope configuration: which files each path-scoped lint applies to.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Path prefixes (repo-relative) where the determinism lints run
    /// (`nondeterminism` and `float-reduction-order`).
    pub determinism_scope: Vec<String>,
    /// Exact paths carved out of `determinism_scope`: the designated
    /// wall-clock sites (a `Clock` implementation reads `Instant::now`
    /// somewhere, exactly once, behind the trait).
    pub determinism_exempt: Vec<String>,
    /// Files where every `match` is algorithm dispatch (the enum registry).
    pub dispatch_all_matches: Vec<String>,
    /// Files where a `match` counts as dispatch when its scrutinee
    /// mentions `algo`/`Algorithm`.
    pub dispatch_scope: Vec<String>,
    /// Path prefixes where narrowing casts must carry a range guard.
    pub cast_scope: Vec<String>,
    /// Path prefixes (the metric/counter modules) where `Ordering::Relaxed`
    /// is legitimate; everywhere else it is a violation.
    pub relaxed_counter_scope: Vec<String>,
}

impl LintConfig {
    /// The scopes for this repository.
    pub fn for_repo() -> Self {
        LintConfig {
            determinism_scope: vec![
                "crates/clusters/src/datagen.rs".into(),
                "crates/mlcore/src/".into(),
                "crates/core/src/tuning_table.rs".into(),
                "crates/core/src/tuner.rs".into(),
                "crates/core/src/pipeline.rs".into(),
                "crates/obs/src/".into(),
            ],
            determinism_exempt: vec!["crates/obs/src/clock.rs".into()],
            dispatch_all_matches: vec!["crates/collectives/src/algo.rs".into()],
            dispatch_scope: vec![
                "crates/core/src/selectors.rs".into(),
                "crates/core/src/tuning_table.rs".into(),
                "crates/core/src/tuner.rs".into(),
                "crates/collectives/src/measure.rs".into(),
                "crates/collectives/src/exec/".into(),
            ],
            cast_scope: vec!["crates/mlcore/src/".into(), "crates/core/src/".into()],
            relaxed_counter_scope: vec![
                // The metrics registry (counters, gauges, histograms) and
                // the span-id/tick counters around it.
                "crates/obs/src/".into(),
                // Tuner memo hit/miss counters, read after threads join.
                "crates/core/src/tuner.rs".into(),
            ],
        }
    }
}

/// Run every lint over one file. `rel` is the repo-relative path.
pub fn lint_file(rel: &str, src: &str, cfg: &LintConfig) -> Vec<Violation> {
    let masked = mask_test_code(&mask_source(src));
    let tokens = tokenize(&masked.chars().collect::<Vec<char>>());
    let mut out = Vec::new();
    forbidden_panic(rel, &masked, &tokens, &mut out);
    unchecked_indexing(rel, &masked, &tokens, &mut out);
    swallowed_result(rel, &masked, &tokens, &mut out);
    lock_unwrap(rel, &masked, &tokens, &mut out);
    if !cfg.relaxed_counter_scope.iter().any(|p| rel.starts_with(p)) {
        relaxed_atomic(rel, &masked, &tokens, &mut out);
    }
    let determinism_exempt = cfg.determinism_exempt.iter().any(|p| rel == p);
    if !determinism_exempt && cfg.determinism_scope.iter().any(|p| rel.starts_with(p)) {
        nondeterminism(rel, &masked, &tokens, &mut out);
        float_reduction_order(rel, &masked, &tokens, &mut out);
    }
    if cfg.cast_scope.iter().any(|p| rel.starts_with(p)) {
        cast_truncation(rel, &masked, &tokens, &mut out);
    }
    let all_matches = cfg.dispatch_all_matches.iter().any(|p| rel == p);
    if all_matches || cfg.dispatch_scope.iter().any(|p| rel.starts_with(p)) {
        wildcard_algo_match(rel, &masked, &tokens, all_matches, &mut out);
    }
    out
}

fn push(
    out: &mut Vec<Violation>,
    lint: LintKind,
    rel: &str,
    masked: &str,
    at: usize,
    what: String,
) {
    out.push(Violation {
        lint,
        file: rel.to_string(),
        line: line_of(masked, at),
        what,
    });
}

// `debug_assert*` is deliberately absent: it vanishes in release builds,
// so it can state invariants without creating a production abort path.
const PANIC_MACROS: [&str; 7] = [
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];
const PANIC_METHODS: [&str; 4] = ["unwrap", "expect", "unwrap_err", "expect_err"];

fn forbidden_panic(rel: &str, masked: &str, tokens: &[Token], out: &mut Vec<Violation>) {
    for (k, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let name = t.text.as_str();
        let is_macro =
            PANIC_MACROS.contains(&name) && tokens.get(k + 1).is_some_and(|n| n.is_punct('!'));
        let is_method = PANIC_METHODS.contains(&name)
            && k > 0
            && tokens[k - 1].is_punct('.')
            && tokens.get(k + 1).is_some_and(|n| n.is_punct('('));
        if is_macro || is_method {
            let what = if is_macro {
                format!("{name}! in library code")
            } else {
                format!(".{name}() in library code")
            };
            push(out, LintKind::ForbiddenPanic, rel, masked, t.start, what);
        }
    }
}

const ENTROPY_IDENTS: [&str; 2] = ["thread_rng", "from_entropy"];
const UNORDERED_TYPES: [&str; 2] = ["HashMap", "HashSet"];
const CLOCK_TYPES: [&str; 2] = ["Instant", "SystemTime"];

fn nondeterminism(rel: &str, masked: &str, tokens: &[Token], out: &mut Vec<Violation>) {
    for (k, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let name = t.text.as_str();
        let what = if ENTROPY_IDENTS.contains(&name) {
            Some(format!("{name} (ambient entropy; plumb a seed instead)"))
        } else if UNORDERED_TYPES.contains(&name) {
            Some(format!(
                "{name} (unordered iteration; use BTreeMap/BTreeSet)"
            ))
        } else if CLOCK_TYPES.contains(&name)
            && tokens.get(k + 1).is_some_and(|n| n.is_punct(':'))
            && tokens.get(k + 2).is_some_and(|n| n.is_punct(':'))
            && tokens.get(k + 3).is_some_and(|n| n.is_ident("now"))
        {
            Some(format!(
                "{name}::now (wall-clock value in a derived result)"
            ))
        } else {
            None
        };
        if let Some(what) = what {
            push(out, LintKind::Nondeterminism, rel, masked, t.start, what);
        }
    }
}

/// Integer types an `as` cast can silently truncate into. `u64`/`usize`
/// widen on every supported target; `i*` and floats don't appear in the
/// scoped crates' cast sites.
const NARROW_TARGETS: [&str; 3] = ["u8", "u16", "u32"];

/// Identifiers whose presence anywhere in the enclosing function counts as
/// a range guard for a narrowing cast: an assertion family, a checked
/// conversion, an explicit clamp, a `partition_point` (result bounded by
/// the slice length, which the caller sized), a `MAX` comparison, or the
/// `LEAF` sentinel (tree code that compares against the sentinel has
/// already bounded the index space).
const CAST_GUARDS: [&str; 13] = [
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
    "assert",
    "assert_eq",
    "assert_ne",
    "try_from",
    "try_into",
    "clamp",
    "min",
    "partition_point",
    "MAX",
    "LEAF",
];

fn cast_truncation(rel: &str, masked: &str, tokens: &[Token], out: &mut Vec<Violation>) {
    let spans = fn_body_spans(tokens);
    for (k, t) in tokens.iter().enumerate() {
        if !t.is_ident("as") {
            continue;
        }
        let Some(target) = tokens.get(k + 1) else {
            continue;
        };
        if target.kind != TokenKind::Ident || !NARROW_TARGETS.contains(&target.text.as_str()) {
            continue;
        }
        // Guard search is function-scoped: a cast is fine when the
        // enclosing fn states the range invariant somewhere.
        let guarded = innermost_fn(&spans, t.start).is_some_and(|(s, e)| {
            tokens.iter().any(|g| {
                g.kind == TokenKind::Ident
                    && g.start >= s
                    && g.end <= e
                    && CAST_GUARDS.contains(&g.text.as_str())
            })
        });
        if !guarded {
            push(
                out,
                LintKind::CastTruncation,
                rel,
                masked,
                t.start,
                format!(
                    "unguarded `as {}` narrowing cast (assert the range or use try_from)",
                    target.text
                ),
            );
        }
    }
}

const UNCHECKED_METHODS: [&str; 2] = ["get_unchecked", "get_unchecked_mut"];

fn unchecked_indexing(rel: &str, masked: &str, tokens: &[Token], out: &mut Vec<Violation>) {
    for (k, t) in tokens.iter().enumerate() {
        if t.kind == TokenKind::Ident
            && UNCHECKED_METHODS.contains(&t.text.as_str())
            && k > 0
            && tokens[k - 1].is_punct('.')
            && tokens.get(k + 1).is_some_and(|n| n.is_punct('('))
        {
            push(
                out,
                LintKind::UncheckedIndexing,
                rel,
                masked,
                t.start,
                format!(".{}() bypasses bounds checks", t.text),
            );
        }
    }
}

/// Rayon adapters that start a parallel chain.
const PAR_SOURCES: [&str; 8] = [
    "par_iter",
    "par_iter_mut",
    "into_par_iter",
    "par_chunks",
    "par_chunks_mut",
    "par_chunks_exact",
    "par_bridge",
    "par_windows",
];
const FLOAT_REDUCERS: [&str; 4] = ["sum", "reduce", "fold", "product"];

fn float_reduction_order(rel: &str, masked: &str, tokens: &[Token], out: &mut Vec<Violation>) {
    for (k, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident || !PAR_SOURCES.contains(&t.text.as_str()) {
            continue;
        }
        if k == 0 || !tokens[k - 1].is_punct('.') {
            continue;
        }
        // Scan the rest of the statement (depth-0 `;`, or the close of the
        // enclosing bracket) for an order-sensitive reduction in the chain.
        let mut depth = 0i32;
        let mut j = k + 1;
        while let Some(n) = tokens.get(j) {
            match n.kind {
                TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => depth += 1,
                TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('}') => {
                    depth -= 1;
                    if depth < 0 {
                        break;
                    }
                }
                TokenKind::Punct(';') if depth == 0 => break,
                TokenKind::Ident
                    if depth == 0
                        && FLOAT_REDUCERS.contains(&n.text.as_str())
                        && tokens[j - 1].is_punct('.') =>
                {
                    push(
                        out,
                        LintKind::FloatReductionOrder,
                        rel,
                        masked,
                        n.start,
                        format!(
                            ".{}() on a parallel iterator (schedule-dependent float order; \
                             collect then reduce sequentially)",
                            n.text
                        ),
                    );
                }
                _ => {}
            }
            j += 1;
        }
    }
}

/// No-argument acquisition methods of the poisonable sync primitives.
/// `.read()`/`.write()` with arguments (io traits) never match: the
/// pattern requires an empty `()` directly followed by the panic method.
const POISONABLE_ACQUIRES: [&str; 3] = ["lock", "read", "write"];

fn lock_unwrap(rel: &str, masked: &str, tokens: &[Token], out: &mut Vec<Violation>) {
    for (k, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident || !POISONABLE_ACQUIRES.contains(&t.text.as_str()) {
            continue;
        }
        if k == 0 || !tokens[k - 1].is_punct('.') {
            continue;
        }
        let empty_call = tokens.get(k + 1).is_some_and(|n| n.is_punct('('))
            && tokens.get(k + 2).is_some_and(|n| n.is_punct(')'));
        if !empty_call || !tokens.get(k + 3).is_some_and(|n| n.is_punct('.')) {
            continue;
        }
        let Some(m) = tokens.get(k + 4) else { continue };
        if m.kind == TokenKind::Ident
            && (m.text == "unwrap" || m.text == "expect")
            && tokens.get(k + 5).is_some_and(|n| n.is_punct('('))
        {
            push(
                out,
                LintKind::LockUnwrap,
                rel,
                masked,
                t.start,
                format!(
                    ".{}().{}() cascades poison into a second panic \
                     (use unwrap_or_else(PoisonError::into_inner))",
                    t.text, m.text
                ),
            );
        }
    }
}

fn relaxed_atomic(rel: &str, masked: &str, tokens: &[Token], out: &mut Vec<Violation>) {
    for (k, t) in tokens.iter().enumerate() {
        if !t.is_ident("Relaxed") {
            continue;
        }
        let qualified = k >= 3
            && tokens[k - 1].is_punct(':')
            && tokens[k - 2].is_punct(':')
            && tokens[k - 3].is_ident("Ordering");
        if qualified {
            push(
                out,
                LintKind::RelaxedAtomic,
                rel,
                masked,
                t.start,
                "Ordering::Relaxed outside a metric/counter module (use SeqCst, \
                 or move the counter into the metrics registry)"
                    .into(),
            );
        }
    }
}

fn swallowed_result(rel: &str, masked: &str, tokens: &[Token], out: &mut Vec<Violation>) {
    for (k, t) in tokens.iter().enumerate() {
        if !t.is_ident("let") || !tokens.get(k + 1).is_some_and(|n| n.is_ident("_")) {
            continue;
        }
        // Skip an optional `: Type` annotation to the `=`.
        let mut j = k + 2;
        while tokens
            .get(j)
            .is_some_and(|n| !n.is_punct('=') && !n.is_punct(';'))
        {
            j += 1;
        }
        if !tokens.get(j).is_some_and(|n| n.is_punct('=')) {
            continue;
        }
        // A call in the RHS means a discarded return value; a bare
        // `let _ = ident;` (silencing an unused binding) stays legal.
        let mut depth = 0i32;
        let mut has_call = false;
        j += 1;
        while let Some(n) = tokens.get(j) {
            match n.kind {
                TokenKind::Punct('(') => {
                    depth += 1;
                    has_call = true;
                }
                TokenKind::Punct('[') | TokenKind::Punct('{') => depth += 1,
                TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('}') => depth -= 1,
                TokenKind::Punct(';') if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        if has_call {
            push(
                out,
                LintKind::SwallowedResult,
                rel,
                masked,
                t.start,
                "`let _ = call(...)` discards the result (handle it or use .ok())".into(),
            );
        }
    }
}

fn wildcard_algo_match(
    rel: &str,
    masked: &str,
    tokens: &[Token],
    all_matches: bool,
    out: &mut Vec<Violation>,
) {
    for (k, t) in tokens.iter().enumerate() {
        if !t.is_ident("match") {
            continue;
        }
        // Scrutinee: tokens until the body `{` at bracket depth 0.
        let mut depth = 0i32;
        let mut j = k + 1;
        let mut scrutinee = String::new();
        while let Some(n) = tokens.get(j) {
            match n.kind {
                TokenKind::Punct('(') | TokenKind::Punct('[') => depth += 1,
                TokenKind::Punct(')') | TokenKind::Punct(']') => depth -= 1,
                TokenKind::Punct('{') if depth == 0 => break,
                _ => {}
            }
            scrutinee.push_str(&n.text);
            j += 1;
        }
        if j >= tokens.len() {
            continue;
        }
        if !all_matches && !scrutinee.to_lowercase().contains("algo") {
            continue;
        }
        scan_arms_for_wildcard(rel, masked, tokens, j, out);
    }
}

/// Within a match body opening at token index `open` (a `{`), flag `_`
/// patterns at arm level: brace depth 1, bracket depth 0, preceded by
/// `{`/`,`/`}`/`|` and followed by `=>`, `if`, or `|`.
fn scan_arms_for_wildcard(
    rel: &str,
    masked: &str,
    tokens: &[Token],
    open: usize,
    out: &mut Vec<Violation>,
) {
    let mut brace = 0i32;
    let mut paren = 0i32;
    let mut j = open;
    while let Some(t) = tokens.get(j) {
        match t.kind {
            TokenKind::Punct('{') => brace += 1,
            TokenKind::Punct('}') => {
                brace -= 1;
                if brace == 0 {
                    return;
                }
            }
            TokenKind::Punct('(') | TokenKind::Punct('[') => paren += 1,
            TokenKind::Punct(')') | TokenKind::Punct(']') => paren -= 1,
            TokenKind::Ident if t.text == "_" && brace == 1 && paren == 0 => {
                let arm_head = j > 0
                    && matches!(
                        tokens[j - 1].kind,
                        TokenKind::Punct('{')
                            | TokenKind::Punct(',')
                            | TokenKind::Punct('}')
                            | TokenKind::Punct('|')
                    );
                let arm_body = tokens
                    .get(j + 1)
                    .is_some_and(|n| n.is_punct('=') || n.is_punct('|') || n.is_ident("if"));
                if arm_head && arm_body {
                    push(
                        out,
                        LintKind::WildcardAlgoMatch,
                        rel,
                        masked,
                        t.start,
                        "wildcard `_` arm in Algorithm dispatch (make the match exhaustive)".into(),
                    );
                }
            }
            _ => {}
        }
        j += 1;
    }
}
