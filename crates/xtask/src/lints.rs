//! The three repo-specific lint passes.
//!
//! All passes run over masked source (see [`crate::mask`]): comments,
//! strings, and test-only code are already blanked, so plain token scans
//! cannot false-positive on prose or fixtures embedded in strings.

use crate::mask::{line_of, mask_source, mask_test_code};
use std::fmt;

/// Which invariant a violation breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintKind {
    /// `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/`unimplemented!`
    /// in non-test library code: measurement and selection must degrade
    /// through `Result`, not abort a sweep.
    ForbiddenPanic,
    /// Ambient entropy or unordered iteration in the dataset / training /
    /// tuning-table pipeline: identical seeds must reproduce identical
    /// models and tables byte-for-byte.
    Nondeterminism,
    /// A wildcard `_ =>` arm in algorithm dispatch: adding an `Algorithm`
    /// variant must be a compile error, never a silent fallback.
    WildcardAlgoMatch,
}

impl LintKind {
    pub fn as_str(self) -> &'static str {
        match self {
            LintKind::ForbiddenPanic => "forbidden-panic",
            LintKind::Nondeterminism => "nondeterminism",
            LintKind::WildcardAlgoMatch => "wildcard-algorithm-match",
        }
    }

    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "forbidden-panic" => Some(LintKind::ForbiddenPanic),
            "nondeterminism" => Some(LintKind::Nondeterminism),
            "wildcard-algorithm-match" => Some(LintKind::WildcardAlgoMatch),
            _ => None,
        }
    }
}

impl fmt::Display for LintKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One lint hit: where and what.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub lint: LintKind,
    /// Repo-relative path with `/` separators (the allowlist key).
    pub file: String,
    pub line: usize,
    /// The offending token, for the human reading the report.
    pub what: String,
}

impl Violation {
    /// Allowlist key: one entry in `lint-allowlist.toml` tolerates one
    /// violation of `lint` in `file` (line-independent, so unrelated edits
    /// never invalidate the list).
    pub fn key(&self) -> String {
        format!("{}:{}", self.lint, self.file)
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.lint, self.what
        )
    }
}

/// Scope configuration: which files each path-scoped lint applies to.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Path prefixes (repo-relative) where the determinism lint runs.
    pub determinism_scope: Vec<String>,
    /// Files where every `match` is algorithm dispatch (the enum registry).
    pub dispatch_all_matches: Vec<String>,
    /// Files where a `match` counts as dispatch when its scrutinee
    /// mentions `algo`/`Algorithm`.
    pub dispatch_scope: Vec<String>,
}

impl LintConfig {
    /// The scopes for this repository.
    pub fn for_repo() -> Self {
        LintConfig {
            determinism_scope: vec![
                "crates/clusters/src/datagen.rs".into(),
                "crates/mlcore/src/".into(),
                "crates/core/src/tuning_table.rs".into(),
                "crates/core/src/tuner.rs".into(),
                "crates/core/src/pipeline.rs".into(),
            ],
            dispatch_all_matches: vec!["crates/collectives/src/algo.rs".into()],
            dispatch_scope: vec![
                "crates/core/src/selectors.rs".into(),
                "crates/core/src/tuning_table.rs".into(),
                "crates/core/src/tuner.rs".into(),
                "crates/collectives/src/measure.rs".into(),
                "crates/collectives/src/exec/".into(),
            ],
        }
    }
}

/// Run every lint over one file. `rel` is the repo-relative path.
pub fn lint_file(rel: &str, src: &str, cfg: &LintConfig) -> Vec<Violation> {
    let masked = mask_test_code(&mask_source(src));
    let chars: Vec<char> = masked.chars().collect();
    let mut out = Vec::new();
    forbidden_panic(rel, &masked, &chars, &mut out);
    if cfg.determinism_scope.iter().any(|p| rel.starts_with(p)) {
        nondeterminism(rel, &masked, &chars, &mut out);
    }
    let all_matches = cfg.dispatch_all_matches.iter().any(|p| rel == p);
    if all_matches || cfg.dispatch_scope.iter().any(|p| rel.starts_with(p)) {
        wildcard_algo_match(rel, &masked, &chars, all_matches, &mut out);
    }
    out
}

/// Iterate identifiers in masked source as (start, end) char ranges.
fn idents(chars: &[char]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            spans.push((start, i));
        } else {
            i += 1;
        }
    }
    spans
}

fn ident_text(chars: &[char], span: (usize, usize)) -> String {
    chars[span.0..span.1].iter().collect()
}

fn prev_nonspace(chars: &[char], mut i: usize) -> Option<char> {
    while i > 0 {
        i -= 1;
        if !chars[i].is_whitespace() {
            return Some(chars[i]);
        }
    }
    None
}

fn next_nonspace(chars: &[char], mut i: usize) -> Option<char> {
    while i < chars.len() {
        if !chars[i].is_whitespace() {
            return Some(chars[i]);
        }
        i += 1;
    }
    None
}

// `debug_assert*` is deliberately absent: it vanishes in release builds,
// so it can state invariants without creating a production abort path.
const PANIC_MACROS: [&str; 7] = [
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];
const PANIC_METHODS: [&str; 4] = ["unwrap", "expect", "unwrap_err", "expect_err"];

fn forbidden_panic(rel: &str, masked: &str, chars: &[char], out: &mut Vec<Violation>) {
    for span in idents(chars) {
        let name = ident_text(chars, span);
        let is_macro =
            PANIC_MACROS.contains(&name.as_str()) && next_nonspace(chars, span.1) == Some('!');
        let is_method = PANIC_METHODS.contains(&name.as_str())
            && prev_nonspace(chars, span.0) == Some('.')
            && next_nonspace(chars, span.1) == Some('(');
        if is_macro || is_method {
            out.push(Violation {
                lint: LintKind::ForbiddenPanic,
                file: rel.to_string(),
                line: line_of(masked, span.0),
                what: if is_macro {
                    format!("{name}! in library code")
                } else {
                    format!(".{name}() in library code")
                },
            });
        }
    }
}

const ENTROPY_IDENTS: [&str; 2] = ["thread_rng", "from_entropy"];
const UNORDERED_TYPES: [&str; 2] = ["HashMap", "HashSet"];
const CLOCK_TYPES: [&str; 2] = ["Instant", "SystemTime"];

fn nondeterminism(rel: &str, masked: &str, chars: &[char], out: &mut Vec<Violation>) {
    let spans = idents(chars);
    for (k, &span) in spans.iter().enumerate() {
        let name = ident_text(chars, span);
        let what = if ENTROPY_IDENTS.contains(&name.as_str()) {
            Some(format!("{name} (ambient entropy; plumb a seed instead)"))
        } else if UNORDERED_TYPES.contains(&name.as_str()) {
            Some(format!(
                "{name} (unordered iteration; use BTreeMap/BTreeSet)"
            ))
        } else if CLOCK_TYPES.contains(&name.as_str())
            && next_nonspace(chars, span.1) == Some(':')
            && spans
                .get(k + 1)
                .is_some_and(|&s| ident_text(chars, s) == "now")
        {
            Some(format!(
                "{name}::now (wall-clock value in a derived result)"
            ))
        } else {
            None
        };
        if let Some(what) = what {
            out.push(Violation {
                lint: LintKind::Nondeterminism,
                file: rel.to_string(),
                line: line_of(masked, span.0),
                what,
            });
        }
    }
}

fn wildcard_algo_match(
    rel: &str,
    masked: &str,
    chars: &[char],
    all_matches: bool,
    out: &mut Vec<Violation>,
) {
    for span in idents(chars) {
        if ident_text(chars, span) != "match" {
            continue;
        }
        // Scrutinee: text until the body `{` at bracket depth 0.
        let mut i = span.1;
        let mut depth = 0i32;
        let mut scrutinee = String::new();
        while i < chars.len() {
            let c = chars[i];
            match c {
                '(' | '[' => depth += 1,
                ')' | ']' => depth -= 1,
                '{' if depth == 0 => break,
                _ => {}
            }
            scrutinee.push(c);
            i += 1;
        }
        if i >= chars.len() {
            continue;
        }
        let lower = scrutinee.to_lowercase();
        if !all_matches && !lower.contains("algo") {
            continue;
        }
        scan_arms_for_wildcard(rel, masked, chars, i, out);
    }
}

/// Within a match body opening at `open` (a `{`), flag `_` patterns at arm
/// level: brace depth 1, bracket depth 0, preceded by `{`/`,`/`}`/`|` and
/// followed by `=>`, `if`, or `|`.
fn scan_arms_for_wildcard(
    rel: &str,
    masked: &str,
    chars: &[char],
    open: usize,
    out: &mut Vec<Violation>,
) {
    let mut brace = 0i32;
    let mut paren = 0i32;
    let mut i = open;
    while i < chars.len() {
        match chars[i] {
            '{' => brace += 1,
            '}' => {
                brace -= 1;
                if brace == 0 {
                    return;
                }
            }
            '(' | '[' => paren += 1,
            ')' | ']' => paren -= 1,
            '_' if brace == 1 && paren == 0 => {
                let lone = !chars
                    .get(i + 1)
                    .is_some_and(|c| c.is_alphanumeric() || *c == '_')
                    && !chars
                        .get(i.wrapping_sub(1))
                        .is_some_and(|c| c.is_alphanumeric() || *c == '_' || *c == '.');
                let before = prev_nonspace(chars, i);
                let after = next_nonspace(chars, i + 1);
                let arm_head = matches!(before, Some('{') | Some(',') | Some('}') | Some('|'));
                let arm_body = matches!(after, Some('=') | Some('i') | Some('|'));
                if lone && arm_head && arm_body {
                    out.push(Violation {
                        lint: LintKind::WildcardAlgoMatch,
                        file: rel.to_string(),
                        line: line_of(masked, i),
                        what: "wildcard `_` arm in Algorithm dispatch (make the match exhaustive)"
                            .into(),
                    });
                }
            }
            _ => {}
        }
        i += 1;
    }
}
