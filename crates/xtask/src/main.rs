//! `cargo xtask` — correctness-tooling entry point.
//!
//! ```text
//! cargo xtask lint                      # run pml-lint against the allowlist
//! cargo xtask lint --list               # print every current violation
//! cargo xtask lint --update-allowlist   # rewrite the allowlist after a burn-down
//! cargo xtask verify-artifacts          # pml-mpi verify over committed + fresh artifacts
//! cargo xtask verify-schedules          # statically prove every registered schedule
//! cargo xtask tsan [filter]             # ThreadSanitizer lane (nightly) on the threaded executor
//! cargo xtask miri [filter]             # Miri lane (nightly) on mlcore + collectives unit tests
//! ```

#![deny(rust_2018_idioms, missing_debug_implementations)]
#![deny(clippy::dbg_macro, clippy::todo)]

use std::path::PathBuf;
use std::process::{Command, ExitCode};
use xtask::lints::LintConfig;
use xtask::{allowlist, scan_workspace};

const ALLOWLIST_REL: &str = "crates/xtask/lint-allowlist.toml";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("lint");
    let rest = &args[1.min(args.len())..];
    let result = match cmd {
        "lint" => cmd_lint(rest),
        "verify-artifacts" => cmd_verify_artifacts(rest),
        "verify-schedules" => cmd_verify_schedules(rest),
        "tsan" => cmd_tsan(rest),
        "miri" => cmd_miri(rest),
        "help" | "--help" | "-h" => {
            eprintln!("usage: cargo xtask [lint [--list|--update-allowlist] | verify-artifacts | verify-schedules | tsan [filter] | miri [filter]]");
            Ok(())
        }
        other => Err(format!(
            "unknown subcommand `{other}` (try `cargo xtask help`)"
        )),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Workspace root: the manifest dir's grandparent when cargo provides it,
/// else the nearest ancestor of the cwd that has a `crates/xtask`.
fn find_root() -> Result<PathBuf, String> {
    if let Ok(md) = std::env::var("CARGO_MANIFEST_DIR") {
        let p = PathBuf::from(&md);
        if let Some(root) = p.parent().and_then(|p| p.parent()) {
            if root.join("Cargo.toml").is_file() {
                return Ok(root.to_path_buf());
            }
        }
    }
    let mut dir = std::env::current_dir().map_err(|e| format!("cwd: {e}"))?;
    loop {
        if dir.join("crates/xtask").is_dir() {
            return Ok(dir);
        }
        if !dir.pop() {
            return Err("could not locate the workspace root (run from inside the repo)".into());
        }
    }
}

fn cmd_lint(args: &[String]) -> Result<(), String> {
    let list = args.iter().any(|a| a == "--list");
    let update = args.iter().any(|a| a == "--update-allowlist");
    if let Some(bad) = args
        .iter()
        .find(|a| *a != "--list" && *a != "--update-allowlist")
    {
        return Err(format!("unknown lint flag `{bad}`"));
    }
    let root = find_root()?;
    let violations = scan_workspace(&root, &LintConfig::for_repo())?;

    if list {
        for v in &violations {
            println!("{v}");
        }
        println!("pml-lint: {} violation(s) total", violations.len());
        return Ok(());
    }

    let allow_path = root.join(ALLOWLIST_REL);
    if update {
        std::fs::write(&allow_path, allowlist::render(&violations))
            .map_err(|e| format!("writing {}: {e}", allow_path.display()))?;
        println!(
            "pml-lint: allowlist rewritten with {} entries",
            violations.len()
        );
        return Ok(());
    }

    let text = std::fs::read_to_string(&allow_path).map_err(|e| {
        format!(
            "reading {} (seed it with --update-allowlist): {e}",
            allow_path.display()
        )
    })?;
    let allow = allowlist::parse(&text).map_err(|e| format!("{ALLOWLIST_REL}: {e}"))?;
    let gate = allowlist::gate(&violations, &allow);

    if !gate.new.is_empty() {
        eprintln!("pml-lint: {} new violation(s):", gate.new.len());
        for v in &gate.new {
            eprintln!("  {v}");
        }
        eprintln!(
            "fix them or (exceptionally, with review) add allowlist entries in {ALLOWLIST_REL}"
        );
    }
    if !gate.stale.is_empty() {
        eprintln!("pml-lint: stale allowlist entries (the ratchet only shrinks — delete them):");
        for (key, n) in &gate.stale {
            eprintln!(
                "  {key} ({n} unused entr{})",
                if *n == 1 { "y" } else { "ies" }
            );
        }
        eprintln!("run `cargo xtask lint --update-allowlist` to rewrite");
    }
    if gate.is_clean() {
        println!(
            "pml-lint: clean ({} of {} allowlisted site(s) remaining in the burn-down)",
            gate.allowed,
            allow.total_entries()
        );
        Ok(())
    } else {
        Err("pml-lint gate failed".into())
    }
}

/// Static artifact-verification lane: run `pml-mpi verify` over every
/// committed artifact fixture plus a freshly generated model and tuning
/// table, so the writer → verifier roundtrip is gated in CI. Expected
/// JSON under `tests/fixtures/` that is not an artifact (the
/// `*_expected.json` prediction vectors) is skipped.
fn cmd_verify_artifacts(args: &[String]) -> Result<(), String> {
    if let Some(bad) = args.first() {
        return Err(format!("unknown verify-artifacts flag `{bad}`"));
    }
    let root = find_root()?;
    let out_dir = root.join("target/verify-artifacts");
    std::fs::create_dir_all(&out_dir)
        .map_err(|e| format!("creating {}: {e}", out_dir.display()))?;

    let pml = |cmd_args: &[&str]| -> Result<(), String> {
        let mut c = Command::new("cargo");
        c.current_dir(&root)
            .args(["run", "--release", "-q", "-p", "pml-mpi", "--"])
            .args(cmd_args);
        run(c, &format!("pml-mpi {}", cmd_args.join(" ")))
    };

    // Fresh artifacts, one per collective (the committed data/ cache makes
    // this fast — no simulation sweep).
    let model = out_dir.join("model_allgather.json").display().to_string();
    let table = out_dir.join("table_ri_alltoall.json").display().to_string();
    pml(&["train", "allgather", "--out", &model])?;
    pml(&["table", "RI", "alltoall", "--out", &table])?;

    // Committed artifact fixtures (currently the v1 migration model).
    let fixtures = root.join("tests/fixtures");
    let mut targets: Vec<String> = std::fs::read_dir(&fixtures)
        .map_err(|e| format!("reading {}: {e}", fixtures.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.extension().is_some_and(|x| x == "json")
                && !p
                    .file_stem()
                    .is_some_and(|s| s.to_string_lossy().ends_with("_expected"))
        })
        .map(|p| p.display().to_string())
        .collect();
    targets.sort();
    targets.push(model);
    targets.push(table);

    let mut verify_args = vec!["verify"];
    verify_args.extend(targets.iter().map(String::as_str));
    pml(&verify_args)?;
    println!("verify-artifacts: {} artifact(s) verified", targets.len());
    Ok(())
}

/// Static schedule-verification lane: prove every registered algorithm
/// correct over the full (world, size) grid — world 2..=16 including
/// non-powers-of-two, two block sizes — via `pml-mpi verify --schedules`,
/// with zero schedule execution. Then exercise both document paths: the
/// committed good fixture must verify and the committed corrupted fixture
/// must be rejected with a nonzero exit.
fn cmd_verify_schedules(args: &[String]) -> Result<(), String> {
    if let Some(bad) = args.first() {
        return Err(format!("unknown verify-schedules flag `{bad}`"));
    }
    let root = find_root()?;
    let pml_cmd = |cmd_args: &[&str]| -> Command {
        let mut c = Command::new("cargo");
        c.current_dir(&root)
            .args(["run", "--release", "-q", "-p", "pml-mpi", "--"])
            .args(cmd_args);
        c
    };

    run(
        pml_cmd(&[
            "verify",
            "--schedules",
            "--max-world",
            "16",
            "--blocks",
            "16,21",
        ]),
        "schedule grid sweep",
    )?;

    let good = root
        .join("tests/fixtures/schedules/allgather_p2_good.json")
        .display()
        .to_string();
    run(
        pml_cmd(&["verify", "--schedules", &good]),
        "good schedule fixture",
    )?;

    let corrupt = root
        .join("tests/fixtures/schedules/corrupt_drop_recv.json")
        .display()
        .to_string();
    let status = pml_cmd(&["verify", "--schedules", &corrupt])
        .status()
        .map_err(|e| format!("spawning corrupted-fixture check: {e}"))?;
    if status.success() {
        return Err(format!(
            "corrupted schedule fixture {corrupt} unexpectedly verified — the analyzer lost a check"
        ));
    }
    println!("verify-schedules: grid proven, good fixture OK, corrupted fixture rejected");
    Ok(())
}

/// ThreadSanitizer lane: the threaded executor's test suite under
/// `-Zsanitizer=thread`. Needs the nightly toolchain + rust-src (sanitizers
/// instrument std, so the target is rebuilt with `-Zbuild-std`).
fn cmd_tsan(args: &[String]) -> Result<(), String> {
    let root = find_root()?;
    require_nightly_component("rust-src", "tsan")?;
    let filter = args.first().map(String::as_str).unwrap_or("threaded");
    let target = host_target()?;
    let mut c = Command::new("cargo");
    c.current_dir(&root)
        .env("RUSTFLAGS", "-Zsanitizer=thread")
        // TSan intercepts at libc level; keep one test thread so rank
        // threads are the only concurrency under test.
        .env("RUST_TEST_THREADS", "1")
        .args([
            "+nightly",
            "test",
            "-p",
            "pml-collectives",
            "-Zbuild-std",
            "--target",
            &target,
            "--",
            filter,
        ]);
    run(c, "tsan lane")
}

/// Miri lane: interpreter-checked unit tests for the ML core and the
/// collectives crate (UB, leaks, and — with weak-memory emulation —
/// some data-race classes the type system can't rule out in unsafe deps).
fn cmd_miri(args: &[String]) -> Result<(), String> {
    let root = find_root()?;
    require_nightly_component("miri", "miri")?;
    let mut base = vec!["+nightly".to_string(), "miri".into(), "test".into()];
    for p in ["pml-mlcore", "pml-collectives"] {
        base.push("-p".into());
        base.push(p.into());
    }
    base.push("--lib".into());
    if let Some(filter) = args.first() {
        base.push("--".into());
        base.push(filter.clone());
    }
    let mut c = Command::new("cargo");
    c.current_dir(&root)
        // Dataset-cache tests touch the filesystem; keep isolation off so
        // the lane exercises them rather than erroring on `open`.
        .env("MIRIFLAGS", "-Zmiri-disable-isolation")
        .args(&base);
    run(c, "miri lane")
}

/// Fail fast with an actionable message when a nightly component the lane
/// depends on is absent (offline dev containers can't download it; the
/// lanes normally run in CI, which installs components up front).
fn require_nightly_component(component: &str, lane: &str) -> Result<(), String> {
    let out = Command::new("rustup")
        .args(["component", "list", "--toolchain", "nightly", "--installed"])
        .output()
        .map_err(|e| format!("running rustup (needed by the {lane} lane): {e}"))?;
    let listed = String::from_utf8_lossy(&out.stdout);
    if out.status.success() && listed.lines().any(|l| l.starts_with(component)) {
        return Ok(());
    }
    Err(format!(
        "the {lane} lane needs the nightly `{component}` component \
         (rustup component add --toolchain nightly {component}); \
         it is not installed here — this lane normally runs in CI"
    ))
}

fn host_target() -> Result<String, String> {
    let out = Command::new("rustc")
        .args(["-vV"])
        .output()
        .map_err(|e| format!("running rustc -vV: {e}"))?;
    let text = String::from_utf8_lossy(&out.stdout);
    text.lines()
        .find_map(|l| l.strip_prefix("host: "))
        .map(str::to_string)
        .ok_or_else(|| "rustc -vV did not report a host target".into())
}

fn run(mut c: Command, what: &str) -> Result<(), String> {
    let status = c.status().map_err(|e| format!("spawning {what}: {e}"))?;
    if status.success() {
        Ok(())
    } else {
        Err(format!("{what} failed ({status})"))
    }
}
