//! Lexical preprocessing for the lint passes.
//!
//! The lints are token scans, not a full parse, so the one thing that must
//! be airtight is never matching inside a comment, a string, or test-only
//! code. [`mask_source`] blanks comments and literals to spaces (newlines
//! survive, so byte offsets map 1:1 to the original and line numbers stay
//! exact), and [`mask_test_code`] additionally blanks `#[cfg(test)]` /
//! `#[test]` items.

/// Replace comments, string literals, and char literals with spaces.
///
/// Handles line and nested block comments, plain/byte/raw strings
/// (`"…"`, `b"…"`, `r#"…"#`, `br##"…"##`), char and byte-char literals,
/// and leaves lifetimes (`'a`) untouched.
pub fn mask_source(src: &str) -> String {
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut out: Vec<char> = chars.clone();
    let mut i = 0;

    // Blank chars[a..b] except newlines.
    let blank = |out: &mut Vec<char>, a: usize, b: usize| {
        for c in out.iter_mut().take(b).skip(a) {
            if *c != '\n' {
                *c = ' ';
            }
        }
    };

    while i < n {
        let c = chars[i];
        match c {
            '/' if i + 1 < n && chars[i + 1] == '/' => {
                let start = i;
                while i < n && chars[i] != '\n' {
                    i += 1;
                }
                blank(&mut out, start, i);
            }
            '/' if i + 1 < n && chars[i + 1] == '*' => {
                let start = i;
                let mut depth = 1usize;
                i += 2;
                while i < n && depth > 0 {
                    if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                blank(&mut out, start, i);
            }
            '"' => {
                let start = i;
                i += 1;
                while i < n {
                    match chars[i] {
                        '\\' => i += 2,
                        '"' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                blank(&mut out, start, i.min(n));
            }
            'r' | 'b' if is_literal_prefix(&chars, i) => {
                let start = i;
                // Skip the prefix letters (`r`, `b`, `br`, `rb`).
                while i < n && (chars[i] == 'r' || chars[i] == 'b') {
                    i += 1;
                }
                if i < n && chars[i] == '\'' {
                    // Byte-char literal b'x'.
                    i = skip_char_literal(&chars, i);
                    blank(&mut out, start, i.min(n));
                } else if start + 1 == i && chars[start] == 'b' && i < n && chars[i] == '"' {
                    // b"…": ordinary escapes apply.
                    i += 1;
                    while i < n {
                        match chars[i] {
                            '\\' => i += 2,
                            '"' => {
                                i += 1;
                                break;
                            }
                            _ => i += 1,
                        }
                    }
                    blank(&mut out, start, i.min(n));
                } else {
                    // Raw string: count hashes, no escapes.
                    let mut hashes = 0usize;
                    while i < n && chars[i] == '#' {
                        hashes += 1;
                        i += 1;
                    }
                    if i < n && chars[i] == '"' {
                        i += 1;
                        'raw: while i < n {
                            if chars[i] == '"' {
                                let mut j = i + 1;
                                let mut seen = 0usize;
                                while j < n && chars[j] == '#' && seen < hashes {
                                    seen += 1;
                                    j += 1;
                                }
                                if seen == hashes {
                                    i = j;
                                    break 'raw;
                                }
                            }
                            i += 1;
                        }
                        blank(&mut out, start, i.min(n));
                    }
                }
            }
            '\'' => {
                if let Some(end) = char_literal_end(&chars, i) {
                    blank(&mut out, i, end);
                    i = end;
                } else {
                    i += 1; // lifetime tick
                }
            }
            _ => i += 1,
        }
    }
    out.into_iter().collect()
}

/// Is `chars[i]` the start of an `r"`/`b"`/`br"`/`r#"` literal prefix
/// (rather than an identifier like `radius`)?
fn is_literal_prefix(chars: &[char], i: usize) -> bool {
    if i > 0 {
        let p = chars[i - 1];
        if p.is_alphanumeric() || p == '_' {
            return false;
        }
    }
    let mut j = i;
    while j < chars.len() && (chars[j] == 'r' || chars[j] == 'b') && j - i < 2 {
        j += 1;
    }
    while j < chars.len() && chars[j] == '#' {
        j += 1;
    }
    j < chars.len() && (chars[j] == '"' || (chars[j] == '\'' && chars[i] == 'b'))
}

/// End index (exclusive) of a char literal starting at the `'` at `i`,
/// or `None` if it is a lifetime.
fn char_literal_end(chars: &[char], i: usize) -> Option<usize> {
    let n = chars.len();
    if i + 1 >= n {
        return None;
    }
    if chars[i + 1] == '\\' {
        let mut j = i + 2;
        while j < n && chars[j] != '\'' {
            j += 1;
        }
        return Some((j + 1).min(n));
    }
    if i + 2 < n && chars[i + 2] == '\'' && chars[i + 1] != '\'' {
        return Some(i + 3);
    }
    None
}

fn skip_char_literal(chars: &[char], i: usize) -> usize {
    char_literal_end(chars, i).unwrap_or(i + 1)
}

/// Blank out test-only items in already-masked source: any item annotated
/// `#[test]`, `#[cfg(test)]`, or `#[cfg(all(test…`. The item body is found
/// by brace matching; attribute-on-statement forms ending in `;` before any
/// `{` are blanked to the `;`.
pub fn mask_test_code(masked: &str) -> String {
    let chars: Vec<char> = masked.chars().collect();
    let mut out = chars.clone();
    let text: String = masked.to_string();
    let mut search = 0usize;
    let markers = ["#[test]", "#[cfg(test)]", "#[cfg(all(test"];
    loop {
        let found = markers
            .iter()
            .filter_map(|m| text[char_to_byte(&text, search)..].find(m))
            .min();
        let Some(rel) = found else { break };
        let byte_start = char_to_byte(&text, search) + rel;
        let start = text[..byte_start].chars().count();
        // Walk forward to the item's opening `{` or a terminating `;`.
        let mut i = start;
        let n = chars.len();
        let mut end = n;
        while i < n {
            match chars[i] {
                '{' => {
                    let mut depth = 0usize;
                    while i < n {
                        match chars[i] {
                            '{' => depth += 1,
                            '}' => {
                                depth -= 1;
                                if depth == 0 {
                                    i += 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        i += 1;
                    }
                    end = i;
                    break;
                }
                ';' => {
                    end = i + 1;
                    break;
                }
                _ => i += 1,
            }
        }
        for c in out.iter_mut().take(end).skip(start) {
            if *c != '\n' {
                *c = ' ';
            }
        }
        search = end.max(start + 1);
        if search >= n {
            break;
        }
    }
    out.into_iter().collect()
}

fn char_to_byte(s: &str, char_idx: usize) -> usize {
    s.char_indices()
        .nth(char_idx)
        .map(|(b, _)| b)
        .unwrap_or(s.len())
}

/// 1-indexed line of a char offset.
pub fn line_of(text: &str, char_idx: usize) -> usize {
    text.chars().take(char_idx).filter(|&c| c == '\n').count() + 1
}
