//! A lightweight token stream over masked source.
//!
//! The lint passes upgraded from raw char scans to this token layer: each
//! token carries its char span in the masked text (which maps 1:1 to the
//! original, so `mask::line_of` stays exact), and the lints reason about
//! token adjacency instead of hand-rolled `next_nonspace` scans. Still no
//! `syn` — the vendored, air-gapped dependency set has no proc-macro
//! stack, and a shallow token pass is all these lints need.

/// Token class. Punctuation is one char per token; the lints only ever ask
/// about single-char adjacency (`!`, `.`, `(`, `:`…), so multi-char
/// operators like `=>` or `::` are two consecutive `Punct` tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    Ident,
    Number,
    Punct(char),
}

/// One token: kind, text, and the char span in the masked source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    /// Char offset of the first char (for `mask::line_of`).
    pub start: usize,
    /// Char offset one past the last char.
    pub end: usize,
}

impl Token {
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

/// Tokenize masked source chars. Comments, strings, and test code are
/// already blanked to spaces, so only idents, numbers, and raw punctuation
/// remain.
pub fn tokenize(chars: &[char]) -> Vec<Token> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
        } else if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            out.push(Token {
                kind: TokenKind::Ident,
                text: chars[start..i].iter().collect(),
                start,
                end: i,
            });
        } else if c.is_ascii_digit() {
            // One number token spans digits, `_` separators, type suffixes
            // (`1u32`), and a decimal point only when a digit follows (so
            // `0..n` stays three tokens and `1.0f64.sqrt` keeps its method
            // dot).
            let start = i;
            while i < chars.len()
                && (chars[i].is_alphanumeric()
                    || chars[i] == '_'
                    || (chars[i] == '.' && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit())))
            {
                i += 1;
            }
            out.push(Token {
                kind: TokenKind::Number,
                text: chars[start..i].iter().collect(),
                start,
                end: i,
            });
        } else {
            out.push(Token {
                kind: TokenKind::Punct(c),
                text: c.to_string(),
                start: i,
                end: i + 1,
            });
            i += 1;
        }
    }
    out
}

/// Char spans (start, end) of every `fn` body in the token stream, found
/// by brace matching from each `fn` keyword. Trait-method declarations
/// (`fn f();`) have no body and contribute no span.
pub fn fn_body_spans(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    for (k, t) in tokens.iter().enumerate() {
        if !t.is_ident("fn") {
            continue;
        }
        // Walk to the body `{`, giving up at a `;` (bodyless declaration).
        let mut j = k + 1;
        while j < tokens.len() && !tokens[j].is_punct('{') && !tokens[j].is_punct(';') {
            j += 1;
        }
        if j >= tokens.len() || tokens[j].is_punct(';') {
            continue;
        }
        let open = j;
        let mut depth = 0i32;
        while j < tokens.len() {
            if tokens[j].is_punct('{') {
                depth += 1;
            } else if tokens[j].is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        if j < tokens.len() {
            spans.push((tokens[open].start, tokens[j].end));
        }
    }
    spans
}

/// The innermost `fn` body span containing char offset `at` — the last
/// (deepest-starting) enclosing candidate.
pub fn innermost_fn(spans: &[(usize, usize)], at: usize) -> Option<(usize, usize)> {
    spans
        .iter()
        .copied()
        .filter(|&(s, e)| s <= at && at < e)
        .max_by_key(|&(s, _)| s)
}
