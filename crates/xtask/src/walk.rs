//! Workspace source discovery.

use std::io;
use std::path::{Path, PathBuf};

/// Directory names never scanned: test and fixture trees (the lints cover
/// non-test library code only), vendored deps, and build output.
const SKIP_DIRS: [&str; 6] = [
    "tests", "benches", "examples", "fixtures", "target", "vendor",
];

/// All lintable `.rs` files under `root`, repo-relative with `/`
/// separators, sorted. Scans the root package `src/` and every
/// `crates/*/src/`.
pub fn workspace_sources(root: &Path) -> io::Result<Vec<(String, PathBuf)>> {
    let mut roots = vec![root.join("src")];
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        for m in members {
            roots.push(m.join("src"));
        }
    }
    let mut out = Vec::new();
    for r in roots {
        if r.is_dir() {
            collect(&r, &mut out)?;
        }
    }
    let mut rel: Vec<(String, PathBuf)> = out
        .into_iter()
        .filter_map(|p| {
            let r = p.strip_prefix(root).ok()?;
            Some((r.to_string_lossy().replace('\\', "/"), p.clone()))
        })
        .collect();
    rel.sort();
    Ok(rel)
}

/// Recursively collect `.rs` files, skipping [`SKIP_DIRS`].
pub fn collect(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            let name = p.file_name().map(|n| n.to_string_lossy().to_string());
            if name.is_some_and(|n| SKIP_DIRS.contains(&n.as_str())) {
                continue;
            }
            collect(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}
