//! Fixture: narrowing casts with and without range guards.
//! Never compiled — consumed as text by `lint_fixtures.rs`.

pub fn pack(idx: usize) -> u32 { idx as u32 }

/// Guarded: the enclosing fn states the range invariant, so the cast
/// cannot silently truncate.
pub fn pack_checked(idx: usize) -> u32 {
    debug_assert!(idx <= u32::MAX as usize);
    idx as u32
}

/// Widening casts are always fine.
pub fn widen(x: u32) -> u64 {
    x as u64
}
