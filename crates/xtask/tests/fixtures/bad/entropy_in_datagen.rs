//! Fixture: ambient state inside determinism-critical code.
//! Never compiled — consumed as text by `lint_fixtures.rs`.

use rand::thread_rng;
use std::collections::HashMap;
use std::time::Instant;

pub fn sample_cell() -> f64 {
    let mut rng = thread_rng();
    rng.gen_range(0.0..1.0)
}

pub fn jitter_seed() -> u64 {
    // Wall-clock-derived value: unreproducible between runs.
    Instant::now().elapsed().subsec_nanos() as u64
}

pub fn tally(xs: &[u32]) -> HashMap<u32, u32> {
    let mut m = HashMap::new();
    for &x in xs {
        *m.entry(x).or_insert(0) += 1;
    }
    m
}
