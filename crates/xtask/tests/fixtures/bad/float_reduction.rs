//! Fixture: schedule-dependent float reduction on a parallel iterator.
//! Never compiled — consumed as text by `lint_fixtures.rs`.

pub fn total(xs: &[f64]) -> f64 { xs.par_iter().sum() }

/// Collect in deterministic order first, then reduce sequentially: fine.
pub fn total_ordered(xs: &[f64]) -> f64 {
    let parts: Vec<f64> = xs.par_iter().map(|x| x * 2.0).collect();
    parts.iter().sum()
}

/// Sequential reductions are always fine.
pub fn total_seq(xs: &[f64]) -> f64 {
    xs.iter().sum()
}
