//! Fixture: poisonable-guard acquisition followed by a bare panic.
//! Never compiled — consumed as text by `lint_fixtures.rs`.

use std::sync::{Mutex, PoisonError, RwLock};

pub fn bump(m: &Mutex<u64>) {
    *m.lock().unwrap() += 1;
}

pub fn peek(l: &RwLock<u64>) -> u64 {
    *l.read().expect("poisoned")
}

/// The sanctioned idiom: poison degrades to the inner guard.
pub fn bump_guarded(m: &Mutex<u64>) {
    *m.lock().unwrap_or_else(PoisonError::into_inner) += 1;
}

/// `.read()` with arguments (io::Read) is a different method entirely.
pub fn fill(r: &mut impl std::io::Read, buf: &mut [u8]) -> std::io::Result<usize> {
    r.read(buf)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap_locks() {
        let m = std::sync::Mutex::new(0u64);
        *m.lock().unwrap() += 1;
    }
}
