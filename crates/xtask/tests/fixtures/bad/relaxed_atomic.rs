//! Fixture: Relaxed memory ordering outside the counter scope.
//! Never compiled — consumed as text by `lint_fixtures.rs`.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn tick(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
}

pub fn read_flag(c: &AtomicU64) -> u64 {
    // Prose mention of Ordering::Relaxed in a comment is not counted.
    c.load(Ordering::SeqCst)
}

/// A bare `Relaxed` variant under another path is not the atomics API.
pub enum Pacing {
    Strict,
    Relaxed,
}

pub fn is_relaxed(p: &Pacing) -> bool {
    matches!(p, Pacing::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_use_relaxed() {
        let c = AtomicU64::new(0);
        c.fetch_add(1, Ordering::Relaxed);
    }
}
