//! Fixture: library code with panic paths the lint must flag.
//! Never compiled — consumed as text by `lint_fixtures.rs`.

pub fn parse_port(s: &str) -> u16 {
    // A comment saying .unwrap() must NOT count; the call below must.
    let port: u16 = s.trim().parse().unwrap();
    assert!(port > 1024, "privileged port");
    port
}

pub fn label(kind: u8) -> &'static str {
    match kind {
        0 => "control",
        1 => "data",
        _ => panic!("unknown kind"),
    }
}

pub fn todo_path() {
    unreachable!("fixture: a forbidden macro, not a string mentioning one");
}

#[cfg(test)]
mod tests {
    // Test code is out of scope: none of these may be reported.
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: u16 = "80".parse().unwrap();
        assert_eq!(v, 80);
        let s = "panic! in a string is fine";
        assert!(!s.is_empty());
    }
}
