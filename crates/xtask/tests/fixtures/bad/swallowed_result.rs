//! Fixture: a discarded call result that silences the error path.
//! Never compiled — consumed as text by `lint_fixtures.rs`.

pub fn save(path: &str, data: &[u8]) { let _ = std::fs::write(path, data); }

/// Discarding a plain binding is fine — there is no result to lose.
pub fn quiet(flag: bool) {
    let _ = flag;
}

/// Explicitly acknowledging the result is fine.
pub fn save_acknowledged(path: &str, data: &[u8]) {
    std::fs::write(path, data).ok();
}
