//! Fixture: unsafe bounds-check elision the lint must flag.
//! Never compiled — consumed as text by `lint_fixtures.rs`.

pub unsafe fn first(xs: &[f64]) -> f64 { *xs.get_unchecked(0) }

/// Checked access is fine.
pub fn first_checked(xs: &[f64]) -> Option<f64> {
    xs.get(0).copied()
}

/// An identifier that merely starts with the method name is not a call.
pub fn get_unchecked_count() -> usize {
    0
}
