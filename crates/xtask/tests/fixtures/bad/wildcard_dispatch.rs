//! Fixture: Algorithm dispatch with a silent-fallback wildcard arm.
//! Never compiled — consumed as text by `lint_fixtures.rs`.

pub enum Algorithm {
    Ring,
    Bruck,
}

pub fn cost(algo: &Algorithm, p: u32) -> u32 {
    match algo {
        Algorithm::Ring => p - 1,
        // Adding a variant silently lands here — exactly the bug class
        // the wildcard-algorithm-match lint exists to prevent.
        _ => p,
    }
}

pub fn arity(n: u32) -> u32 {
    // A wildcard over a non-Algorithm scrutinee is fine in scrutinee-scoped
    // files; this one must not be reported there.
    match n {
        0 => 0,
        _ => 1,
    }
}
