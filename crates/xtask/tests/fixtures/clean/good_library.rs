//! Fixture: clean library code the lint must pass untouched.
//! Never compiled — consumed as text by `lint_fixtures.rs`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

pub enum Algorithm {
    Ring,
    Bruck,
}

/// Exhaustive dispatch: adding a variant is a compile error.
pub fn cost(algo: &Algorithm, p: u32) -> u32 {
    match algo {
        Algorithm::Ring => p - 1,
        Algorithm::Bruck => p.ilog2(),
    }
}

/// Seeded entropy and ordered containers only.
pub fn sample(seed: u64, xs: &[u32]) -> BTreeMap<u32, u32> {
    let _rng = StdRng::seed_from_u64(seed);
    let mut m = BTreeMap::new();
    for &x in xs {
        *m.entry(x).or_insert(0) += 1;
    }
    m
}

/// Errors degrade through Result; prose like "never unwrap() here" and
/// r"panic! strings" must not trip the scanner.
pub fn parse_port(s: &str) -> Result<u16, String> {
    s.trim()
        .parse()
        .map_err(|e| format!("bad port (don't panic!): {e}"))
}

/// `unwrap_or`-family and `debug_assert!` are allowed.
pub fn clamp(x: Option<u32>) -> u32 {
    let v = x.unwrap_or_default().max(1).min(u32::MAX - 1);
    debug_assert!(v >= 1);
    v
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v: u16 = "80".parse().unwrap();
        assert_eq!(v, 80);
    }
}
