//! pml-lint's own test suite: deliberately-bad fixture files the lints
//! must flag (with exact lines), clean files they must pass, allowlist
//! ratchet semantics, and the mask layer's corner cases.
//!
//! The fixtures under `tests/fixtures/` are plain text to the lint — cargo
//! never compiles them (only top-level `tests/*.rs` become test binaries),
//! and the workspace walker skips `tests/` trees, so they cannot leak into
//! the real gate either.

use std::path::Path;
use xtask::allowlist::{self, Allowlist};
use xtask::lints::{lint_file, LintConfig, LintKind, Violation};
use xtask::mask::{mask_source, mask_test_code};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading fixture {}: {e}", path.display()))
}

/// Scope config mirroring the real one, aimed at the fixture tree.
fn fixture_config() -> LintConfig {
    LintConfig {
        determinism_scope: vec![
            "bad/entropy_in_datagen.rs".into(),
            "bad/float_reduction.rs".into(),
            "clean/".into(),
        ],
        determinism_exempt: vec![],
        dispatch_all_matches: vec![],
        dispatch_scope: vec!["bad/wildcard_dispatch.rs".into(), "clean/".into()],
        cast_scope: vec!["bad/cast_truncation.rs".into(), "clean/".into()],
        relaxed_counter_scope: vec!["counters/".into()],
    }
}

fn kinds(vs: &[Violation]) -> Vec<LintKind> {
    vs.iter().map(|v| v.lint).collect()
}

#[test]
fn flags_stray_unwrap_and_panics_outside_tests() {
    let rel = "bad/stray_unwrap.rs";
    let vs = lint_file(rel, &fixture(rel), &fixture_config());
    let lines: Vec<(usize, &str)> = vs.iter().map(|v| (v.line, v.what.as_str())).collect();
    assert_eq!(
        kinds(&vs),
        vec![LintKind::ForbiddenPanic; 4],
        "expected exactly the four library-code sites, got {vs:?}"
    );
    // .unwrap() at its real line; the comment mention above it not counted.
    assert_eq!(lines[0].0, 6);
    assert!(lines[0].1.contains("unwrap"));
    assert_eq!(lines[1].0, 7);
    assert!(lines[1].1.contains("assert!"));
    assert!(lines[2].1.contains("panic!"));
    assert!(lines[3].1.contains("unreachable!"));
    // Nothing from the #[cfg(test)] module (lines 23+).
    assert!(vs.iter().all(|v| v.line < 23), "{vs:?}");
}

#[test]
fn flags_wildcard_algorithm_arm_but_not_other_scrutinees() {
    let rel = "bad/wildcard_dispatch.rs";
    let vs = lint_file(rel, &fixture(rel), &fixture_config());
    // `panic!`-free file: only the wildcard lint fires, only on the
    // algo-scrutinee match, not on `match n`.
    assert_eq!(kinds(&vs), vec![LintKind::WildcardAlgoMatch], "{vs:?}");
    assert_eq!(vs[0].line, 14);
}

#[test]
fn flags_entropy_clock_and_unordered_map_in_scope() {
    let rel = "bad/entropy_in_datagen.rs";
    let vs = lint_file(rel, &fixture(rel), &fixture_config());
    let nondet: Vec<&Violation> = vs
        .iter()
        .filter(|v| v.lint == LintKind::Nondeterminism)
        .collect();
    let whats: String = nondet
        .iter()
        .map(|v| v.what.as_str())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(whats.contains("thread_rng"), "{whats}");
    assert!(whats.contains("Instant::now"), "{whats}");
    assert!(whats.contains("HashMap"), "{whats}");
    // use-declaration + call sites: 2× thread_rng, 2× Instant-ish?, 3× HashMap.
    assert_eq!(
        nondet.iter().filter(|v| v.what.contains("HashMap")).count(),
        3,
        "{whats}"
    );
}

#[test]
fn out_of_scope_file_skips_path_scoped_lints() {
    // The same entropy fixture linted under a path with no determinism
    // scope: only forbidden-panic could fire (and it has none).
    let vs = lint_file(
        "elsewhere/entropy.rs",
        &fixture("bad/entropy_in_datagen.rs"),
        &fixture_config(),
    );
    assert!(vs.is_empty(), "{vs:?}");
}

#[test]
fn determinism_exemption_carves_out_the_designated_clock_file() {
    let mut cfg = fixture_config();
    cfg.determinism_scope.push("designated/".into());
    cfg.determinism_exempt.push("designated/clock.rs".into());
    // In scope, not exempt: the nondeterminism lint fires.
    let vs = lint_file(
        "designated/other.rs",
        &fixture("bad/entropy_in_datagen.rs"),
        &cfg,
    );
    assert!(
        vs.iter().any(|v| v.lint == LintKind::Nondeterminism),
        "{vs:?}"
    );
    // The designated clock file: determinism lints skip it, but nothing
    // else does — the exemption is per-lint-family, not a blanket pass.
    let vs = lint_file(
        "designated/clock.rs",
        &fixture("bad/entropy_in_datagen.rs"),
        &cfg,
    );
    assert!(
        vs.iter().all(|v| v.lint != LintKind::Nondeterminism),
        "{vs:?}"
    );
    let vs = lint_file("designated/clock.rs", &fixture("bad/stray_unwrap.rs"), &cfg);
    assert!(
        vs.iter().any(|v| v.lint == LintKind::ForbiddenPanic),
        "{vs:?}"
    );
}

#[test]
fn clean_fixture_passes_every_lint() {
    let rel = "clean/good_library.rs";
    let vs = lint_file(rel, &fixture(rel), &fixture_config());
    assert!(vs.is_empty(), "clean fixture flagged: {vs:?}");
}

#[test]
fn flags_unguarded_narrowing_cast_but_not_guarded_or_widening() {
    let rel = "bad/cast_truncation.rs";
    let vs = lint_file(rel, &fixture(rel), &fixture_config());
    // Only the unguarded one-liner; the debug_assert-guarded cast and the
    // widening `as u64` both pass.
    assert_eq!(kinds(&vs), vec![LintKind::CastTruncation], "{vs:?}");
    assert_eq!(vs[0].line, 4);
    assert!(vs[0].what.contains("u32"), "{}", vs[0].what);
    // Outside the cast scope the lint stays silent.
    let vs = lint_file("elsewhere/cast.rs", &fixture(rel), &fixture_config());
    assert!(vs.is_empty(), "{vs:?}");
}

#[test]
fn flags_get_unchecked_in_any_path() {
    let rel = "bad/unchecked_indexing.rs";
    let vs = lint_file(rel, &fixture(rel), &fixture_config());
    assert_eq!(kinds(&vs), vec![LintKind::UncheckedIndexing], "{vs:?}");
    assert_eq!(vs[0].line, 4);
    // Unscoped lint: the same file anywhere in the workspace still fails.
    let vs = lint_file("elsewhere/idx.rs", &fixture(rel), &fixture_config());
    assert_eq!(kinds(&vs), vec![LintKind::UncheckedIndexing], "{vs:?}");
}

#[test]
fn flags_parallel_float_reduction_in_scope_only() {
    let rel = "bad/float_reduction.rs";
    let vs = lint_file(rel, &fixture(rel), &fixture_config());
    // The collect-then-sequential-sum and plain-iterator variants pass.
    assert_eq!(kinds(&vs), vec![LintKind::FloatReductionOrder], "{vs:?}");
    assert_eq!(vs[0].line, 4);
    assert!(vs[0].what.contains("sum"), "{}", vs[0].what);
    let vs = lint_file("elsewhere/reduce.rs", &fixture(rel), &fixture_config());
    assert!(vs.is_empty(), "{vs:?}");
}

#[test]
fn flags_swallowed_call_result_but_not_bare_discard() {
    let rel = "bad/swallowed_result.rs";
    let vs = lint_file(rel, &fixture(rel), &fixture_config());
    // `let _ = flag;` and `.ok()` both pass; only the discarded call fails.
    assert_eq!(kinds(&vs), vec![LintKind::SwallowedResult], "{vs:?}");
    assert_eq!(vs[0].line, 4);
}

#[test]
fn flags_lock_unwrap_but_not_the_poison_idiom() {
    let rel = "bad/lock_unwrap.rs";
    let vs = lint_file(rel, &fixture(rel), &fixture_config());
    // forbidden-panic also fires on the same `.unwrap()`/`.expect()`
    // sites; the lock lint adds the guard-specific diagnostic on top.
    assert_eq!(
        kinds(&vs),
        vec![
            LintKind::ForbiddenPanic,
            LintKind::ForbiddenPanic,
            LintKind::LockUnwrap,
            LintKind::LockUnwrap,
        ],
        "{vs:?}"
    );
    let locks: Vec<&Violation> = vs
        .iter()
        .filter(|v| v.lint == LintKind::LockUnwrap)
        .collect();
    // `.lock().unwrap()` and `.read().expect()`; the poison idiom and the
    // io::Read call with an argument both pass.
    assert_eq!(locks[0].line, 7);
    assert!(
        locks[0].what.contains("PoisonError::into_inner"),
        "{}",
        locks[0].what
    );
    assert_eq!(locks[1].line, 11);
    assert!(
        locks[1].what.contains(".read().expect()"),
        "{}",
        locks[1].what
    );
    // Unscoped lint: the same file anywhere in the workspace still fails.
    let vs = lint_file("elsewhere/locks.rs", &fixture(rel), &fixture_config());
    assert!(vs.iter().any(|v| v.lint == LintKind::LockUnwrap), "{vs:?}");
}

#[test]
fn flags_relaxed_ordering_outside_counter_scope_only() {
    let rel = "bad/relaxed_atomic.rs";
    let vs = lint_file(rel, &fixture(rel), &fixture_config());
    // Only the fully-qualified `Ordering::Relaxed`; the SeqCst load, the
    // `Pacing::Relaxed` variant, and the test module all pass.
    assert_eq!(kinds(&vs), vec![LintKind::RelaxedAtomic], "{vs:?}");
    assert_eq!(vs[0].line, 7);
    assert!(vs[0].what.contains("SeqCst"), "{}", vs[0].what);
    // Inside the designated counter scope the ordering is sanctioned.
    let vs = lint_file("counters/metrics.rs", &fixture(rel), &fixture_config());
    assert!(vs.is_empty(), "{vs:?}");
}

#[test]
fn allowlist_budget_tolerates_then_ratchets() {
    let rel = "bad/stray_unwrap.rs";
    let vs = lint_file(rel, &fixture(rel), &fixture_config());
    assert_eq!(vs.len(), 4);

    // Seeded exactly: clean gate.
    let seeded = allowlist::parse(&allowlist::render(&vs)).expect("render parses");
    assert_eq!(seeded.total_entries(), 4);
    let gate = allowlist::gate(&vs, &seeded);
    assert!(gate.is_clean(), "{gate:?}");
    assert_eq!(gate.allowed, 4);

    // One budget entry short: the overflow site fails as new.
    let mut short = seeded.clone();
    if let Some(n) = short.budgets.values_mut().next() {
        *n -= 1;
    }
    let gate = allowlist::gate(&vs, &short);
    assert_eq!(gate.new.len(), 1);

    // One fixed site with the entry still present: stale, gate fails.
    let gate = allowlist::gate(&vs[..3], &seeded);
    assert!(!gate.is_clean());
    assert_eq!(gate.stale.values().sum::<usize>(), 1);

    // Unknown violations (empty allowlist): all new.
    let gate = allowlist::gate(&vs, &Allowlist::default());
    assert_eq!(gate.new.len(), 4);
}

#[test]
fn allowlist_parser_accepts_comments_and_rejects_junk() {
    let good = "# header\nallow = [\n  \"forbidden-panic:src/a.rs\", # tail comment\n  \"forbidden-panic:src/a.rs\",\n]\n";
    let parsed = allowlist::parse(good).expect("well-formed allowlist");
    assert_eq!(
        parsed.budgets.get("forbidden-panic:src/a.rs").copied(),
        Some(2)
    );
    assert!(allowlist::parse("allow = [ bare-entry ]").is_err());
    assert!(allowlist::parse("deny = [\"x:y\"]").is_err());
    assert!(allowlist::parse("allow = [\"no-colon\"]").is_err());
}

#[test]
fn allowlist_count_keys_parse_and_render() {
    // `lint:path:count` carries a budget; the legacy per-site form still
    // means one per line.
    let text = "allow = [\n  \"forbidden-panic:src/a.rs:3\",\n  \"nondeterminism:src/b.rs\",\n]\n";
    let parsed = allowlist::parse(text).expect("count-keyed allowlist");
    assert_eq!(
        parsed.budgets.get("forbidden-panic:src/a.rs").copied(),
        Some(3)
    );
    assert_eq!(
        parsed.budgets.get("nondeterminism:src/b.rs").copied(),
        Some(1)
    );
    assert_eq!(parsed.total_entries(), 4);

    // A path whose last segment is not numeric stays a whole key.
    let legacy = allowlist::parse("allow = [\"forbidden-panic:src/a.rs\"]").unwrap();
    assert_eq!(
        legacy.budgets.get("forbidden-panic:src/a.rs").copied(),
        Some(1)
    );

    // Render folds duplicate sites into one count-keyed line.
    let v = Violation {
        lint: LintKind::ForbiddenPanic,
        file: "src/a.rs".into(),
        line: 1,
        what: "x".into(),
    };
    let rendered = allowlist::render(&[v.clone(), v]);
    assert!(
        rendered.contains("\"forbidden-panic:src/a.rs:2\""),
        "{rendered}"
    );
    let roundtrip = allowlist::parse(&rendered).expect("rendered list parses");
    assert_eq!(roundtrip.total_entries(), 2);
}

#[test]
fn mask_blanks_strings_comments_and_test_mods() {
    let src = r####"
// has unwrap() in a comment
/* nested /* block with panic! */ still comment */
const S: &str = "string .unwrap() call";
const R: &str = r#"raw panic!"#;
const C: char = '"';
fn lib() -> u8 { 1 }
#[cfg(test)]
mod tests {
    fn helper() { Vec::<u8>::new().pop().unwrap(); }
}
"####;
    let masked = mask_test_code(&mask_source(src));
    assert!(!masked.contains("unwrap"), "{masked}");
    assert!(!masked.contains("panic"), "{masked}");
    // Line structure preserved for exact line numbers.
    assert_eq!(masked.lines().count(), src.lines().count());
    // Non-test code survives.
    assert!(masked.contains("fn lib"));
    assert!(!masked.contains("helper"));
}

#[test]
fn mask_handles_lifetimes_and_char_literals() {
    let src = "fn f<'a>(x: &'a str) -> char { let c = 'x'; let q = '\\''; c }";
    let masked = mask_source(src);
    // Lifetimes survive; char literals blanked.
    assert!(masked.contains("<'a>"), "{masked}");
    assert!(!masked.contains("'x'"), "{masked}");
    assert!(masked.ends_with("c }"), "{masked}");
}

/// The real repo gate end-to-end: the workspace scan matches the
/// checked-in allowlist exactly (no new violations, no stale entries).
/// This is the same check CI runs via `cargo xtask lint`.
#[test]
fn repo_allowlist_is_exact() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let vs = xtask::scan_workspace(&root, &LintConfig::for_repo()).expect("scan");
    let text = std::fs::read_to_string(root.join("crates/xtask/lint-allowlist.toml"))
        .expect("allowlist present");
    let allow = allowlist::parse(&text).expect("allowlist parses");
    let gate = allowlist::gate(&vs, &allow);
    assert!(
        gate.is_clean(),
        "repo gate dirty — new: {:#?}, stale: {:?}",
        gate.new,
        gate.stale
    );
}
