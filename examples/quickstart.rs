//! Quickstart: the whole offline → online lifecycle in one page.
//!
//! A miniature two-cluster zoo keeps the run under a minute: the engine
//! micro-benchmarks the grids, trains a small Random Forest, answers a
//! point query, and emits the JSON tuning table an MPI library would load
//! at startup.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use pml_mpi::mlcore::ForestParams;
use pml_mpi::{
    by_name, Collective, DatagenConfig, EngineConfig, JobConfig, PmlError, SelectionEngine,
    TrainConfig,
};

fn main() -> Result<(), PmlError> {
    // A trimmed zoo: two real clusters, smaller benchmark grids.
    let clusters: Vec<_> = ["RI2", "Haswell"]
        .iter()
        .map(|name| {
            let mut e = by_name(name).expect("zoo cluster").clone();
            e.node_grid.truncate(3);
            e.ppn_grid.truncate(4);
            e.msg_grid = vec![64, 1024, 16384, 262144];
            e
        })
        .collect();

    let cfg = EngineConfig {
        datagen: DatagenConfig::default(),
        train: TrainConfig {
            forest: ForestParams {
                n_estimators: 30,
                seed: 7,
                ..Default::default()
            },
            top_k_features: Some(5),
        },
        cache_dir: None,
    };
    let engine = SelectionEngine::with_clusters(clusters, cfg);

    // Offline: benchmark + train (memoized — later calls are free).
    let model = engine.train(Collective::Allgather)?;
    println!(
        "trained on the mini-zoo; out-of-bag accuracy {:.1}%",
        model.oob_score().unwrap_or(0.0) * 100.0
    );

    // Online: a point query for a job shape the grid never benchmarked.
    let job = JobConfig::new(2, 14, 8192);
    let pick = engine.predict("Haswell", Collective::Allgather, job)?;
    println!(
        "MPI_Allgather at {}x{} with {} B messages -> {pick}",
        job.nodes, job.ppn, job.msg_size
    );

    // Deployment artifact: the per-cluster JSON tuning table.
    let table = engine.tuning_table("Haswell", Collective::Allgather)?;
    println!(
        "tuning table for Haswell: {} entries; first 120 chars of JSON:",
        table.len()
    );
    let json = table.to_json()?;
    println!("{}...", &json[..json.len().min(120)]);
    Ok(())
}
