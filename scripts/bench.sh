#!/usr/bin/env bash
# Records the training/inference perf point for this checkout: runs the
# criterion benches covering forest fitting (histogram-binned vs exact
# split finding) and batched inference, parses the ns/iter lines, and
# writes BENCH_train_infer.json at the repo root. The headline number is
# fit_speedup_binned_vs_exact — the wall-clock ratio of the two 40-tree
# forest fits at dataset-zoo scale.
set -euo pipefail
cd "$(dirname "$0")/.."

out=BENCH_train_infer.json
stamp=$(date -u +%FT%TZ)
rev=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)

{
    cargo bench -p pml-bench --bench training 2>&1
    cargo bench -p pml-bench --bench inference 2>&1
} | grep "ns/iter" | awk -v stamp="$stamp" -v rev="$rev" '
  {
    id = $1
    ns = $2
    gsub(/,/, "", ns)
    ids[++n] = id
    vals[id] = ns
  }
  END {
    printf "{\n"
    printf "  \"date\": \"%s\",\n", stamp
    printf "  \"rev\": \"%s\",\n", rev
    printf "  \"benches_ns_per_iter\": {\n"
    for (i = 1; i <= n; i++)
      printf "    \"%s\": %s%s\n", ids[i], vals[ids[i]], (i < n ? "," : "")
    printf "  },\n"
    b = vals["forest_fit/binned_40_trees"] + 0
    e = vals["forest_fit/exact_40_trees"] + 0
    if (b > 0 && e > 0)
      printf "  \"fit_speedup_binned_vs_exact\": %.2f\n", e / b
    else
      printf "  \"fit_speedup_binned_vs_exact\": null\n"
    printf "}\n"
  }
' > "$out"

# Stage-level timings: merge the pml-obs metrics document from a traced
# tuning-table run in as "stage_metrics", so the perf point records where
# the pipeline spends its time, not just the headline ratios.
metrics=$(mktemp)
cargo build --release --bin pml-mpi >/dev/null 2>&1
if target/release/pml-mpi table RI alltoall \
    --out /dev/null --metrics-out "$metrics" >/dev/null 2>&1 && [[ -s "$metrics" ]]; then
    head -n -1 "$out" > "$out.tmp"
    {
        printf '  ,"stage_metrics":\n'
        cat "$metrics"
        printf '}\n'
    } >> "$out.tmp"
    mv "$out.tmp" "$out"
else
    echo "warning: stage metrics unavailable, writing benches only" >&2
fi
rm -f "$metrics"

echo "wrote $out"
cat "$out"
