#!/usr/bin/env bash
# Records the perf points for this checkout:
#
# - BENCH_train_infer.json — the criterion benches covering forest
#   fitting (histogram-binned vs exact split finding) and batched
#   inference, parsed from the ns/iter lines. The headline number is
#   fit_speedup_binned_vs_exact — the wall-clock ratio of the two
#   40-tree forest fits at dataset-zoo scale.
# - BENCH_serve.json — serving-path latency/throughput: loadgen drives
#   100k concurrent requests through a running `pml-mpi serve` daemon
#   and records p50/p99/p999 round-trip latency plus requests/sec.
set -euo pipefail
cd "$(dirname "$0")/.."

out=BENCH_train_infer.json
stamp=$(date -u +%FT%TZ)
rev=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)

{
    cargo bench -p pml-bench --bench training 2>&1
    cargo bench -p pml-bench --bench inference 2>&1
} | grep "ns/iter" | awk -v stamp="$stamp" -v rev="$rev" '
  {
    id = $1
    ns = $2
    gsub(/,/, "", ns)
    ids[++n] = id
    vals[id] = ns
  }
  END {
    printf "{\n"
    printf "  \"date\": \"%s\",\n", stamp
    printf "  \"rev\": \"%s\",\n", rev
    printf "  \"benches_ns_per_iter\": {\n"
    for (i = 1; i <= n; i++)
      printf "    \"%s\": %s%s\n", ids[i], vals[ids[i]], (i < n ? "," : "")
    printf "  },\n"
    b = vals["forest_fit/binned_40_trees"] + 0
    e = vals["forest_fit/exact_40_trees"] + 0
    if (b > 0 && e > 0)
      printf "  \"fit_speedup_binned_vs_exact\": %.2f\n", e / b
    else
      printf "  \"fit_speedup_binned_vs_exact\": null\n"
    printf "}\n"
  }
' > "$out"

# Stage-level timings: merge the pml-obs metrics document from a traced
# tuning-table run in as "stage_metrics", so the perf point records where
# the pipeline spends its time, not just the headline ratios.
metrics=$(mktemp)
cargo build --release --bin pml-mpi >/dev/null 2>&1
if target/release/pml-mpi table RI alltoall \
    --out /dev/null --metrics-out "$metrics" >/dev/null 2>&1 && [[ -s "$metrics" ]]; then
    head -n -1 "$out" > "$out.tmp"
    {
        printf '  ,"stage_metrics":\n'
        cat "$metrics"
        printf '}\n'
    } >> "$out.tmp"
    mv "$out.tmp" "$out"
else
    echo "warning: stage metrics unavailable, writing benches only" >&2
fi
rm -f "$metrics"

echo "wrote $out"
cat "$out"

# Serving-path perf point: boot the daemon on a tiny hand-written table
# artifact (real table generation re-runs the micro-benchmarks — minutes,
# not seconds) and hammer it with loadgen. The loadgen CLI itself writes
# the JSON document, including the percentile ladder.
serve_out=BENCH_serve.json
work=$(mktemp -d)
serve_pid=""
serve_cleanup() {
    [[ -n "$serve_pid" ]] && kill "$serve_pid" 2>/dev/null || true
    rm -rf "$work"
}
trap serve_cleanup EXIT
mkdir -p "$work/art"
cat > "$work/art/bench_alltoall.json" <<'EOF'
{
  "cluster": "bench",
  "collective": "Alltoall",
  "entries": [
    {"nodes": 2, "ppn": 4, "msg_size": 1024, "algorithm": {"Alltoall": "Bruck"}},
    {"nodes": 2, "ppn": 4, "msg_size": 65536, "algorithm": {"Alltoall": "Pairwise"}},
    {"nodes": 2, "ppn": 8, "msg_size": 1024, "algorithm": {"Alltoall": "Bruck"}},
    {"nodes": 2, "ppn": 8, "msg_size": 65536, "algorithm": {"Alltoall": "Pairwise"}},
    {"nodes": 4, "ppn": 4, "msg_size": 1024, "algorithm": {"Alltoall": "Bruck"}},
    {"nodes": 4, "ppn": 4, "msg_size": 65536, "algorithm": {"Alltoall": "Pairwise"}},
    {"nodes": 4, "ppn": 8, "msg_size": 1024, "algorithm": {"Alltoall": "Bruck"}},
    {"nodes": 4, "ppn": 8, "msg_size": 65536, "algorithm": {"Alltoall": "Pairwise"}}
  ]
}
EOF
sock="$work/pml.sock"
target/release/pml-mpi serve --socket "$sock" --model "$work/art" \
    >"$work/serve.log" 2>&1 &
serve_pid=$!
for _ in $(seq 1 100); do
    [[ -S "$sock" ]] && break
    sleep 0.05
done
if [[ -S "$sock" ]]; then
    target/release/pml-mpi loadgen --socket "$sock" \
        --requests 100000 --threads 8 --seed 42 \
        --date "$stamp" --rev "$rev" --out "$serve_out"
    kill -TERM "$serve_pid" && wait "$serve_pid"
    serve_pid=""
    echo "wrote $serve_out"
    cat "$serve_out"
else
    sed 's/^/bench: daemon: /' "$work/serve.log" >&2
    echo "warning: serve daemon never bound, skipping $serve_out" >&2
fi
