#!/usr/bin/env bash
# The full CI gate, runnable locally: formatting, lints-as-errors, the
# repo's own static-analysis pass (pml-lint), release build, and the test
# suite. CI (.github/workflows/ci.yml) runs exactly this script, so a
# clean local run means a green check.
#
# Nightly-only dynamic-analysis lanes are separate (see the workflow):
#   cargo xtask tsan    # ThreadSanitizer on the threaded executor
#   cargo xtask miri    # Miri on mlcore + collectives unit tests
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo xtask lint"
cargo xtask lint

if cargo deny --version >/dev/null 2>&1; then
    echo "==> cargo deny check"
    cargo deny check bans licenses sources
else
    echo "==> cargo deny: not installed, skipping (CI runs it)"
fi

echo "==> cargo build --release"
cargo build --release

echo "==> cargo xtask verify-artifacts"
cargo xtask verify-artifacts

echo "==> cargo xtask verify-schedules"
cargo xtask verify-schedules

echo "==> cargo test -q"
cargo test -q

echo "==> obs-determinism lane"
./scripts/obs_determinism.sh

echo "==> serve smoke lane"
./scripts/serve_smoke.sh

echo "==> cargo bench -- --test (smoke: each bench runs once)"
cargo bench -p pml-bench -- --test

echo "CI gate passed."
