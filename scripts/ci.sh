#!/usr/bin/env bash
# The full CI gate, runnable locally: formatting, lints-as-errors, release
# build, and the test suite. CI (.github/workflows/ci.yml) runs exactly
# this script, so a clean local run means a green check.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "CI gate passed."
