#!/usr/bin/env bash
# obs-determinism lane: observability must be write-only. The same tuning
# table is generated twice — once with `--trace --metrics-out`, once bare —
# and the two JSON artifacts must be byte-identical. The lane also sanity-
# checks the observability outputs themselves: the span tree covers the
# datagen → train → table pipeline stages and the metrics document carries
# at least ten distinct metrics.
set -euo pipefail
cd "$(dirname "$0")/.."

bin=target/release/pml-mpi
if [[ ! -x "$bin" ]]; then
    echo "==> cargo build --release --bin pml-mpi"
    cargo build --release --bin pml-mpi
fi

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "==> pml-mpi table RI alltoall --trace --metrics-out"
"$bin" table RI alltoall --out "$tmp/traced.json" \
    --trace --metrics-out "$tmp/metrics.json" 2>"$tmp/trace.txt"

echo "==> pml-mpi table RI alltoall (bare)"
"$bin" table RI alltoall --out "$tmp/bare.json" 2>/dev/null

echo "==> tuning tables byte-identical"
cmp "$tmp/traced.json" "$tmp/bare.json"

echo "==> span tree covers the pipeline stages"
for stage in datagen train table; do
    if ! grep -q "$stage" "$tmp/trace.txt"; then
        echo "FAIL: span tree missing stage '$stage':" >&2
        cat "$tmp/trace.txt" >&2
        exit 1
    fi
done

echo "==> metrics document carries >= 10 metrics"
total=$(grep -o '"metrics_total": [0-9]*' "$tmp/metrics.json" | grep -o '[0-9]*$')
if [[ -z "$total" || "$total" -lt 10 ]]; then
    echo "FAIL: expected >= 10 metrics, got '${total:-none}':" >&2
    cat "$tmp/metrics.json" >&2
    exit 1
fi

echo "obs-determinism lane passed ($total metrics)."
