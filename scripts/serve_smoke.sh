#!/usr/bin/env bash
# Serve-lane smoke test: boots `pml-mpi serve` against a tiny hand-written
# tuning-table artifact, drives the pml-serve/v1 protocol end to end
# through `pml-mpi client` — good frames, a malformed frame, a truncated
# frame (the daemon must answer with typed errors, never drop the
# connection) — fires a short loadgen burst, then SIGTERMs the daemon and
# asserts a clean shutdown: exit code 0 and the socket file removed.
# Any mismatch exits nonzero. ci.sh runs this lane on every push.
set -euo pipefail
cd "$(dirname "$0")/.."

bin=target/release/pml-mpi
[[ -x "$bin" ]] || cargo build --release --bin pml-mpi

work=$(mktemp -d)
sock="$work/pml.sock"
pid=""
cleanup() {
    [[ -n "$pid" ]] && kill "$pid" 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

fail() {
    echo "serve_smoke: FAIL: $*" >&2
    [[ -s "$work/serve.log" ]] && sed 's/^/serve_smoke: daemon: /' "$work/serve.log" >&2
    exit 1
}

# `expect <desc> <needle> <actual>`: substring assertion with context.
expect() {
    case "$3" in
        *"$2"*) ;;
        *) fail "$1: expected to contain '$2', got: $3" ;;
    esac
}

# A minimal but verifier-complete artifact: a full 2x2x2 grid for
# Alltoall on a synthetic "smoke" cluster. Hand-written because real
# table generation re-runs the micro-benchmarks (minutes, not seconds).
mkdir -p "$work/art"
cat > "$work/art/smoke_alltoall.json" <<'EOF'
{
  "cluster": "smoke",
  "collective": "Alltoall",
  "entries": [
    {"nodes": 2, "ppn": 4, "msg_size": 1024, "algorithm": {"Alltoall": "Bruck"}},
    {"nodes": 2, "ppn": 4, "msg_size": 65536, "algorithm": {"Alltoall": "Pairwise"}},
    {"nodes": 2, "ppn": 8, "msg_size": 1024, "algorithm": {"Alltoall": "Bruck"}},
    {"nodes": 2, "ppn": 8, "msg_size": 65536, "algorithm": {"Alltoall": "Pairwise"}},
    {"nodes": 4, "ppn": 4, "msg_size": 1024, "algorithm": {"Alltoall": "Bruck"}},
    {"nodes": 4, "ppn": 4, "msg_size": 65536, "algorithm": {"Alltoall": "Pairwise"}},
    {"nodes": 4, "ppn": 8, "msg_size": 1024, "algorithm": {"Alltoall": "Bruck"}},
    {"nodes": 4, "ppn": 8, "msg_size": 65536, "algorithm": {"Alltoall": "Pairwise"}}
  ]
}
EOF
"$bin" verify "$work/art/smoke_alltoall.json" >/dev/null || fail "smoke artifact rejected by verifier"

echo "==> starting daemon"
"$bin" serve --socket "$sock" --model "$work/art" >"$work/serve.log" 2>&1 &
pid=$!
for _ in $(seq 1 100); do
    [[ -S "$sock" ]] && break
    kill -0 "$pid" 2>/dev/null || fail "daemon died before binding"
    sleep 0.05
done
[[ -S "$sock" ]] || fail "socket never appeared at $sock"

echo "==> protocol round-trip"
replies=$(printf '%s\n' \
    '{"v":"pml-serve/v1","id":1,"op":"ping"}' \
    '{"v":"pml-serve/v1","id":2,"op":"select","collective":"alltoall","nodes":2,"ppn":4,"msg_size":1024}' \
    '{"v":"pml-serve/v1","id":3,"op":"select","collective":"alltoall","nodes":4,"ppn":8,"msg_size":65536}' \
    '{bad json' \
    '{"v":"pml-serve/v1","id":5,"op":"sel' \
    '{"v":"pml-serve/v1","id":6,"op":"frobnicate"}' \
    '{"v":"pml-serve/v1","id":7,"op":"stats"}' \
    | "$bin" client --socket "$sock")
mapfile -t r <<< "$replies"
[[ ${#r[@]} -eq 7 ]] || fail "expected 7 replies, got ${#r[@]}: $replies"
expect "ping reply"            '"pong":true'        "${r[0]}"
expect "exact small select"    '"algorithm":"bruck"' "${r[1]}"
expect "exact small select"    '"depth":0'           "${r[1]}"
expect "exact large select"    '"algorithm":"pairwise"' "${r[2]}"
expect "malformed frame"       '"ok":false'          "${r[3]}"
expect "malformed frame"       '"kind":"parse"'      "${r[3]}"
expect "truncated frame"       '"kind":"parse"'      "${r[4]}"
expect "unknown op"            '"kind":"op"'         "${r[5]}"
expect "unknown op echoes id"  '"id":6'              "${r[5]}"
expect "stats after errors"    '"ok":true'           "${r[6]}"
expect "stats counts requests" '"requests":'         "${r[6]}"

echo "==> loadgen burst"
"$bin" loadgen --socket "$sock" --requests 2000 --threads 4 \
    --out "$work/bench.json" >/dev/null 2>&1 \
    || fail "loadgen reported bad replies or could not connect"
expect "loadgen output" '"p99":' "$(cat "$work/bench.json")"

echo "==> clean shutdown on SIGTERM"
kill -TERM "$pid"
rc=0
wait "$pid" || rc=$?
pid=""
[[ $rc -eq 0 ]] || fail "daemon exited $rc on SIGTERM (want 0)"
[[ -S "$sock" ]] && fail "socket file survived shutdown"
grep -q "clean shutdown" "$work/serve.log" || fail "daemon log missing clean-shutdown line"

echo "serve smoke lane passed."
