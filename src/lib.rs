//! PML-MPI — a pre-trained ML framework for MPI collective algorithm
//! selection (paper reproduction).
//!
//! This root crate is a facade over the workspace: it re-exports the
//! sub-crates under short names plus the handful of types most programs
//! need, so `pml_mpi::SelectionEngine` is the only import a consumer
//! starts with. The heavy lifting lives in:
//!
//! - [`simnet`] — the analytical cluster/network simulator (hardware specs
//!   and the communication cost model);
//! - [`collectives`] — collective algorithms, schedules, and the
//!   simulated executor;
//! - [`mlcore`] — the from-scratch ML stack (Random Forest & friends);
//! - [`clusters`] — the 18-cluster zoo and micro-benchmark dataset
//!   generation;
//! - [`core`] — feature extraction, training pipeline, selectors, tuning
//!   tables, and the [`SelectionEngine`] facade;
//! - [`obs`] — structured tracing, the metrics registry, and the leveled
//!   event sink behind `--trace` / `--metrics-out`;
//! - [`apps`] — mini-app communication patterns used for end-to-end
//!   evaluation;
//! - [`serve`] — the selection path as a daemon: NDJSON over a Unix
//!   domain socket, request batching, `pml-mpi serve` / `loadgen`.
//!
//! # Quick start
//!
//! ```no_run
//! use pml_mpi::{Collective, EngineConfig, JobConfig, SelectionEngine};
//!
//! let engine = SelectionEngine::new(EngineConfig::default());
//! let algo = engine
//!     .predict("Frontera", Collective::Allgather, JobConfig::new(16, 56, 4096))
//!     .expect("known cluster");
//! println!("picked {algo}");
//! ```
//!
//! See `examples/quickstart.rs` for the full offline → online lifecycle
//! and `src/main.rs` for the CLI that wraps it.

#![deny(rust_2018_idioms, missing_debug_implementations)]
#![deny(clippy::dbg_macro, clippy::todo)]
pub use pml_apps as apps;
pub use pml_clusters as clusters;
pub use pml_collectives as collectives;
pub use pml_core as core;
pub use pml_mlcore as mlcore;
pub use pml_obs as obs;
pub use pml_serve as serve;
pub use pml_simnet as simnet;

// The flat API: the types a typical consumer touches, one import away.
pub use pml_clusters::{by_name, zoo, ClusterEntry, DatagenConfig, TuningRecord};
pub use pml_collectives::{Algorithm, Collective};
pub use pml_core::{
    applicable_or_fallback, detect_node, AlgorithmSelector, ArtifactKind, EngineConfig,
    FallbackDepth, JobConfig, MlSelector, MvapichDefault, OpenMpiDefault, OracleSelector, PmlError,
    PretrainedModel, RandomSelector, SelectionEngine, TableStore, TrainConfig, Tuner, TuningTable,
    VerifyError, VerifyErrorKind, FEATURE_NAMES,
};
pub use pml_simnet::NodeSpec;
