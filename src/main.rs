//! `pml-mpi` — command-line front end for the selection framework.
//!
//! Eleven subcommands cover the offline → online lifecycle:
//!
//! ```text
//! zoo       list the 18-cluster benchmark zoo
//! dataset   generate (or load cached) micro-benchmark records
//! train     train a model for one collective
//! predict   pick an algorithm for a job (zoo cluster or captured hw files)
//! table     emit the JSON tuning table for a (cluster, collective)
//! compare   ML pick vs library defaults vs oracle over a message sweep
//! verify    statically verify model / tuning-table artifacts
//! stats     run a small pipeline and dump spans, metrics, and events
//! serve     answer selection queries over a Unix domain socket (pml-serve/v1)
//! loadgen   replay synthetic requests against a daemon, record latency
//! client    pipe stdin NDJSON frames to a daemon, replies to stdout
//! ```
//!
//! Two global options work on every subcommand: `--trace` renders the span
//! tree (per-stage total/self times) to stderr after the command finishes,
//! and `--metrics-out FILE` writes the `pml-obs/v1` metrics JSON document.
//! Both are observability-only: the tracer is enabled here at the CLI edge
//! with a monotonic clock, and artifacts stay byte-identical with or
//! without them (the `obs-determinism` CI lane holds that line).
//!
//! Argument parsing is hand rolled (the build is offline — no clap); every
//! user error surfaces as a message on stderr and exit code 1, never a
//! panic.

use pml_mpi::clusters::measure_cell;
use pml_mpi::core::{parse_ibstat, parse_lscpu, parse_lspci_link};
use pml_mpi::obs;
use pml_mpi::obs::span;
use pml_mpi::simnet::{InterconnectSpec, PcieVersion};
use pml_mpi::{
    by_name, Algorithm, AlgorithmSelector, Collective, EngineConfig, JobConfig, MvapichDefault,
    NodeSpec, OpenMpiDefault, PretrainedModel, SelectionEngine, Tuner, FEATURE_NAMES,
};
use std::collections::BTreeMap;
use std::error::Error;
use std::path::{Path, PathBuf};

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let (args, obs_opts) = match extract_obs_opts(&raw) {
        Ok(split) => split,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    // `stats` is the observability showcase: it always traces, flags or not.
    let stats_run = args.first().is_some_and(|a| a == "stats");
    if obs_opts.enabled() || stats_run {
        obs::tracer().enable(std::sync::Arc::new(obs::MonotonicClock::new()));
    }
    let result = run(&args);
    finish_obs(&obs_opts, stats_run);
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn run(args: &[String]) -> Result<(), Box<dyn Error>> {
    match args.first().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => {
            print_help();
            Ok(())
        }
        Some("zoo") => {
            let _span = span!("cmd.zoo");
            cmd_zoo()
        }
        Some("dataset") => {
            let _span = span!("cmd.dataset");
            cmd_dataset(&args[1..])
        }
        Some("train") => {
            let _span = span!("cmd.train");
            cmd_train(&args[1..])
        }
        Some("predict") => {
            let _span = span!("cmd.predict");
            cmd_predict(&args[1..])
        }
        Some("table") => {
            let _span = span!("cmd.table");
            cmd_table(&args[1..])
        }
        Some("compare") => {
            let _span = span!("cmd.compare");
            cmd_compare(&args[1..])
        }
        Some("verify") => {
            let _span = span!("cmd.verify");
            cmd_verify(&args[1..])
        }
        Some("stats") => {
            let _span = span!("cmd.stats");
            cmd_stats(&args[1..])
        }
        Some("serve") => {
            let _span = span!("cmd.serve");
            cmd_serve(&args[1..])
        }
        Some("loadgen") => {
            let _span = span!("cmd.loadgen");
            cmd_loadgen(&args[1..])
        }
        Some("client") => {
            let _span = span!("cmd.client");
            cmd_client(&args[1..])
        }
        Some(other) => Err(format!("unknown subcommand {other:?} — run `pml-mpi help`").into()),
    }
}

/// Global observability flags, stripped before subcommand dispatch so the
/// per-subcommand parsers never see them.
struct ObsOpts {
    trace: bool,
    metrics_out: Option<String>,
}

impl ObsOpts {
    fn enabled(&self) -> bool {
        self.trace || self.metrics_out.is_some()
    }
}

/// Split `--trace` / `--metrics-out FILE` (or `--metrics-out=FILE`) out of
/// the raw argument list; everything else passes through untouched.
fn extract_obs_opts(args: &[String]) -> Result<(Vec<String>, ObsOpts), String> {
    let mut rest = Vec::with_capacity(args.len());
    let mut opts = ObsOpts {
        trace: false,
        metrics_out: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--trace" {
            opts.trace = true;
        } else if a == "--metrics-out" {
            let v = it
                .next()
                .cloned()
                .ok_or_else(|| "--metrics-out needs a value".to_string())?;
            opts.metrics_out = Some(v);
        } else if let Some(v) = a.strip_prefix("--metrics-out=") {
            opts.metrics_out = Some(v.to_string());
        } else {
            rest.push(a.clone());
        }
    }
    Ok((rest, opts))
}

/// After the subcommand returns (even on error): render the span tree to
/// stderr (`--trace`, or always for `stats`) and write the metrics JSON
/// (`--metrics-out`).
fn finish_obs(opts: &ObsOpts, stats_run: bool) {
    let tracer = obs::tracer();
    if !tracer.is_enabled() {
        return;
    }
    let forest = tracer.finish();
    if (opts.trace || stats_run) && !forest.is_empty() {
        eprint!("{}", forest.render());
    }
    if let Some(path) = &opts.metrics_out {
        let json = obs::metrics_json(&obs::metrics::snapshot(), Some(&forest));
        match std::fs::write(path, json) {
            Ok(()) => eprintln!("metrics written to {path}"),
            Err(e) => eprintln!("error: writing {path}: {e}"),
        }
    }
}

fn print_help() {
    println!(
        "\
pml-mpi — pre-trained ML selection of MPI collective algorithms

USAGE: pml-mpi <SUBCOMMAND> [OPTIONS]

SUBCOMMANDS:
  zoo                              list the 18-cluster benchmark zoo
  dataset <collective>             generate or load the micro-benchmark dataset
  train <collective>               train the Random Forest for one collective
  predict <collective>             pick an algorithm for one job
  table <cluster> <collective>     emit a cluster's JSON tuning table
  compare <cluster> <collective>   ML vs library defaults vs oracle
  verify <FILE>...                 statically verify artifact files
  verify --schedules [FILE]...     statically verify communication schedules
                                   (no files: prove every registered algorithm
                                   over the (world, size) grid — zero execution)
  stats [<collective>]             run a small pipeline, dump spans/metrics/events
  serve --socket PATH --model DIR  selection daemon over a Unix domain socket
  loadgen --socket PATH            replay synthetic requests, record latency
  client --socket PATH             stdin NDJSON frames -> socket -> stdout
  help                             show this message

GLOBAL OPTIONS (any subcommand):
  --trace              print the span tree (stage timings) to stderr on exit
  --metrics-out FILE   write the pml-obs/v1 metrics JSON document to FILE

COMMON OPTIONS:
  --cache-dir DIR   dataset cache directory (default: ./data when present)
  --no-cache        regenerate datasets in memory, ignore any cache
  --out FILE        write the command's JSON artifact to FILE

VERIFY --schedules OPTIONS:
  --max-world N     largest world size in the sweep (default 16)
  --blocks CSV      comma-separated block/message sizes in bytes (default 16,21)

STATS OPTIONS:
  --cluster NAME    zoo cluster to pipeline (default: RI)

PREDICT OPTIONS:
  --cluster NAME    use a zoo cluster's hardware
  --lscpu FILE      captured `lscpu` output (with --ibstat; instead of --cluster)
  --ibstat FILE     captured `ibstat` output
  --lspci FILE      captured `lspci -vv` link status (optional; Gen3 x16 assumed)
  --mem-bw GBS      measured STREAM bandwidth (optional with --lscpu)
  --model FILE      load a trained model JSON instead of training
  --nodes N --ppn P --msg BYTES    the job (required)

COMPARE OPTIONS:
  --nodes N --ppn P [--msg BYTES]  fixed job shape; without --msg a
                                   1 B … 1 MiB power-of-two sweep runs

SERVE OPTIONS:
  --socket PATH     Unix domain socket to listen on (required)
  --model DIR       artifact dir: tuning tables as DIR/*.json, pre-trained
                    models as DIR/models/*.json (required)
  --queue-depth N   predict batch queue bound (default 4096)
  --max-batch N     rows per batched forest inference (default 128)
  --window-us US    batching window in microseconds (default 200)

LOADGEN OPTIONS:
  --socket PATH     daemon socket to replay against (required)
  --requests N      total requests across all threads (default 100000)
  --threads T       concurrent client connections (default 4)
  --collective C    collective to query (default alltoall)
  --op OP           select | predict (default select)
  --seed N          job-shape sampling seed (default 42)
  --out FILE        write the BENCH JSON document (default: stdout)
  --date TS         ISO timestamp stamped into the JSON (default: null)
  --rev REV         git revision stamped into the JSON (default: null)

EXAMPLES:
  pml-mpi train allgather --out model_ag.json
  pml-mpi predict allgather --cluster Frontera --nodes 16 --ppn 56 --msg 4096
  pml-mpi predict alltoall --lscpu examples/captures/lscpu_frontera.txt \\
      --ibstat examples/captures/ibstat_edr.txt --nodes 8 --ppn 56 --msg 65536
  pml-mpi table Frontera allgather --out frontera_allgather.json
  pml-mpi table RI alltoall --trace --metrics-out metrics.json
  pml-mpi compare Frontera alltoall --nodes 16 --ppn 56
  pml-mpi verify model_ag.json frontera_allgather.json
  pml-mpi verify --schedules --max-world 16 --blocks 16,21
  pml-mpi stats alltoall --cluster RI
  pml-mpi serve --socket /tmp/pml.sock --model artifacts/
  printf '{{\"v\":\"pml-serve/v1\",\"id\":1,\"op\":\"select\",\"collective\":\"alltoall\",\
\"nodes\":4,\"ppn\":8,\"msg_size\":1024}}\\n' | pml-mpi client --socket /tmp/pml.sock
  pml-mpi loadgen --socket /tmp/pml.sock --requests 100000 --threads 8 --out BENCH_serve.json"
    );
}

/// Hand-rolled `--flag value` / positional splitter. Unknown flags are an
/// error so typos do not silently change behaviour.
struct Opts {
    positional: Vec<String>,
    flags: BTreeMap<String, String>,
}

impl Opts {
    /// `switches` take no value; every other `--flag` consumes one.
    fn parse(args: &[String], known: &[&str], switches: &[&str]) -> Result<Opts, String> {
        let mut positional = Vec::new();
        let mut flags = BTreeMap::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                let (name, inline) = match name.split_once('=') {
                    Some((n, v)) => (n, Some(v.to_string())),
                    None => (name, None),
                };
                if switches.contains(&name) {
                    flags.insert(name.to_string(), String::new());
                } else if known.contains(&name) {
                    let v = match inline {
                        Some(v) => v,
                        None => it
                            .next()
                            .cloned()
                            .ok_or_else(|| format!("--{name} needs a value"))?,
                    };
                    flags.insert(name.to_string(), v);
                } else {
                    return Err(format!("unknown option --{name}"));
                }
            } else {
                positional.push(a.clone());
            }
        }
        Ok(Opts { positional, flags })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    fn has(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }

    fn require_u32(&self, name: &str) -> Result<u32, String> {
        let v = self
            .get(name)
            .ok_or_else(|| format!("missing required --{name}"))?;
        v.parse()
            .map_err(|_| format!("--{name} expects an integer, got {v:?}"))
    }

    fn require_usize(&self, name: &str) -> Result<usize, String> {
        let v = self
            .get(name)
            .ok_or_else(|| format!("missing required --{name}"))?;
        v.parse()
            .map_err(|_| format!("--{name} expects an integer, got {v:?}"))
    }
}

fn parse_collective(s: &str) -> Result<Collective, String> {
    let want = s.to_ascii_lowercase();
    let want = want.trim_start_matches("mpi_");
    Collective::ALL
        .iter()
        .copied()
        .find(|c| c.name().trim_start_matches("MPI_").to_ascii_lowercase() == want)
        .ok_or_else(|| {
            format!("unknown collective {s:?} (expected allgather, alltoall, bcast, or allreduce)")
        })
}

/// The engine every subcommand shares: default config, dataset cache in
/// `--cache-dir`, falling back to the repo's committed `./data` when it
/// exists (so `train`/`predict` do not re-benchmark the whole zoo).
fn build_engine(opts: &Opts) -> SelectionEngine {
    let cache_dir = if opts.has("no-cache") {
        None
    } else {
        match opts.get("cache-dir") {
            Some(d) => Some(PathBuf::from(d)),
            None => Path::new("data").is_dir().then(|| PathBuf::from("data")),
        }
    };
    SelectionEngine::new(EngineConfig {
        cache_dir,
        ..EngineConfig::default()
    })
}

fn report_warnings(engine: &SelectionEngine) {
    for w in engine.warnings() {
        eprintln!("warning: {w}");
    }
}

fn write_or_print(out: Option<&str>, json: &str, what: &str) -> Result<(), Box<dyn Error>> {
    match out {
        Some(path) => {
            std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("{what} written to {path}");
        }
        None => println!("{json}"),
    }
    Ok(())
}

fn cmd_zoo() -> Result<(), Box<dyn Error>> {
    println!(
        "{:<14} {:<40} {:>5} {:>6}  {:<10} {:>12}",
        "cluster", "processor", "cores", "clock", "fabric", "grid cells"
    );
    for e in pml_mpi::zoo() {
        let cpu = &e.spec.node.cpu;
        let nic = &e.spec.node.nic;
        println!(
            "{:<14} {:<40} {:>5} {:>5.2}G  {:<10} {:>12}",
            e.name(),
            cpu.model,
            cpu.cores,
            cpu.max_clock_ghz,
            format!("{:?} x{}", nic.generation, nic.link_width),
            e.grid_size(),
        );
    }
    Ok(())
}

fn cmd_dataset(args: &[String]) -> Result<(), Box<dyn Error>> {
    let opts = Opts::parse(args, &["cache-dir", "out"], &["no-cache"])?;
    let [coll] = opts.positional.as_slice() else {
        return Err("usage: pml-mpi dataset <collective> [--out FILE]".into());
    };
    let coll = parse_collective(coll)?;
    let engine = build_engine(&opts);
    let records = engine.dataset(coll)?;
    report_warnings(&engine);
    let mut per_cluster: BTreeMap<&str, usize> = BTreeMap::new();
    for r in &records {
        *per_cluster.entry(r.cluster.as_str()).or_default() += 1;
    }
    eprintln!(
        "{coll}: {} records / {} clusters",
        records.len(),
        per_cluster.len()
    );
    if let Some(path) = opts.get("out") {
        let json =
            serde_json::to_string(&records).map_err(|e| format!("serializing dataset: {e}"))?;
        write_or_print(Some(path), &json, "dataset")?;
    } else {
        for (name, n) in &per_cluster {
            println!("{name:<14} {n}");
        }
    }
    Ok(())
}

fn cmd_train(args: &[String]) -> Result<(), Box<dyn Error>> {
    let opts = Opts::parse(args, &["cache-dir", "out"], &["no-cache"])?;
    let [coll] = opts.positional.as_slice() else {
        return Err("usage: pml-mpi train <collective> [--out FILE]".into());
    };
    let coll = parse_collective(coll)?;
    let engine = build_engine(&opts);
    let model = engine.train(coll)?;
    report_warnings(&engine);
    let features: Vec<&str> = model
        .selected_features()
        .iter()
        .map(|&i| FEATURE_NAMES[i])
        .collect();
    eprintln!(
        "{coll}: trained; selected features: {}",
        features.join(", ")
    );
    if let Some(oob) = model.oob_score() {
        eprintln!("out-of-bag accuracy: {:.1}%", oob * 100.0);
    }
    if let Some(path) = opts.get("out") {
        write_or_print(Some(path), &model.to_json()?, "model")?;
    }
    Ok(())
}

/// Hardware for `predict`: a zoo cluster by name, or a node assembled from
/// captured `lscpu`/`ibstat` (and optionally `lspci -vv`) output.
fn resolve_node(opts: &Opts) -> Result<NodeSpec, Box<dyn Error>> {
    if let Some(name) = opts.get("cluster") {
        let entry =
            by_name(name).ok_or_else(|| format!("unknown cluster {name:?} — see `pml-mpi zoo`"))?;
        return Ok(entry.spec.node.clone());
    }
    let (Some(lscpu_path), Some(ibstat_path)) = (opts.get("lscpu"), opts.get("ibstat")) else {
        return Err(
            "predict needs either --cluster NAME or both --lscpu and --ibstat files".into(),
        );
    };
    let read = |p: &str| std::fs::read_to_string(p).map_err(|e| format!("reading {p}: {e}"));
    let mem_bw = match opts.get("mem-bw") {
        Some(v) => Some(
            v.parse::<f64>()
                .map_err(|_| format!("--mem-bw expects a number, got {v:?}"))?,
        ),
        None => None,
    };
    let cpu = parse_lscpu(&read(lscpu_path)?, mem_bw)?;
    let (generation, link_width) = parse_ibstat(&read(ibstat_path)?)?;
    // PCIe attachment is a second-order feature; without a capture assume
    // the era-typical Gen3 x16 slot.
    let (pcie_version, pcie_lanes) = match opts.get("lspci") {
        Some(p) => parse_lspci_link(&read(p)?)?,
        None => (PcieVersion::Gen3, 16),
    };
    Ok(NodeSpec {
        cpu,
        nic: InterconnectSpec {
            generation,
            link_width,
            pcie_version,
            pcie_lanes,
        },
    })
}

fn cmd_predict(args: &[String]) -> Result<(), Box<dyn Error>> {
    let opts = Opts::parse(
        args,
        &[
            "cache-dir",
            "cluster",
            "lscpu",
            "ibstat",
            "lspci",
            "mem-bw",
            "model",
            "nodes",
            "ppn",
            "msg",
        ],
        &["no-cache"],
    )?;
    let [coll] = opts.positional.as_slice() else {
        return Err(
            "usage: pml-mpi predict <collective> --nodes N --ppn P --msg BYTES \
             (--cluster NAME | --lscpu F --ibstat F)"
                .into(),
        );
    };
    let coll = parse_collective(coll)?;
    let job = JobConfig::new(
        opts.require_u32("nodes")?,
        opts.require_u32("ppn")?,
        opts.require_usize("msg")?,
    );
    let node = resolve_node(&opts)?;
    let model = match opts.get("model") {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            let model = PretrainedModel::from_json(&text)
                .map_err(|e| format!("parsing model {path}: {e}"))?;
            if model.collective != coll {
                return Err(
                    format!("model in {path} is for {}, not {coll}", model.collective).into(),
                );
            }
            std::sync::Arc::new(model)
        }
        None => {
            let engine = build_engine(&opts);
            let model = engine.train(coll)?;
            report_warnings(&engine);
            model
        }
    };
    let pick = model.predict(&node, job);
    println!(
        "{coll} at {}x{} ({} ranks), {} B -> {}",
        job.nodes,
        job.ppn,
        job.world_size(),
        job.msg_size,
        pick
    );
    Ok(())
}

fn cmd_table(args: &[String]) -> Result<(), Box<dyn Error>> {
    let opts = Opts::parse(args, &["cache-dir", "out"], &["no-cache"])?;
    let [cluster, coll] = opts.positional.as_slice() else {
        return Err("usage: pml-mpi table <cluster> <collective> [--out FILE]".into());
    };
    let coll = parse_collective(coll)?;
    let engine = build_engine(&opts);
    let table = engine.tuning_table(cluster, coll)?;
    report_warnings(&engine);
    eprintln!("{cluster} {coll}: {} table entries", table.len());
    write_or_print(opts.get("out"), &table.to_json()?, "tuning table")
}

fn cmd_compare(args: &[String]) -> Result<(), Box<dyn Error>> {
    let opts = Opts::parse(args, &["cache-dir", "nodes", "ppn", "msg"], &["no-cache"])?;
    let [cluster, coll] = opts.positional.as_slice() else {
        return Err(
            "usage: pml-mpi compare <cluster> <collective> --nodes N --ppn P [--msg BYTES]".into(),
        );
    };
    let coll = parse_collective(coll)?;
    let nodes = opts.require_u32("nodes")?;
    let ppn = opts.require_u32("ppn")?;
    let sizes: Vec<usize> = match opts.get("msg") {
        Some(_) => vec![opts.require_usize("msg")?],
        None => (0..21).map(|i| 1usize << i).collect(),
    };
    let engine = build_engine(&opts);
    let entry = engine.entry(cluster)?.clone();
    let model = engine.train(coll)?;
    report_warnings(&engine);
    let mva = MvapichDefault;
    let ompi = OpenMpiDefault;
    println!(
        "{:<9} {:<22} {:>9} {:<22} {:>9} {:<22} {:>9} {:<22}",
        "msg(B)", "ml pick", "us", "mvapich", "us", "openmpi", "us", "oracle"
    );
    let fmt_us = |t: Option<f64>| match t {
        Some(s) => format!("{:.1}", s * 1e6),
        None => "-".to_string(),
    };
    let short = |a: Algorithm| a.name().to_string();
    for &msg in &sizes {
        let job = JobConfig::new(nodes, ppn, msg);
        let record = measure_cell(&entry, coll, nodes, ppn, msg, &engine_cfg_datagen())?;
        let ml = model.predict(&entry.spec.node, job);
        let m = mva.select(coll, job);
        let o = ompi.select(coll, job);
        println!(
            "{:<9} {:<22} {:>9} {:<22} {:>9} {:<22} {:>9} {:<22}",
            msg,
            short(ml),
            fmt_us(record.runtime_of(ml)),
            short(m),
            fmt_us(record.runtime_of(m)),
            short(o),
            fmt_us(record.runtime_of(o)),
            format!(
                "{} ({})",
                short(record.best),
                fmt_us(Some(record.best_runtime()))
            ),
        );
    }
    Ok(())
}

/// `compare` re-measures cells with the same configuration the engine's
/// datasets use, so its oracle column matches the training distribution.
fn engine_cfg_datagen() -> pml_mpi::DatagenConfig {
    pml_mpi::DatagenConfig::default()
}

/// Statically verify artifact files (models, tuning tables, binned
/// matrices) without executing them, or — with `--schedules` — statically
/// verify communication schedules via the schedcheck dataflow analyzer.
/// Prints one line per file; any failure is reported with its path and the
/// command exits nonzero after checking every file.
fn cmd_verify(args: &[String]) -> Result<(), Box<dyn Error>> {
    let opts = Opts::parse(args, &["max-world", "blocks"], &["schedules"])?;
    if opts.has("schedules") {
        return cmd_verify_schedules(&opts);
    }
    if opts.has("max-world") || opts.has("blocks") {
        return Err("--max-world/--blocks only apply with --schedules".into());
    }
    if opts.positional.is_empty() {
        return Err("usage: pml-mpi verify <FILE>... | verify --schedules [FILE]...".into());
    }
    let mut failures = 0usize;
    for path in &opts.positional {
        match pml_mpi::core::verify_artifact_file(Path::new(path)) {
            Ok(kind) => println!("{path}: OK ({kind})"),
            Err(e) => {
                failures += 1;
                eprintln!("FAIL {e}");
            }
        }
    }
    if failures > 0 {
        return Err(format!(
            "{failures} of {} artifact(s) failed verification",
            opts.positional.len()
        )
        .into());
    }
    Ok(())
}

/// `verify --schedules`: with no files, statically prove every registered
/// algorithm over the full (world, size) grid — zero execution; with
/// files, check each as a `pml-sched/v1` schedule document. The grid is
/// world 2..=`--max-world` (default 16, non-powers-of-two included) at
/// each size in `--blocks` (default 16,21).
fn cmd_verify_schedules(opts: &Opts) -> Result<(), Box<dyn Error>> {
    use pml_mpi::collectives::schedcheck;

    let mut failures = 0usize;
    let mut checked = 0usize;
    if opts.positional.is_empty() {
        let max_world = match opts.get("max-world") {
            Some(_) => opts.require_u32("max-world")?,
            None => 16,
        };
        if max_world < 2 {
            return Err("--max-world must be at least 2".into());
        }
        let sizes = match opts.get("blocks") {
            Some(csv) => csv
                .split(',')
                .map(|s| {
                    s.trim()
                        .parse::<usize>()
                        .map_err(|_| format!("--blocks expects integers, got {s:?}"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            None => vec![16, 21],
        };
        if sizes.is_empty() {
            return Err("--blocks needs at least one size".into());
        }
        let mut by_algo: BTreeMap<String, usize> = BTreeMap::new();
        for (algo, p, size) in schedcheck::sweep_grid(max_world, &sizes) {
            checked += 1;
            match schedcheck::check_algorithm(algo, p, size) {
                Ok(()) => *by_algo.entry(algo.name().to_string()).or_insert(0) += 1,
                Err(e) => {
                    failures += 1;
                    eprintln!("FAIL {} p={p} size={size}: {e}", algo.name());
                }
            }
        }
        for (name, n) in &by_algo {
            println!("{name}: {n} cells OK");
        }
        println!(
            "verified {checked} (algorithm, world, size) cells statically, {failures} failure(s)"
        );
    } else {
        for path in &opts.positional {
            checked += 1;
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let verdict = serde_json::from_str::<schedcheck::ScheduleDoc>(&text)
                .map_err(|e| format!("parse: {e}"))
                .and_then(|doc| doc.check().map(|()| doc).map_err(|e| e.to_string()));
            match verdict {
                Ok(doc) => println!(
                    "{path}: OK ({} p={} size={})",
                    doc.collective.name(),
                    doc.schedule.world,
                    doc.size
                ),
                Err(e) => {
                    failures += 1;
                    eprintln!("FAIL {path}: {e}");
                }
            }
        }
    }
    if failures > 0 {
        return Err(format!("{failures} of {checked} schedule check(s) failed").into());
    }
    Ok(())
}

/// Observability showcase: drive a small dataset → train → table → tuner
/// pipeline and dump everything the instrumentation collected — drained
/// events, the metrics registry, and (via `main`'s exit path) the span
/// tree. Tracing is always on for this subcommand.
fn cmd_stats(args: &[String]) -> Result<(), Box<dyn Error>> {
    let opts = Opts::parse(args, &["cache-dir", "cluster"], &["no-cache"])?;
    let coll = match opts.positional.as_slice() {
        [] => Collective::Alltoall,
        [c] => parse_collective(c)?,
        _ => return Err("usage: pml-mpi stats [<collective>] [--cluster NAME]".into()),
    };
    let cluster = opts.get("cluster").unwrap_or("RI");
    let engine = build_engine(&opts);
    let table = engine.tuning_table(cluster, coll)?;

    // Exercise the runtime path too: probe the fresh table on-grid (exact
    // cell), repeated (memo hit), off-grid (nearest bucket), and at an odd
    // shape, so the tuner counters and the fallback-depth histogram fill.
    let tuner = Tuner::new([table.clone()]);
    for &(nodes, ppn, msg) in &[(2u32, 4u32, 64usize), (2, 4, 64), (2, 4, 100), (3, 5, 777)] {
        tuner.select(coll, JobConfig::new(nodes, ppn, msg));
    }
    let (hits, misses) = tuner.stats();
    println!(
        "{cluster} {coll}: {} table cells; tuner memo {hits} hit(s) / {misses} miss(es)",
        table.len()
    );

    // Events the pipeline emitted (cache recoveries and the like) — the
    // structured view behind `SelectionEngine::warnings()`.
    let events = obs::events::drain();
    println!("\nEVENTS ({}):", events.len());
    for e in &events {
        println!("  {e}");
    }

    let snap = obs::metrics::snapshot();
    println!("\nMETRICS ({} total):", snap.total_metrics());
    for (name, v) in &snap.counters {
        println!("  counter    {name:<28} {v}");
    }
    for (name, v) in &snap.gauges {
        println!("  gauge      {name:<28} {v}");
    }
    for (name, h) in &snap.histograms {
        println!(
            "  histogram  {name:<28} count {} sum {} overflow {}",
            h.count, h.sum, h.overflow
        );
    }
    eprintln!("\nspan tree (total/self times) follows on stderr:");
    Ok(())
}

// ---------------------------------------------------------------------------
// Serving: the selection path as a daemon (crates/serve)

/// Per-request client-side latency of `loadgen` round-trips, through the
/// shared metrics registry so `--metrics-out` captures the distribution
/// next to the daemon-side histograms.
static LOADGEN_LATENCY: obs::Histogram =
    obs::Histogram::new("loadgen.rtt.latency_ns", &obs::LATENCY_NS_BOUNDS);

fn parse_flag_or<T: std::str::FromStr>(opts: &Opts, name: &str, default: T) -> Result<T, String> {
    match opts.get(name) {
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{name} expects a number, got {v:?}")),
        None => Ok(default),
    }
}

fn batch_config_from(opts: &Opts) -> Result<pml_mpi::serve::BatchConfig, String> {
    let defaults = pml_mpi::serve::BatchConfig::default();
    Ok(pml_mpi::serve::BatchConfig {
        queue_depth: parse_flag_or(opts, "queue-depth", defaults.queue_depth)?,
        max_batch: parse_flag_or(opts, "max-batch", defaults.max_batch)?,
        window: std::time::Duration::from_micros(parse_flag_or(
            opts,
            "window-us",
            defaults.window.as_micros() as u64,
        )?),
    })
}

fn cmd_serve(args: &[String]) -> Result<(), Box<dyn Error>> {
    let opts = Opts::parse(
        args,
        &["socket", "model", "queue-depth", "max-batch", "window-us"],
        &[],
    )?;
    let socket = PathBuf::from(opts.get("socket").ok_or("missing required --socket PATH")?);
    let model_dir = PathBuf::from(opts.get("model").ok_or("missing required --model DIR")?);
    let cfg = pml_mpi::serve::ServeConfig {
        socket: socket.clone(),
        model_dir,
        batch: batch_config_from(&opts)?,
    };
    let term = pml_mpi::serve::install_termination_flag();
    let server = pml_mpi::serve::Server::bind(&cfg)?;
    for w in server.warnings() {
        eprintln!("warning: {w}");
    }
    eprintln!(
        "pml-serve/v1 listening on {} (SIGTERM or a shutdown frame stops it)",
        socket.display()
    );
    server.run(term)?;
    eprintln!("pml-serve: clean shutdown");
    Ok(())
}

fn cmd_client(args: &[String]) -> Result<(), Box<dyn Error>> {
    use std::io::{BufRead, BufReader, Write};
    let opts = Opts::parse(args, &["socket"], &[])?;
    let socket = opts.get("socket").ok_or("missing required --socket PATH")?;
    let stream = std::os::unix::net::UnixStream::connect(socket)
        .map_err(|e| format!("connecting to {socket}: {e}"))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    for line in std::io::stdin().lock().lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        writer.write_all(line.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        let mut reply = String::new();
        if reader.read_line(&mut reply)? == 0 {
            return Err("daemon closed the connection".into());
        }
        print!("{reply}");
    }
    Ok(())
}

/// One loadgen worker: its own connection, its own seeded rng, synchronous
/// round-trips. Returns (per-request ns, non-ok reply count).
fn loadgen_worker(
    socket: &str,
    count: usize,
    seed: u64,
    collective: Collective,
    op: &str,
) -> Result<(Vec<u64>, u64), String> {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use std::io::{BufRead, BufReader, Write};
    let stream = std::os::unix::net::UnixStream::connect(socket)
        .map_err(|e| format!("connecting to {socket}: {e}"))?;
    let mut reader = BufReader::new(
        stream
            .try_clone()
            .map_err(|e| format!("cloning stream: {e}"))?,
    );
    let mut writer = stream;
    let mut rng = StdRng::seed_from_u64(seed);
    let zoo = pml_mpi::zoo();
    let coll = pml_mpi::serve::collective_wire_name(collective);
    let mut latencies = Vec::with_capacity(count);
    let mut bad_replies = 0u64;
    let mut reply = String::with_capacity(256);
    for id in 0..count {
        // Sample a job shape from a random zoo cluster's benchmark grids;
        // a quarter of the messages are nudged off-grid so the daemon's
        // nearest-bucket path is exercised, not just exact cells.
        let entry = &zoo[rng.gen_range(0..zoo.len())];
        let nodes = entry.node_grid[rng.gen_range(0..entry.node_grid.len())];
        let ppn = entry.ppn_grid[rng.gen_range(0..entry.ppn_grid.len())];
        let mut msg = entry.msg_grid[rng.gen_range(0..entry.msg_grid.len())];
        if rng.gen_bool(0.25) {
            msg += 3;
        }
        let line = match op {
            "predict" => format!(
                r#"{{"v":"pml-serve/v1","id":{id},"op":"predict","cluster":"{}","collective":"{coll}","nodes":{nodes},"ppn":{ppn},"msg_size":{msg}}}"#,
                entry.name()
            ),
            _ => format!(
                r#"{{"v":"pml-serve/v1","id":{id},"op":"select","collective":"{coll}","nodes":{nodes},"ppn":{ppn},"msg_size":{msg}}}"#
            ),
        };
        let t0 = std::time::Instant::now();
        writer
            .write_all(line.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .map_err(|e| format!("request {id}: write: {e}"))?;
        reply.clear();
        let n = reader
            .read_line(&mut reply)
            .map_err(|e| format!("request {id}: read: {e}"))?;
        let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        if n == 0 {
            return Err(format!("daemon closed the connection at request {id}"));
        }
        latencies.push(ns);
        LOADGEN_LATENCY.observe(ns);
        // The compact renderer never inserts spaces, so this substring
        // check is an exact ok-flag probe without a per-reply JSON parse.
        if !reply.contains(r#""ok":true"#) {
            bad_replies += 1;
        }
    }
    Ok((latencies, bad_replies))
}

fn cmd_loadgen(args: &[String]) -> Result<(), Box<dyn Error>> {
    let opts = Opts::parse(
        args,
        &[
            "socket",
            "requests",
            "threads",
            "seed",
            "collective",
            "op",
            "out",
            "date",
            "rev",
        ],
        &[],
    )?;
    let socket = opts
        .get("socket")
        .ok_or("missing required --socket PATH")?
        .to_string();
    let total: usize = parse_flag_or(&opts, "requests", 100_000)?;
    let threads: usize = parse_flag_or::<usize>(&opts, "threads", 4)?.clamp(1, 256);
    let seed: u64 = parse_flag_or(&opts, "seed", 42)?;
    let collective = parse_collective(opts.get("collective").unwrap_or("alltoall"))?;
    let op = opts.get("op").unwrap_or("select").to_string();
    if op != "select" && op != "predict" {
        return Err(format!("--op expects select or predict, got {op:?}").into());
    }

    let start = std::time::Instant::now();
    let workers: Vec<_> = (0..threads)
        .map(|i| {
            let socket = socket.clone();
            let op = op.clone();
            let count = total / threads + usize::from(i < total % threads);
            std::thread::spawn(move || {
                loadgen_worker(&socket, count, seed.wrapping_add(i as u64), collective, &op)
            })
        })
        .collect();
    let mut latencies: Vec<u64> = Vec::with_capacity(total);
    let mut bad_replies = 0u64;
    for handle in workers {
        let (lat, bad) = handle
            .join()
            .map_err(|_| "loadgen worker panicked".to_string())??;
        latencies.extend(lat);
        bad_replies += bad;
    }
    let wall_s = start.elapsed().as_secs_f64();
    if latencies.is_empty() {
        return Err("no requests completed".into());
    }
    latencies.sort_unstable();

    let pct = |q: f64| {
        let idx = ((latencies.len() - 1) as f64 * q).round() as usize;
        latencies[idx.min(latencies.len() - 1)]
    };
    let sum_ns: u64 = latencies.iter().sum();
    let throughput = latencies.len() as f64 / wall_s.max(1e-9);
    let stamp = |key: &str| match opts.get(key) {
        Some(v) => serde_json::JsonValue::Str(v.to_string()),
        None => serde_json::JsonValue::Null,
    };
    let uint = |v: u64| serde_json::JsonValue::UInt(v);
    let doc = serde_json::JsonValue::Object(vec![
        ("date".to_string(), stamp("date")),
        ("rev".to_string(), stamp("rev")),
        (
            "socket".to_string(),
            serde_json::JsonValue::Str(socket.clone()),
        ),
        ("op".to_string(), serde_json::JsonValue::Str(op.clone())),
        (
            "collective".to_string(),
            serde_json::JsonValue::Str(
                pml_mpi::serve::collective_wire_name(collective).to_string(),
            ),
        ),
        ("requests".to_string(), uint(latencies.len() as u64)),
        ("threads".to_string(), uint(threads as u64)),
        ("errors".to_string(), uint(bad_replies)),
        ("wall_s".to_string(), serde_json::JsonValue::Float(wall_s)),
        (
            "throughput_rps".to_string(),
            serde_json::JsonValue::Float(throughput),
        ),
        (
            "latency_ns".to_string(),
            serde_json::JsonValue::Object(vec![
                ("min".to_string(), uint(latencies[0])),
                ("p50".to_string(), uint(pct(0.50))),
                ("p99".to_string(), uint(pct(0.99))),
                ("p999".to_string(), uint(pct(0.999))),
                ("max".to_string(), uint(latencies[latencies.len() - 1])),
                ("mean".to_string(), uint(sum_ns / latencies.len() as u64)),
            ]),
        ),
    ]);
    let json = serde_json::to_string_pretty(&doc).map_err(|e| format!("rendering JSON: {e}"))?;
    write_or_print(opts.get("out"), &json, "loadgen report")?;
    eprintln!(
        "{} requests in {wall_s:.2}s over {threads} connection(s): {throughput:.0} req/s, \
         p50 {} ns, p99 {} ns, p999 {} ns",
        latencies.len(),
        pct(0.50),
        pct(0.99),
        pct(0.999)
    );
    if bad_replies > 0 {
        return Err(format!("{bad_replies} request(s) got a non-ok reply").into());
    }
    Ok(())
}
