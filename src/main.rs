//! `pml-mpi` — command-line front end for the selection framework.
//!
//! Eight subcommands cover the offline → online lifecycle:
//!
//! ```text
//! zoo       list the 18-cluster benchmark zoo
//! dataset   generate (or load cached) micro-benchmark records
//! train     train a model for one collective
//! predict   pick an algorithm for a job (zoo cluster or captured hw files)
//! table     emit the JSON tuning table for a (cluster, collective)
//! compare   ML pick vs library defaults vs oracle over a message sweep
//! verify    statically verify model / tuning-table artifacts
//! stats     run a small pipeline and dump spans, metrics, and events
//! ```
//!
//! Two global options work on every subcommand: `--trace` renders the span
//! tree (per-stage total/self times) to stderr after the command finishes,
//! and `--metrics-out FILE` writes the `pml-obs/v1` metrics JSON document.
//! Both are observability-only: the tracer is enabled here at the CLI edge
//! with a monotonic clock, and artifacts stay byte-identical with or
//! without them (the `obs-determinism` CI lane holds that line).
//!
//! Argument parsing is hand rolled (the build is offline — no clap); every
//! user error surfaces as a message on stderr and exit code 1, never a
//! panic.

use pml_mpi::clusters::measure_cell;
use pml_mpi::core::{parse_ibstat, parse_lscpu, parse_lspci_link};
use pml_mpi::obs;
use pml_mpi::obs::span;
use pml_mpi::simnet::{InterconnectSpec, PcieVersion};
use pml_mpi::{
    by_name, Algorithm, AlgorithmSelector, Collective, EngineConfig, JobConfig, MvapichDefault,
    NodeSpec, OpenMpiDefault, PretrainedModel, SelectionEngine, Tuner, FEATURE_NAMES,
};
use std::collections::BTreeMap;
use std::error::Error;
use std::path::{Path, PathBuf};

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let (args, obs_opts) = match extract_obs_opts(&raw) {
        Ok(split) => split,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    // `stats` is the observability showcase: it always traces, flags or not.
    let stats_run = args.first().is_some_and(|a| a == "stats");
    if obs_opts.enabled() || stats_run {
        obs::tracer().enable(std::sync::Arc::new(obs::MonotonicClock::new()));
    }
    let result = run(&args);
    finish_obs(&obs_opts, stats_run);
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn run(args: &[String]) -> Result<(), Box<dyn Error>> {
    match args.first().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => {
            print_help();
            Ok(())
        }
        Some("zoo") => {
            let _span = span!("cmd.zoo");
            cmd_zoo()
        }
        Some("dataset") => {
            let _span = span!("cmd.dataset");
            cmd_dataset(&args[1..])
        }
        Some("train") => {
            let _span = span!("cmd.train");
            cmd_train(&args[1..])
        }
        Some("predict") => {
            let _span = span!("cmd.predict");
            cmd_predict(&args[1..])
        }
        Some("table") => {
            let _span = span!("cmd.table");
            cmd_table(&args[1..])
        }
        Some("compare") => {
            let _span = span!("cmd.compare");
            cmd_compare(&args[1..])
        }
        Some("verify") => {
            let _span = span!("cmd.verify");
            cmd_verify(&args[1..])
        }
        Some("stats") => {
            let _span = span!("cmd.stats");
            cmd_stats(&args[1..])
        }
        Some(other) => Err(format!("unknown subcommand {other:?} — run `pml-mpi help`").into()),
    }
}

/// Global observability flags, stripped before subcommand dispatch so the
/// per-subcommand parsers never see them.
struct ObsOpts {
    trace: bool,
    metrics_out: Option<String>,
}

impl ObsOpts {
    fn enabled(&self) -> bool {
        self.trace || self.metrics_out.is_some()
    }
}

/// Split `--trace` / `--metrics-out FILE` (or `--metrics-out=FILE`) out of
/// the raw argument list; everything else passes through untouched.
fn extract_obs_opts(args: &[String]) -> Result<(Vec<String>, ObsOpts), String> {
    let mut rest = Vec::with_capacity(args.len());
    let mut opts = ObsOpts {
        trace: false,
        metrics_out: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--trace" {
            opts.trace = true;
        } else if a == "--metrics-out" {
            let v = it
                .next()
                .cloned()
                .ok_or_else(|| "--metrics-out needs a value".to_string())?;
            opts.metrics_out = Some(v);
        } else if let Some(v) = a.strip_prefix("--metrics-out=") {
            opts.metrics_out = Some(v.to_string());
        } else {
            rest.push(a.clone());
        }
    }
    Ok((rest, opts))
}

/// After the subcommand returns (even on error): render the span tree to
/// stderr (`--trace`, or always for `stats`) and write the metrics JSON
/// (`--metrics-out`).
fn finish_obs(opts: &ObsOpts, stats_run: bool) {
    let tracer = obs::tracer();
    if !tracer.is_enabled() {
        return;
    }
    let forest = tracer.finish();
    if (opts.trace || stats_run) && !forest.is_empty() {
        eprint!("{}", forest.render());
    }
    if let Some(path) = &opts.metrics_out {
        let json = obs::metrics_json(&obs::metrics::snapshot(), Some(&forest));
        match std::fs::write(path, json) {
            Ok(()) => eprintln!("metrics written to {path}"),
            Err(e) => eprintln!("error: writing {path}: {e}"),
        }
    }
}

fn print_help() {
    println!(
        "\
pml-mpi — pre-trained ML selection of MPI collective algorithms

USAGE: pml-mpi <SUBCOMMAND> [OPTIONS]

SUBCOMMANDS:
  zoo                              list the 18-cluster benchmark zoo
  dataset <collective>             generate or load the micro-benchmark dataset
  train <collective>               train the Random Forest for one collective
  predict <collective>             pick an algorithm for one job
  table <cluster> <collective>     emit a cluster's JSON tuning table
  compare <cluster> <collective>   ML vs library defaults vs oracle
  verify <FILE>...                 statically verify artifact files
  stats [<collective>]             run a small pipeline, dump spans/metrics/events
  help                             show this message

GLOBAL OPTIONS (any subcommand):
  --trace              print the span tree (stage timings) to stderr on exit
  --metrics-out FILE   write the pml-obs/v1 metrics JSON document to FILE

COMMON OPTIONS:
  --cache-dir DIR   dataset cache directory (default: ./data when present)
  --no-cache        regenerate datasets in memory, ignore any cache
  --out FILE        write the command's JSON artifact to FILE

STATS OPTIONS:
  --cluster NAME    zoo cluster to pipeline (default: RI)

PREDICT OPTIONS:
  --cluster NAME    use a zoo cluster's hardware
  --lscpu FILE      captured `lscpu` output (with --ibstat; instead of --cluster)
  --ibstat FILE     captured `ibstat` output
  --lspci FILE      captured `lspci -vv` link status (optional; Gen3 x16 assumed)
  --mem-bw GBS      measured STREAM bandwidth (optional with --lscpu)
  --model FILE      load a trained model JSON instead of training
  --nodes N --ppn P --msg BYTES    the job (required)

COMPARE OPTIONS:
  --nodes N --ppn P [--msg BYTES]  fixed job shape; without --msg a
                                   1 B … 1 MiB power-of-two sweep runs

EXAMPLES:
  pml-mpi train allgather --out model_ag.json
  pml-mpi predict allgather --cluster Frontera --nodes 16 --ppn 56 --msg 4096
  pml-mpi predict alltoall --lscpu examples/captures/lscpu_frontera.txt \\
      --ibstat examples/captures/ibstat_edr.txt --nodes 8 --ppn 56 --msg 65536
  pml-mpi table Frontera allgather --out frontera_allgather.json
  pml-mpi table RI alltoall --trace --metrics-out metrics.json
  pml-mpi compare Frontera alltoall --nodes 16 --ppn 56
  pml-mpi verify model_ag.json frontera_allgather.json
  pml-mpi stats alltoall --cluster RI"
    );
}

/// Hand-rolled `--flag value` / positional splitter. Unknown flags are an
/// error so typos do not silently change behaviour.
struct Opts {
    positional: Vec<String>,
    flags: BTreeMap<String, String>,
}

impl Opts {
    /// `switches` take no value; every other `--flag` consumes one.
    fn parse(args: &[String], known: &[&str], switches: &[&str]) -> Result<Opts, String> {
        let mut positional = Vec::new();
        let mut flags = BTreeMap::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                let (name, inline) = match name.split_once('=') {
                    Some((n, v)) => (n, Some(v.to_string())),
                    None => (name, None),
                };
                if switches.contains(&name) {
                    flags.insert(name.to_string(), String::new());
                } else if known.contains(&name) {
                    let v = match inline {
                        Some(v) => v,
                        None => it
                            .next()
                            .cloned()
                            .ok_or_else(|| format!("--{name} needs a value"))?,
                    };
                    flags.insert(name.to_string(), v);
                } else {
                    return Err(format!("unknown option --{name}"));
                }
            } else {
                positional.push(a.clone());
            }
        }
        Ok(Opts { positional, flags })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    fn has(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }

    fn require_u32(&self, name: &str) -> Result<u32, String> {
        let v = self
            .get(name)
            .ok_or_else(|| format!("missing required --{name}"))?;
        v.parse()
            .map_err(|_| format!("--{name} expects an integer, got {v:?}"))
    }

    fn require_usize(&self, name: &str) -> Result<usize, String> {
        let v = self
            .get(name)
            .ok_or_else(|| format!("missing required --{name}"))?;
        v.parse()
            .map_err(|_| format!("--{name} expects an integer, got {v:?}"))
    }
}

fn parse_collective(s: &str) -> Result<Collective, String> {
    let want = s.to_ascii_lowercase();
    let want = want.trim_start_matches("mpi_");
    Collective::ALL
        .iter()
        .copied()
        .find(|c| c.name().trim_start_matches("MPI_").to_ascii_lowercase() == want)
        .ok_or_else(|| {
            format!("unknown collective {s:?} (expected allgather, alltoall, bcast, or allreduce)")
        })
}

/// The engine every subcommand shares: default config, dataset cache in
/// `--cache-dir`, falling back to the repo's committed `./data` when it
/// exists (so `train`/`predict` do not re-benchmark the whole zoo).
fn build_engine(opts: &Opts) -> SelectionEngine {
    let cache_dir = if opts.has("no-cache") {
        None
    } else {
        match opts.get("cache-dir") {
            Some(d) => Some(PathBuf::from(d)),
            None => Path::new("data").is_dir().then(|| PathBuf::from("data")),
        }
    };
    SelectionEngine::new(EngineConfig {
        cache_dir,
        ..EngineConfig::default()
    })
}

fn report_warnings(engine: &SelectionEngine) {
    for w in engine.warnings() {
        eprintln!("warning: {w}");
    }
}

fn write_or_print(out: Option<&str>, json: &str, what: &str) -> Result<(), Box<dyn Error>> {
    match out {
        Some(path) => {
            std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("{what} written to {path}");
        }
        None => println!("{json}"),
    }
    Ok(())
}

fn cmd_zoo() -> Result<(), Box<dyn Error>> {
    println!(
        "{:<14} {:<40} {:>5} {:>6}  {:<10} {:>12}",
        "cluster", "processor", "cores", "clock", "fabric", "grid cells"
    );
    for e in pml_mpi::zoo() {
        let cpu = &e.spec.node.cpu;
        let nic = &e.spec.node.nic;
        println!(
            "{:<14} {:<40} {:>5} {:>5.2}G  {:<10} {:>12}",
            e.name(),
            cpu.model,
            cpu.cores,
            cpu.max_clock_ghz,
            format!("{:?} x{}", nic.generation, nic.link_width),
            e.grid_size(),
        );
    }
    Ok(())
}

fn cmd_dataset(args: &[String]) -> Result<(), Box<dyn Error>> {
    let opts = Opts::parse(args, &["cache-dir", "out"], &["no-cache"])?;
    let [coll] = opts.positional.as_slice() else {
        return Err("usage: pml-mpi dataset <collective> [--out FILE]".into());
    };
    let coll = parse_collective(coll)?;
    let mut engine = build_engine(&opts);
    let records = engine.dataset(coll)?;
    report_warnings(&engine);
    let mut per_cluster: BTreeMap<&str, usize> = BTreeMap::new();
    for r in &records {
        *per_cluster.entry(r.cluster.as_str()).or_default() += 1;
    }
    eprintln!(
        "{coll}: {} records / {} clusters",
        records.len(),
        per_cluster.len()
    );
    if let Some(path) = opts.get("out") {
        let json =
            serde_json::to_string(&records).map_err(|e| format!("serializing dataset: {e}"))?;
        write_or_print(Some(path), &json, "dataset")?;
    } else {
        for (name, n) in &per_cluster {
            println!("{name:<14} {n}");
        }
    }
    Ok(())
}

fn cmd_train(args: &[String]) -> Result<(), Box<dyn Error>> {
    let opts = Opts::parse(args, &["cache-dir", "out"], &["no-cache"])?;
    let [coll] = opts.positional.as_slice() else {
        return Err("usage: pml-mpi train <collective> [--out FILE]".into());
    };
    let coll = parse_collective(coll)?;
    let mut engine = build_engine(&opts);
    let model = engine.train(coll)?.clone();
    report_warnings(&engine);
    let features: Vec<&str> = model
        .selected_features()
        .iter()
        .map(|&i| FEATURE_NAMES[i])
        .collect();
    eprintln!(
        "{coll}: trained; selected features: {}",
        features.join(", ")
    );
    if let Some(oob) = model.oob_score() {
        eprintln!("out-of-bag accuracy: {:.1}%", oob * 100.0);
    }
    if let Some(path) = opts.get("out") {
        write_or_print(Some(path), &model.to_json()?, "model")?;
    }
    Ok(())
}

/// Hardware for `predict`: a zoo cluster by name, or a node assembled from
/// captured `lscpu`/`ibstat` (and optionally `lspci -vv`) output.
fn resolve_node(opts: &Opts) -> Result<NodeSpec, Box<dyn Error>> {
    if let Some(name) = opts.get("cluster") {
        let entry =
            by_name(name).ok_or_else(|| format!("unknown cluster {name:?} — see `pml-mpi zoo`"))?;
        return Ok(entry.spec.node.clone());
    }
    let (Some(lscpu_path), Some(ibstat_path)) = (opts.get("lscpu"), opts.get("ibstat")) else {
        return Err(
            "predict needs either --cluster NAME or both --lscpu and --ibstat files".into(),
        );
    };
    let read = |p: &str| std::fs::read_to_string(p).map_err(|e| format!("reading {p}: {e}"));
    let mem_bw = match opts.get("mem-bw") {
        Some(v) => Some(
            v.parse::<f64>()
                .map_err(|_| format!("--mem-bw expects a number, got {v:?}"))?,
        ),
        None => None,
    };
    let cpu = parse_lscpu(&read(lscpu_path)?, mem_bw)?;
    let (generation, link_width) = parse_ibstat(&read(ibstat_path)?)?;
    // PCIe attachment is a second-order feature; without a capture assume
    // the era-typical Gen3 x16 slot.
    let (pcie_version, pcie_lanes) = match opts.get("lspci") {
        Some(p) => parse_lspci_link(&read(p)?)?,
        None => (PcieVersion::Gen3, 16),
    };
    Ok(NodeSpec {
        cpu,
        nic: InterconnectSpec {
            generation,
            link_width,
            pcie_version,
            pcie_lanes,
        },
    })
}

fn cmd_predict(args: &[String]) -> Result<(), Box<dyn Error>> {
    let opts = Opts::parse(
        args,
        &[
            "cache-dir",
            "cluster",
            "lscpu",
            "ibstat",
            "lspci",
            "mem-bw",
            "model",
            "nodes",
            "ppn",
            "msg",
        ],
        &["no-cache"],
    )?;
    let [coll] = opts.positional.as_slice() else {
        return Err(
            "usage: pml-mpi predict <collective> --nodes N --ppn P --msg BYTES \
             (--cluster NAME | --lscpu F --ibstat F)"
                .into(),
        );
    };
    let coll = parse_collective(coll)?;
    let job = JobConfig::new(
        opts.require_u32("nodes")?,
        opts.require_u32("ppn")?,
        opts.require_usize("msg")?,
    );
    let node = resolve_node(&opts)?;
    let model = match opts.get("model") {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            let model = PretrainedModel::from_json(&text)
                .map_err(|e| format!("parsing model {path}: {e}"))?;
            if model.collective != coll {
                return Err(
                    format!("model in {path} is for {}, not {coll}", model.collective).into(),
                );
            }
            model
        }
        None => {
            let mut engine = build_engine(&opts);
            let model = engine.train(coll)?.clone();
            report_warnings(&engine);
            model
        }
    };
    let pick = model.predict(&node, job);
    println!(
        "{coll} at {}x{} ({} ranks), {} B -> {}",
        job.nodes,
        job.ppn,
        job.world_size(),
        job.msg_size,
        pick
    );
    Ok(())
}

fn cmd_table(args: &[String]) -> Result<(), Box<dyn Error>> {
    let opts = Opts::parse(args, &["cache-dir", "out"], &["no-cache"])?;
    let [cluster, coll] = opts.positional.as_slice() else {
        return Err("usage: pml-mpi table <cluster> <collective> [--out FILE]".into());
    };
    let coll = parse_collective(coll)?;
    let mut engine = build_engine(&opts);
    let table = engine.tuning_table(cluster, coll)?.clone();
    report_warnings(&engine);
    eprintln!("{cluster} {coll}: {} table entries", table.len());
    write_or_print(opts.get("out"), &table.to_json()?, "tuning table")
}

fn cmd_compare(args: &[String]) -> Result<(), Box<dyn Error>> {
    let opts = Opts::parse(args, &["cache-dir", "nodes", "ppn", "msg"], &["no-cache"])?;
    let [cluster, coll] = opts.positional.as_slice() else {
        return Err(
            "usage: pml-mpi compare <cluster> <collective> --nodes N --ppn P [--msg BYTES]".into(),
        );
    };
    let coll = parse_collective(coll)?;
    let nodes = opts.require_u32("nodes")?;
    let ppn = opts.require_u32("ppn")?;
    let sizes: Vec<usize> = match opts.get("msg") {
        Some(_) => vec![opts.require_usize("msg")?],
        None => (0..21).map(|i| 1usize << i).collect(),
    };
    let mut engine = build_engine(&opts);
    let entry = engine.entry(cluster)?.clone();
    let model = engine.train(coll)?.clone();
    report_warnings(&engine);
    let mva = MvapichDefault;
    let ompi = OpenMpiDefault;
    println!(
        "{:<9} {:<22} {:>9} {:<22} {:>9} {:<22} {:>9} {:<22}",
        "msg(B)", "ml pick", "us", "mvapich", "us", "openmpi", "us", "oracle"
    );
    let fmt_us = |t: Option<f64>| match t {
        Some(s) => format!("{:.1}", s * 1e6),
        None => "-".to_string(),
    };
    let short = |a: Algorithm| a.name().to_string();
    for &msg in &sizes {
        let job = JobConfig::new(nodes, ppn, msg);
        let record = measure_cell(&entry, coll, nodes, ppn, msg, &engine_cfg_datagen())?;
        let ml = model.predict(&entry.spec.node, job);
        let m = mva.select(coll, job);
        let o = ompi.select(coll, job);
        println!(
            "{:<9} {:<22} {:>9} {:<22} {:>9} {:<22} {:>9} {:<22}",
            msg,
            short(ml),
            fmt_us(record.runtime_of(ml)),
            short(m),
            fmt_us(record.runtime_of(m)),
            short(o),
            fmt_us(record.runtime_of(o)),
            format!(
                "{} ({})",
                short(record.best),
                fmt_us(Some(record.best_runtime()))
            ),
        );
    }
    Ok(())
}

/// `compare` re-measures cells with the same configuration the engine's
/// datasets use, so its oracle column matches the training distribution.
fn engine_cfg_datagen() -> pml_mpi::DatagenConfig {
    pml_mpi::DatagenConfig::default()
}

/// Statically verify artifact files (models, tuning tables, binned
/// matrices) without executing them. Prints one line per file; any failure
/// is reported with its path and the command exits nonzero after checking
/// every file.
fn cmd_verify(args: &[String]) -> Result<(), Box<dyn Error>> {
    let opts = Opts::parse(args, &[], &[])?;
    if opts.positional.is_empty() {
        return Err("usage: pml-mpi verify <FILE>...".into());
    }
    let mut failures = 0usize;
    for path in &opts.positional {
        match pml_mpi::core::verify_artifact_file(Path::new(path)) {
            Ok(kind) => println!("{path}: OK ({kind})"),
            Err(e) => {
                failures += 1;
                eprintln!("FAIL {e}");
            }
        }
    }
    if failures > 0 {
        return Err(format!(
            "{failures} of {} artifact(s) failed verification",
            opts.positional.len()
        )
        .into());
    }
    Ok(())
}

/// Observability showcase: drive a small dataset → train → table → tuner
/// pipeline and dump everything the instrumentation collected — drained
/// events, the metrics registry, and (via `main`'s exit path) the span
/// tree. Tracing is always on for this subcommand.
fn cmd_stats(args: &[String]) -> Result<(), Box<dyn Error>> {
    let opts = Opts::parse(args, &["cache-dir", "cluster"], &["no-cache"])?;
    let coll = match opts.positional.as_slice() {
        [] => Collective::Alltoall,
        [c] => parse_collective(c)?,
        _ => return Err("usage: pml-mpi stats [<collective>] [--cluster NAME]".into()),
    };
    let cluster = opts.get("cluster").unwrap_or("RI");
    let mut engine = build_engine(&opts);
    let table = engine.tuning_table(cluster, coll)?.clone();

    // Exercise the runtime path too: probe the fresh table on-grid (exact
    // cell), repeated (memo hit), off-grid (nearest bucket), and at an odd
    // shape, so the tuner counters and the fallback-depth histogram fill.
    let tuner = Tuner::new([table.clone()]);
    for &(nodes, ppn, msg) in &[(2u32, 4u32, 64usize), (2, 4, 64), (2, 4, 100), (3, 5, 777)] {
        tuner.select(coll, JobConfig::new(nodes, ppn, msg));
    }
    let (hits, misses) = tuner.stats();
    println!(
        "{cluster} {coll}: {} table cells; tuner memo {hits} hit(s) / {misses} miss(es)",
        table.len()
    );

    // Events the pipeline emitted (cache recoveries and the like) — the
    // structured view behind `SelectionEngine::warnings()`.
    let events = obs::events::drain();
    println!("\nEVENTS ({}):", events.len());
    for e in &events {
        println!("  {e}");
    }

    let snap = obs::metrics::snapshot();
    println!("\nMETRICS ({} total):", snap.total_metrics());
    for (name, v) in &snap.counters {
        println!("  counter    {name:<28} {v}");
    }
    for (name, v) in &snap.gauges {
        println!("  gauge      {name:<28} {v}");
    }
    for (name, h) in &snap.histograms {
        println!(
            "  histogram  {name:<28} count {} sum {} overflow {}",
            h.count, h.sum, h.overflow
        );
    }
    eprintln!("\nspan tree (total/self times) follows on stderr:");
    Ok(())
}
