//! Shared fixtures for the integration tests: a trimmed zoo and a small
//! but real trained model, so each test exercises the genuine pipeline
//! without paying for the full 18-cluster grid.
//!
//! Each test binary compiles this module separately and uses a subset of
//! it, so unused-item lints do not apply.
#![allow(dead_code)]

use pml_mpi::mlcore::ForestParams;
use pml_mpi::{
    by_name, Collective, DatagenConfig, EngineConfig, PretrainedModel, SelectionEngine, TrainConfig,
};

pub fn mini_engine() -> SelectionEngine {
    let clusters: Vec<_> = ["RI", "Haswell"]
        .iter()
        .map(|name| {
            let mut e = by_name(name).expect("zoo cluster").clone();
            e.node_grid = vec![1, 2, 4];
            e.ppn_grid = vec![2, 8];
            e.msg_grid = vec![16, 1024, 65536];
            e
        })
        .collect();
    let cfg = EngineConfig {
        datagen: DatagenConfig::noiseless(),
        train: TrainConfig {
            forest: ForestParams {
                n_estimators: 15,
                seed: 3,
                ..Default::default()
            },
            top_k_features: Some(5),
        },
        cache_dir: None,
    };
    SelectionEngine::with_clusters(clusters, cfg)
}

pub fn mini_model(collective: Collective) -> PretrainedModel {
    let engine = mini_engine();
    let model = engine.train(collective).expect("training succeeds");
    (*model).clone()
}
