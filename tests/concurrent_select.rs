//! The sharded tuner cache must be invisible to callers: any number of
//! threads hammering one shared `Tuner` have to get exactly the answers a
//! single-threaded caller gets from a fresh one — same algorithm, same
//! fallback depth, for exact-cell, nearest-bucket, substituted, and
//! default-rules lookups alike. This is the concurrency contract the
//! `pml-mpi serve` daemon leans on.

use pml_mpi::collectives::AlltoallAlgo;
use pml_mpi::{Algorithm, Collective, FallbackDepth, JobConfig, Tuner, TuningTable};
use std::sync::Arc;

fn mixed_table() -> TuningTable {
    // A full 2x2x2 grid (the verifier's totality rule) with distinct picks
    // per message class, so different shapes resolve differently.
    let mut t = TuningTable::new("stress", Collective::Alltoall);
    for &nodes in &[2u32, 4] {
        for &ppn in &[4u32, 8] {
            t.insert(nodes, ppn, 1024, Algorithm::Alltoall(AlltoallAlgo::Bruck))
                .expect("cell inserts");
            t.insert(
                nodes,
                ppn,
                65536,
                Algorithm::Alltoall(AlltoallAlgo::Pairwise),
            )
            .expect("cell inserts");
        }
    }
    t
}

/// ≥1k lookups cycling through every fallback class: exact grid cells,
/// off-grid shapes (nearest bucket), and a collective with no table at all
/// (static default rules). Repeats are deliberate — they turn into memo
/// hits under contention.
fn mixed_jobs() -> Vec<(Collective, JobConfig)> {
    let nodes = [2u32, 3, 4, 7];
    let ppn = [4u32, 5, 8];
    let msg = [1024usize, 1500, 65536, 7];
    (0..1200)
        .map(|i| {
            let collective = if i % 5 == 4 {
                Collective::Allgather // uncovered -> default rules
            } else {
                Collective::Alltoall
            };
            let job = JobConfig::new(nodes[i % 4], ppn[i % 3], msg[i % 4]);
            (collective, job)
        })
        .collect()
}

#[test]
fn eight_threads_get_byte_identical_selections() {
    let jobs = mixed_jobs();
    assert!(jobs.len() >= 1000);

    // Single-threaded ground truth from a fresh tuner.
    let serial_tuner = Tuner::new([mixed_table()]);
    let baseline: Vec<(Algorithm, FallbackDepth)> = jobs
        .iter()
        .map(|&(c, j)| serial_tuner.select_traced(c, j))
        .collect();
    // The baseline itself exercised every depth class.
    for want in [
        FallbackDepth::Exact,
        FallbackDepth::NearestBucket,
        FallbackDepth::DefaultRules,
    ] {
        assert!(
            baseline.iter().any(|&(_, d)| d == want),
            "job mix never produced {want:?}"
        );
    }

    // Eight threads race the full job list against one shared tuner.
    const THREADS: usize = 8;
    let shared = Arc::new(Tuner::new([mixed_table()]));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let tuner = Arc::clone(&shared);
            let jobs = jobs.clone();
            std::thread::spawn(move || {
                let got: Vec<(Algorithm, FallbackDepth)> = jobs
                    .iter()
                    .map(|&(c, j)| tuner.select_traced(c, j))
                    .collect();
                (t, got)
            })
        })
        .collect();
    for handle in handles {
        let (t, got) = handle.join().expect("stress thread panics nothing");
        assert_eq!(
            got, baseline,
            "thread {t} diverged from the single-threaded baseline"
        );
    }

    // Accounting stayed exact under contention: every lookup was either a
    // hit or a miss, and the memo holds one entry per distinct key.
    let (hits, misses) = shared.stats();
    assert_eq!(hits + misses, (THREADS * jobs.len()) as u64);
    let distinct = {
        let mut keys: Vec<_> = jobs
            .iter()
            .map(|&(c, j)| (c, j.nodes, j.ppn, j.msg_size))
            .collect();
        keys.sort_unstable();
        keys.dedup();
        keys.len()
    };
    assert_eq!(shared.cached_decisions(), distinct);
    assert_eq!(
        misses as usize % distinct,
        0,
        "misses only on uncached keys"
    );
}
