//! End-to-end reproducibility: the whole pipeline — datagen, training,
//! tuning-table generation, serialization — must be a pure function of its
//! seeds. Two runs from identical configs have to agree byte for byte, or
//! cached artifacts silently diverge from freshly computed ones.

mod common;

use pml_mpi::clusters::generate_cluster;
use pml_mpi::{by_name, Collective, DatagenConfig};

/// A small but noisy datagen config: noise exercises the per-cell RNG
/// derivation, which is where nondeterminism would creep in (rayon shuffles
/// cell execution order run to run).
fn noisy_cfg() -> DatagenConfig {
    DatagenConfig {
        seed: 7,
        iters: 3,
        ..DatagenConfig::default()
    }
}

fn mini_entry() -> pml_mpi::ClusterEntry {
    let mut e = by_name("RI").expect("zoo cluster").clone();
    e.node_grid = vec![1, 2, 4];
    e.ppn_grid = vec![2, 8];
    e.msg_grid = vec![16, 1024, 65536];
    e
}

#[test]
fn datagen_is_identical_across_runs() {
    let entry = mini_entry();
    let a = generate_cluster(&entry, Collective::Alltoall, &noisy_cfg()).expect("datagen");
    let b = generate_cluster(&entry, Collective::Alltoall, &noisy_cfg()).expect("datagen");
    assert_eq!(a, b, "same seed must reproduce the same records");
    // Bitwise, not just approximately: serialize and compare bytes.
    let ja = serde_json::to_string(&a).expect("records serialize");
    let jb = serde_json::to_string(&b).expect("records serialize");
    assert_eq!(ja, jb);
}

#[test]
fn trained_model_json_is_byte_identical_for_identical_seeds() {
    let model_json = || {
        let engine = common::mini_engine();
        engine
            .train(Collective::Allgather)
            .expect("training succeeds")
            .to_json()
            .expect("model serializes")
    };
    let a = model_json();
    let b = model_json();
    assert_eq!(
        a, b,
        "training is parallel (binned trees, rayon OOB) but must stay a pure \
         function of the seed — byte-identical serialized forests"
    );
}

#[test]
fn tuning_table_json_is_byte_identical_for_identical_seeds() {
    let table_json = || {
        let engine = common::mini_engine();
        engine
            .tuning_table("RI", Collective::Allgather)
            .expect("table generates")
            .to_json()
            .expect("table serializes")
    };
    let a = table_json();
    let b = table_json();
    assert_eq!(
        a, b,
        "two engines with identical seeds must emit byte-identical tables"
    );
}
