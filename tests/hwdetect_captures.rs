//! The captured-output path the CLI's `predict --lscpu/--ibstat` uses:
//! the committed example captures must parse into a NodeSpec a trained
//! model can consume.

mod common;

use pml_mpi::simnet::HcaGeneration;
use pml_mpi::{detect_node, Collective, JobConfig};
use std::path::Path;

fn capture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("examples/captures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

#[test]
fn committed_captures_drive_a_prediction() {
    let node = detect_node(
        &capture("lscpu_frontera.txt"),
        &capture("ibstat_edr.txt"),
        &capture("lspci_gen3.txt"),
        None,
    )
    .expect("captures parse");
    assert_eq!(node.cpu.cores, 56);
    assert_eq!(node.cpu.sockets, 2);
    assert_eq!(node.nic.generation, HcaGeneration::Edr);
    assert_eq!(node.nic.pcie_lanes, 16);

    let model = common::mini_model(Collective::Allgather);
    let job = JobConfig::new(16, 56, 4096);
    let pick = model.predict(&node, job);
    assert!(pick.supports(job.world_size()));
    assert_eq!(pick.collective(), Collective::Allgather);
}
