//! Shipped model artifacts outlive the code that wrote them. The fixture
//! here was serialized by the pre-SoA tree layout (per-node `Leaf`/`Split`
//! enum, forest params without `split_finder`); loading it through the
//! current deserializer must reproduce the predictions the original model
//! made, recorded alongside it at capture time.

use pml_mpi::{by_name, JobConfig, PretrainedModel};

#[test]
fn v1_model_artifact_loads_and_predicts_identically() {
    let json = include_str!("fixtures/model_v1_allgather.json");
    let model = PretrainedModel::from_json(json).expect("v1 artifact loads");

    let frontera = by_name("Frontera").expect("zoo cluster");
    let jobs: Vec<JobConfig> = [1u32, 2, 3, 8, 16]
        .iter()
        .flat_map(|&n| {
            [1u32, 7, 28].iter().flat_map(move |&p| {
                (0..21)
                    .step_by(4)
                    .map(move |i| JobConfig::new(n, p, 1 << i))
            })
        })
        .collect();
    let preds: Vec<String> = model
        .predict_batch(&frontera.spec.node, &jobs)
        .iter()
        .map(|a| a.to_string())
        .collect();

    let expected: Vec<String> =
        serde_json::from_str(include_str!("fixtures/model_v1_allgather_expected.json"))
            .expect("expected predictions parse");
    assert_eq!(preds.len(), expected.len());
    assert_eq!(preds, expected);
}

#[test]
fn migrated_model_reserializes_in_current_layout() {
    let json = include_str!("fixtures/model_v1_allgather.json");
    let model = PretrainedModel::from_json(json).expect("v1 artifact loads");

    // Re-serializing writes the current (SoA, versioned) layout, and that
    // round-trips to an equal model.
    let rewritten = model.to_json().expect("model serializes");
    assert!(rewritten.contains("\"version\""));
    assert!(!rewritten.contains("\"Split\""));
    let back = PretrainedModel::from_json(&rewritten).expect("current layout parses");
    assert_eq!(model, back);
}
