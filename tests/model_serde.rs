//! A shipped model is a JSON artifact: deserializing it must reproduce the
//! original's predictions bit for bit (the deployment path trains nothing).

mod common;

use pml_mpi::{by_name, Collective, JobConfig, PretrainedModel};

#[test]
fn model_round_trips_with_identical_predictions() {
    let model = common::mini_model(Collective::Allgather);
    let json = model.to_json().expect("model serializes");
    let back = PretrainedModel::from_json(&json).expect("model JSON parses");
    assert_eq!(model, back);

    // Identical picks on hardware the model never trained on, across a
    // sweep much wider than the training grid.
    let frontera = by_name("Frontera").expect("zoo cluster");
    let jobs: Vec<JobConfig> = [1u32, 2, 3, 8, 16, 32]
        .iter()
        .flat_map(|&n| {
            [1u32, 7, 28, 56].iter().flat_map(move |&p| {
                (0..21)
                    .step_by(3)
                    .map(move |i| JobConfig::new(n, p, 1 << i))
            })
        })
        .collect();
    assert_eq!(
        model.predict_batch(&frontera.spec.node, &jobs),
        back.predict_batch(&frontera.spec.node, &jobs)
    );
}

#[test]
fn engine_install_model_serves_the_artifact() {
    let model = common::mini_model(Collective::Alltoall);
    let json = model.to_json().expect("model serializes");

    let engine = common::mini_engine();
    engine.install_model(PretrainedModel::from_json(&json).expect("model JSON parses"));
    let job = JobConfig::new(4, 8, 4096);
    let from_engine = engine
        .predict("RI", Collective::Alltoall, job)
        .expect("known cluster");
    let direct = model.predict(
        &engine.entry("RI").expect("known cluster").spec.node.clone(),
        job,
    );
    assert_eq!(from_engine, direct);
}
